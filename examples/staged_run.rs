//! One staged pipeline run, end to end: build a plan from generated
//! sources + web text, route two attributes to non-default truth-discovery
//! resolvers, execute the canonical stage list, and print each stage's
//! report, the resolver routing, and the Matilda enrichment.
//!
//! ```text
//! cargo run --release --example staged_run
//! ```

use datatamer::core::fusion::{RegistryConfig, ResolverSpec};
use datatamer::core::stage::stage_names;
use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
use datatamer::corpus::ftables::{self, FtablesConfig};
use datatamer::corpus::webtext::{WebTextConfig, WebTextCorpus};
use datatamer::text::DomainParser;

fn main() {
    let corpus = WebTextCorpus::generate(&WebTextConfig {
        num_fragments: 1_000,
        ..Default::default()
    });
    let sources = ftables::generate(&FtablesConfig::default(), 1000);

    let mut plan = PipelinePlan::new();
    for s in &sources {
        plan = plan.structured(&s.name, &s.records);
    }
    let frags: Vec<(&str, &str)> =
        corpus.fragments.iter().map(|f| (f.text.as_str(), f.kind.label())).collect();
    plan = plan.webtext(DomainParser::with_gazetteer(corpus.gazetteer.clone()), frags);

    // Truth discovery: keep the broadway routing but weight THEATER by
    // source reliability and take the freshest FIRST date.
    let resolvers = RegistryConfig::broadway()
        .with("THEATER", ResolverSpec::SourceReliability { iterations: 5 })
        .with("FIRST", ResolverSpec::LatestWins);
    println!("fusion resolver routing:");
    let registry = resolvers.build();
    let (routes, default) = registry.dispatch_table();
    for (attr, resolver) in routes {
        println!("  {attr:<16} -> {resolver}");
    }
    println!("  (default)        -> {default}\n");
    plan = plan.resolvers(resolvers);

    let mut dt = DataTamer::new(DataTamerConfig::default());
    let fused = dt.run(plan).expect("pipeline runs");
    let matilda = DataTamer::lookup(fused, "Matilda").expect("Matilda fused");
    println!(
        "fused {} entities; Matilda merged from {} records:",
        fused.len(),
        matilda.member_count
    );
    for (attr, value) in matilda.record.iter() {
        println!("  {attr:<16} {value:?}");
    }

    println!("\nstage log:");
    for run in dt.context().runs() {
        println!("  {:<22} {:?}", run.stage, run.report);
    }
    assert_eq!(
        dt.context().runs().iter().map(|r| r.stage).collect::<Vec<_>>(),
        stage_names::CANONICAL_ORDER.to_vec(),
    );
}
