//! The §IV machine-learning experiment: train the dedup classifier and
//! evaluate with 10-fold cross-validation per entity type.
//!
//! The paper reports "89/90% precision/recall by 10-fold crossvalidation on
//! several different types of entities from the web-text dataset". This
//! example reruns that protocol on the synthetic corpus's labelled pairs and
//! also demonstrates the trained model consolidating a dirty record set.
//!
//! ```text
//! cargo run --release --example webtext_dedup
//! ```

use datatamer::corpus::truth::{labeled_pairs, labeled_pairs_with, PairDifficulty, DEDUP_EVAL_TYPES};
use datatamer::entity::blocking::BlockingStrategy;
use datatamer::entity::pipeline::{ConsolidationPipeline, PipelineConfig};
use datatamer::entity::{Blocker, PairScorer};
use datatamer::ml::dedup::{crossval_dedup, DedupClassifier};
use datatamer::ml::logreg::LogRegConfig;
use datatamer::model::{Record, RecordId, SourceId, Value};

fn main() {
    // 1. Cross-validated precision/recall per entity type (experiment M1).
    println!("10-fold cross-validation, 1000 labelled pairs per type:");
    println!("(paper: 89/90% precision/recall)\n");
    for ty in DEDUP_EVAL_TYPES {
        let pairs: Vec<(String, String, bool)> =
            labeled_pairs_with(ty, 1_000, 42, PairDifficulty::paper_band())
                .into_iter()
                .map(|p| (p.a, p.b, p.same))
                .collect();
        let metrics = crossval_dedup(&pairs, 10, 7, &LogRegConfig::default()).metrics();
        println!("  {:<14} {metrics}", format!("{ty:?}:"));
    }

    // 2. Train a production model on Person pairs and consolidate a dirty
    //    record set with it (blocking -> ML scoring -> clustering -> merge).
    let train: Vec<(String, String, bool)> =
        labeled_pairs(datatamer::text::EntityType::Person, 2_000, 1, 0.6, false)
            .into_iter()
            .map(|p| (p.a, p.b, p.same))
            .collect();
    let model = DedupClassifier::train(&train, &LogRegConfig::default());

    let dirty = [
        "James Smith",
        "J. Smith",
        "JAMES SMITH",
        "Mary Johnson",
        "Mary Jhonson",
        "Robert Brown",
        "robert brown ",
        "Linda Davis",
    ];
    let records: Vec<Record> = dirty
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Record::from_pairs(
                SourceId((i % 3) as u32),
                RecordId(i as u64),
                vec![("name", Value::from(*name))],
            )
        })
        .collect();
    let pipeline = ConsolidationPipeline::new(PipelineConfig {
        blocker: Blocker::new("name", BlockingStrategy::Soundex),
        scorer: PairScorer::Classifier { key_attr: "name".into(), model },
        accept_threshold: 0.5,
        merge: Default::default(),
    });
    let result = pipeline.run(&records);
    println!(
        "\nconsolidated {} dirty person records into {} entities \
         ({} candidate pairs from blocking, {:.0}% of all-pairs work avoided):",
        records.len(),
        result.clusters.len(),
        result.candidate_pairs,
        result.comparisons_saved() * 100.0
    );
    for (cluster, composite) in result.clusters.iter().zip(&result.composites) {
        let members: Vec<&str> = cluster.iter().map(|&i| dirty[i]).collect();
        println!("  {members:?} -> \"{}\"", composite.get_text("name").unwrap_or_default());
    }
}
