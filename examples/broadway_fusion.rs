//! The paper's full demo scenario (§V): a user wants a popular award-winning
//! show at the best price.
//!
//! Reproduces the complete flow: generate the synthetic WEBINSTANCE corpus
//! and 20 FTABLES sources, ingest everything, then
//! 1. find the top-10 most discussed award-winning shows (Table IV),
//! 2. query Matilda from web text only (Table V),
//! 3. fuse with FTABLES and query again — enriched (Table VI).
//!
//! ```text
//! cargo run --release --example broadway_fusion
//! ```

use datatamer::core::{DataTamer, DataTamerConfig};
use datatamer::corpus::ftables::{self, FtablesConfig};
use datatamer::corpus::webtext::{WebTextConfig, WebTextCorpus};
use datatamer::text::DomainParser;

fn main() -> datatamer::model::Result<()> {
    // Generate the datasets (synthetic stand-ins; see DESIGN.md §2).
    let corpus = WebTextCorpus::generate(&WebTextConfig {
        num_fragments: 3_000,
        ..Default::default()
    });
    let sources = ftables::generate(&FtablesConfig::default(), 1000);
    println!(
        "datasets: {} web-text fragments, {} structured sources",
        corpus.fragments.len(),
        sources.len()
    );

    // Ingest web text first — the user starts from the text side.
    let mut dt = DataTamer::new(DataTamerConfig::default());
    let parser = DomainParser::with_gazetteer(corpus.gazetteer.clone());
    let frags: Vec<(&str, &str)> = corpus
        .fragments
        .iter()
        .map(|f| (f.text.as_str(), f.kind.label()))
        .collect();
    let stats = dt.ingest_webtext(parser, frags)?;
    println!(
        "ingested: {} instances, {} entities ({} junk fragments dropped)\n",
        stats.instances, stats.entities, stats.fragments_dropped
    );

    // Step 1 — Table IV: the top-10 most discussed award-winning shows.
    println!("TOP 10 MOST DISCUSSED AWARD-WINNING MOVIES/SHOWS (from web text):");
    for show in dt.top_discussed(10)? {
        println!("  \"{}\"  ({} fragments)", show.title, show.mentions);
    }

    // Step 2 — Table V: the user picks Matilda; text-only lookup.
    let text_only = dt.fuse_text_only();
    let matilda = DataTamer::lookup(&text_only, "Matilda").expect("Matilda discussed");
    println!("\nQUERY \"Matilda\" FROM WEB-TEXT ONLY (no theaters, pricing or schedules):");
    for attr in ["SHOW_NAME", "TEXT_FEED"] {
        if let Some(v) = matilda.record.get_text(attr) {
            println!("  {attr:<15} \"{v}\"");
        }
    }

    // Step 3 — import FTABLES, schema-match, fuse: Table VI.
    for s in &sources {
        dt.register_structured(&s.name, &s.records)?;
    }
    println!(
        "\nintegrated {} structured sources; global schema: {:?}",
        sources.len(),
        dt.global_schema().attribute_names()
    );
    let fused = dt.fuse();
    let matilda = DataTamer::lookup(&fused, "Matilda").expect("Matilda fused");
    println!("\nENRICHED QUERY RESULT AFTER FUSION (paper Table VI):");
    for attr in ["SHOW_NAME", "THEATER", "PERFORMANCE", "TEXT_FEED", "CHEAPEST_PRICE", "FIRST"] {
        if let Some(v) = matilda.record.get_text(attr) {
            println!("  {attr:<15} \"{v}\"");
        }
    }
    println!(
        "\n({} records fused into this entity; the user never ran a second manual search)",
        matilda.member_count
    );
    Ok(())
}
