//! Quickstart: stand up Data Tamer, integrate a structured source, ingest a
//! few web-text fragments, fuse, and query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use datatamer::core::{DataTamer, DataTamerConfig};
use datatamer::model::{Record, RecordId, SourceId, Value};
use datatamer::text::{DomainParser, EntityType, Gazetteer};

fn main() -> datatamer::model::Result<()> {
    // 1. A small structured source: Broadway shows with prices.
    let source_id = SourceId(0);
    let rows = [
        ("Matilda", "Shubert 225 W. 44th St between 7th and 8th", "$27", "3/4/2013"),
        ("Wicked", "Gershwin 222 W. 51st St between Broadway and 8th", "€60", "2003-10-30"),
        ("Annie", "Palace 1564 Broadway at 47th", "$45", "11/8/2012"),
    ];
    let records: Vec<Record> = rows
        .iter()
        .enumerate()
        .map(|(i, (show, theater, price, first))| {
            Record::from_pairs(
                source_id,
                RecordId(i as u64),
                vec![
                    ("show_name", Value::from(*show)),
                    ("theater", Value::from(*theater)),
                    ("cheapest_price", Value::from(*price)),
                    ("first", Value::from(*first)),
                ],
            )
        })
        .collect();

    // 2. Data Tamer: register the source (schema integration + cleaning).
    let mut dt = DataTamer::new(DataTamerConfig::default());
    let report = dt.register_structured("broadway_listings", &records)?;
    println!(
        "integrated source: {} attributes ({} new, {} auto-mapped)",
        report.suggestions.len(),
        report.new_attributes(),
        report.auto_accepted()
    );
    println!("global schema: {:?}", dt.global_schema().attribute_names());
    // Note the cleaning engine already translated €60 → dollars:
    let wicked = dt
        .structured_records()
        .iter()
        .find(|r| r.get_text("SHOW_NAME").as_deref() == Some("Wicked"))
        .expect("wicked registered");
    println!("Wicked price after EUR→USD cleaning: {:?}", wicked.get_text("CHEAPEST_PRICE"));

    // 3. Web text through the domain-specific parser.
    let mut gazetteer = Gazetteer::new();
    for (show, ..) in &rows {
        gazetteer.add(show, EntityType::Movie, 0.95);
    }
    gazetteer.add("London", EntityType::City, 0.9);
    let parser = DomainParser::with_gazetteer(gazetteer);
    let fragments = [
        (
            "..which began previews on Tuesday, grossed 659,391, or...And Matilda an \
             award-winning import from London, grossed 960,998, or 93 percent of the maximum.",
            "news",
        ),
        ("Just saw Wicked! Tickets from $99, totally worth it.", "twitter"),
    ];
    let stats = dt.ingest_webtext(parser, fragments)?;
    println!(
        "ingested text: {} fragments -> {} instances, {} entities",
        stats.fragments_seen, stats.instances, stats.entities
    );

    // 4. Fuse text with structured data and run the paper's demo query.
    let fused = dt.fuse();
    let matilda = DataTamer::lookup(&fused, "Matilda").expect("Matilda fused");
    println!("\nEnriched query result for \"Matilda\" (paper Table VI):");
    for attr in ["SHOW_NAME", "THEATER", "PERFORMANCE", "TEXT_FEED", "CHEAPEST_PRICE", "FIRST"] {
        if let Some(v) = matilda.record.get_text(attr) {
            println!("  {attr:<15} \"{v}\"");
        }
    }

    // 5. Storage-engine statistics, paper Table I style.
    println!("\n> db.instance.stats();");
    println!("{}", dt.collection_stats("instance").expect("instance collection"));
    Ok(())
}
