//! Figures 2 and 3 as a terminal session: watch the global schema grow
//! bottom-up from the 20 FTABLES sources, with heuristic matching scores,
//! "no counterpart" alerts, threshold-driven escalation, and an expert
//! panel answering escalated questions from ground truth.
//!
//! ```text
//! cargo run --release --example schema_evolution
//! ```

use datatamer::corpus::ftables::{self, FtablesConfig};
use datatamer::corpus::truth::GroundTruth;
use datatamer::core::ExpertPanelResolver;
use datatamer::model::SourceSchema;
use datatamer::schema::{
    CompositeMatcher, Decision, IntegrationConfig, SchemaIntegrator,
};

fn main() {
    let sources = ftables::generate(&FtablesConfig::default(), 0);
    let gt = GroundTruth::from_sources(&sources);
    let mut integrator = SchemaIntegrator::new(
        CompositeMatcher::broadway(),
        IntegrationConfig::default(),
    );

    // --- Figure 2: the first source seeds an empty global schema. ---
    let first = &sources[0];
    let schema = SourceSchema::profile_records(first.id, &first.name, &first.records);
    println!("== GLOBAL SCHEMA INITIALISATION (Fig 2) ==");
    println!("incoming source: {} ({} attributes)\n", first.name, schema.arity());
    let report = integrator.integrate(&schema);
    for s in &report.suggestions {
        if s.no_counterpart_alert {
            println!(
                "  {:<18} ! no counterpart in the global schema yet -> [add] / ignore",
                s.source_attr
            );
        }
    }
    println!(
        "\nglobal schema now: {:?}\n",
        integrator.global().attribute_names()
    );

    // Grow the schema with the next 9 sources quietly.
    for s in &sources[1..10] {
        let schema = SourceSchema::profile_records(s.id, &s.name, &s.records);
        integrator.integrate(&schema);
    }
    println!(
        "after 10 sources the global schema has {} attributes: {:?}\n",
        integrator.global().len(),
        integrator.global().attribute_names()
    );

    // --- Figure 3: match one more source, showing candidates + scores. ---
    let incoming = &sources[10];
    let schema = SourceSchema::profile_records(incoming.id, &incoming.name, &incoming.records);
    println!("== SCHEMA MATCHING WITH HEURISTIC SCORES (Fig 3) ==");
    println!("incoming source: {}\n", incoming.name);
    println!("{:<18} | suggested target (score) | runner-up (score)", "source attribute");
    println!("{:-<18}-+--------------------------+------------------", "");
    for (attr, candidates) in integrator.dry_run(&schema) {
        let fmt = |i: usize| {
            candidates
                .get(i)
                .map(|c| format!("{} ({:.2})", c.name, c.score))
                .unwrap_or_else(|| "-".into())
        };
        println!("{attr:<18} | {:<24} | {}", fmt(0), fmt(1));
    }

    // Integrate it with a 3-expert panel answering from ground truth.
    let name_of = |attr_name: &str| attr_name.to_owned();
    let truth_source = incoming.name.clone();
    let mapping = gt.attr_mappings.clone();
    // Global attribute names in this run use clean canonical spellings, so
    // the truth check compares canonicals directly.
    let truth = Box::new(move |attr: &str, candidate: &str| {
        let Some(truth_canon) = mapping.get(&(truth_source.clone(), attr.to_owned())) else {
            return false;
        };
        candidate.to_uppercase() == *truth_canon || {
            // Candidate names are source spellings; map via their own truth.
            mapping
                .iter()
                .any(|((_, a), c)| a == &name_of(candidate) && c == truth_canon)
        }
    });
    let mut panel = ExpertPanelResolver::homogeneous(3, 0.9, 1.5, 7, truth);
    let report = integrator.integrate_with(&schema, &mut panel);
    println!(
        "\nintegration outcome: {} auto-accepted, {} expert-resolved, {} new attributes",
        report.auto_accepted(),
        report.human_interventions(),
        report.new_attributes()
    );
    let stats = panel.stats();
    println!(
        "expert panel: {} escalations, {} answers collected, total cost {:.1} units",
        stats.escalations, stats.answers, stats.cost
    );
    for s in &report.suggestions {
        if let Decision::ExpertAccept { score, .. } = s.decision {
            println!("  expert confirmed: {} ({score:.2})", s.source_attr);
        }
    }
}
