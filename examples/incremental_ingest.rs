//! Incremental consolidation end to end: seed a corpus through the staged
//! pipeline, ingest two delta batches through `DataTamer::consolidate_delta`
//! (printing each `DeltaReport`), then prove the resident-state shortcut
//! changed nothing — the fused output byte-matches a from-scratch rebuild
//! over the concatenated corpus. Run with `RAYON_NUM_THREADS=1` vs `=16`
//! to see the output is thread-count independent too.
use datatamer::core::fusion::{BlockedErConfig, GroupingStrategy, CHEAPEST_PRICE, SHOW_NAME};
use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
use datatamer::model::{Record, RecordId, SourceId, Value};

fn show(id: u64, name: &str, price: &str) -> Record {
    Record::from_pairs(
        SourceId(0),
        RecordId(id),
        vec![(SHOW_NAME, Value::from(name)), (CHEAPEST_PRICE, Value::from(price))],
    )
}

fn config() -> DataTamerConfig {
    DataTamerConfig {
        grouping: GroupingStrategy::BlockedEr(BlockedErConfig {
            incremental: true,
            ..Default::default()
        }),
        ..Default::default()
    }
}

fn fp(dt: &DataTamer) -> String {
    dt.context()
        .fused
        .iter()
        .map(|f| format!("{}|{}|{:?}|{:?}\n", f.key, f.member_count, f.confidence, f.record))
        .collect()
}

fn main() {
    let corpus: Vec<Record> =
        (0..200).map(|i| show(i, &format!("Unique{i} Show{i}"), "$10")).collect();
    let d1: Vec<Record> = (0..10).map(|i| show(300 + i, &format!("Unique{i} Show{i}"), "$10")).collect();
    let d2: Vec<Record> = vec![show(400, "Brand New Production", "$55")];

    let mut dt = DataTamer::new(config());
    dt.run(PipelinePlan::new().structured("s1", &corpus)).unwrap();
    let r1 = dt.consolidate_delta(&d1).unwrap();
    let r2 = dt.consolidate_delta(&d2).unwrap();
    println!("delta1: {r1:?}");
    println!("delta2: {r2:?}");

    let mut all = corpus.clone();
    all.extend(d1.iter().cloned());
    all.extend(d2.iter().cloned());
    let mut full = DataTamer::new(config());
    full.run(PipelinePlan::new().structured("s1", &all)).unwrap();

    assert_eq!(fp(&dt), fp(&full), "incremental diverged from full rebuild");
    assert_eq!(r1.dirty_clusters, 10);
    assert_eq!(r2.total_records, 211);
    println!("EQUIVALENCE OK ({} fused entities)", dt.context().fused.len());
}
