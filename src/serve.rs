//! Facade glue between the pipeline and the query/serving subsystem:
//! one [`ServeSession`] owns a running [`QueryServer`] plus the
//! per-collection [`CollectionView`]s it publishes from.
//!
//! The flow is: run the pipeline (batch or [`DataTamer::consolidate_delta`]),
//! then [`ServeSession::publish`] — which syncs the named view from the
//! pipeline context (using the delta path's dirty-cluster set for
//! incremental index maintenance), stamps the snapshot with the run's
//! `DeltaReport` and `StorageReport` counters, and atomically swaps it
//! into the server's shared registry. Readers hitting the HTTP routes in
//! between always see a complete snapshot — old or new, never torn.

use std::collections::BTreeMap;
use std::net::{SocketAddr, ToSocketAddrs};

use datatamer_core::stage::{stage_names, StageReport};
use datatamer_core::pipeline::GLOBAL_RECORDS_COLLECTION;
use datatamer_core::DataTamer;
use datatamer_query::http::{QueryServer, ServerConfig, SharedViews};
use datatamer_query::view::{CollectionView, IndexSpec};

/// A pipeline-facing handle on the serving subsystem.
pub struct ServeSession {
    views: SharedViews,
    server: QueryServer,
    collections: BTreeMap<String, CollectionView>,
}

impl ServeSession {
    /// Bind the HTTP front end (use `127.0.0.1:0` for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> std::io::Result<ServeSession> {
        let views = SharedViews::new();
        let server = QueryServer::bind(addr, views.clone(), cfg)?;
        Ok(ServeSession { views, server, collections: BTreeMap::new() })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The snapshot registry (shareable with extra readers).
    pub fn views(&self) -> &SharedViews {
        &self.views
    }

    /// Sync `name`'s view from the pipeline's current fused output and
    /// publish an immutable snapshot. The first publish (or a batch run)
    /// builds indexes from scratch; after `consolidate_delta`, only dirty
    /// clusters reindex. The snapshot carries `delta.*` / `storage.*`
    /// counters from the run's reports for the stats endpoint.
    pub fn publish(&mut self, name: &str, dt: &DataTamer, spec: IndexSpec) {
        let ctx = dt.context();
        let view = self
            .collections
            .entry(name.to_string())
            .or_insert_with(|| CollectionView::new(spec));
        view.sync(&ctx.fused, &ctx.fusion_groups, ctx.fused_changed.as_deref());

        let mut counters: Vec<(String, u64)> = Vec::new();
        if let Some(StageReport::EntityConsolidation { delta: Some(d), .. }) =
            ctx.report_of(stage_names::ENTITY_CONSOLIDATION)
        {
            counters.extend([
                ("delta.batch_records".to_string(), d.batch_records as u64),
                ("delta.total_records".to_string(), d.total_records as u64),
                ("delta.candidate_pairs".to_string(), d.candidate_pairs as u64),
                ("delta.scored_pairs".to_string(), d.scored_pairs as u64),
                ("delta.dirty_clusters".to_string(), d.dirty_clusters as u64),
                ("delta.reused_clusters".to_string(), d.reused_clusters as u64),
                ("delta.memo_hits".to_string(), d.memo_hits as u64),
                ("delta.memo_entries".to_string(), d.memo_entries as u64),
            ]);
        }
        if let Some(col) = dt.collection(GLOBAL_RECORDS_COLLECTION) {
            counters.extend(
                col.storage_report()
                    .counter_pairs()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v)),
            );
        }
        self.views.publish(name, view.snapshot(counters));
    }

    /// The mutable view behind a published collection, for inspection.
    pub fn view(&self, name: &str) -> Option<&CollectionView> {
        self.collections.get(name)
    }

    /// Shut the server down, joining its threads.
    pub fn stop(self) {
        self.server.stop();
    }
}
