//! # Data Tamer: text + structured data fusion at scale
//!
//! A from-scratch Rust reproduction of *"Text and Structured Data Fusion in
//! Data Tamer at Scale"* (Gubanov, Stonebraker, Bruckner — ICDE 2014).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`model`] | `datatamer-model` | values, documents, flattening, records, schema profiles |
//! | [`sim`] | `datatamer-sim` | string/set/numeric similarity measures |
//! | [`storage`] | `datatamer-storage` | sharded semi-structured storage engine (Tables I–II) |
//! | [`text`] | `datatamer-text` | the domain-specific parser (Figure 1's user-defined module) |
//! | [`corpus`] | `datatamer-corpus` | synthetic WEBINSTANCE / WEBENTITIES / FTABLES generators |
//! | [`ml`] | `datatamer-ml` | hand-rolled classifiers + 10-fold cross-validation (§IV) |
//! | [`schema`] | `datatamer-schema` | bottom-up schema integration (Figs 2–3) |
//! | [`entity`] | `datatamer-entity` | entity consolidation |
//! | [`clean`] | `datatamer-clean` | cleaning + transformations (EUR→USD) |
//! | [`expert`] | `datatamer-expert` | expert sourcing |
//! | [`core`] | `datatamer-core` | the Data Tamer pipeline, fusion, and demo queries |
//!
//! ## Quickstart
//!
//! ```
//! use datatamer::core::{DataTamer, DataTamerConfig};
//! use datatamer::corpus::{ftables, webtext};
//! use datatamer::text::DomainParser;
//!
//! // Generate the paper's datasets (synthetic; DESIGN.md §2).
//! let sources = ftables::generate(&ftables::FtablesConfig::default(), 0);
//! let corpus = webtext::WebTextCorpus::generate(&webtext::WebTextConfig {
//!     num_fragments: 50,
//!     ..Default::default()
//! });
//!
//! // Stand up Data Tamer, integrate the first structured source.
//! let mut dt = DataTamer::new(DataTamerConfig::default());
//! dt.register_structured(&sources[0].name, &sources[0].records);
//!
//! // Ingest web text through the domain parser.
//! let parser = DomainParser::with_gazetteer(corpus.gazetteer.clone());
//! let frags: Vec<(&str, &str)> =
//!     corpus.fragments.iter().map(|f| (f.text.as_str(), f.kind.label())).collect();
//! dt.ingest_webtext(parser, frags);
//!
//! // Fuse and look up the paper's demo show.
//! let fused = dt.fuse();
//! let matilda = DataTamer::lookup(&fused, "Matilda").expect("Matilda fused");
//! assert!(matilda.record.get("TEXT_FEED").is_some());
//! ```

pub use datatamer_clean as clean;
pub use datatamer_core as core;
pub use datatamer_corpus as corpus;
pub use datatamer_entity as entity;
pub use datatamer_expert as expert;
pub use datatamer_ml as ml;
pub use datatamer_model as model;
pub use datatamer_schema as schema;
pub use datatamer_sim as sim;
pub use datatamer_storage as storage;
pub use datatamer_text as text;
