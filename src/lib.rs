//! # Data Tamer: text + structured data fusion at scale
//!
//! A from-scratch Rust reproduction of *"Text and Structured Data Fusion in
//! Data Tamer at Scale"* (Gubanov, Stonebraker, Bruckner — ICDE 2014).
//!
//! The system executes as a **staged pipeline**: every phase of Figure 1 —
//! ingest → schema integration → cleaning → entity consolidation → fusion
//! — is a `PipelineStage` (in [`core::stage`]) driven over a
//! `PipelineContext` that owns the sharded store, the source catalog, the
//! growing global schema, and each stage's report. Hot paths (record
//! mapping, per-source cleaning, batched shard inserts, pair-similarity
//! scoring, group merging, shard scans) are rayon-parallel with output
//! guaranteed identical at any thread count.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`model`] | `datatamer-model` | values, documents, flattening, records, schema profiles |
//! | [`sim`] | `datatamer-sim` | string/set/numeric similarity measures |
//! | [`storage`] | `datatamer-storage` | sharded storage engine: shard coordinator over pluggable memory/file backends, declarative routing, extents, indexes, batched inserts, parallel scans (Tables I–II) |
//! | [`text`] | `datatamer-text` | the domain-specific parser (Figure 1's user-defined module) |
//! | [`corpus`] | `datatamer-corpus` | synthetic WEBINSTANCE / WEBENTITIES / FTABLES generators |
//! | [`ml`] | `datatamer-ml` | hand-rolled classifiers + 10-fold cross-validation (§IV) |
//! | [`schema`] | `datatamer-schema` | bottom-up schema integration (Figs 2–3) |
//! | [`entity`] | `datatamer-entity` | entity consolidation: progressive blocking + prepared, rayon-parallel pair scoring |
//! | [`clean`] | `datatamer-clean` | cleaning + transformations (EUR→USD), parallel per source |
//! | [`expert`] | `datatamer-expert` | expert sourcing |
//! | [`core`] | `datatamer-core` | the staged pipeline, the fusion resolver registry, and demo queries |
//!
//! ## Quickstart — one staged run
//!
//! `DataTamer::run` executes the whole canonical stage list over a plan
//! and leaves every stage's report queryable on the context:
//!
//! ```
//! use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
//! use datatamer::core::stage::stage_names;
//! use datatamer::corpus::{ftables, webtext};
//! use datatamer::text::DomainParser;
//!
//! // Generate the paper's datasets (synthetic; DESIGN.md §2).
//! let sources = ftables::generate(&ftables::FtablesConfig::default(), 0);
//! let corpus = webtext::WebTextCorpus::generate(&webtext::WebTextConfig {
//!     num_fragments: 50,
//!     ..Default::default()
//! });
//!
//! // Plan: all structured sources + the web text, in one staged run.
//! let mut plan = PipelinePlan::new();
//! for s in &sources {
//!     plan = plan.structured(&s.name, &s.records);
//! }
//! let frags: Vec<(&str, &str)> =
//!     corpus.fragments.iter().map(|f| (f.text.as_str(), f.kind.label())).collect();
//! plan = plan.webtext(DomainParser::with_gazetteer(corpus.gazetteer.clone()), frags);
//!
//! let mut dt = DataTamer::new(DataTamerConfig::default());
//! let fused = dt.run(plan).expect("pipeline runs");
//!
//! // The paper's demo lookup, plus the stage log.
//! let matilda = DataTamer::lookup(fused, "Matilda").expect("Matilda fused");
//! assert!(matilda.record.get("TEXT_FEED").is_some());
//! assert_eq!(dt.context().run_count(stage_names::FUSION), 1);
//! ```
//!
//! Sources arriving over time use the incremental entry points
//! (`register_structured`, `ingest_webtext`), which run the same stage
//! machinery as a prefix and extend the same context.
//!
//! ## Sharded storage: coordinator, backends, routing
//!
//! Collections are sharded: a `ShardCoordinator` ([`storage::coordinator`])
//! owns one `ShardBackend` per shard and scatter/gathers batched inserts
//! and parallel scans across the rayon team. The backend is pluggable
//! ([`storage::BackendConfig`]): `Memory` keeps extents in process (the
//! default), `File` keeps only each shard's tail extent resident and
//! flushes full extents to one file each — out-of-core collections whose
//! resident memory is O(extent) per shard, reopenable from their
//! directory. Routing is declarative ([`storage::RoutingPolicy`]):
//! `RoundRobin` spreads load, `HashKey` co-locates records sharing a key
//! (blocking locality), `Range` partitions the key space. Both backends
//! and all three policies produce **byte-identical** scan and fusion
//! results for the same input at any thread count (pinned by proptest and
//! the pipeline equivalence suite); system-wide selection sits on
//! `DataTamerConfig::storage`, and each stage report carries a
//! `StorageReport` of per-shard doc/extent counts, backend kind, flush
//! traffic, decode-error counts, and extent-cache counters.
//!
//! ```
//! use datatamer::model::doc;
//! use datatamer::storage::{BackendConfig, Collection, CollectionConfig, RoutingPolicy};
//!
//! let dir = std::env::temp_dir().join(format!("dt_doctest_shards_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let config = CollectionConfig {
//!     extent_size: 8 * 1024,
//!     shards: 4,
//!     backend: BackendConfig::File { dir: dir.clone() },
//!     routing: RoutingPolicy::HashKey { attr: "show".into() },
//!     ..Default::default()
//! };
//!
//! let col = Collection::new("listings", config.clone()).unwrap();
//! let docs: Vec<_> = (0..60i64)
//!     .map(|i| doc! {"show" => format!("Show {}", i % 6), "seat" => i})
//!     .collect();
//! let ids = col.insert_many(&docs).unwrap();
//!
//! // Hash routing co-locates equal keys: seats of one show share a shard.
//! assert_eq!(ids[0].shard(), ids[6].shard());
//! // The coordinator reports the distribution per shard.
//! let report = col.storage_report();
//! assert_eq!(report.docs(), 60);
//! assert_eq!(report.routing, "hash_key");
//! assert!(report.shards.iter().all(|s| s.backend.name() == "file"));
//!
//! // Flush the resident tails and reopen the collection from disk.
//! col.sync().unwrap();
//! let reopened = Collection::new("listings", config).unwrap();
//! assert_eq!(reopened.len(), 60);
//! assert_eq!(reopened.get(ids[7]), Some(docs[7].clone()));
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! ### Out-of-core scans: the extent cache
//!
//! File-backed shards serve every read through an `ExtentCache`
//! ([`storage::cache`]): a byte-budget LRU of decoded extents, so repeated
//! stage passes (blocking, scoring, fusion) hit memory instead of
//! re-reading every extent file per scan. `CollectionConfig::
//! extent_cache_budget` (and system-wide, `StorageConfig::
//! extent_cache_budget` in [`core::config`]) sets the per-shard budget:
//! `None` is unbounded, `Some(0)` disables retention — byte-identical
//! output either way, only the IO changes. Parallel scans fan out one
//! rayon task per *(shard, extent)*, with cache hits resolved and pinned
//! sequentially before the fan-out, so scan output **and** the cache
//! counters on `StorageReport` are deterministic at any thread count:
//!
//! ```
//! use datatamer::model::doc;
//! use datatamer::storage::{BackendConfig, Collection, CollectionConfig};
//!
//! let dir = std::env::temp_dir().join(format!("dt_doctest_ooc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let col = Collection::new("events", CollectionConfig {
//!     extent_size: 4 * 1024,
//!     shards: 2,
//!     backend: BackendConfig::File { dir: dir.clone() },
//!     extent_cache_budget: None, // unbounded: scans warm the whole corpus
//!     ..Default::default()
//! }).unwrap();
//! let docs: Vec<_> = (0..200i64)
//!     .map(|i| doc! {"i" => i, "pad" => "x".repeat(64)})
//!     .collect();
//! col.insert_many(&docs).unwrap();
//! col.sync().unwrap(); // flush tails; all extents now live on disk
//!
//! // First scan loads from disk; the second is served from the cache.
//! for _ in 0..2 {
//!     let seen = col.parallel_scan(|_, d| d.get("i").cloned()).unwrap();
//!     assert_eq!(seen.len(), 200);
//! }
//! let cache = col.storage_report().cache_totals().expect("file shards are cached");
//! assert!(cache.hits > 0, "second scan hits the cache");
//! assert_eq!(cache.misses, cache.disk_loads, "every miss is one file read");
//! assert!(cache.occupancy_bytes > 0);
//! assert_eq!(col.storage_report().decode_errors(), 0);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! ## Fusion: grouping + per-attribute truth discovery
//!
//! Fusion is two-level. A `FusionPolicy` decides *grouping* — which records
//! describe the same entity — and a `ResolverRegistry` decides *truth*: it
//! routes each attribute's conflicting, provenance-tagged values (source
//! id, record id, cluster rank) to a `ValueResolver`. Built-ins cover
//! majority vote, iterative accu-style source-reliability weighting,
//! freshness (`LatestWins` over record provenance), multi-truth attributes
//! (every value above a support threshold survives, as an array), and the
//! classic order-sensitive merge policies. Routing is declarative
//! ([`core::fusion::RegistryConfig`]) — set it system-wide on
//! `DataTamerConfig::fusion_resolvers` or per run on a `PipelinePlan`:
//!
//! ```
//! use datatamer::core::fusion::{
//!     fuse_records_with, FusionPolicy, RegistryConfig, ResolverSpec,
//! };
//! use datatamer::model::{Record, RecordId, SourceId, Value};
//!
//! // Three sources disagree about one show's status and rating.
//! let records: Vec<Record> = [
//!     (0, "open", "PG"),
//!     (1, "open", "PG-13"),
//!     (2, "closed", "PG"),
//! ]
//! .iter()
//! .map(|&(i, status, rating)| {
//!     Record::from_pairs(
//!         SourceId(i),
//!         RecordId(u64::from(i)),
//!         vec![
//!             ("SHOW_NAME", Value::from("Pippin")),
//!             ("STATUS", Value::from(status)),
//!             ("RATING", Value::from(rating)),
//!         ],
//!     )
//! })
//! .collect();
//!
//! // STATUS majority-votes; RATING keeps every well-supported truth.
//! let registry = RegistryConfig::uniform(ResolverSpec::MajorityVote)
//!     .with("RATING", ResolverSpec::MultiTruth { min_support: 0.3 })
//!     .build();
//! let fused = fuse_records_with(
//!     &records,
//!     &FusionPolicy::Fuzzy { threshold: 0.88 },
//!     &registry,
//! );
//! assert_eq!(fused[0].record.get_text("STATUS").as_deref(), Some("open"));
//! assert_eq!(
//!     fused[0].record.get("RATING"),
//!     Some(&Value::Array(vec![Value::from("PG"), Value::from("PG-13")]))
//! );
//! ```
//!
//! ## Blocking at scale: progressive, never a recall cliff
//!
//! Comparing all `n²/2` record pairs is intractable at the paper's scale
//! (173M entities), so consolidation blocks first: token, Soundex,
//! sorted-neighbourhood, or MinHash-LSH candidate generation
//! ([`entity::blocking`]). Bucket strategies used to *truncate* giant
//! buckets (stopword-like keys) at [`entity::BUCKET_CAP`] members — every
//! duplicate past the cap was silently unreachable. The default is now
//! **progressive blocking** ([`entity::OversizeFallback::Progressive`]):
//! an oversized bucket keeps its in-cap quadratic expansion *and* sorts
//! the whole membership by the records' full key, sliding a window over
//! that order, so every record still gets candidates at
//! `O(cap² + bucket · window)` cost. Degradation is reported
//! (`BlockingOutcome::degraded_buckets`), never silent, and the candidate
//! set is always a superset of the old truncating cap's — recall can only
//! go up. Every strategy emits sorted, deduplicated `(i, j)` pairs with
//! `i < j`, byte-identical across runs and thread counts (the LSH band
//! tables are hash-seeded per process; their iteration order never leaks
//! into the output). The `blocking/*` bench group sweeps the strategies
//! across bucket-size distributions.
//!
//! ## Pair scoring: prepare once, score many
//!
//! Blocking hands the scorer *millions* of candidate pairs, and the same
//! record appears in many of them — so per-pair normalisation (text
//! rendering, money/decimal parsing, lowercasing, tokenising into a fresh
//! hash set) is the consolidation bottleneck. [`entity::PairScorer::prepare`]
//! hoists all of it into one pass: a [`entity::ScoringContext`] stores, per
//! record and per attribute, the interned attribute id, the parsed
//! numerics, the lowercased text, and the token set as a sorted,
//! deduplicated slice of globally interned `u32` token ids. Scoring a pair
//! is then allocation-free — Jaccard by sorted-slice merge
//! ([`sim::jaccard_sorted`]), attribute weights by indexed lookup — and
//! **bit-identical** to the naive [`entity::PairScorer::score`] oracle
//! (pinned by proptest), so determinism guarantees ride along unchanged:
//!
//! ```
//! use datatamer::entity::pairsim::{accepted_pairs_prepared, score_pairs_prepared};
//! use datatamer::entity::{PairScorer, RecordSimilarity};
//! use datatamer::model::{Record, RecordId, SourceId, Value};
//!
//! let records: Vec<Record> = [("Matilda", "$27"), ("matilda", "27 USD"), ("Wicked", "$99")]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &(name, price))| {
//!         Record::from_pairs(
//!             SourceId(0),
//!             RecordId(i as u64),
//!             vec![("name", Value::from(name)), ("price", Value::from(price))],
//!         )
//!     })
//!     .collect();
//!
//! // One normalisation pass over the records…
//! let scorer = PairScorer::Rules(RecordSimilarity::default());
//! let ctx = scorer.prepare(&records);
//! assert_eq!(ctx.stats().records, 3);
//!
//! // …then any number of candidate pairs scores against the shared context.
//! let pairs = [(0, 1), (0, 2), (1, 2)];
//! let scores = score_pairs_prepared(&ctx, &pairs);
//! assert!(scores[0] > 0.95, "case + currency-format damage still matches");
//! assert!(scores[1] < 0.6);
//! // Bit-identical to the naive per-pair oracle.
//! assert_eq!(scores[0].to_bits(), scorer.score(&records[0], &records[1]).to_bits());
//! // The accept filter is one fused parallel pass — no score vector.
//! assert_eq!(accepted_pairs_prepared(&ctx, &pairs, 0.75), vec![(0, 1)]);
//! ```
//!
//! How the staged pipeline *groups* records for fusion is itself
//! configurable through the [`core::fusion::GroupingStrategy`] seam — on
//! `DataTamerConfig::grouping` system-wide or per run on a
//! `PipelinePlan`. `CanonicalName` is the classic demo scan;
//! `BlockedEr` runs the full ER machinery (blocking → prepared,
//! rayon-parallel pair scoring → union-find clustering) inside the
//! consolidation stage — the scoring context is built once, before the
//! parallel fan-out — which consolidates fuzzy duplicates the name key
//! cannot reach:
//!
//! ```
//! use datatamer::core::fusion::{BlockedErConfig, GroupingStrategy};
//! use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
//! use datatamer::model::{Record, RecordId, SourceId, Value};
//!
//! // Word-order damage: Jaro-Winkler on the canonical names is far below
//! // any sane fuzzy threshold, so canonical-name grouping splits these —
//! // blocked ER's token-aware record similarity consolidates them.
//! let rows = vec![
//!     Record::from_pairs(
//!         SourceId(0),
//!         RecordId(0),
//!         vec![
//!             ("show_name", Value::from("Walking Dead")),
//!             ("cheapest_price", Value::from("$45")),
//!         ],
//!     ),
//!     Record::from_pairs(
//!         SourceId(0),
//!         RecordId(1),
//!         vec![
//!             ("show_name", Value::from("Dead Walking")),
//!             ("cheapest_price", Value::from("$45")),
//!         ],
//!     ),
//! ];
//! let mut dt = DataTamer::new(DataTamerConfig::default());
//! let plan = PipelinePlan::new()
//!     .structured("listings", &rows)
//!     .grouping(GroupingStrategy::BlockedEr(BlockedErConfig::default()));
//! let fused = dt.run(plan).expect("pipeline runs");
//! assert_eq!(fused.len(), 1, "one consolidated entity");
//! assert_eq!(fused[0].member_count, 2);
//! ```
//!
//! ## Incremental consolidation: ingest O(delta), not O(corpus)
//!
//! Re-running blocked ER from scratch for every arriving batch re-prepares
//! every record, re-blocks every bucket, and re-scores every candidate
//! pair — O(corpus) work for an O(delta) change.
//! [`core::DataTamer::consolidate_delta`] keeps the expensive state
//! *resident* instead ([`entity::IncrementalConsolidator`]): the scoring
//! context and blocking indices extend in place (token/attribute interning
//! is append-only, so features prepared before a growth step stay
//! bit-identical after it), only buckets the batch touched are probed —
//! new-vs-new and new-vs-old, never old-vs-old — every score lands in a
//! memo that stays valid forever, accepted pairs merge into a persistent
//! union-find with stable cluster ids, and fused entities re-resolve only
//! for clusters the batch dirtied. The correctness pin
//! (`tests/incremental_equivalence.rs`): **any** prefix + delta split
//! produces byte-identical fused output to a from-scratch run over the
//! concatenation, at any thread count. Each delta returns a
//! [`core::DeltaReport`] — probed buckets, scored vs memo-served pairs,
//! dirty vs reused clusters — and the same report is threaded into the
//! logged `EntityConsolidation` stage run:
//!
//! ```
//! use datatamer::core::fusion::{BlockedErConfig, GroupingStrategy};
//! use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
//! use datatamer::model::{Record, RecordId, SourceId, Value};
//!
//! fn show(id: u64, name: &str, price: &str) -> Record {
//!     Record::from_pairs(
//!         SourceId(0),
//!         RecordId(id),
//!         vec![("SHOW_NAME", Value::from(name)), ("CHEAPEST_PRICE", Value::from(price))],
//!     )
//! }
//!
//! // Consolidation runs through the resident-state incremental engine.
//! let mut dt = DataTamer::new(DataTamerConfig {
//!     grouping: GroupingStrategy::BlockedEr(BlockedErConfig {
//!         incremental: true,
//!         ..Default::default()
//!     }),
//!     ..Default::default()
//! });
//! let corpus: Vec<Record> =
//!     (0..40).map(|i| show(i, &format!("Unique{i} Show{i}"), "$10")).collect();
//! dt.run(PipelinePlan::new().structured("listings", &corpus)).expect("seed run");
//!
//! // A one-record delta: probes only the buckets it touches, dirties only
//! // the cluster it duplicates, reuses every other fused entity verbatim.
//! let delta = dt.consolidate_delta(&[show(100, "Unique7 Show7", "$10")]).expect("delta");
//! assert_eq!(delta.batch_records, 1);
//! assert_eq!(delta.total_records, 41);
//! assert_eq!(delta.dirty_clusters, 1);
//! assert_eq!(delta.reused_clusters, 39);
//! assert!(delta.reused_context_fraction > 0.97);
//! let merged = DataTamer::lookup(&dt.context().fused, "Unique7 Show7").expect("merged");
//! assert_eq!(merged.member_count, 2);
//! ```
//!
//! ### Bounded residency and restart
//!
//! The resident state above would otherwise grow without bound: every
//! score ever computed, every accepted window pair, every fused entity,
//! and a full second copy of every delta record. Three budgets cap it —
//! `BlockedErConfig::memo_budget` (score memo entries),
//! `BlockedErConfig::window_budget` (retractable accepted-window pairs),
//! and [`core::DataTamerConfig::fused_cache_budget`] (cached fused
//! entities) — and all three treat their store as a *pure cache*: an
//! evicted entry recomputes deterministically when next needed, so any
//! budget, including zero, preserves byte-identical fused output. Each
//! [`core::DeltaReport`] carries the occupancy and eviction counters.
//!
//! Durability comes from [`core::DeltaLogConfig`]: every accepted batch
//! appends to a checksummed write-ahead log
//! ([`storage::DeltaLog`]) *before* it consolidates, so a process kill at
//! any batch boundary loses nothing — a reopened system over the same
//! path replays the logged batches and converges on the same bytes. The
//! log compacts once replay would cross `compact_after_frames`, and a
//! failed append freezes the log (the error surfaces to the caller) while
//! the in-memory session falls back to resident replay records.
//!
//! ```
//! use datatamer::core::fusion::{BlockedErConfig, GroupingStrategy};
//! use datatamer::core::{DataTamer, DataTamerConfig, DeltaLogConfig, PipelinePlan};
//! use datatamer::model::{Record, RecordId, SourceId, Value};
//!
//! fn show(id: u64, name: &str) -> Record {
//!     Record::from_pairs(
//!         SourceId(0),
//!         RecordId(id),
//!         vec![("SHOW_NAME", Value::from(name)), ("CHEAPEST_PRICE", Value::from("$10"))],
//!     )
//! }
//!
//! let dir = std::env::temp_dir().join(format!("dt_doctest_log_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! std::fs::create_dir_all(&dir).unwrap();
//! let config = DataTamerConfig {
//!     grouping: GroupingStrategy::BlockedEr(BlockedErConfig {
//!         incremental: true,
//!         memo_budget: Some(64),   // score memo capped at 64 entries
//!         window_budget: Some(16), // accepted-window pairs capped at 16
//!         ..Default::default()
//!     }),
//!     fused_cache_budget: Some(32), // resident fused entities capped at 32
//!     delta_log: Some(DeltaLogConfig::at(dir.join("delta.log"))),
//!     ..Default::default()
//! };
//! let corpus: Vec<Record> =
//!     (0..40).map(|i| show(i, &format!("Unique{i} Show{i}"))).collect();
//!
//! // First life: seed, then land a delta batch — logged before it fuses.
//! {
//!     let mut dt = DataTamer::new(config.clone());
//!     dt.run(PipelinePlan::new().structured("listings", &corpus)).expect("seed");
//!     let delta = dt.consolidate_delta(&[show(100, "Unique7 Show7")]).expect("delta");
//!     assert!(delta.memo_entries <= 64 && delta.fused_cache_entries <= 32);
//! } // killed here — only the log survives
//!
//! // Second life: same log, same corpus seed; the batch replays and the
//! // fused output is byte-identical to never having crashed.
//! let mut dt = DataTamer::new(config);
//! dt.run(PipelinePlan::new().structured("listings", &corpus)).expect("reseed");
//! dt.consolidate_delta(&[]).expect("replay surfaces the logged batch");
//! let merged = DataTamer::lookup(&dt.context().fused, "Unique7 Show7").expect("merged");
//! assert_eq!(merged.member_count, 2, "the killed session's delta survived");
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! ## Query & serving
//!
//! Everything above ends in `dt.context().fused` — a `Vec<FusedEntity>`.
//! The [`query`] crate gives that vector a real read path: secondary
//! indexes (hash for equality, ordered for ranges) over any entity
//! attribute, a columnar projection for analytic scans, a typed
//! [`query::Query`] AST with a planner that picks index probe vs
//! columnar scan, and a hand-rolled HTTP/1.1 front end on
//! `std::net::TcpListener`. Two contracts hold throughout: every plan's
//! result is byte-identical to the naive full-scan oracle at any thread
//! count (proptest-pinned in `tests/query_oracle.rs`), and after
//! [`core::DataTamer::consolidate_delta`] the indexes are maintained
//! *incrementally* from the delta's dirty-cluster set — the
//! [`query::IndexMaintenance`] counters prove no full rebuild happened.
//!
//! The facade's [`serve`] module ties it together: bind a server, run
//! the pipeline, publish — concurrent readers see complete snapshots
//! only, before or after, never torn.
//!
//! ```
//! use datatamer::core::fusion::{BlockedErConfig, GroupingStrategy};
//! use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
//! use datatamer::model::{Record, RecordId, SourceId, Value};
//! use datatamer::query::prelude::*;
//! use datatamer::serve::ServeSession;
//! use std::io::{Read, Write};
//!
//! fn show(id: u64, name: &str, price: &str) -> Record {
//!     Record::from_pairs(
//!         SourceId(0),
//!         RecordId(id),
//!         vec![("SHOW_NAME", Value::from(name)), ("CHEAPEST_PRICE", Value::from(price))],
//!     )
//! }
//!
//! // Build: fuse a small corpus.
//! let mut dt = DataTamer::new(DataTamerConfig {
//!     grouping: GroupingStrategy::BlockedEr(BlockedErConfig::default()),
//!     ..Default::default()
//! });
//! let corpus: Vec<Record> =
//!     (0..30).map(|i| show(i, &format!("Unique{i} Show{i}"), "$10")).collect();
//! dt.run(PipelinePlan::new().structured("listings", &corpus)).expect("run");
//!
//! // Index + publish: hash on the key, range on member count.
//! let mut session = ServeSession::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
//! session.publish("shows", &dt, IndexSpec::default().ordered_on("_members"));
//!
//! // Query: planner result is byte-identical to the naive oracle.
//! let snap = session.views().get("shows").expect("published");
//! let q = Query::filtered(Predicate::Gte("_members".into(), Value::Int(1)))
//!     .aggregate(Aggregate::Count);
//! let run = snap.execute(&q);
//! assert_eq!(run.plan, PlanKind::OrderedProbe);
//! assert_eq!(run.result, execute_oracle(snap.entities(), &q));
//! assert_eq!(run.result, QueryResult::Count(30));
//!
//! // One HTTP round-trip against the live server.
//! let mut conn = std::net::TcpStream::connect(session.addr()).expect("connect");
//! conn.write_all(b"GET /collections/shows/query?agg=count HTTP/1.1\r\nHost: x\r\n\r\n")
//!     .expect("send");
//! let mut response = String::new();
//! conn.read_to_string(&mut response).expect("recv");
//! assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
//! assert!(response.ends_with("\"count\":30}"), "{response}");
//! session.stop();
//! ```
//!
//! ## Static analysis & invariants
//!
//! The contracts above — byte-identical fused output across thread
//! counts, backends, and incremental-vs-rebuild runs; storage that
//! returns `DtError` instead of panicking — are sampled by the runtime
//! equivalence suites but *enforced* statically by `dtlint`
//! (`crates/lint`), a zero-dependency analyzer run in CI with `--deny`:
//!
//! * **determinism** — iterating a `HashMap`/`HashSet` in an
//!   output-affecting crate is flagged unless the site sorts first or
//!   carries a reasoned waiver; `RandomState` reorders per process, so
//!   one unordered float accumulation breaks byte-equivalence in ways a
//!   sampled test may never catch. Wall-clock reads (`Instant::now`,
//!   `SystemTime::now`), raw `thread::spawn`, and environment reads in
//!   pipeline crates are flagged for the same reason.
//! * **panic-freedom** — `unwrap`/`expect`/`panic!`/`unreachable!` and
//!   literal indexing in `crates/storage` non-test code are flagged;
//!   storage fallibility is typed (`DtError`), not control flow.
//! * **unsafe audit** — `unsafe` is denied outside a `dtlint.toml`
//!   allowlist (currently empty: the workspace is 100% safe Rust).
//!
//! Waive a finding inline with
//! `// dtlint::allow(<rule>, reason = "…")` — the reason is mandatory
//! and a malformed waiver is itself a finding. `dtlint.toml` scopes the
//! rule families and holds path-level baselines; the
//! `workspace_is_lint_clean` test in `crates/lint` keeps the tree clean
//! even when CI is skipped. A second, independent net: `clippy.toml`
//! disallows the two clock constructors workspace-wide.

pub use datatamer_clean as clean;
pub use datatamer_core as core;
pub use datatamer_corpus as corpus;
pub use datatamer_entity as entity;
pub use datatamer_expert as expert;
pub use datatamer_ml as ml;
pub use datatamer_model as model;
pub use datatamer_query as query;
pub use datatamer_schema as schema;
pub use datatamer_sim as sim;
pub use datatamer_storage as storage;
pub use datatamer_text as text;

pub mod serve;
