//! The domain-specific parser: raw fragments → hierarchical documents.
//!
//! This is Figure 1's "user-defined module". It layers three extractors —
//! gazetteers, pattern scanners, and contextual heuristics — over a text
//! fragment and emits:
//!
//! * one hierarchical **instance document** (the WEBINSTANCE row): the
//!   fragment text plus its extracted entity array and scanned attributes;
//! * one flat **entity document** per mention (the WEBENTITIES rows).

use datatamer_model::{doc, Document, Value};

use crate::gazetteer::Gazetteer;
use crate::mention::{EntityType, Mention};
use crate::normalize::canonical_name;
use crate::scan::{scan_all, Span, SpanKind};
use crate::tokenize::{tokenize, Token};

/// Honorifics that mark the next capitalised run as a person.
const HONORIFICS: &[&str] = &["mr", "mrs", "ms", "dr", "prof", "sen", "rep"];
/// Company designators that mark the preceding capitalised run as a company.
const COMPANY_SUFFIXES: &[&str] = &["inc", "corp", "ltd", "llc", "co"];
/// Facility designators.
const FACILITY_SUFFIXES: &[&str] = &["theatre", "theater", "hall", "stadium", "arena", "center"];
/// Position titles.
const POSITIONS: &[&str] = &[
    "ceo", "cto", "cfo", "president", "director", "chairman", "producer", "manager",
    "actor", "actress", "playwright", "composer", "senator", "governor", "editor",
];
/// Speech verbs: a capitalised run right before one is probably a person.
const SPEECH_VERBS: &[&str] = &["said", "told", "announced", "stated", "added", "wrote", "argued"];

/// A fully parsed fragment.
#[derive(Debug, Clone)]
pub struct ParsedFragment {
    /// The raw fragment text.
    pub text: String,
    /// Resolved, non-overlapping entity mentions.
    pub mentions: Vec<Mention>,
    /// Scanned non-entity spans (money, dates, times, percents).
    pub spans: Vec<Span>,
}

impl ParsedFragment {
    /// Convert to the hierarchical WEBINSTANCE document.
    ///
    /// Shape: `{ fragment, chars, entities: [{type, name, canonical,
    /// start, end, confidence}...], amounts: [...], dates: [...],
    /// times: [...] }`.
    pub fn to_instance_doc(&self) -> Document {
        let entities: Vec<Value> = self
            .mentions
            .iter()
            .map(|m| {
                Value::Doc(doc! {
                    "type" => m.entity_type.name(),
                    "name" => m.text.clone(),
                    "canonical" => canonical_name(&m.text),
                    "start" => m.start,
                    "end" => m.end,
                    "confidence" => m.confidence
                })
            })
            .collect();
        let collect_kind = |kinds: &[SpanKind]| -> Vec<Value> {
            self.spans
                .iter()
                .filter(|s| kinds.contains(&s.kind))
                .map(|s| Value::Str(s.text.clone()))
                .collect()
        };
        let mut d = doc! {
            "fragment" => self.text.clone(),
            "chars" => self.text.len()
        };
        if !entities.is_empty() {
            d.set("entities", Value::Array(entities));
        }
        let amounts = collect_kind(&[SpanKind::Money, SpanKind::Gross]);
        if !amounts.is_empty() {
            d.set("amounts", Value::Array(amounts));
        }
        let dates = collect_kind(&[SpanKind::Date]);
        if !dates.is_empty() {
            d.set("dates", Value::Array(dates));
        }
        let times = collect_kind(&[SpanKind::Time]);
        if !times.is_empty() {
            d.set("times", Value::Array(times));
        }
        let percents = collect_kind(&[SpanKind::Percent]);
        if !percents.is_empty() {
            d.set("percents", Value::Array(percents));
        }
        d
    }

    /// Flat entity documents (WEBENTITIES rows), one per mention, each
    /// carrying a context window of the surrounding fragment.
    pub fn entity_docs(&self) -> Vec<Document> {
        self.mentions
            .iter()
            .map(|m| {
                let ctx_start = self.text[..m.start]
                    .char_indices()
                    .rev()
                    .nth(30)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let ctx_end = self.text[m.end..]
                    .char_indices()
                    .nth(30)
                    .map(|(i, _)| m.end + i)
                    .unwrap_or(self.text.len());
                doc! {
                    "type" => m.entity_type.name(),
                    "name" => m.text.clone(),
                    "canonical" => canonical_name(&m.text),
                    "confidence" => m.confidence,
                    "context" => self.text[ctx_start..ctx_end].to_owned()
                }
            })
            .collect()
    }
}

/// The domain-specific parser.
#[derive(Debug, Default, Clone)]
pub struct DomainParser {
    gazetteer: Gazetteer,
}

impl DomainParser {
    /// A parser with an empty gazetteer (heuristics + scanners only).
    pub fn new() -> Self {
        Self::default()
    }

    /// A parser seeded with a gazetteer.
    pub fn with_gazetteer(gazetteer: Gazetteer) -> Self {
        DomainParser { gazetteer }
    }

    /// Mutable access to the gazetteer for incremental seeding.
    pub fn gazetteer_mut(&mut self) -> &mut Gazetteer {
        &mut self.gazetteer
    }

    /// Parse one fragment.
    pub fn parse(&self, text: &str) -> ParsedFragment {
        let spans = scan_all(text);
        let mut mentions = self.gazetteer.find(text);

        // URLs from the scanner are entity mentions of type URL.
        for s in &spans {
            if s.kind == SpanKind::Url {
                mentions.push(Mention::new(EntityType::Url, &s.text, s.start, s.end, 0.99));
            }
        }
        // Quoted Title-Case runs not already covered: movie/show candidates.
        for s in &spans {
            if s.kind == SpanKind::QuotedTitle {
                let covered = mentions
                    .iter()
                    .any(|m| m.start < s.end && s.start < m.end);
                if !covered {
                    mentions.push(Mention::new(EntityType::Movie, &s.text, s.start, s.end, 0.6));
                }
            }
        }
        self.heuristic_mentions(text, &mut mentions);
        let mentions = resolve_overlaps(mentions);
        let spans = spans
            .into_iter()
            .filter(|s| !matches!(s.kind, SpanKind::Url | SpanKind::QuotedTitle))
            .collect();
        ParsedFragment { text: text.to_owned(), mentions, spans }
    }

    /// Contextual heuristics over capitalised token runs.
    fn heuristic_mentions(&self, text: &str, out: &mut Vec<Mention>) {
        let tokens: Vec<Token> = tokenize(text)
            .into_iter()
            .filter(|t| t.text.chars().any(char::is_alphanumeric))
            .collect();
        let lower: Vec<String> = tokens.iter().map(|t| t.text.to_lowercase()).collect();

        // Position titles are direct dictionary hits.
        for (i, t) in tokens.iter().enumerate() {
            if POSITIONS.contains(&lower[i].as_str()) {
                out.push(Mention::new(EntityType::Position, t.text, t.start, t.end, 0.8));
            }
        }

        // Capitalised runs (2+ letters, not sentence-initial-only heuristic:
        // we accept all runs and let context decide the type).
        let mut i = 0usize;
        while i < tokens.len() {
            if !run_starts_here(&tokens, i) {
                i += 1;
                continue;
            }
            let mut j = i;
            while j < tokens.len() && tokens[j].is_capitalized() && j - i < 4 {
                j += 1;
            }
            let run_len = j - i;
            let start = tokens[i].start;
            let end = tokens[j - 1].end;
            let surface = &text[start..end];

            // Company: run ending in (or followed by) a company designator,
            // e.g. "Recorded Future Inc" / "Recorded Future inc".
            let run_ends_in_suffix =
                run_len >= 2 && COMPANY_SUFFIXES.contains(&lower[j - 1].trim_end_matches('.'));
            let followed_by_suffix =
                j < tokens.len() && COMPANY_SUFFIXES.contains(&lower[j].trim_end_matches('.'));
            if run_ends_in_suffix {
                out.push(Mention::new(EntityType::Company, surface, start, end, 0.85));
                i = j;
                continue;
            }
            if followed_by_suffix {
                let end2 = tokens[j].end;
                out.push(Mention::new(
                    EntityType::Company,
                    &text[start..end2],
                    start,
                    end2,
                    0.85,
                ));
                i = j + 1;
                continue;
            }
            // Facility: run whose last token is a facility designator.
            if FACILITY_SUFFIXES.contains(&lower[j - 1].as_str()) && run_len >= 2 {
                out.push(Mention::new(EntityType::Facility, surface, start, end, 0.8));
                i = j;
                continue;
            }
            // Person: honorific before, or speech verb after, 2-3 token run.
            let honorific_before =
                i > 0 && HONORIFICS.contains(&lower[i - 1].trim_end_matches('.'));
            let speech_after = j < tokens.len() && SPEECH_VERBS.contains(&lower[j].as_str());
            if (honorific_before || speech_after) && (1..=3).contains(&run_len) {
                out.push(Mention::new(EntityType::Person, surface, start, end, 0.75));
                i = j;
                continue;
            }
            i = j.max(i + 1);
        }
    }
}

/// Whether a capitalised run may begin at token `i` — skip obviously
/// sentence-initial lone stopword-ish words ("The", "And").
fn run_starts_here(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is_capitalized() {
        return false;
    }
    let lower = tokens[i].text.to_lowercase();
    let next_cap = tokens.get(i + 1).is_some_and(|t| t.is_capitalized());
    // A lone capitalised stopword is not a run start unless followed by
    // another capitalised token ("The Walking Dead").
    !crate::normalize::is_stopword(&lower) || next_cap
}

/// Drop overlapping mentions: higher confidence wins, then longer span.
fn resolve_overlaps(mut mentions: Vec<Mention>) -> Vec<Mention> {
    mentions.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (b.end - b.start).cmp(&(a.end - a.start)))
            .then_with(|| a.start.cmp(&b.start))
    });
    let mut kept: Vec<Mention> = Vec::new();
    for m in mentions {
        if !kept.iter().any(|k| k.overlaps(&m)) {
            kept.push(m);
        }
    }
    kept.sort_by_key(|m| (m.start, m.end));
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> DomainParser {
        let mut g = Gazetteer::new();
        g.add("Matilda", EntityType::Movie, 0.95);
        g.add("London", EntityType::City, 0.9);
        g.add("Broadway", EntityType::GeoEntity, 0.85);
        DomainParser::with_gazetteer(g)
    }

    #[test]
    fn gazetteer_mentions_found() {
        let p = parser();
        let f = p.parse("Matilda an award-winning import from London");
        let types: Vec<EntityType> = f.mentions.iter().map(|m| m.entity_type).collect();
        assert_eq!(types, vec![EntityType::Movie, EntityType::City]);
    }

    #[test]
    fn urls_become_url_entities() {
        let p = parser();
        let f = p.parse("see http://playbill.com/matilda for tickets");
        assert!(f
            .mentions
            .iter()
            .any(|m| m.entity_type == EntityType::Url && m.text.contains("playbill")));
    }

    #[test]
    fn quoted_titles_become_movie_candidates() {
        let p = parser();
        let f = p.parse("Fans discuss \"The Wolverine\" endlessly");
        let movie = f.mentions.iter().find(|m| m.entity_type == EntityType::Movie).unwrap();
        assert_eq!(movie.text, "The Wolverine");
        assert!(movie.confidence < 0.9, "non-gazetteer title is less confident");
    }

    #[test]
    fn gazetteer_beats_quoted_candidate_on_overlap() {
        let p = parser();
        let f = p.parse("Critics love \"Matilda\" this season");
        let movies: Vec<&Mention> =
            f.mentions.iter().filter(|m| m.entity_type == EntityType::Movie).collect();
        assert_eq!(movies.len(), 1);
        assert!(movies[0].confidence > 0.9, "gazetteer hit must win overlap");
    }

    #[test]
    fn person_heuristics() {
        let p = parser();
        let f = p.parse("Mr. Lloyd Webber said the production was ready");
        assert!(f
            .mentions
            .iter()
            .any(|m| m.entity_type == EntityType::Person && m.text.contains("Lloyd")));
        let f = p.parse("Thomas Schumacher announced a new tour");
        assert!(f
            .mentions
            .iter()
            .any(|m| m.entity_type == EntityType::Person && m.text == "Thomas Schumacher"));
    }

    #[test]
    fn company_and_facility_heuristics() {
        let p = parser();
        let f = p.parse("Recorded Future Inc aggregates the web");
        assert!(f
            .mentions
            .iter()
            .any(|m| m.entity_type == EntityType::Company && m.text.contains("Recorded Future")));
        let f = p.parse("playing at the Shubert Theatre nightly");
        assert!(f
            .mentions
            .iter()
            .any(|m| m.entity_type == EntityType::Facility && m.text == "Shubert Theatre"));
    }

    #[test]
    fn position_titles() {
        let p = parser();
        let f = p.parse("the producer and the director were thrilled");
        let positions: Vec<&str> = f
            .mentions
            .iter()
            .filter(|m| m.entity_type == EntityType::Position)
            .map(|m| m.text.as_str())
            .collect();
        assert_eq!(positions, vec!["producer", "director"]);
    }

    #[test]
    fn instance_doc_shape() {
        let p = parser();
        let f = p.parse("\"Matilda\" grossed 960,998, or 93 percent, opening 3/4/2013");
        let d = f.to_instance_doc();
        assert!(d.get("fragment").is_some());
        assert!(d.get("entities").is_some());
        let amounts = d.get("amounts").unwrap().as_array().unwrap();
        assert_eq!(amounts[0], Value::from("960,998"));
        let dates = d.get("dates").unwrap().as_array().unwrap();
        assert_eq!(dates[0], Value::from("3/4/2013"));
        let pcts = d.get("percents").unwrap().as_array().unwrap();
        assert_eq!(pcts[0], Value::from("93 percent"));
        // Entity subdocument carries canonical name.
        let ents = d.get("entities").unwrap().as_array().unwrap();
        let first = ents[0].as_doc().unwrap();
        assert_eq!(first.get("canonical"), Some(&Value::from("matilda")));
    }

    #[test]
    fn entity_docs_carry_context() {
        let p = parser();
        let f = p.parse("And Matilda an award-winning import from London grossed well");
        let docs = f.entity_docs();
        assert_eq!(docs.len(), 2);
        let matilda = &docs[0];
        assert_eq!(matilda.get("type"), Some(&Value::from("Movie")));
        let ctx = matilda.get("context").unwrap().as_str().unwrap();
        assert!(ctx.contains("Matilda"));
        assert!(ctx.len() <= f.text.len());
    }

    #[test]
    fn no_overlapping_mentions_survive() {
        let p = parser();
        let f = p.parse("\"The Walking Dead\" and Matilda and \"Matilda\" again on Broadway");
        for (i, a) in f.mentions.iter().enumerate() {
            for b in &f.mentions[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn empty_fragment_parses_empty() {
        let p = parser();
        let f = p.parse("");
        assert!(f.mentions.is_empty());
        assert!(f.spans.is_empty());
        let d = f.to_instance_doc();
        assert_eq!(d.get("chars"), Some(&Value::Int(0)));
    }
}
