//! Multi-word gazetteer matching.
//!
//! A gazetteer maps known phrases to an entity type. Matching is greedy
//! longest-first over the token stream, case-insensitive, and returns byte
//! spans. The corpus generator seeds gazetteers with its name pools, so the
//! parser's dictionaries play the role of Recorded Future's curated ones.

use std::collections::HashMap;

use crate::mention::{EntityType, Mention};
use crate::tokenize::{tokenize, Token};

/// A phrase dictionary for one or more entity types.
#[derive(Debug, Default, Clone)]
pub struct Gazetteer {
    /// first lowercase token -> candidate phrases sharing that first token,
    /// each as (lowercase token sequence, type, confidence).
    by_first: HashMap<String, Vec<(Vec<String>, EntityType, f64)>>,
    len: usize,
}

impl Gazetteer {
    /// Create an empty gazetteer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of phrases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no phrases are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add a phrase with a type and confidence.
    pub fn add(&mut self, phrase: &str, entity_type: EntityType, confidence: f64) {
        let toks: Vec<String> = tokenize(phrase)
            .iter()
            .filter(|t| t.text.chars().any(char::is_alphanumeric))
            .map(|t| t.text.to_lowercase())
            .collect();
        if toks.is_empty() {
            return;
        }
        let first = toks[0].clone();
        let bucket = self.by_first.entry(first).or_default();
        // Avoid duplicate phrases for the same type.
        if bucket.iter().any(|(p, t, _)| *p == toks && *t == entity_type) {
            return;
        }
        bucket.push((toks, entity_type, confidence));
        // Longest phrases first so greedy matching prefers them.
        bucket.sort_by_key(|(p, _, _)| std::cmp::Reverse(p.len()));
        self.len += 1;
    }

    /// Bulk-add phrases of one type.
    pub fn add_all<S: AsRef<str>>(&mut self, phrases: &[S], entity_type: EntityType, confidence: f64) {
        for p in phrases {
            self.add(p.as_ref(), entity_type, confidence);
        }
    }

    /// Find all gazetteer mentions in `text` (greedy, non-overlapping,
    /// longest-match-first at each position).
    pub fn find(&self, text: &str) -> Vec<Mention> {
        let tokens: Vec<Token> = tokenize(text)
            .into_iter()
            .filter(|t| t.text.chars().any(char::is_alphanumeric))
            .collect();
        let lowered: Vec<String> = tokens.iter().map(|t| t.text.to_lowercase()).collect();
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            let mut advanced = false;
            if let Some(bucket) = self.by_first.get(&lowered[i]) {
                for (phrase, ty, conf) in bucket {
                    if i + phrase.len() <= tokens.len()
                        && lowered[i..i + phrase.len()] == phrase[..]
                    {
                        let start = tokens[i].start;
                        let end = tokens[i + phrase.len() - 1].end;
                        out.push(Mention::new(*ty, &text[start..end], start, end, *conf));
                        i += phrase.len();
                        advanced = true;
                        break;
                    }
                }
            }
            if !advanced {
                i += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.add("Matilda", EntityType::Movie, 0.95);
        g.add("The Walking Dead", EntityType::Movie, 0.95);
        g.add("New York", EntityType::City, 0.9);
        g.add("New York Times", EntityType::Company, 0.9);
        g
    }

    #[test]
    fn single_and_multi_word_matches() {
        let g = gaz();
        let ms = g.find("Everyone watches The Walking Dead and Matilda in New York");
        let got: Vec<(&str, EntityType)> =
            ms.iter().map(|m| (m.text.as_str(), m.entity_type)).collect();
        assert_eq!(
            got,
            vec![
                ("The Walking Dead", EntityType::Movie),
                ("Matilda", EntityType::Movie),
                ("New York", EntityType::City),
            ]
        );
    }

    #[test]
    fn longest_match_wins() {
        let g = gaz();
        let ms = g.find("the New York Times reported");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].entity_type, EntityType::Company);
        assert_eq!(ms[0].text, "New York Times");
    }

    #[test]
    fn case_insensitive_but_preserves_surface() {
        let g = gaz();
        let ms = g.find("MATILDA was great");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].text, "MATILDA");
    }

    #[test]
    fn punctuation_between_tokens_matches() {
        let g = gaz();
        let ms = g.find("\"The Walking Dead\" airs");
        assert_eq!(ms.len(), 1, "{ms:?}");
    }

    #[test]
    fn spans_index_original_text() {
        let g = gaz();
        let text = "I saw Matilda twice";
        let ms = g.find(text);
        assert_eq!(&text[ms[0].start..ms[0].end], "Matilda");
    }

    #[test]
    fn duplicates_not_double_added() {
        let mut g = gaz();
        let before = g.len();
        g.add("Matilda", EntityType::Movie, 0.95);
        assert_eq!(g.len(), before);
        g.add("Matilda", EntityType::Person, 0.5);
        assert_eq!(g.len(), before + 1, "same phrase different type is distinct");
    }

    #[test]
    fn empty_phrase_ignored() {
        let mut g = Gazetteer::new();
        g.add("...", EntityType::Movie, 1.0);
        assert!(g.is_empty());
    }
}
