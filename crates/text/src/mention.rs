//! Typed entity mentions.

use std::fmt;

/// Entity types recognised by the domain parser.
///
/// This is exactly the type inventory of the paper's Table III (statistics
/// by entity type in WEBENTITIES).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityType {
    Person,
    OrgEntity,
    GeoEntity,
    Url,
    IndustryTerm,
    Position,
    Company,
    Product,
    Organization,
    Facility,
    City,
    MedicalCondition,
    Technology,
    Movie,
    ProvinceOrState,
}

impl EntityType {
    /// All types, in Table III's frequency order.
    pub const ALL: [EntityType; 15] = [
        EntityType::Person,
        EntityType::OrgEntity,
        EntityType::GeoEntity,
        EntityType::Url,
        EntityType::IndustryTerm,
        EntityType::Position,
        EntityType::Company,
        EntityType::Product,
        EntityType::Organization,
        EntityType::Facility,
        EntityType::City,
        EntityType::MedicalCondition,
        EntityType::Technology,
        EntityType::Movie,
        EntityType::ProvinceOrState,
    ];

    /// The type's name as Table III prints it.
    pub fn name(self) -> &'static str {
        match self {
            EntityType::Person => "Person",
            EntityType::OrgEntity => "OrgEntity",
            EntityType::GeoEntity => "GeoEntity",
            EntityType::Url => "URL",
            EntityType::IndustryTerm => "IndustryTerm",
            EntityType::Position => "Position",
            EntityType::Company => "Company",
            EntityType::Product => "Product",
            EntityType::Organization => "Organization",
            EntityType::Facility => "Facility",
            EntityType::City => "City",
            EntityType::MedicalCondition => "MedicalCondition",
            EntityType::Technology => "Technology",
            EntityType::Movie => "Movie",
            EntityType::ProvinceOrState => "ProvinceOrState",
        }
    }

    /// Parse from the Table III spelling.
    pub fn from_name(s: &str) -> Option<EntityType> {
        EntityType::ALL.into_iter().find(|t| t.name() == s)
    }

    /// The paper's Table III count for this type, used to calibrate the
    /// synthetic generator's type mix.
    pub fn paper_count(self) -> u64 {
        match self {
            EntityType::Person => 38_867_351,
            EntityType::OrgEntity => 33_529_169,
            EntityType::GeoEntity => 11_964_810,
            EntityType::Url => 11_194_592,
            EntityType::IndustryTerm => 9_101_781,
            EntityType::Position => 8_938_934,
            EntityType::Company => 8_846_692,
            EntityType::Product => 8_800_019,
            EntityType::Organization => 6_301_459,
            EntityType::Facility => 4_081_458,
            EntityType::City => 3_621_317,
            EntityType::MedicalCondition => 1_313_487,
            EntityType::Technology => 940_349,
            EntityType::Movie => 260_230,
            EntityType::ProvinceOrState => 223_243,
        }
    }
}

impl fmt::Display for EntityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One extracted entity mention.
#[derive(Debug, Clone, PartialEq)]
pub struct Mention {
    /// Entity type.
    pub entity_type: EntityType,
    /// Surface text as it appeared.
    pub text: String,
    /// Byte offset of the mention start in the fragment.
    pub start: usize,
    /// Byte offset one past the end.
    pub end: usize,
    /// Extraction confidence in `[0, 1]`.
    pub confidence: f64,
}

impl Mention {
    /// Create a mention.
    pub fn new(
        entity_type: EntityType,
        text: impl Into<String>,
        start: usize,
        end: usize,
        confidence: f64,
    ) -> Self {
        Mention { entity_type, text: text.into(), start, end, confidence }
    }

    /// True when two mentions overlap in span.
    pub fn overlaps(&self, other: &Mention) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Span length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span is empty (never produced by the parser).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for t in EntityType::ALL {
            assert_eq!(EntityType::from_name(t.name()), Some(t));
        }
        assert_eq!(EntityType::from_name("URL"), Some(EntityType::Url));
        assert_eq!(EntityType::from_name("nope"), None);
    }

    #[test]
    fn paper_counts_are_table_iii_ordered() {
        // Table III is sorted descending by count.
        let counts: Vec<u64> = EntityType::ALL.iter().map(|t| t.paper_count()).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(counts, sorted);
        assert_eq!(EntityType::Person.paper_count(), 38_867_351);
        assert_eq!(EntityType::ProvinceOrState.paper_count(), 223_243);
    }

    #[test]
    fn overlap_logic() {
        let a = Mention::new(EntityType::Movie, "Matilda", 0, 7, 1.0);
        let b = Mention::new(EntityType::Person, "Mat", 5, 8, 0.5);
        let c = Mention::new(EntityType::City, "NYC", 7, 10, 0.9);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert_eq!(a.len(), 7);
        assert!(!a.is_empty());
    }
}
