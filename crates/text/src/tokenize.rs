//! Word and sentence tokenisation with byte spans.

/// A token with its byte span in the original text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text (a slice of the input).
    pub text: &'a str,
    /// Byte offset of the token start.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

impl Token<'_> {
    /// True when the token starts with an uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// True when every alphabetic char is uppercase (e.g. acronyms).
    pub fn is_all_caps(&self) -> bool {
        let mut any = false;
        for c in self.text.chars() {
            if c.is_alphabetic() {
                if c.is_lowercase() {
                    return false;
                }
                any = true;
            }
        }
        any
    }

    /// True when the token is purely numeric (digits, commas, periods).
    pub fn is_numeric(&self) -> bool {
        !self.text.is_empty()
            && self.text.chars().all(|c| c.is_ascii_digit() || c == ',' || c == '.')
            && self.text.chars().any(|c| c.is_ascii_digit())
    }
}

/// Tokenise into word-level tokens. A token is a maximal run of
/// alphanumerics plus internal `'`, `-`, `.` , `,` when surrounded by
/// alphanumerics (keeps `O'Brien`, `W.`, `960,998`, `U.S.` together);
/// standalone punctuation marks (`"`, `,`, `.`, `$`, `€`, `%`) are their own
/// tokens so scanners can anchor on them.
pub fn tokenize(text: &str) -> Vec<Token<'_>> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut iter = text.char_indices().peekable();
    while let Some((start, c)) = iter.next() {
        if c.is_whitespace() {
            continue;
        }
        if c.is_alphanumeric() {
            // Extend through the word.
            let mut end = start + c.len_utf8();
            while let Some(&(i, nc)) = iter.peek() {
                if nc.is_alphanumeric() {
                    end = i + nc.len_utf8();
                    iter.next();
                } else if matches!(nc, '\'' | '-' | '.' | ',') {
                    // Internal punctuation: keep only when followed by an
                    // alphanumeric (lookahead two).
                    let next_next = text[i + nc.len_utf8()..].chars().next();
                    if next_next.is_some_and(|n| n.is_alphanumeric()) {
                        end = i + nc.len_utf8();
                        iter.next();
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            tokens.push(Token { text: &text[start..end], start, end });
        } else {
            // Single-char punctuation token.
            let end = start + c.len_utf8();
            tokens.push(Token { text: &text[start..end], start, end });
        }
        debug_assert!(start < bytes.len());
    }
    tokens
}

/// Split text into sentences on `.`, `!`, `?` followed by whitespace and an
/// uppercase letter (or end of input). Abbreviation-ish single-letter
/// periods (`W. 44th`) do not split.
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let mut i = 0;
    while i < chars.len() {
        let (pos, c) = chars[i];
        if matches!(c, '.' | '!' | '?') {
            // Do not split on "W." style initials: previous alnum run length 1.
            let prev_word_len = {
                let mut n = 0;
                let mut j = i;
                while j > 0 {
                    let (_, pc) = chars[j - 1];
                    if pc.is_alphanumeric() {
                        n += 1;
                        j -= 1;
                    } else {
                        break;
                    }
                }
                n
            };
            let next_ws = chars.get(i + 1).is_none_or(|(_, nc)| nc.is_whitespace());
            let upper_after = chars[i + 1..]
                .iter()
                .find(|(_, nc)| !nc.is_whitespace())
                .is_none_or(|(_, nc)| nc.is_uppercase() || nc.is_ascii_digit() || *nc == '"');
            if next_ws && upper_after && (c != '.' || prev_word_len != 1) {
                let end = pos + c.len_utf8();
                let s = text[start..end].trim();
                if !s.is_empty() {
                    out.push(s);
                }
                start = end;
            }
        }
        i += 1;
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts<'a>(ts: &'a [Token<'a>]) -> Vec<&'a str> {
        ts.iter().map(|t| t.text).collect()
    }

    #[test]
    fn words_and_punct() {
        let ts = tokenize("Matilda grossed $960,998.");
        assert_eq!(texts(&ts), vec!["Matilda", "grossed", "$", "960,998", "."]);
    }

    #[test]
    fn internal_punct_kept() {
        let ts = tokenize("O'Brien at W. 44th St between 7th and 8th");
        assert_eq!(
            texts(&ts),
            vec!["O'Brien", "at", "W", ".", "44th", "St", "between", "7th", "and", "8th"]
        );
        let ts = tokenize("U.S. economy");
        assert_eq!(texts(&ts), vec!["U.S", ".", "economy"]);
    }

    #[test]
    fn spans_are_correct() {
        let text = "Go Matilda!";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn token_predicates() {
        let ts = tokenize("NYC Matilda 960,998 inc");
        assert!(ts[0].is_all_caps());
        assert!(ts[0].is_capitalized());
        assert!(ts[1].is_capitalized());
        assert!(!ts[1].is_all_caps());
        assert!(ts[2].is_numeric());
        assert!(!ts[3].is_capitalized());
        assert!(!ts[2].is_all_caps());
    }

    #[test]
    fn unicode_tokens() {
        let ts = tokenize("café €27");
        assert_eq!(texts(&ts), vec!["café", "€", "27"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn sentence_splitting() {
        let text = "The show grossed well. Matilda is an import from London! Is it good?";
        let ss = sentences(text);
        assert_eq!(ss.len(), 3);
        assert!(ss[0].ends_with("well."));
        assert!(ss[1].starts_with("Matilda"));
    }

    #[test]
    fn initials_do_not_split_sentences() {
        let text = "Shubert 225 W. 44th St is the venue. Tickets from $27.";
        let ss = sentences(text);
        assert_eq!(ss.len(), 2, "{ss:?}");
    }

    #[test]
    fn lowercase_continuation_does_not_split() {
        let text = "It grossed 960,998. or 93 percent of the maximum";
        // '.' followed by lowercase: treated as continuation.
        let ss = sentences(text);
        assert_eq!(ss.len(), 1);
    }
}
