//! Hand-rolled pattern scanners over token streams.
//!
//! Each scanner walks the token stream produced by [`crate::tokenize`] and
//! emits spans: money amounts, percentages, dates, clock times, URLs, and
//! quoted titles. These power both entity extraction (URLs, titles) and the
//! instance-level attributes (grosses, prices, dates) the demo queries use.

use datatamer_model::infer;

use crate::tokenize::{tokenize, Token};

/// A scanned span with a classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// What the span is.
    pub kind: SpanKind,
    /// The matched text.
    pub text: String,
    /// Byte offset of the span start.
    pub start: usize,
    /// Byte offset one past the end.
    pub end: usize,
}

/// Classification of scanned spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// `$27`, `€19.99`, `960,998 dollars`, `grossed 960,998`.
    Money,
    /// `93%`, `93 percent`.
    Percent,
    /// `3/4/2013`, `March 4, 2013`.
    Date,
    /// `7pm`, `19:30`.
    Time,
    /// `http://...`, `www...`.
    Url,
    /// Text inside double quotes, Title Cased — show/movie titles.
    QuotedTitle,
    /// A large bare number in a money context (e.g. after "grossed").
    Gross,
}

/// Words that signal an adjacent bare number is a money amount.
const MONEY_CONTEXT: &[&str] = &["grossed", "gross", "earned", "made", "cost", "costs", "price", "priced"];

/// Run all scanners and return spans sorted by start offset.
pub fn scan_all(text: &str) -> Vec<Span> {
    let tokens = tokenize(text);
    let mut spans = Vec::new();
    scan_urls(text, &tokens, &mut spans);
    scan_quoted_titles(text, &mut spans);
    scan_money(text, &tokens, &mut spans);
    scan_percent(text, &tokens, &mut spans);
    scan_dates(text, &tokens, &mut spans);
    scan_times(&tokens, &mut spans);
    spans.sort_by_key(|s| (s.start, s.end));
    spans
}

fn scan_urls(_text: &str, tokens: &[Token], out: &mut Vec<Span>) {
    // URLs survive tokenisation largely intact because '.' and '/' between
    // alphanumerics are internal; reconstruct by scanning raw token text.
    for t in tokens {
        let lower = t.text.to_lowercase();
        if lower.starts_with("http") || lower.starts_with("www.") {
            // Tokenizer may have split at "://" — rejoin by slicing the raw
            // text forward until whitespace.
            continue;
        }
    }
    // Simpler and more robust: scan the raw text for scheme markers.
    let raw = _text;
    let mut search = 0usize;
    while search < raw.len() {
        let rest = &raw[search..];
        let rel = ["http://", "https://", "www."]
            .iter()
            .filter_map(|m| rest.find(m))
            .min();
        let Some(rel) = rel else { break };
        let start = search + rel;
        let end = raw[start..]
            .find(char::is_whitespace)
            .map(|i| start + i)
            .unwrap_or(raw.len());
        // Trim trailing punctuation.
        let mut end = end;
        while end > start {
            let last = raw[start..end].chars().next_back().unwrap();
            if matches!(last, '.' | ',' | ')' | '"' | '\'' | ';') {
                end -= last.len_utf8();
            } else {
                break;
            }
        }
        let candidate = &raw[start..end];
        if candidate.len() > 8 && candidate.contains('.') {
            out.push(Span {
                kind: SpanKind::Url,
                text: candidate.to_owned(),
                start,
                end,
            });
        }
        search = end.max(start + 1);
    }
}

fn scan_quoted_titles(text: &str, out: &mut Vec<Span>) {
    // Both straight and curly double quotes.
    let opens: &[char] = &['"', '\u{201c}'];
    let closes: &[char] = &['"', '\u{201d}'];
    let mut idx = 0usize;
    while idx < text.len() {
        let rest = &text[idx..];
        let Some(open_rel) = rest.find(opens) else { break };
        let open_abs = idx + open_rel;
        let open_char_len = text[open_abs..].chars().next().unwrap().len_utf8();
        let inner_start = open_abs + open_char_len;
        let Some(close_rel) = text[inner_start..].find(closes) else { break };
        let close_abs = inner_start + close_rel;
        let inner = &text[inner_start..close_abs];
        // A plausible title: 1..=8 words, at least one capitalised word,
        // no sentence punctuation inside.
        let words: Vec<&str> = inner.split_whitespace().collect();
        let ok = !words.is_empty()
            && words.len() <= 8
            && words.iter().any(|w| w.chars().next().is_some_and(char::is_uppercase))
            && !inner.contains(['.', ';', '!', '?']);
        if ok {
            out.push(Span {
                kind: SpanKind::QuotedTitle,
                text: inner.to_owned(),
                start: inner_start,
                end: close_abs,
            });
        }
        idx = close_abs + text[close_abs..].chars().next().unwrap().len_utf8();
    }
}

fn scan_money(text: &str, tokens: &[Token], out: &mut Vec<Span>) {
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // Symbol-prefixed: "$" "960,998" (tokenizer splits the symbol off).
        if matches!(t.text, "$" | "€" | "£" | "¥") {
            if let Some(next) = tokens.get(i + 1) {
                if next.is_numeric() {
                    out.push(Span {
                        kind: SpanKind::Money,
                        text: text[t.start..next.end].to_owned(),
                        start: t.start,
                        end: next.end,
                    });
                    i += 2;
                    continue;
                }
            }
        }
        // Suffix code: "27 USD" / "27 dollars" / "27 euros".
        if t.is_numeric() {
            if let Some(next) = tokens.get(i + 1) {
                let lower = next.text.to_lowercase();
                if matches!(lower.as_str(), "usd" | "eur" | "gbp" | "dollars" | "euros" | "pounds")
                {
                    out.push(Span {
                        kind: SpanKind::Money,
                        text: text[t.start..next.end].to_owned(),
                        start: t.start,
                        end: next.end,
                    });
                    i += 2;
                    continue;
                }
            }
            // Context-word gross: "grossed 960,998".
            if i > 0 {
                let prev = tokens[i - 1].text.to_lowercase();
                if MONEY_CONTEXT.contains(&prev.as_str())
                    && infer::parse_integer(t.text).is_some_and(|v| v >= 1000)
                {
                    out.push(Span {
                        kind: SpanKind::Gross,
                        text: t.text.to_owned(),
                        start: t.start,
                        end: t.end,
                    });
                }
            }
        }
        i += 1;
    }
}

fn scan_percent(text: &str, tokens: &[Token], out: &mut Vec<Span>) {
    for i in 0..tokens.len() {
        if !tokens[i].is_numeric() {
            continue;
        }
        if let Some(next) = tokens.get(i + 1) {
            let is_pct = next.text == "%" || next.text.eq_ignore_ascii_case("percent");
            if is_pct {
                out.push(Span {
                    kind: SpanKind::Percent,
                    text: text[tokens[i].start..next.end].to_owned(),
                    start: tokens[i].start,
                    end: next.end,
                });
            }
        }
    }
}

fn scan_dates(text: &str, tokens: &[Token], out: &mut Vec<Span>) {
    for (i, t) in tokens.iter().enumerate() {
        // Slash-numeric dates arrive as one token? '/' is not internal punct,
        // so "3/4/2013" tokenizes as 3 / 4 / 2013 — stitch a 5-token window.
        if t.is_numeric() && tokens.get(i + 1).map(|x| x.text) == Some("/") {
            if let (Some(b), Some(s2), Some(c)) =
                (tokens.get(i + 2), tokens.get(i + 3), tokens.get(i + 4))
            {
                if b.is_numeric() && s2.text == "/" && c.is_numeric() {
                    let candidate = &text[t.start..c.end];
                    if infer::parse_date(candidate).is_some() {
                        out.push(Span {
                            kind: SpanKind::Date,
                            text: candidate.to_owned(),
                            start: t.start,
                            end: c.end,
                        });
                    }
                }
            }
        }
        // Month-name dates: "March 4, 2013" => tokens [March][4][,?][2013].
        if t.is_capitalized() {
            let window_end = (i + 4).min(tokens.len());
            for j in (i + 2)..=window_end.saturating_sub(1) {
                let candidate = text[t.start..tokens[j].end].to_owned();
                if infer::parse_date(&candidate).is_some() {
                    out.push(Span {
                        kind: SpanKind::Date,
                        text: candidate,
                        start: t.start,
                        end: tokens[j].end,
                    });
                    break;
                }
            }
        }
    }
}

fn scan_times(tokens: &[Token], out: &mut Vec<Span>) {
    for t in tokens {
        let lower = t.text.to_lowercase();
        let looks_like_time = (lower.ends_with("am") || lower.ends_with("pm"))
            && lower.chars().next().is_some_and(|c| c.is_ascii_digit());
        if looks_like_time && infer::infer_str(&lower) == infer::LexicalType::Time {
            out.push(Span { kind: SpanKind::Time, text: t.text.to_owned(), start: t.start, end: t.end });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_of(text: &str) -> Vec<(SpanKind, String)> {
        scan_all(text).into_iter().map(|s| (s.kind, s.text)).collect()
    }

    #[test]
    fn paper_fragment_scans() {
        // The exact Table V text feed fragment.
        let text = "..which began previews on Tuesday, grossed 659,391, or...And Matilda \
                    an award-winning import from London, grossed 960,998, or 93 percent \
                    of the maximum.";
        let spans = kinds_of(text);
        assert!(spans.contains(&(SpanKind::Gross, "659,391".into())), "{spans:?}");
        assert!(spans.contains(&(SpanKind::Gross, "960,998".into())));
        assert!(spans.contains(&(SpanKind::Percent, "93 percent".into())));
    }

    #[test]
    fn dollar_prices() {
        let spans = kinds_of("Tickets from $27 at the box office");
        assert_eq!(spans, vec![(SpanKind::Money, "$27".into())]);
        let spans = kinds_of("raised 40 USD and 1,250 dollars");
        assert_eq!(
            spans,
            vec![
                (SpanKind::Money, "40 USD".into()),
                (SpanKind::Money, "1,250 dollars".into())
            ]
        );
    }

    #[test]
    fn quoted_titles() {
        let spans = kinds_of("Everyone discusses \"The Walking Dead\" and \"Matilda\" now");
        assert_eq!(
            spans,
            vec![
                (SpanKind::QuotedTitle, "The Walking Dead".into()),
                (SpanKind::QuotedTitle, "Matilda".into())
            ]
        );
    }

    #[test]
    fn quoted_junk_rejected() {
        assert!(kinds_of("he said \"this is a very long non title sentence that runs on. yes\"").is_empty());
        assert!(kinds_of("empty \"\" quotes").is_empty());
    }

    #[test]
    fn curly_quotes_work() {
        let spans = kinds_of("Watch \u{201c}Raging Bull\u{201d} tonight");
        assert_eq!(spans, vec![(SpanKind::QuotedTitle, "Raging Bull".into())]);
    }

    #[test]
    fn slash_dates() {
        let spans = kinds_of("previews began 3/4/2013 downtown");
        assert_eq!(spans, vec![(SpanKind::Date, "3/4/2013".into())]);
        assert!(kinds_of("score was 3/4").is_empty());
    }

    #[test]
    fn month_name_dates() {
        let spans = kinds_of("opening on March 4, 2013 at the Shubert");
        assert!(spans.contains(&(SpanKind::Date, "March 4, 2013".into())), "{spans:?}");
    }

    #[test]
    fn urls_extracted_and_trimmed() {
        let spans = kinds_of("read http://playbill.com/matilda, then www.broadway.org.");
        assert_eq!(
            spans,
            vec![
                (SpanKind::Url, "http://playbill.com/matilda".into()),
                (SpanKind::Url, "www.broadway.org".into())
            ]
        );
    }

    #[test]
    fn times_scanned() {
        let spans = kinds_of("Tues at 7pm Wed at 8pm");
        assert_eq!(
            spans,
            vec![(SpanKind::Time, "7pm".into()), (SpanKind::Time, "8pm".into())]
        );
    }

    #[test]
    fn spans_are_sorted_and_offsets_valid() {
        let text = "\"Matilda\" grossed 960,998 or 93% on 3/4/2013 per www.x.org site";
        let spans = scan_all(text);
        let mut last = 0;
        for s in &spans {
            assert!(s.start >= last || s.start < s.end, "sorted");
            assert_eq!(&text[s.start..s.end], s.text);
            last = s.start;
        }
        assert!(spans.len() >= 4);
    }
}
