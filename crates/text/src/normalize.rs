//! Text normalisation: case folding, stopwords, whitespace cleanup.

/// English stopwords relevant to web-text matching. Kept deliberately small:
/// aggressive stopword removal hurts title matching ("The Walking Dead").
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is",
    "it", "its", "of", "on", "or", "that", "the", "this", "to", "was", "were", "will", "with",
];

/// True when the (already lowercased) token is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

/// Lowercase and collapse internal whitespace runs to single spaces.
pub fn clean_whitespace(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Canonical form of an entity name for matching: lowercase, collapsed
/// whitespace, stripped of outer punctuation and a leading article.
pub fn canonical_name(name: &str) -> String {
    let cleaned = clean_whitespace(name);
    let trimmed = cleaned.trim_matches(|c: char| !c.is_alphanumeric());
    let lower = trimmed.to_lowercase();
    for article in ["the ", "a ", "an "] {
        if let Some(rest) = lower.strip_prefix(article) {
            if !rest.is_empty() {
                return rest.to_owned();
            }
        }
    }
    lower
}

/// Lowercased content tokens (stopwords removed) of a text.
pub fn content_tokens(text: &str) -> Vec<String> {
    crate::tokenize::tokenize(text)
        .iter()
        .filter(|t| t.text.chars().any(char::is_alphanumeric))
        .map(|t| t.text.to_lowercase())
        .filter(|t| !is_stopword(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn stopword_membership() {
        assert!(is_stopword("the"));
        assert!(is_stopword("with"));
        assert!(!is_stopword("matilda"));
        assert!(!is_stopword("The"), "caller must lowercase first");
    }

    #[test]
    fn whitespace_collapse() {
        assert_eq!(clean_whitespace("  a\t\tb \n c  "), "a b c");
        assert_eq!(clean_whitespace(""), "");
        assert_eq!(clean_whitespace("x"), "x");
    }

    #[test]
    fn canonical_names() {
        assert_eq!(canonical_name("The Walking Dead"), "walking dead");
        assert_eq!(canonical_name("\"Matilda\","), "matilda");
        assert_eq!(canonical_name("  THE  WOLVERINE "), "wolverine");
        assert_eq!(canonical_name("The"), "the", "bare article stays");
        assert_eq!(canonical_name("A Chorus Line"), "chorus line");
    }

    #[test]
    fn content_tokens_drop_stopwords_and_punct() {
        let toks = content_tokens("The Wolverine is an award-winning import from London.");
        assert_eq!(toks, vec!["wolverine", "award-winning", "import", "london"]);
    }
}
