//! Domain-specific text parser — the "user-defined module" of Figure 1.
//!
//! The paper's text pipeline relies on Recorded Future's proprietary
//! domain-specific parser to turn ~1 TB of raw web text into hierarchical
//! entity/instance data. This crate is that module, built from scratch:
//!
//! * [`tokenize`] — word/sentence tokenisation with byte spans.
//! * [`normalize`] — case folding, stopword filtering, whitespace cleanup.
//! * [`scan`] — hand-rolled pattern scanners (money, percentages, dates,
//!   times, URLs, quoted titles). No regex engine anywhere.
//! * [`gazetteer`] — multi-word dictionary matching per entity type.
//! * [`parser`] — the [`parser::DomainParser`]: combines gazetteers,
//!   scanners, and contextual heuristics to emit hierarchical instance and
//!   entity documents ready for ingestion and flattening.
//! * [`mention`] — typed entity mentions with spans and confidences.

pub mod gazetteer;
pub mod mention;
pub mod normalize;
pub mod parser;
pub mod scan;
pub mod tokenize;

pub use gazetteer::Gazetteer;
pub use mention::{EntityType, Mention};
pub use parser::{DomainParser, ParsedFragment};
