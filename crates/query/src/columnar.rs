//! Columnar projection of fused entities for analytic scans.
//!
//! Each attribute becomes a [`Column`]: a presence bitmap plus a typed
//! value vector. A column is typed (`Int`/`Float`/`Bool`/dictionary-encoded
//! `Str`) only when *every* present value shares that type; any mix —
//! including explicit `Null` values or arrays — falls back to a `Mixed`
//! vector of owned [`Value`]s so reconstruction is byte-exact. String
//! columns dictionary-encode through [`datatamer_sim::TokenInterner`]
//! with codes assigned in first-appearance (row) order, so the layout is
//! deterministic regardless of build parallelism: columns build
//! rayon-parallel *across attributes*, but each column scans its rows
//! sequentially.
//!
//! [`ColumnarRow`] adapts a row back into an
//! [`AttrSource`](crate::ast::AttrSource) so the same predicates run
//! against the columnar layout and against the entities themselves —
//! the oracle equivalence the proptests pin.

use datatamer_core::fusion::FusedEntity;
use datatamer_model::Value;
use datatamer_sim::{FnvBuildHasher, TokenInterner};
use rayon::prelude::*;
use std::collections::HashMap;

use crate::ast::{push_leaves, AttrSource, CONFIDENCE_ATTR, KEY_ATTR, MEMBERS_ATTR};

/// String dictionary: interner for encode, side table for decode.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    interner: TokenInterner,
    decode: Vec<String>,
}

impl StrDict {
    /// Intern `s`, returning its stable code.
    fn encode(&mut self, s: &str) -> u32 {
        let code = self.interner.intern_str(s);
        if code as usize == self.decode.len() {
            self.decode.push(s.to_string());
        }
        code
    }

    /// The string behind `code`.
    pub fn decode(&self, code: u32) -> Option<&str> {
        self.decode.get(code as usize).map(String::as_str)
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.decode.len()
    }

    /// True when no string has been interned.
    pub fn is_empty(&self) -> bool {
        self.decode.is_empty()
    }
}

/// Typed backing storage for one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// All present values are `Int`.
    Int(Vec<i64>),
    /// All present values are `Float`.
    Float(Vec<f64>),
    /// All present values are `Bool`.
    Bool(Vec<bool>),
    /// All present values are `Str`, dictionary-encoded.
    Str {
        /// Per-row dictionary code (meaningful only where present).
        codes: Vec<u32>,
        /// The dictionary.
        dict: StrDict,
    },
    /// Non-uniform values (mixed types, nulls, arrays, documents).
    Mixed(Vec<Value>),
}

/// One attribute's values across every row.
#[derive(Debug, Clone)]
pub struct Column {
    /// Attribute name.
    pub name: String,
    /// Presence bitmap, one bit per row (absent fields are 0; an explicit
    /// `Null` value is *present*).
    present: Vec<u64>,
    /// Typed values.
    pub data: ColumnData,
    /// Number of present rows.
    pub non_null: usize,
}

impl Column {
    /// True when the row carries a value (possibly `Null`).
    pub fn is_present(&self, row: usize) -> bool {
        self.present
            .get(row / 64)
            .is_some_and(|w| w & (1u64 << (row % 64)) != 0)
    }

    /// Reconstruct the row's value; `None` when the field is absent.
    pub fn value_at(&self, row: usize) -> Option<Value> {
        if !self.is_present(row) {
            return None;
        }
        Some(match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Str { codes, dict } => {
                Value::Str(dict.decode(codes[row]).unwrap_or_default().to_string())
            }
            ColumnData::Mixed(v) => v[row].clone(),
        })
    }
}

/// The raw cell an attribute resolves to on an entity — the single source
/// of truth the column builder and the row-source agree on.
fn cell(e: &FusedEntity, attr: &str) -> Option<Value> {
    match attr {
        KEY_ATTR => Some(Value::Str(e.key.clone())),
        MEMBERS_ATTR => Some(Value::Int(e.member_count as i64)),
        CONFIDENCE_ATTR => Some(match e.confidence {
            Some(c) => Value::Float(c),
            None => Value::Null,
        }),
        _ => e.record.get(attr).cloned(),
    }
}

/// A columnar snapshot of a fused-entity collection.
#[derive(Debug, Clone, Default)]
pub struct Columnar {
    rows: usize,
    columns: Vec<Column>,
    by_name: HashMap<String, u32, FnvBuildHasher>,
}

impl Columnar {
    /// Project `entities` into columns: the three pseudo-attributes first,
    /// then every record attribute in first-appearance order. Columns
    /// build in parallel; each is internally sequential, so the layout is
    /// identical at any thread count.
    pub fn build(entities: &[FusedEntity]) -> Columnar {
        let mut attrs: Vec<String> =
            vec![KEY_ATTR.to_string(), MEMBERS_ATTR.to_string(), CONFIDENCE_ATTR.to_string()];
        for e in entities {
            for (name, _) in e.record.iter() {
                if !attrs.iter().any(|a| a == name) {
                    attrs.push(name.to_string());
                }
            }
        }
        let columns: Vec<Column> = attrs
            .par_iter()
            .map(|attr| build_column(attr, entities))
            .collect();
        let mut by_name = HashMap::default();
        for (i, c) in columns.iter().enumerate() {
            by_name.insert(c.name.clone(), i as u32);
        }
        Columnar { rows: entities.len(), columns, by_name }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The columns, pseudo-attributes first then first-appearance order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Look up a column by attribute name.
    pub fn column(&self, attr: &str) -> Option<&Column> {
        self.by_name.get(attr).map(|&i| &self.columns[i as usize])
    }

    /// A row view usable as a predicate source.
    pub fn row(&self, row: usize) -> ColumnarRow<'_> {
        ColumnarRow { columnar: self, row }
    }
}

fn build_column(attr: &str, entities: &[FusedEntity]) -> Column {
    let mut present = vec![0u64; entities.len().div_ceil(64)];
    let mut cells: Vec<Option<Value>> = Vec::with_capacity(entities.len());
    let mut non_null = 0usize;
    for (row, e) in entities.iter().enumerate() {
        let c = cell(e, attr);
        if c.is_some() {
            present[row / 64] |= 1u64 << (row % 64);
            non_null += 1;
        }
        cells.push(c);
    }
    // Pick the narrowest layout every present value fits exactly.
    let mut uniform: Option<&'static str> = None;
    let mut mixed = false;
    for c in cells.iter().flatten() {
        let t = match c {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            _ => "mixed",
        };
        match uniform {
            None => uniform = Some(t),
            Some(u) if u == t && t != "mixed" => {}
            _ => {
                mixed = true;
                break;
            }
        }
    }
    let data = if mixed || uniform == Some("mixed") {
        ColumnData::Mixed(
            cells.into_iter().map(|c| c.unwrap_or(Value::Null)).collect(),
        )
    } else {
        match uniform {
            Some("int") => ColumnData::Int(
                cells.iter().map(|c| c.as_ref().and_then(Value::as_int).unwrap_or(0)).collect(),
            ),
            Some("float") => ColumnData::Float(
                cells
                    .iter()
                    .map(|c| match c {
                        Some(Value::Float(f)) => *f,
                        _ => 0.0,
                    })
                    .collect(),
            ),
            Some("bool") => ColumnData::Bool(
                cells.iter().map(|c| c.as_ref().and_then(Value::as_bool).unwrap_or(false)).collect(),
            ),
            Some("str") => {
                let mut dict = StrDict::default();
                let codes = cells
                    .iter()
                    .map(|c| match c {
                        Some(Value::Str(s)) => dict.encode(s),
                        _ => 0,
                    })
                    .collect();
                ColumnData::Str { codes, dict }
            }
            // No present values at all: an all-absent Mixed column.
            _ => ColumnData::Mixed(vec![Value::Null; entities.len()]),
        }
    };
    Column { name: attr.to_string(), present, data, non_null }
}

/// One row of a [`Columnar`] snapshot, as a predicate source.
pub struct ColumnarRow<'a> {
    columnar: &'a Columnar,
    row: usize,
}

impl AttrSource for ColumnarRow<'_> {
    fn attr_values(&self, attr: &str, out: &mut Vec<Value>) {
        if let Some(col) = self.columnar.column(attr) {
            if let Some(v) = col.value_at(self.row) {
                push_leaves(&v, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{Record, RecordId, SourceId};

    fn entity(key: &str, fields: Vec<(&str, Value)>) -> FusedEntity {
        FusedEntity {
            key: key.to_string(),
            record: Record::from_pairs(SourceId(0), RecordId(0), fields),
            member_count: 1,
            confidence: Some(0.5),
        }
    }

    #[test]
    fn typed_columns_round_trip() {
        let es = vec![
            entity("a", vec![("N", Value::Int(1)), ("S", Value::from("x"))]),
            entity("b", vec![("N", Value::Int(2)), ("S", Value::from("y"))]),
            entity("c", vec![("S", Value::from("x"))]),
        ];
        let col = Columnar::build(&es);
        assert_eq!(col.rows(), 3);
        let n = col.column("N").unwrap();
        assert!(matches!(n.data, ColumnData::Int(_)));
        assert_eq!(n.value_at(0), Some(Value::Int(1)));
        assert_eq!(n.value_at(2), None, "absent stays absent");
        let s = col.column("S").unwrap();
        assert!(matches!(s.data, ColumnData::Str { .. }));
        assert_eq!(s.value_at(2), Some(Value::from("x")));
        if let ColumnData::Str { dict, .. } = &s.data {
            assert_eq!(dict.len(), 2, "dictionary dedups");
        }
        assert_eq!(col.column(KEY_ATTR).unwrap().value_at(1), Some(Value::from("b")));
    }

    #[test]
    fn mixed_types_and_nulls_fall_back_exactly() {
        let es = vec![
            entity("a", vec![("M", Value::Int(1))]),
            entity("b", vec![("M", Value::Float(2.5))]),
            entity("c", vec![("M", Value::Null)]),
        ];
        let col = Columnar::build(&es);
        let m = col.column("M").unwrap();
        assert!(matches!(m.data, ColumnData::Mixed(_)));
        assert_eq!(m.value_at(0), Some(Value::Int(1)), "ints keep exact type");
        assert_eq!(m.value_at(2), Some(Value::Null), "explicit null is present");
        assert!(m.is_present(2));
    }

    #[test]
    fn row_source_matches_entity_source() {
        use crate::ast::Predicate;
        let es = vec![
            entity("a", vec![("TAGS", Value::Array(vec![Value::from("x"), Value::from("y")]))]),
            entity("b", vec![("TAGS", Value::from("z"))]),
        ];
        let col = Columnar::build(&es);
        let p = Predicate::Eq("TAGS".into(), "y".into());
        for (i, e) in es.iter().enumerate() {
            assert_eq!(p.matches(e), p.matches(&col.row(i)), "row {i}");
        }
    }
}
