//! A queryable view over a pipeline's fused output, kept in sync across
//! `consolidate_delta` batches.
//!
//! [`CollectionView`] owns the entities, their stable cluster ids, and the
//! secondary indexes. [`CollectionView::sync`] accepts the pipeline's
//! current `(fused, fusion_groups)` plus an optional per-group dirty
//! bitmap (`changed`): with a bitmap, only dirtied and vanished clusters
//! are reindexed — the common delta-ingest case — and untouched clusters
//! keep their index entries verbatim; without one, the view rebuilds.
//! Cluster id = smallest member record index of the group, which
//! `IncrementalConsolidator` keeps stable across deltas.
//!
//! [`CollectionView::snapshot`] clones the current state into an immutable
//! [`CollectionSnapshot`](crate::exec::CollectionSnapshot) (entities +
//! indexes + a freshly built columnar projection) that readers query
//! without locks while the view keeps ingesting.

use datatamer_core::fusion::{FusedEntity, FusionGroup};
use datatamer_sim::FnvBuildHasher;
use std::collections::HashMap;

use crate::exec::{CollectionSnapshot, SnapshotStats};
use crate::index::EntityIndexes;

/// Which attributes get which index flavour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Equality (hash) indexed attributes.
    pub hash: Vec<String>,
    /// Range (ordered) indexed attributes.
    pub ordered: Vec<String>,
}

impl Default for IndexSpec {
    /// Point lookups by entity key, nothing else.
    fn default() -> Self {
        IndexSpec { hash: vec![crate::ast::KEY_ATTR.to_string()], ordered: Vec::new() }
    }
}

impl IndexSpec {
    /// Add a hash-indexed attribute.
    pub fn hash_on(mut self, attr: impl Into<String>) -> Self {
        self.hash.push(attr.into());
        self
    }

    /// Add an ordered-indexed attribute.
    pub fn ordered_on(mut self, attr: impl Into<String>) -> Self {
        self.ordered.push(attr.into());
        self
    }
}

/// A mutable, incrementally maintained view over fused entities.
#[derive(Debug, Clone)]
pub struct CollectionView {
    spec: IndexSpec,
    entities: Vec<FusedEntity>,
    /// Stable cluster id per row (parallel to `entities`).
    cluster_ids: Vec<usize>,
    /// cluster id → row position; probed, never iterated.
    pos: HashMap<usize, u32, FnvBuildHasher>,
    indexes: EntityIndexes,
    revision: u64,
}

impl CollectionView {
    /// An empty view with the given index shape.
    pub fn new(spec: IndexSpec) -> Self {
        let indexes = EntityIndexes::new(spec.hash.clone(), spec.ordered.clone());
        CollectionView {
            spec,
            entities: Vec::new(),
            cluster_ids: Vec::new(),
            pos: HashMap::default(),
            indexes,
            revision: 0,
        }
    }

    /// Entities currently in the view, in pipeline group order.
    pub fn entities(&self) -> &[FusedEntity] {
        &self.entities
    }

    /// Monotonic sync counter.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The index shape.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// Index maintenance counters.
    pub fn maintenance(&self) -> &crate::index::IndexMaintenance {
        self.indexes.maintenance()
    }

    /// Bring the view up to date with the pipeline's fused output.
    ///
    /// `changed[i]` says group `i` was re-resolved since the last sync
    /// (the delta path's dirty set). `None` — or a bitmap whose length
    /// does not match `groups` — forces a full rebuild. Incremental sync
    /// removes vanished clusters, reindexes dirty or new ones, and counts
    /// the rest as reused without touching their entries.
    pub fn sync(
        &mut self,
        fused: &[FusedEntity],
        groups: &[FusionGroup],
        changed: Option<&[bool]>,
    ) {
        debug_assert_eq!(fused.len(), groups.len());
        let n = fused.len().min(groups.len());
        let cids: Vec<usize> =
            groups[..n].iter().map(|(_, members)| members.first().copied().unwrap_or(0)).collect();

        match changed {
            Some(dirty) if dirty.len() == n && self.revision > 0 => {
                self.indexes.maint_mut().delta_syncs += 1;
                // Drop clusters that no longer exist, scanning the *previous*
                // id vector (deterministic order; the pos map is never iterated).
                let mut live: Vec<bool> = vec![false; self.cluster_ids.len()];
                let mut new_pos: HashMap<usize, u32, FnvBuildHasher> = HashMap::default();
                for (row, &cid) in cids.iter().enumerate() {
                    new_pos.insert(cid, row as u32);
                }
                for (old_row, &cid) in self.cluster_ids.iter().enumerate() {
                    live[old_row] = new_pos.contains_key(&cid);
                }
                for (old_row, &cid) in self.cluster_ids.iter().enumerate() {
                    if !live[old_row] && self.indexes.remove_cluster(cid) {
                        self.indexes.maint_mut().clusters_removed += 1;
                    }
                }
                for (i, &cid) in cids.iter().enumerate() {
                    if dirty[i] || !self.indexes.contains_cluster(cid) {
                        self.indexes.insert_cluster(cid, &fused[i]);
                        self.indexes.maint_mut().clusters_reindexed += 1;
                    } else {
                        self.indexes.maint_mut().clusters_reused += 1;
                    }
                }
                self.pos = new_pos;
            }
            _ => {
                self.indexes.maint_mut().full_builds += 1;
                let pairs: Vec<(usize, &FusedEntity)> =
                    cids.iter().copied().zip(fused[..n].iter()).collect();
                self.indexes.rebuild(&pairs);
                let mut pos: HashMap<usize, u32, FnvBuildHasher> = HashMap::default();
                for (row, &cid) in cids.iter().enumerate() {
                    pos.insert(cid, row as u32);
                }
                self.pos = pos;
            }
        }

        self.entities = fused[..n].to_vec();
        self.cluster_ids = cids;
        self.revision += 1;
    }

    /// Clone the current state into an immutable snapshot with a freshly
    /// built columnar projection, tagged with `counters` (storage/delta
    /// numbers the serving layer wants on its stats endpoint).
    pub fn snapshot(&self, counters: Vec<(String, u64)>) -> CollectionSnapshot {
        let stats = SnapshotStats {
            entities: self.entities.len(),
            revision: self.revision,
            index: self.indexes.maintenance().clone(),
            counters,
        };
        CollectionSnapshot::assemble(
            self.entities.clone(),
            self.cluster_ids.clone(),
            self.pos.clone(),
            self.indexes.clone(),
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{Record, RecordId, SourceId, Value};

    fn entity(key: &str, price: i64) -> FusedEntity {
        FusedEntity {
            key: key.to_string(),
            record: Record::from_pairs(
                SourceId(0),
                RecordId(0),
                vec![("PRICE", Value::Int(price))],
            ),
            member_count: 1,
            confidence: None,
        }
    }

    fn group(name: &str, members: Vec<usize>) -> FusionGroup {
        (name.to_string(), members)
    }

    #[test]
    fn incremental_sync_reuses_clean_clusters() {
        let spec = IndexSpec::default().ordered_on("PRICE");
        let mut view = CollectionView::new(spec);
        let fused = vec![entity("a", 1), entity("b", 2)];
        let groups = vec![group("a", vec![0]), group("b", vec![1])];
        view.sync(&fused, &groups, None);
        assert_eq!(view.maintenance().full_builds, 1);

        // Delta: cluster 0 dirtied, cluster 1 untouched, cluster 2 new.
        let fused2 = vec![entity("a2", 9), entity("b", 2), entity("c", 3)];
        let groups2 = vec![group("a2", vec![0, 2]), group("b", vec![1]), group("c", vec![3])];
        view.sync(&fused2, &groups2, Some(&[true, false, true]));
        let m = view.maintenance();
        assert_eq!(m.full_builds, 1, "no rebuild on delta");
        assert_eq!(m.delta_syncs, 1);
        assert_eq!(m.clusters_reindexed, 2);
        assert_eq!(m.clusters_reused, 1);
        assert_eq!(
            view.snapshot(Vec::new()).indexes().hash_index("_key").unwrap().lookup(&Value::from("a2")),
            &[0],
            "dirty cluster reindexed under its stable id"
        );
        assert!(view
            .snapshot(Vec::new())
            .indexes()
            .hash_index("_key")
            .unwrap()
            .lookup(&Value::from("a"))
            .is_empty());
    }

    #[test]
    fn vanished_clusters_are_unindexed() {
        let mut view = CollectionView::new(IndexSpec::default());
        let fused = vec![entity("a", 1), entity("b", 2)];
        let groups = vec![group("a", vec![0]), group("b", vec![1])];
        view.sync(&fused, &groups, None);
        // "b" merges into cluster 0.
        let fused2 = vec![entity("ab", 1)];
        let groups2 = vec![group("ab", vec![0, 1])];
        view.sync(&fused2, &groups2, Some(&[true]));
        assert_eq!(view.maintenance().clusters_removed, 1);
        let snap = view.snapshot(Vec::new());
        assert!(snap.indexes().hash_index("_key").unwrap().lookup(&Value::from("b")).is_empty());
        assert_eq!(snap.indexes().hash_index("_key").unwrap().lookup(&Value::from("ab")), &[0]);
    }
}
