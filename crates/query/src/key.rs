//! Index-key wrapper giving [`Value`] the total equality/order/hash triple
//! the secondary indexes need.
//!
//! `Value` itself deliberately has no `Hash` impl and a non-total float
//! `PartialEq` (NaN ≠ NaN), which would make `HashMap`-backed index buckets
//! unsound. [`AttrKey`] closes that gap: equality and order come from
//! [`Value::total_cmp`] (IEEE total order for floats, cross-type rank
//! otherwise), and the hash is derived so that `a == b ⇒ hash(a) ==
//! hash(b)` — in particular `Int(3)` and `Float(3.0)` compare `Equal`
//! under `total_cmp`, so both hash through the same `f64` bit pattern.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

use datatamer_model::Value;

/// A [`Value`] usable as a hash- or tree-index key.
#[derive(Debug, Clone)]
pub struct AttrKey(pub Value);

impl AttrKey {
    /// The wrapped value.
    pub fn value(&self) -> &Value {
        &self.0
    }
}

impl PartialEq for AttrKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for AttrKey {}

impl PartialOrd for AttrKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for AttrKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for AttrKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_value(&self.0, state);
    }
}

/// Hash consistent with [`Value::total_cmp`]-equality: numerics hash their
/// `f64` total-order bit pattern (so `Int(3)` and `Float(3.0)` collide into
/// the same bucket, as required — ints beyond 2^53 may share a bucket with
/// a neighbouring float, which is a plain hash collision, not an equality
/// error).
fn hash_value<H: Hasher>(v: &Value, state: &mut H) {
    match v {
        Value::Null => state.write_u8(0),
        Value::Bool(b) => {
            state.write_u8(1);
            state.write_u8(u8::from(*b));
        }
        Value::Int(i) => {
            state.write_u8(2);
            state.write_u64((*i as f64).to_bits());
        }
        Value::Float(f) => {
            state.write_u8(2);
            state.write_u64(f.to_bits());
        }
        Value::Str(s) => {
            state.write_u8(3);
            state.write(s.as_bytes());
        }
        Value::Array(items) => {
            state.write_u8(4);
            state.write_usize(items.len());
            for item in items {
                hash_value(item, state);
            }
        }
        Value::Doc(d) => {
            state.write_u8(5);
            state.write_usize(d.len());
            for (k, inner) in d.iter() {
                state.write(k.as_bytes());
                hash_value(inner, state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn int_and_float_share_bucket() {
        let mut m: HashMap<AttrKey, u32> = HashMap::new();
        m.insert(AttrKey(Value::Int(3)), 1);
        assert_eq!(m.get(&AttrKey(Value::Float(3.0))), Some(&1));
        assert_eq!(m.get(&AttrKey(Value::Float(3.5))), None);
    }

    #[test]
    fn nan_equals_itself() {
        let a = AttrKey(Value::Float(f64::NAN));
        let b = AttrKey(Value::Float(f64::NAN));
        assert_eq!(a, b);
        let mut m: HashMap<AttrKey, u32> = HashMap::new();
        m.insert(a, 7);
        assert_eq!(m.get(&b), Some(&7));
    }

    #[test]
    fn order_matches_total_cmp() {
        let mut keys = vec![
            AttrKey(Value::from("b")),
            AttrKey(Value::Int(5)),
            AttrKey(Value::Null),
            AttrKey(Value::from("a")),
        ];
        keys.sort();
        let rendered: Vec<String> = keys.iter().map(|k| k.value().to_text()).collect();
        assert_eq!(rendered, vec!["null", "5", "a", "b"]);
    }
}
