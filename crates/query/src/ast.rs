//! The typed query AST: predicates, aggregates, and the [`Query`] struct.
//!
//! One predicate language serves every execution surface — index probes,
//! columnar scans, full entity scans, and the legacy document-store bridge
//! ([`crate::legacy`]) — so a query means the same thing no matter which
//! plan runs it. Equality and ordering are *canonical*: values compare by
//! [`Value::total_cmp`], so `Int(3)` matches `Eq(attr, Float(3.0))` and
//! NaN equals itself, exactly the semantics the index keys
//! ([`crate::key::AttrKey`]) use — an index probe can therefore never
//! return fewer rows than the predicate accepts. Ordering predicates only
//! match within a type family (numbers, strings, booleans), mirroring the
//! storage engine's filter semantics.

use datatamer_core::fusion::FusedEntity;
use datatamer_model::{Document, Value};
use std::cmp::Ordering;

/// Pseudo-attribute resolving to a fused entity's canonical key.
pub const KEY_ATTR: &str = "_key";
/// Pseudo-attribute resolving to a fused entity's member count.
pub const MEMBERS_ATTR: &str = "_members";
/// Pseudo-attribute resolving to a fused entity's resolution confidence.
pub const CONFIDENCE_ATTR: &str = "_confidence";

/// A boolean predicate over attribute values.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// Some value at the attribute is `total_cmp`-equal to the operand.
    Eq(String, Value),
    /// No value at the attribute is `total_cmp`-equal (missing matches).
    Ne(String, Value),
    /// Some same-family value compares strictly greater.
    Gt(String, Value),
    /// Some same-family value compares greater-or-equal.
    Gte(String, Value),
    /// Some same-family value compares strictly less.
    Lt(String, Value),
    /// Some same-family value compares less-or-equal.
    Lte(String, Value),
    /// Some value equals one of the listed operands.
    In(String, Vec<Value>),
    /// Some string value contains the needle, case-insensitively.
    Contains(String, String),
    /// The attribute resolves to at least one non-null value.
    Exists(String),
    /// Every sub-predicate holds.
    And(Vec<Predicate>),
    /// At least one sub-predicate holds.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

/// A source of attribute values: fused entities, documents, columnar rows.
///
/// `attr_values` pushes every value reachable at `attr` — array values
/// contribute each element (multikey), scalars contribute themselves.
pub trait AttrSource {
    /// Append the values at `attr` to `out` (cleared by the caller).
    fn attr_values(&self, attr: &str, out: &mut Vec<Value>);
}

/// Flatten one level of arrays into leaf values, matching the storage
/// engine's multikey semantics.
pub fn push_leaves(v: &Value, out: &mut Vec<Value>) {
    match v {
        Value::Array(items) => out.extend(items.iter().cloned()),
        other => out.push(other.clone()),
    }
}

impl AttrSource for FusedEntity {
    fn attr_values(&self, attr: &str, out: &mut Vec<Value>) {
        match attr {
            KEY_ATTR => out.push(Value::Str(self.key.clone())),
            MEMBERS_ATTR => out.push(Value::Int(self.member_count as i64)),
            CONFIDENCE_ATTR => out.push(match self.confidence {
                Some(c) => Value::Float(c),
                None => Value::Null,
            }),
            _ => {
                if let Some(v) = self.record.get(attr) {
                    push_leaves(v, out);
                }
            }
        }
    }
}

impl AttrSource for Document {
    /// Dotted-path, multikey resolution matching the storage engine's
    /// filter semantics: `a.b` descends nested documents, arrays are
    /// traversed element-wise (with numeric segments as positional
    /// indexes), and a terminal array contributes each element.
    fn attr_values(&self, attr: &str, out: &mut Vec<Value>) {
        fn walk(v: &Value, segs: &[&str], out: &mut Vec<Value>) {
            let Some((seg, rest)) = segs.split_first() else {
                push_leaves(v, out);
                return;
            };
            match v {
                Value::Doc(d) => {
                    if let Some(inner) = d.get(seg) {
                        walk(inner, rest, out);
                    }
                }
                Value::Array(items) => {
                    if let Ok(i) = seg.parse::<usize>() {
                        if let Some(item) = items.get(i) {
                            walk(item, rest, out);
                        }
                    } else {
                        for item in items {
                            walk(item, segs, out);
                        }
                    }
                }
                _ => {}
            }
        }
        let segs: Vec<&str> = attr.split('.').collect();
        if let Some(first) = segs.first().and_then(|s| self.get(s)) {
            walk(first, &segs[1..], out);
        }
    }
}

/// True when the two values belong to the same ordering family — ordering
/// predicates never match across families.
fn same_family(a: &Value, b: &Value) -> bool {
    matches!(
        (a, b),
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_))
            | (Value::Str(_), Value::Str(_))
            | (Value::Bool(_), Value::Bool(_))
    )
}

impl Predicate {
    /// Evaluate against a row.
    pub fn matches<S: AttrSource + ?Sized>(&self, src: &S) -> bool {
        let mut scratch = Vec::new();
        self.matches_with(src, &mut scratch)
    }

    fn matches_with<S: AttrSource + ?Sized>(&self, src: &S, scratch: &mut Vec<Value>) -> bool {
        let vals = |attr: &str, scratch: &mut Vec<Value>| {
            scratch.clear();
            src.attr_values(attr, scratch);
        };
        match self {
            Predicate::True => true,
            Predicate::Eq(attr, v) => {
                vals(attr, scratch);
                scratch.iter().any(|x| x.total_cmp(v) == Ordering::Equal)
            }
            Predicate::Ne(attr, v) => {
                vals(attr, scratch);
                !scratch.iter().any(|x| x.total_cmp(v) == Ordering::Equal)
            }
            Predicate::Gt(attr, v) => {
                vals(attr, scratch);
                scratch.iter().any(|x| same_family(x, v) && x.total_cmp(v) == Ordering::Greater)
            }
            Predicate::Gte(attr, v) => {
                vals(attr, scratch);
                scratch.iter().any(|x| same_family(x, v) && x.total_cmp(v) != Ordering::Less)
            }
            Predicate::Lt(attr, v) => {
                vals(attr, scratch);
                scratch.iter().any(|x| same_family(x, v) && x.total_cmp(v) == Ordering::Less)
            }
            Predicate::Lte(attr, v) => {
                vals(attr, scratch);
                scratch.iter().any(|x| same_family(x, v) && x.total_cmp(v) != Ordering::Greater)
            }
            Predicate::In(attr, options) => {
                vals(attr, scratch);
                scratch
                    .iter()
                    .any(|x| options.iter().any(|v| x.total_cmp(v) == Ordering::Equal))
            }
            Predicate::Contains(attr, needle) => {
                vals(attr, scratch);
                let needle = needle.to_lowercase();
                scratch.iter().any(|x| match x {
                    Value::Str(s) => s.to_lowercase().contains(&needle),
                    _ => false,
                })
            }
            Predicate::Exists(attr) => {
                vals(attr, scratch);
                scratch.iter().any(|v| !v.is_null())
            }
            Predicate::And(ps) => ps.iter().all(|p| p.matches(src)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(src)),
            Predicate::Not(p) => !p.matches(src),
        }
    }

    /// Every attribute the predicate reads, in first-mention order.
    pub fn attrs(&self) -> Vec<&str> {
        fn walk<'a>(p: &'a Predicate, out: &mut Vec<&'a str>) {
            let mut push = |a: &'a str| {
                if !out.contains(&a) {
                    out.push(a);
                }
            };
            match p {
                Predicate::True => {}
                Predicate::Eq(a, _)
                | Predicate::Ne(a, _)
                | Predicate::Gt(a, _)
                | Predicate::Gte(a, _)
                | Predicate::Lt(a, _)
                | Predicate::Lte(a, _)
                | Predicate::In(a, _)
                | Predicate::Contains(a, _)
                | Predicate::Exists(a) => push(a),
                Predicate::And(ps) | Predicate::Or(ps) => {
                    for p in ps {
                        walk(p, out);
                    }
                }
                Predicate::Not(p) => walk(p, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// The top-level conjuncts: `And` flattens one level, everything else
    /// is its own single conjunct. The planner probes indexes per conjunct.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(ps) => ps.iter().collect(),
            other => vec![other],
        }
    }
}

/// Sort direction for [`Query::order_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Ascending by `total_cmp`.
    Asc,
    /// Descending by `total_cmp` (ties keep filter order).
    Desc,
}

/// An aggregate over the filtered row set. Aggregates consume the whole
/// filtered set; `order_by` / `limit` apply only to row results.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// Number of matching rows.
    Count,
    /// Sum of every numeric value at the attribute across matching rows
    /// (integer exact while all values are ints, `f64` once any float
    /// appears; accumulation order is the filter's row order).
    Sum(String),
    /// Smallest value at the attribute by `total_cmp` (nulls skipped).
    Min(String),
    /// Largest value at the attribute by `total_cmp` (nulls skipped).
    Max(String),
    /// Count of matching rows per distinct value at the attribute,
    /// ordered by value (`total_cmp`).
    GroupBy(String),
}

/// A typed query over a fused-entity collection.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Row filter; [`Predicate::True`] selects everything.
    pub filter: Predicate,
    /// Attributes to materialise per row (empty = every record field).
    pub project: Vec<String>,
    /// Optional aggregate; when set, the result is the aggregate value and
    /// no rows are materialised.
    pub aggregate: Option<Aggregate>,
    /// Optional `(attribute, direction)` ordering for row results.
    pub order_by: Option<(String, Order)>,
    /// Cap on materialised rows (after ordering).
    pub limit: Option<usize>,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            filter: Predicate::True,
            project: Vec::new(),
            aggregate: None,
            order_by: None,
            limit: None,
        }
    }
}

impl Query {
    /// A query with just a filter.
    pub fn filtered(filter: Predicate) -> Self {
        Query { filter, ..Default::default() }
    }

    /// Builder: projection.
    pub fn project<S: Into<String>>(mut self, attrs: Vec<S>) -> Self {
        self.project = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Builder: aggregate.
    pub fn aggregate(mut self, agg: Aggregate) -> Self {
        self.aggregate = Some(agg);
        self
    }

    /// Builder: ordering.
    pub fn order_by(mut self, attr: impl Into<String>, order: Order) -> Self {
        self.order_by = Some((attr.into(), order));
        self
    }

    /// Builder: row cap.
    pub fn take(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }
}

/// One materialised result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The fused entity's canonical key.
    pub key: String,
    /// Input records merged into the entity.
    pub member_count: usize,
    /// Projected `(attribute, value)` pairs, in projection (or record)
    /// order.
    pub fields: Vec<(String, Value)>,
}

/// The result of executing a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Materialised rows (no aggregate requested).
    Rows(Vec<Row>),
    /// [`Aggregate::Count`].
    Count(u64),
    /// [`Aggregate::Sum`] / [`Aggregate::Min`] / [`Aggregate::Max`];
    /// `None` when no row carried a usable value.
    Value(Option<Value>),
    /// [`Aggregate::GroupBy`]: `(value, row count)` in value order.
    Groups(Vec<(Value, u64)>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{doc, Record, RecordId, SourceId};

    fn entity(name: &str, price: i64, kind: &str) -> FusedEntity {
        FusedEntity {
            key: name.to_lowercase(),
            record: Record::from_pairs(
                SourceId(0),
                RecordId(0),
                vec![
                    ("SHOW_NAME", Value::from(name)),
                    ("PRICE", Value::Int(price)),
                    ("KIND", Value::from(kind)),
                ],
            ),
            member_count: 2,
            confidence: Some(0.9),
        }
    }

    #[test]
    fn predicates_over_entities() {
        let e = entity("Matilda", 27, "musical");
        assert!(Predicate::Eq("KIND".into(), "musical".into()).matches(&e));
        assert!(Predicate::Eq("PRICE".into(), Value::Float(27.0)).matches(&e), "canonical eq");
        assert!(Predicate::Gt("PRICE".into(), Value::Int(20)).matches(&e));
        assert!(!Predicate::Gt("PRICE".into(), Value::from("20")).matches(&e), "family gate");
        assert!(Predicate::Contains("SHOW_NAME".into(), "MAT".into()).matches(&e));
        assert!(Predicate::Exists("KIND".into()).matches(&e));
        assert!(!Predicate::Exists("NOPE".into()).matches(&e));
        assert!(Predicate::Eq(KEY_ATTR.into(), "matilda".into()).matches(&e));
        assert!(Predicate::Gte(MEMBERS_ATTR.into(), Value::Int(2)).matches(&e));
    }

    #[test]
    fn boolean_connectives() {
        let e = entity("Wicked", 99, "musical");
        let p = Predicate::And(vec![
            Predicate::Eq("KIND".into(), "musical".into()),
            Predicate::Or(vec![
                Predicate::Lt("PRICE".into(), Value::Int(50)),
                Predicate::Gt("PRICE".into(), Value::Int(90)),
            ]),
        ]);
        assert!(p.matches(&e));
        assert!(!Predicate::Not(Box::new(p)).matches(&e));
    }

    #[test]
    fn document_paths_are_dotted_and_multikey() {
        let d = doc! {
            "entities" => Value::Array(vec![
                Value::Doc(doc! {"type" => "Movie"}),
                Value::Doc(doc! {"type" => "City"}),
            ])
        };
        assert!(Predicate::Eq("entities.type".into(), "Movie".into()).matches(&d));
        assert!(!Predicate::Eq("entities.type".into(), "Person".into()).matches(&d));
    }

    #[test]
    fn attrs_and_conjuncts() {
        let p = Predicate::And(vec![
            Predicate::Eq("A".into(), Value::Int(1)),
            Predicate::Gt("B".into(), Value::Int(2)),
            Predicate::Eq("A".into(), Value::Int(3)),
        ]);
        assert_eq!(p.attrs(), vec!["A", "B"]);
        assert_eq!(p.conjuncts().len(), 3);
        assert_eq!(Predicate::True.conjuncts().len(), 1);
    }
}
