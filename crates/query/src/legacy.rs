//! Bridge from the legacy document-store query
//! ([`datatamer_storage::Query`]) into the typed AST — one query engine
//! for both surfaces.
//!
//! [`predicate_from`] maps `storage::Filter` onto [`Predicate`] 1:1, and
//! [`run`] executes a legacy query end-to-end through the new engine:
//! the AST's planner shape (first indexable conjunct seeds a point/set/
//! range probe against the collection's secondary indexes, everything
//! re-checked by the full predicate), the AST's evaluator over
//! `Document` dotted paths, and the legacy sort/skip/limit/projection
//! tail. Unreadable extents surface as `DtError` on both the probe and
//! scan paths — the probe side uses `Collection::try_get`, never the
//! folding `get`.
//!
//! Semantics note: the AST's equality is *canonical* (`total_cmp`, so
//! `Int(3)` matches `Float(3.0)` and NaN matches itself), whereas legacy
//! `Filter::matches` uses `Value`'s `PartialEq`. On same-typed operands —
//! every practical corpus — the two agree, and the equivalence test in
//! this module pins that; mixed-numeric operands get the canonical
//! semantics here.

use std::ops::Bound;

use datatamer_model::{Document, Result, Value};
use datatamer_storage::{Collection, DocId, Filter, Query as LegacyQuery, SortOrder};

use crate::ast::Predicate;

/// Convert a legacy filter into the typed AST predicate.
pub fn predicate_from(f: &Filter) -> Predicate {
    match f {
        Filter::True => Predicate::True,
        Filter::Eq(p, v) => Predicate::Eq(p.clone(), v.clone()),
        Filter::Ne(p, v) => Predicate::Ne(p.clone(), v.clone()),
        Filter::Gt(p, v) => Predicate::Gt(p.clone(), v.clone()),
        Filter::Gte(p, v) => Predicate::Gte(p.clone(), v.clone()),
        Filter::Lt(p, v) => Predicate::Lt(p.clone(), v.clone()),
        Filter::Lte(p, v) => Predicate::Lte(p.clone(), v.clone()),
        Filter::In(p, vs) => Predicate::In(p.clone(), vs.clone()),
        Filter::Contains(p, s) => Predicate::Contains(p.clone(), s.clone()),
        Filter::Exists(p) => Predicate::Exists(p.clone()),
        Filter::And(fs) => Predicate::And(fs.iter().map(predicate_from).collect()),
        Filter::Or(fs) => Predicate::Or(fs.iter().map(predicate_from).collect()),
        Filter::Not(f) => Predicate::Not(Box::new(predicate_from(f))),
    }
}

/// The first top-level conjunct that can seed a document-index probe,
/// mirroring the AST planner's probe selection.
fn probe_ids(col: &Collection, pred: &Predicate) -> Option<Vec<DocId>> {
    for c in pred.conjuncts() {
        let ids = match c {
            Predicate::Eq(path, v) => col.with_index_on_path(path, |idx| idx.lookup(v)),
            Predicate::In(path, vs) => col.with_index_on_path(path, |idx| {
                let mut ids: Vec<DocId> = vs.iter().flat_map(|v| idx.lookup(v)).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            }),
            Predicate::Gt(path, v) => col
                .with_index_on_path(path, |idx| idx.range(Bound::Excluded(v), Bound::Unbounded)),
            Predicate::Gte(path, v) => col
                .with_index_on_path(path, |idx| idx.range(Bound::Included(v), Bound::Unbounded)),
            Predicate::Lt(path, v) => col
                .with_index_on_path(path, |idx| idx.range(Bound::Unbounded, Bound::Excluded(v))),
            Predicate::Lte(path, v) => col
                .with_index_on_path(path, |idx| idx.range(Bound::Unbounded, Bound::Included(v))),
            _ => None,
        };
        if let Some(ids) = ids {
            return Some(ids);
        }
    }
    None
}

/// Execute a legacy query through the typed-AST engine. Result shape and
/// ordering match [`LegacyQuery::execute`]; errors (unreadable extents)
/// surface as `DtError` on every path.
pub fn run(col: &Collection, q: &LegacyQuery) -> Result<Vec<(DocId, Document)>> {
    let pred = predicate_from(&q.filter);
    let mut results: Vec<(DocId, Document)> = match probe_ids(col, &pred) {
        Some(ids) => {
            let mut hits = Vec::new();
            for id in ids {
                if let Some(d) = col.try_get(id)? {
                    if pred.matches(&d) {
                        hits.push((id, d));
                    }
                }
            }
            hits
        }
        None => col.parallel_scan(|id, d| pred.matches(d).then(|| (id, d.clone())))?,
    };

    if let Some((path, order)) = &q.sort {
        results.sort_by(|(_, a), (_, b)| {
            let va = a.get_path(path).cloned().unwrap_or(Value::Null);
            let vb = b.get_path(path).cloned().unwrap_or(Value::Null);
            let ord = va.total_cmp(&vb);
            match order {
                SortOrder::Ascending => ord,
                SortOrder::Descending => ord.reverse(),
            }
        });
    }
    let end = q.skip.saturating_add(q.limit).min(results.len());
    let start = q.skip.min(results.len());
    let mut page: Vec<(DocId, Document)> = results.drain(start..end).collect();

    if !q.projection.is_empty() {
        for (_, doc) in page.iter_mut() {
            let mut projected = Document::with_capacity(q.projection.len());
            for p in &q.projection {
                if let Some(v) = doc.get_path(p) {
                    projected.set(p.clone(), v.clone());
                }
            }
            *doc = projected;
        }
    }
    Ok(page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::doc;
    use datatamer_storage::{CollectionConfig, IndexSpec};

    fn seed() -> Collection {
        let c = Collection::new(
            "shows",
            CollectionConfig { extent_size: 4096, shards: 4, ..Default::default() },
        )
        .unwrap();
        let rows = [
            ("Matilda", 27i64, "musical"),
            ("Wicked", 99, "musical"),
            ("Hamlet", 45, "play"),
            ("Chicago", 67, "musical"),
            ("Macbeth", 30, "play"),
        ];
        for (name, price, kind) in rows {
            c.insert(&doc! {"name" => name, "price" => price, "kind" => kind}).unwrap();
        }
        c
    }

    fn queries() -> Vec<LegacyQuery> {
        vec![
            LegacyQuery::filtered(Filter::Eq("kind".into(), "musical".into())),
            LegacyQuery::filtered(Filter::And(vec![
                Filter::Gte("price".into(), Value::Int(30)),
                Filter::Lt("price".into(), Value::Int(70)),
            ])),
            LegacyQuery::filtered(Filter::In(
                "kind".into(),
                vec!["play".into(), "opera".into()],
            )),
            LegacyQuery::filtered(Filter::Or(vec![
                Filter::Contains("name".into(), "mat".into()),
                Filter::Not(Box::new(Filter::Exists("price".into()))),
            ])),
            LegacyQuery::filtered(Filter::True)
                .sort_by("price", SortOrder::Descending)
                .offset(1)
                .take(2)
                .project(vec!["name", "price"]),
        ]
    }

    #[test]
    fn bridge_matches_legacy_execute_unindexed() {
        let c = seed();
        for q in queries() {
            assert_eq!(run(&c, &q).unwrap(), q.execute(&c).unwrap(), "{:?}", q.filter);
        }
    }

    #[test]
    fn bridge_matches_legacy_execute_indexed() {
        let c = seed();
        c.create_index(IndexSpec::new("by_kind", "kind")).unwrap();
        c.create_index(IndexSpec::new("by_price", "price")).unwrap();
        for q in queries() {
            assert_eq!(run(&c, &q).unwrap(), q.execute(&c).unwrap(), "{:?}", q.filter);
        }
    }
}
