//! Hand-rolled HTTP/1.1 front end over published collection snapshots.
//!
//! No registry dependencies: requests are parsed byte-by-byte off a
//! `std::net::TcpListener`, like the persist encoding hand-rolls its
//! framing. A bounded worker pool serves connections, and every response
//! is rendered from an immutable [`CollectionSnapshot`] grabbed via one
//! `Arc` load — ingest publishes a *new* snapshot atomically, so readers
//! never observe a torn view and never block the pipeline.
//!
//! Routes (GET only):
//!
//! | route | payload |
//! |---|---|
//! | `/` or `/collections` | collection names |
//! | `/collections/{c}/stats` | snapshot + index + ingest counters |
//! | `/collections/{c}/entity/{key}` | point lookup by entity key |
//! | `/collections/{c}/query?...` | filter / project / aggregate |
//!
//! Query parameters: `where` (comma-separated `attr OP value` clauses,
//! ops `>=` `<=` `!=` `==` `=` `~=` (contains) `>` `<`, plus `has:attr`),
//! `project` (comma-separated attrs), `order` (`attr` or `attr:desc`),
//! `limit`, `agg` (`count` | `sum:attr` | `min:attr` | `max:attr` |
//! `group:attr`), `mode` (`auto` | `columnar` | `full`). Values parse as
//! JSON-ish scalars (`null`, booleans, numbers, else strings; quotes
//! optional). Responses are `application/json`, rendered with a
//! deterministic serializer so equal results are byte-equal bodies.

use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use datatamer_model::Value;

use crate::ast::{Aggregate, Order, Predicate, Query, QueryResult};
use crate::exec::{CollectionSnapshot, ScanMode};

/// Tunables for [`QueryServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Per-read socket timeout (slow clients are dropped, not waited on).
    pub read_timeout: Duration,
    /// Hard cap on request size in bytes.
    pub max_request_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_millis(2000),
            max_request_bytes: 16 * 1024,
        }
    }
}

/// The registry of published snapshots, shared between ingest (writer)
/// and the server (readers). Publishing swaps an `Arc`, so a reader
/// either sees the whole old snapshot or the whole new one.
#[derive(Clone, Default)]
pub struct SharedViews {
    inner: Arc<RwLock<BTreeMap<String, Arc<CollectionSnapshot>>>>,
}

impl SharedViews {
    /// An empty registry.
    pub fn new() -> Self {
        SharedViews::default()
    }

    /// Atomically publish (or replace) a collection's snapshot.
    pub fn publish(&self, name: impl Into<String>, snapshot: CollectionSnapshot) {
        self.inner.write().insert(name.into(), Arc::new(snapshot));
    }

    /// The current snapshot of a collection.
    pub fn get(&self, name: &str) -> Option<Arc<CollectionSnapshot>> {
        self.inner.read().get(name).cloned()
    }

    /// Published collection names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }
}

/// A running HTTP server; dropped connections and worker threads are
/// reaped by [`QueryServer::stop`].
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl QueryServer {
    /// Bind and start serving `views` on `addr` (use port 0 for an
    /// ephemeral port; the bound address is [`QueryServer::addr`]).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        views: SharedViews,
        cfg: ServerConfig,
    ) -> std::io::Result<QueryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::with_capacity(cfg.workers + 1);
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let views = views.clone();
            let cfg = cfg.clone();
            // dtlint::allow(thread-spawn, reason = "serving worker pool; request handling is read-only over immutable snapshots and never feeds back into pipeline output")
            threads.push(std::thread::spawn(move || loop {
                let next = rx.lock().recv();
                match next {
                    Ok(stream) => serve_connection(stream, &views, &cfg),
                    Err(_) => break,
                }
            }));
        }
        let accept_stop = Arc::clone(&stop);
        // dtlint::allow(thread-spawn, reason = "accept loop for the serving front end; not part of pipeline computation")
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
        }));
        Ok(QueryServer { addr, stop, threads })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain workers, and join every thread.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

// Wall-clock here is intentional and serving-only: socket timeouts and the
// drip-feed deadline bound how long a slow client can hold a worker. The
// clock never influences which rows a query returns.
#[allow(clippy::disallowed_methods)]
fn serve_connection(mut stream: TcpStream, views: &SharedViews, cfg: &ServerConfig) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.read_timeout));
    // dtlint::allow(wall-clock, reason = "connection read deadline against drip-feeding clients; never influences query results")
    let started = std::time::Instant::now();
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head; the per-read socket timeout
    // bounds each read and the deadline bounds the whole request, so a
    // stalled or drip-feeding client is dropped instead of waited on.
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n")
            || buf.len() > cfg.max_request_bytes
            || started.elapsed() > cfg.read_timeout.saturating_mul(2)
        {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let response = match parse_request(&buf) {
        Some((method, target)) if method == "GET" => route(&target, views),
        Some(_) => error_response(405, "only GET is supported"),
        None => error_response(400, "malformed request"),
    };
    let _ = stream.write_all(&response);
    let _ = stream.flush();
}

/// Extract `(method, target)` from the request line.
fn parse_request(buf: &[u8]) -> Option<(String, String)> {
    let head = buf.split(|&b| b == b'\r').next()?;
    let line = std::str::from_utf8(head).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    Some((method, target))
}

fn route(target: &str, views: &SharedViews) -> Vec<u8> {
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let segs: Vec<String> =
        path.split('/').filter(|s| !s.is_empty()).map(percent_decode).collect();
    match segs.as_slice() {
        [] => ok_response(&render_collections(views)),
        [c] if c == "collections" => ok_response(&render_collections(views)),
        [c, name, tail @ ..] if c == "collections" => {
            let Some(snap) = views.get(name) else {
                return error_response(404, &format!("no collection {name:?}"));
            };
            match tail {
                [s] if s == "stats" => ok_response(&render_stats(name, &snap)),
                [e, key] if e == "entity" => match snap.point_lookup(key) {
                    Some(entity) => ok_response(&render_entity(entity)),
                    None => error_response(404, &format!("no entity {key:?}")),
                },
                [q] if q == "query" => match parse_query(query_string) {
                    Ok((query, mode)) => {
                        let run = snap.execute_as(&query, mode);
                        ok_response(&render_result(&run.result, run.plan.name(), run.candidates))
                    }
                    Err(e) => error_response(400, &e),
                },
                _ => error_response(404, "unknown route"),
            }
        }
        _ => error_response(404, "unknown route"),
    }
}

// ---------------------------------------------------------------- parsing

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(h), Some(l)) => {
                        out.push(h * 16 + l);
                        i += 2;
                    }
                    _ => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// `key=value&key=value` → decoded pairs.
fn query_params(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(p), String::new()),
        })
        .collect()
}

/// Parse a scalar operand: `null`, booleans, integers, floats, else a
/// string (surrounding quotes stripped).
fn parse_operand(raw: &str) -> Value {
    let s = raw.trim();
    match s {
        "null" => return Value::Null,
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    let unquoted = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .or_else(|| s.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')))
        .unwrap_or(s);
    Value::Str(unquoted.to_string())
}

fn parse_clause(clause: &str) -> Result<Predicate, String> {
    let c = clause.trim();
    if c.is_empty() {
        return Err("empty where clause".to_string());
    }
    if let Some(attr) = c.strip_prefix("has:") {
        return Ok(Predicate::Exists(attr.trim().to_string()));
    }
    // Two-char operators first so `>=` does not parse as `>` + `=...`.
    for (op, make) in [
        (">=", Predicate::Gte as fn(String, Value) -> Predicate),
        ("<=", Predicate::Lte),
        ("!=", Predicate::Ne),
        ("==", Predicate::Eq),
        ("~=", |a, v: Value| Predicate::Contains(a, v.to_text())),
        (">", Predicate::Gt),
        ("<", Predicate::Lt),
        ("=", Predicate::Eq),
    ] {
        if let Some(idx) = c.find(op) {
            let (attr, rest) = c.split_at(idx);
            let attr = attr.trim();
            let operand = &rest[op.len()..];
            if attr.is_empty() {
                return Err(format!("missing attribute in clause {c:?}"));
            }
            return Ok(make(attr.to_string(), parse_operand(operand)));
        }
    }
    Err(format!("no operator in clause {c:?}"))
}

fn parse_query(qs: &str) -> Result<(Query, ScanMode), String> {
    let mut q = Query::default();
    let mut mode = ScanMode::Auto;
    for (k, v) in query_params(qs) {
        match k.as_str() {
            "where" => {
                let mut clauses = Vec::new();
                for part in v.split(',').filter(|p| !p.trim().is_empty()) {
                    clauses.push(parse_clause(part)?);
                }
                q.filter = match clauses.len() {
                    0 => Predicate::True,
                    1 => clauses.pop().unwrap_or(Predicate::True),
                    _ => Predicate::And(clauses),
                };
            }
            "project" => {
                q.project =
                    v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
            }
            "order" => {
                let (attr, dir) = match v.split_once(':') {
                    Some((a, d)) => (a, d),
                    None => (v.as_str(), "asc"),
                };
                let order = match dir {
                    "desc" => Order::Desc,
                    "asc" => Order::Asc,
                    other => return Err(format!("bad order direction {other:?}")),
                };
                q.order_by = Some((attr.trim().to_string(), order));
            }
            "limit" => {
                q.limit =
                    Some(v.parse::<usize>().map_err(|_| format!("bad limit {v:?}"))?);
            }
            "agg" => {
                q.aggregate = Some(match v.split_once(':') {
                    None if v == "count" => Aggregate::Count,
                    Some(("sum", a)) => Aggregate::Sum(a.to_string()),
                    Some(("min", a)) => Aggregate::Min(a.to_string()),
                    Some(("max", a)) => Aggregate::Max(a.to_string()),
                    Some(("group", a)) => Aggregate::GroupBy(a.to_string()),
                    _ => return Err(format!("bad agg {v:?}")),
                });
            }
            "mode" => {
                mode = match v.as_str() {
                    "auto" => ScanMode::Auto,
                    "columnar" => ScanMode::Columnar,
                    "full" => ScanMode::FullScan,
                    other => return Err(format!("bad mode {other:?}")),
                };
            }
            other => return Err(format!("unknown parameter {other:?}")),
        }
    }
    Ok((q, mode))
}

// -------------------------------------------------------------- rendering

/// Deterministic JSON string escape.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Deterministic JSON rendering of a [`Value`]. Non-finite floats have no
/// JSON encoding; they render as tagged strings.
pub fn json_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => format!("{f}"),
        Value::Float(f) => format!("\"{f}\""),
        Value::Str(s) => format!("\"{}\"", json_escape(s)),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(json_value).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Doc(d) => {
            let inner: Vec<String> = d
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_value(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

fn render_collections(views: &SharedViews) -> String {
    let names: Vec<String> =
        views.names().iter().map(|n| format!("\"{}\"", json_escape(n))).collect();
    format!("{{\"collections\":[{}]}}", names.join(","))
}

fn render_stats(name: &str, snap: &CollectionSnapshot) -> String {
    let s = snap.stats();
    let mut counters: Vec<String> = s
        .index
        .counter_pairs()
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    counters.extend(s.counters.iter().map(|(k, v)| format!("\"{}\":{v}", json_escape(k))));
    format!(
        "{{\"collection\":\"{}\",\"entities\":{},\"revision\":{},\"counters\":{{{}}}}}",
        json_escape(name),
        s.entities,
        s.revision,
        counters.join(","),
    )
}

fn render_entity(e: &datatamer_core::fusion::FusedEntity) -> String {
    let fields: Vec<String> = e
        .record
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_value(v)))
        .collect();
    let confidence = match e.confidence {
        Some(c) => json_value(&Value::Float(c)),
        None => "null".to_string(),
    };
    format!(
        "{{\"key\":\"{}\",\"member_count\":{},\"confidence\":{},\"record\":{{{}}}}}",
        json_escape(&e.key),
        e.member_count,
        confidence,
        fields.join(","),
    )
}

/// Render an executed result. Equal [`QueryResult`]s render to byte-equal
/// bodies (the serving test's no-torn-reads pin relies on this).
pub fn render_result(result: &QueryResult, plan: &str, candidates: usize) -> String {
    let head = format!("\"plan\":\"{plan}\",\"candidates\":{candidates}");
    match result {
        QueryResult::Count(n) => format!("{{{head},\"count\":{n}}}"),
        QueryResult::Value(v) => {
            let rendered = match v {
                Some(v) => json_value(v),
                None => "null".to_string(),
            };
            format!("{{{head},\"value\":{rendered}}}")
        }
        QueryResult::Groups(groups) => {
            let inner: Vec<String> = groups
                .iter()
                .map(|(v, n)| format!("{{\"value\":{},\"count\":{n}}}", json_value(v)))
                .collect();
            format!("{{{head},\"groups\":[{}]}}", inner.join(","))
        }
        QueryResult::Rows(rows) => {
            let inner: Vec<String> = rows
                .iter()
                .map(|r| {
                    let fields: Vec<String> = r
                        .fields
                        .iter()
                        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_value(v)))
                        .collect();
                    format!(
                        "{{\"key\":\"{}\",\"member_count\":{},\"fields\":{{{}}}}}",
                        json_escape(&r.key),
                        r.member_count,
                        fields.join(","),
                    )
                })
                .collect();
            format!("{{{head},\"rows\":[{}]}}", inner.join(","))
        }
    }
}

fn http_response(status: u16, reason: &str, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len(),
        )
        .as_bytes(),
    );
    out.extend_from_slice(body.as_bytes());
    out
}

fn ok_response(body: &str) -> Vec<u8> {
    http_response(200, "OK", body)
}

fn error_response(status: u16, message: &str) -> Vec<u8> {
    let reason = match status {
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    http_response(status, reason, &format!("{{\"error\":\"{}\"}}", json_escape(message)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_and_clause_parsing() {
        assert_eq!(parse_operand("42"), Value::Int(42));
        assert_eq!(parse_operand("4.5"), Value::Float(4.5));
        assert_eq!(parse_operand("null"), Value::Null);
        assert_eq!(parse_operand("\"42\""), Value::from("42"));
        assert_eq!(parse_operand("musical"), Value::from("musical"));
        assert_eq!(
            parse_clause("PRICE>=20").unwrap(),
            Predicate::Gte("PRICE".into(), Value::Int(20)),
        );
        assert_eq!(
            parse_clause("KIND=musical").unwrap(),
            Predicate::Eq("KIND".into(), Value::from("musical")),
        );
        assert_eq!(parse_clause("has:PRICE").unwrap(), Predicate::Exists("PRICE".into()));
        assert!(parse_clause("PRICE").is_err());
    }

    #[test]
    fn query_string_parsing() {
        let (q, mode) =
            parse_query("where=PRICE>10,KIND=play&order=PRICE:desc&limit=3&mode=columnar")
                .unwrap();
        assert_eq!(
            q.filter,
            Predicate::And(vec![
                Predicate::Gt("PRICE".into(), Value::Int(10)),
                Predicate::Eq("KIND".into(), Value::from("play")),
            ]),
        );
        assert_eq!(q.order_by, Some(("PRICE".to_string(), Order::Desc)));
        assert_eq!(q.limit, Some(3));
        assert_eq!(mode, ScanMode::Columnar);
        assert!(parse_query("nope=1").is_err());
        let (q, _) = parse_query("agg=group:KIND").unwrap();
        assert_eq!(q.aggregate, Some(Aggregate::GroupBy("KIND".into())));
    }

    #[test]
    fn json_rendering_is_escaped() {
        let v = Value::Array(vec![
            Value::from("he said \"hi\"\n"),
            Value::Int(3),
            Value::Float(2.5),
            Value::Null,
        ]);
        assert_eq!(json_value(&v), "[\"he said \\\"hi\\\"\\n\",3,2.5,null]");
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c%3D"), "a b c=");
        assert_eq!(percent_decode("100%"), "100%");
    }
}
