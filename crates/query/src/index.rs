//! Secondary indexes over fused-entity attributes.
//!
//! Two flavours share the [`AttrKey`] canonical key:
//!
//! * [`HashIndex`] — equality probes. Postings live in insertion-ordered
//!   slots (a `HashMap` only *locates* the slot, it is never iterated),
//!   so index contents and iteration order are byte-deterministic.
//! * [`OrderedIndex`] — `BTreeMap`-backed range probes in `total_cmp`
//!   key order.
//!
//! [`EntityIndexes`] bundles one index per configured attribute and keeps
//! a reverse map from cluster id to the exact entries it contributed, so
//! a dirty cluster from `consolidate_delta` is unindexed/reindexed in
//! O(its own entries) — no rebuild. Postings store *cluster ids* (stable
//! across delta ingests: the smallest member record index of the group),
//! which the owning view translates to current row positions.

use datatamer_core::fusion::FusedEntity;
use datatamer_model::Value;
use datatamer_sim::FnvBuildHasher;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::ast::AttrSource;
use crate::key::AttrKey;

/// Counters describing how indexes have been maintained — surfaced on the
/// stats endpoint so "no full rebuilds during delta ingest" is observable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexMaintenance {
    /// From-scratch builds (initial sync, or shape changes).
    pub full_builds: u64,
    /// Incremental syncs driven by a dirty-cluster set.
    pub delta_syncs: u64,
    /// Clusters unindexed + reindexed because a delta dirtied them.
    pub clusters_reindexed: u64,
    /// Clusters dropped because they vanished from the fused set.
    pub clusters_removed: u64,
    /// Clusters left untouched by an incremental sync.
    pub clusters_reused: u64,
    /// Individual `(attr, key, cluster)` entries inserted.
    pub entries_inserted: u64,
    /// Individual entries removed.
    pub entries_removed: u64,
}

impl IndexMaintenance {
    /// Flatten to `(name, value)` pairs for stats rendering.
    pub fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("index.full_builds", self.full_builds),
            ("index.delta_syncs", self.delta_syncs),
            ("index.clusters_reindexed", self.clusters_reindexed),
            ("index.clusters_removed", self.clusters_removed),
            ("index.clusters_reused", self.clusters_reused),
            ("index.entries_inserted", self.entries_inserted),
            ("index.entries_removed", self.entries_removed),
        ]
    }
}

/// Equality index: key → sorted cluster-id postings.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    /// Locates the slot for a key; never iterated.
    map: HashMap<AttrKey, u32, FnvBuildHasher>,
    /// `(key, postings)` in first-insertion order; postings sorted.
    /// Emptied slots stay as tombstones to keep slot ids stable.
    slots: Vec<(AttrKey, Vec<usize>)>,
}

impl HashIndex {
    fn insert(&mut self, key: AttrKey, cid: usize) {
        let slot = match self.map.get(&key) {
            Some(&i) => i as usize,
            None => {
                let i = self.slots.len();
                self.map.insert(key.clone(), i as u32);
                self.slots.push((key, Vec::new()));
                i
            }
        };
        let postings = &mut self.slots[slot].1;
        if let Err(pos) = postings.binary_search(&cid) {
            postings.insert(pos, cid);
        }
    }

    fn remove(&mut self, key: &AttrKey, cid: usize) {
        if let Some(&i) = self.map.get(key) {
            let postings = &mut self.slots[i as usize].1;
            if let Ok(pos) = postings.binary_search(&cid) {
                postings.remove(pos);
            }
        }
    }

    /// Sorted cluster ids equal to `key` (empty when unseen).
    pub fn lookup(&self, key: &Value) -> &[usize] {
        match self.map.get(&AttrKey(key.clone())) {
            Some(&i) => &self.slots[i as usize].1,
            None => &[],
        }
    }

    /// Number of distinct live keys.
    pub fn keys(&self) -> usize {
        self.slots.iter().filter(|(_, p)| !p.is_empty()).count()
    }
}

/// Ordered index: `BTreeMap` in `total_cmp` key order for range probes.
#[derive(Debug, Clone, Default)]
pub struct OrderedIndex {
    map: BTreeMap<AttrKey, Vec<usize>>,
}

impl OrderedIndex {
    fn insert(&mut self, key: AttrKey, cid: usize) {
        let postings = self.map.entry(key).or_default();
        if let Err(pos) = postings.binary_search(&cid) {
            postings.insert(pos, cid);
        }
    }

    fn remove(&mut self, key: &AttrKey, cid: usize) {
        let emptied = match self.map.get_mut(key) {
            Some(postings) => {
                if let Ok(pos) = postings.binary_search(&cid) {
                    postings.remove(pos);
                }
                postings.is_empty()
            }
            None => false,
        };
        if emptied {
            self.map.remove(key);
        }
    }

    /// Cluster ids whose key falls in the bounds, in key order (sorted
    /// within each key). The caller dedups across keys.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<usize> {
        let wrap = |b: Bound<&Value>| match b {
            Bound::Included(v) => Bound::Included(AttrKey(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(AttrKey(v.clone())),
            Bound::Unbounded => Bound::Unbounded,
        };
        let (lo, hi) = (wrap(lo), wrap(hi));
        let mut out = Vec::new();
        for (_, postings) in self.map.range((lo, hi)) {
            out.extend_from_slice(postings);
        }
        out
    }

    /// Number of distinct keys.
    pub fn keys(&self) -> usize {
        self.map.len()
    }
}

/// Which index family an entry went into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Hash,
    Ordered,
}

/// One `(index, key)` contribution of a cluster — remembered for exact
/// removal when the cluster dirties.
#[derive(Debug, Clone)]
struct IndexEntry {
    family: Family,
    idx: u32,
    key: AttrKey,
}

/// All secondary indexes of one collection view.
#[derive(Debug, Clone, Default)]
pub struct EntityIndexes {
    hash_attrs: Vec<String>,
    ordered_attrs: Vec<String>,
    hash: Vec<HashIndex>,
    ordered: Vec<OrderedIndex>,
    /// cluster id → entries it contributed; never iterated, only probed.
    entries: HashMap<usize, Vec<IndexEntry>, FnvBuildHasher>,
    maint: IndexMaintenance,
}

impl EntityIndexes {
    /// Empty indexes over the given attribute lists.
    pub fn new(hash_attrs: Vec<String>, ordered_attrs: Vec<String>) -> Self {
        let hash = hash_attrs.iter().map(|_| HashIndex::default()).collect();
        let ordered = ordered_attrs.iter().map(|_| OrderedIndex::default()).collect();
        EntityIndexes {
            hash_attrs,
            ordered_attrs,
            hash,
            ordered,
            entries: HashMap::default(),
            maint: IndexMaintenance::default(),
        }
    }

    /// The hash index for `attr`, when configured.
    pub fn hash_index(&self, attr: &str) -> Option<&HashIndex> {
        self.hash_attrs.iter().position(|a| a == attr).map(|i| &self.hash[i])
    }

    /// The ordered index for `attr`, when configured.
    pub fn ordered_index(&self, attr: &str) -> Option<&OrderedIndex> {
        self.ordered_attrs.iter().position(|a| a == attr).map(|i| &self.ordered[i])
    }

    /// Maintenance counters so far.
    pub fn maintenance(&self) -> &IndexMaintenance {
        &self.maint
    }

    pub(crate) fn maint_mut(&mut self) -> &mut IndexMaintenance {
        &mut self.maint
    }

    /// Every entry `entity` contributes, extracted once (multikey: each
    /// array element becomes its own key). Pure, so views run it
    /// rayon-parallel across entities before inserting sequentially.
    fn extract(&self, entity: &FusedEntity) -> Vec<IndexEntry> {
        let mut out = Vec::new();
        let mut vals = Vec::new();
        for (i, attr) in self.hash_attrs.iter().enumerate() {
            vals.clear();
            entity.attr_values(attr, &mut vals);
            for v in vals.drain(..) {
                out.push(IndexEntry { family: Family::Hash, idx: i as u32, key: AttrKey(v) });
            }
        }
        for (i, attr) in self.ordered_attrs.iter().enumerate() {
            vals.clear();
            entity.attr_values(attr, &mut vals);
            for v in vals.drain(..) {
                out.push(IndexEntry { family: Family::Ordered, idx: i as u32, key: AttrKey(v) });
            }
        }
        out
    }

    fn apply(&mut self, cid: usize, extracted: Vec<IndexEntry>) {
        self.maint.entries_inserted += extracted.len() as u64;
        for e in &extracted {
            match e.family {
                Family::Hash => self.hash[e.idx as usize].insert(e.key.clone(), cid),
                Family::Ordered => self.ordered[e.idx as usize].insert(e.key.clone(), cid),
            }
        }
        self.entries.insert(cid, extracted);
    }

    /// Index a cluster's entity (replacing any previous contribution).
    pub fn insert_cluster(&mut self, cid: usize, entity: &FusedEntity) {
        self.remove_cluster(cid);
        self.apply(cid, self.extract(entity));
    }

    /// Drop every entry the cluster contributed. Returns whether it was
    /// indexed at all.
    pub fn remove_cluster(&mut self, cid: usize) -> bool {
        match self.entries.remove(&cid) {
            Some(old) => {
                self.maint.entries_removed += old.len() as u64;
                for e in &old {
                    match e.family {
                        Family::Hash => self.hash[e.idx as usize].remove(&e.key, cid),
                        Family::Ordered => self.ordered[e.idx as usize].remove(&e.key, cid),
                    }
                }
                true
            }
            None => false,
        }
    }

    /// True when the cluster currently has entries.
    pub fn contains_cluster(&self, cid: usize) -> bool {
        self.entries.contains_key(&cid)
    }

    /// Rebuild from scratch over `(cluster id, entity)` pairs. Entry
    /// extraction fans out with rayon; insertion replays sequentially in
    /// input order, so the result is byte-identical at any thread count.
    pub fn rebuild(&mut self, clusters: &[(usize, &FusedEntity)]) {
        let maint = std::mem::take(&mut self.maint);
        *self = EntityIndexes::new(
            std::mem::take(&mut self.hash_attrs),
            std::mem::take(&mut self.ordered_attrs),
        );
        self.maint = maint;
        let extracted: Vec<Vec<IndexEntry>> =
            clusters.par_iter().map(|(_, e)| self.extract(e)).collect();
        for ((cid, _), entries) in clusters.iter().zip(extracted) {
            self.apply(*cid, entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{Record, RecordId, SourceId};

    fn entity(key: &str, price: i64) -> FusedEntity {
        FusedEntity {
            key: key.to_string(),
            record: Record::from_pairs(
                SourceId(0),
                RecordId(0),
                vec![("PRICE", Value::Int(price)), ("KIND", Value::from("show"))],
            ),
            member_count: 1,
            confidence: None,
        }
    }

    fn indexes() -> EntityIndexes {
        EntityIndexes::new(
            vec!["KIND".to_string(), "_key".to_string()],
            vec!["PRICE".to_string()],
        )
    }

    #[test]
    fn insert_probe_remove() {
        let mut ix = indexes();
        let (a, b) = (entity("a", 10), entity("b", 20));
        ix.insert_cluster(0, &a);
        ix.insert_cluster(7, &b);
        assert_eq!(ix.hash_index("KIND").unwrap().lookup(&Value::from("show")), &[0, 7]);
        assert_eq!(ix.hash_index("_key").unwrap().lookup(&Value::from("b")), &[7]);
        let range = ix.ordered_index("PRICE").unwrap().range(
            Bound::Included(&Value::Int(15)),
            Bound::Unbounded,
        );
        assert_eq!(range, vec![7]);
        assert!(ix.remove_cluster(0));
        assert_eq!(ix.hash_index("KIND").unwrap().lookup(&Value::from("show")), &[7]);
        assert!(!ix.remove_cluster(0), "second removal is a no-op");
    }

    #[test]
    fn reindex_replaces_old_entries() {
        let mut ix = indexes();
        ix.insert_cluster(3, &entity("a", 10));
        ix.insert_cluster(3, &entity("a2", 99));
        assert!(ix.hash_index("_key").unwrap().lookup(&Value::from("a")).is_empty());
        assert_eq!(ix.hash_index("_key").unwrap().lookup(&Value::from("a2")), &[3]);
        let all = ix
            .ordered_index("PRICE")
            .unwrap()
            .range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all, vec![3]);
        assert_eq!(ix.maintenance().entries_removed, 3, "old entries dropped");
    }

    #[test]
    fn rebuild_matches_incremental() {
        let es: Vec<FusedEntity> = (0..20).map(|i| entity(&format!("k{i}"), i)).collect();
        let mut inc = indexes();
        for (i, e) in es.iter().enumerate() {
            inc.insert_cluster(i * 2, e);
        }
        let mut full = indexes();
        let pairs: Vec<(usize, &FusedEntity)> =
            es.iter().enumerate().map(|(i, e)| (i * 2, e)).collect();
        full.rebuild(&pairs);
        for v in 0..20 {
            assert_eq!(
                inc.hash_index("_key").unwrap().lookup(&Value::from(format!("k{v}"))),
                full.hash_index("_key").unwrap().lookup(&Value::from(format!("k{v}"))),
            );
        }
        assert_eq!(
            inc.ordered_index("PRICE").unwrap().range(Bound::Unbounded, Bound::Unbounded),
            full.ordered_index("PRICE").unwrap().range(Bound::Unbounded, Bound::Unbounded),
        );
    }
}
