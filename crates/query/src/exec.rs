//! Query planning and execution over an immutable collection snapshot.
//!
//! The planner picks, in order: a **hash probe** (an equality/`In`
//! conjunct on a hash-indexed attribute), an **ordered probe** (a
//! comparison conjunct on an ordered-indexed attribute), or a
//! **columnar scan**; [`ScanMode`] can force the scan paths. Probes only
//! ever produce a candidate *superset* — every candidate is re-checked
//! against the full predicate — so plan choice can change work done but
//! never results.
//!
//! Determinism: scans fan out with rayon over row ranges (the shim's
//! order-preserving fork-join keeps positions ascending), while
//! everything order-sensitive — aggregation folds, sorting, projection —
//! runs sequentially over the already-ordered position list. Every plan
//! funnels into one `finish` routine, which is also the entire body of
//! [`execute_oracle`]: the oracle and the planned paths cannot drift.

use datatamer_core::fusion::FusedEntity;
use datatamer_model::Value;
use datatamer_sim::FnvBuildHasher;
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::ast::{
    Aggregate, AttrSource, Order, Predicate, Query, QueryResult, Row, CONFIDENCE_ATTR, KEY_ATTR,
    MEMBERS_ATTR,
};
use crate::columnar::Columnar;
use crate::index::{EntityIndexes, IndexMaintenance};
use crate::key::AttrKey;

/// How [`CollectionSnapshot::execute_as`] is allowed to plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Planner's choice: index probe when possible, else columnar scan.
    Auto,
    /// Force a columnar scan (no index probes).
    Columnar,
    /// Force a full scan over the fused entities themselves.
    FullScan,
}

/// Which plan actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Candidates from a hash-index equality probe.
    HashProbe,
    /// Candidates from an ordered-index range probe.
    OrderedProbe,
    /// Row-parallel scan over the columnar projection.
    ColumnarScan,
    /// Row-parallel scan over the fused entities.
    FullScan,
}

impl PlanKind {
    /// Stable name for stats/bench output.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::HashProbe => "hash_probe",
            PlanKind::OrderedProbe => "ordered_probe",
            PlanKind::ColumnarScan => "columnar_scan",
            PlanKind::FullScan => "full_scan",
        }
    }
}

/// A query result plus how it was produced.
#[derive(Debug, Clone)]
pub struct Executed {
    /// The result (byte-identical across plans).
    pub result: QueryResult,
    /// The plan that ran.
    pub plan: PlanKind,
    /// Rows the plan had to post-filter (scans: every row).
    pub candidates: usize,
}

/// Counters a snapshot carries for the stats endpoint.
#[derive(Debug, Clone, Default)]
pub struct SnapshotStats {
    /// Number of fused entities.
    pub entities: usize,
    /// View revision the snapshot was taken at.
    pub revision: u64,
    /// Index maintenance counters at snapshot time.
    pub index: IndexMaintenance,
    /// Extra `(name, value)` counters (storage/delta reports).
    pub counters: Vec<(String, u64)>,
}

/// An immutable, query-ready copy of a collection: entities + secondary
/// indexes + columnar projection. Cheap to share behind an `Arc`; readers
/// never block ingest.
#[derive(Debug, Clone)]
pub struct CollectionSnapshot {
    entities: Vec<FusedEntity>,
    cluster_ids: Vec<usize>,
    /// cluster id → row position; probed only, never iterated.
    pos: HashMap<usize, u32, FnvBuildHasher>,
    indexes: EntityIndexes,
    columns: Columnar,
    stats: SnapshotStats,
}

impl CollectionSnapshot {
    /// Assemble from view parts, building the columnar projection.
    pub(crate) fn assemble(
        entities: Vec<FusedEntity>,
        cluster_ids: Vec<usize>,
        pos: HashMap<usize, u32, FnvBuildHasher>,
        indexes: EntityIndexes,
        stats: SnapshotStats,
    ) -> Self {
        let columns = Columnar::build(&entities);
        CollectionSnapshot { entities, cluster_ids, pos, indexes, columns, stats }
    }

    /// A snapshot straight from entities, with default point-lookup
    /// indexes — convenient for tests and benches.
    pub fn from_entities(entities: Vec<FusedEntity>, spec: crate::view::IndexSpec) -> Self {
        let mut view = crate::view::CollectionView::new(spec);
        let groups: Vec<(String, Vec<usize>)> =
            entities.iter().enumerate().map(|(i, e)| (e.key.clone(), vec![i])).collect();
        view.sync(&entities, &groups, None);
        view.snapshot(Vec::new())
    }

    /// The fused entities, in pipeline group order.
    pub fn entities(&self) -> &[FusedEntity] {
        &self.entities
    }

    /// Stable cluster id of each row.
    pub fn cluster_ids(&self) -> &[usize] {
        &self.cluster_ids
    }

    /// The secondary indexes.
    pub fn indexes(&self) -> &EntityIndexes {
        &self.indexes
    }

    /// The columnar projection.
    pub fn columnar(&self) -> &Columnar {
        &self.columns
    }

    /// Snapshot stats.
    pub fn stats(&self) -> &SnapshotStats {
        &self.stats
    }

    /// Point lookup by entity key, through the `_key` hash index when
    /// present (falls back to a linear scan).
    pub fn point_lookup(&self, key: &str) -> Option<&FusedEntity> {
        let needle = Value::from(key);
        if let Some(ix) = self.indexes.hash_index(KEY_ATTR) {
            let row = ix
                .lookup(&needle)
                .iter()
                .filter_map(|cid| self.pos.get(cid))
                .map(|&r| r as usize)
                .min()?;
            return self.entities.get(row);
        }
        self.entities.iter().find(|e| e.key == key)
    }

    /// Execute with the planner free to probe indexes.
    pub fn execute(&self, q: &Query) -> Executed {
        self.execute_as(q, ScanMode::Auto)
    }

    /// Execute under an explicit scan mode.
    pub fn execute_as(&self, q: &Query, mode: ScanMode) -> Executed {
        let n = self.entities.len();
        match mode {
            ScanMode::FullScan => {
                let positions: Vec<usize> = (0..n)
                    .into_par_iter()
                    .filter(|&i| q.filter.matches(&self.entities[i]))
                    .collect();
                Executed {
                    result: finish(q, &positions, &self.entities),
                    plan: PlanKind::FullScan,
                    candidates: n,
                }
            }
            ScanMode::Columnar => self.columnar_scan(q, n),
            ScanMode::Auto => match self.plan_probe(&q.filter) {
                Some((plan, cids)) => {
                    // Translate stable cluster ids to row positions, then
                    // re-check the full predicate in ascending row order.
                    let mut rows: Vec<usize> = cids
                        .iter()
                        .filter_map(|cid| self.pos.get(cid))
                        .map(|&r| r as usize)
                        .collect();
                    rows.sort_unstable();
                    rows.dedup();
                    let candidates = rows.len();
                    rows.retain(|&i| q.filter.matches(&self.entities[i]));
                    Executed { result: finish(q, &rows, &self.entities), plan, candidates }
                }
                None => self.columnar_scan(q, n),
            },
        }
    }

    fn columnar_scan(&self, q: &Query, n: usize) -> Executed {
        let positions: Vec<usize> = (0..n)
            .into_par_iter()
            .filter(|&i| q.filter.matches(&self.columns.row(i)))
            .collect();
        Executed {
            result: finish(q, &positions, &self.entities),
            plan: PlanKind::ColumnarScan,
            candidates: n,
        }
    }

    /// Find an indexable top-level conjunct. Returns the candidate
    /// cluster-id set — always a superset of the rows the full predicate
    /// accepts, because probe keys use the same `total_cmp` semantics as
    /// predicate equality, and range probes over-approximate across type
    /// families.
    fn plan_probe(&self, filter: &Predicate) -> Option<(PlanKind, Vec<usize>)> {
        let conjuncts = filter.conjuncts();
        for c in &conjuncts {
            match c {
                Predicate::Eq(attr, v) => {
                    if let Some(ix) = self.indexes.hash_index(attr) {
                        return Some((PlanKind::HashProbe, ix.lookup(v).to_vec()));
                    }
                }
                Predicate::In(attr, options) => {
                    if let Some(ix) = self.indexes.hash_index(attr) {
                        let mut cids = Vec::new();
                        for v in options {
                            cids.extend_from_slice(ix.lookup(v));
                        }
                        return Some((PlanKind::HashProbe, cids));
                    }
                }
                _ => {}
            }
        }
        for c in &conjuncts {
            let (attr, lo, hi): (&str, Bound<&Value>, Bound<&Value>) = match c {
                Predicate::Eq(a, v) => (a, Bound::Included(v), Bound::Included(v)),
                Predicate::Gt(a, v) => (a, Bound::Excluded(v), Bound::Unbounded),
                Predicate::Gte(a, v) => (a, Bound::Included(v), Bound::Unbounded),
                Predicate::Lt(a, v) => (a, Bound::Unbounded, Bound::Excluded(v)),
                Predicate::Lte(a, v) => (a, Bound::Unbounded, Bound::Included(v)),
                _ => continue,
            };
            if let Some(ix) = self.indexes.ordered_index(attr) {
                return Some((PlanKind::OrderedProbe, ix.range(lo, hi)));
            }
        }
        None
    }
}

/// Execute `q` the dumb way: sequential filter over every entity, then the
/// same shared `finish`. This is the oracle every plan is pinned against.
pub fn execute_oracle(entities: &[FusedEntity], q: &Query) -> QueryResult {
    let positions: Vec<usize> =
        (0..entities.len()).filter(|&i| q.filter.matches(&entities[i])).collect();
    finish(q, &positions, entities)
}

/// Turn an ordered position list into the final result. Shared by every
/// plan and the oracle; strictly sequential.
fn finish(q: &Query, positions: &[usize], entities: &[FusedEntity]) -> QueryResult {
    if let Some(agg) = &q.aggregate {
        return aggregate(agg, positions, entities);
    }
    let mut rows: Vec<usize> = positions.to_vec();
    if let Some((attr, order)) = &q.order_by {
        let keys: Vec<Option<Value>> =
            rows.iter().map(|&i| first_value(&entities[i], attr)).collect();
        let mut tagged: Vec<(usize, usize)> = (0..rows.len()).map(|k| (k, rows[k])).collect();
        tagged.sort_by(|(ka, _), (kb, _)| {
            let cmp = cmp_opt(&keys[*ka], &keys[*kb]);
            match order {
                Order::Asc => cmp,
                Order::Desc => cmp.reverse(),
            }
        });
        rows = tagged.into_iter().map(|(_, row)| row).collect();
    }
    if let Some(limit) = q.limit {
        rows.truncate(limit);
    }
    let out = rows.iter().map(|&i| project(&entities[i], &q.project)).collect();
    QueryResult::Rows(out)
}

/// `None` (attribute absent) sorts before every value.
fn cmp_opt(a: &Option<Value>, b: &Option<Value>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => x.total_cmp(y),
    }
}

fn first_value(e: &FusedEntity, attr: &str) -> Option<Value> {
    let mut vals = Vec::new();
    e.attr_values(attr, &mut vals);
    vals.into_iter().next()
}

fn project(e: &FusedEntity, attrs: &[String]) -> Row {
    let fields = if attrs.is_empty() {
        e.record.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    } else {
        let mut out = Vec::with_capacity(attrs.len());
        for attr in attrs {
            let v = match attr.as_str() {
                KEY_ATTR => Some(Value::Str(e.key.clone())),
                MEMBERS_ATTR => Some(Value::Int(e.member_count as i64)),
                CONFIDENCE_ATTR => Some(match e.confidence {
                    Some(c) => Value::Float(c),
                    None => Value::Null,
                }),
                other => e.record.get(other).cloned(),
            };
            if let Some(v) = v {
                out.push((attr.clone(), v));
            }
        }
        out
    };
    Row { key: e.key.clone(), member_count: e.member_count, fields }
}

fn aggregate(agg: &Aggregate, positions: &[usize], entities: &[FusedEntity]) -> QueryResult {
    let mut vals = Vec::new();
    match agg {
        Aggregate::Count => QueryResult::Count(positions.len() as u64),
        Aggregate::Sum(attr) => {
            // Collect every numeric value in row order, then fold once:
            // exact i64 while all ints, f64 as soon as any float appears.
            let mut nums: Vec<Value> = Vec::new();
            for &i in positions {
                vals.clear();
                entities[i].attr_values(attr, &mut vals);
                nums.extend(
                    vals.drain(..).filter(|v| matches!(v, Value::Int(_) | Value::Float(_))),
                );
            }
            if nums.is_empty() {
                return QueryResult::Value(None);
            }
            if nums.iter().any(|v| matches!(v, Value::Float(_))) {
                let mut total = 0.0f64;
                for v in &nums {
                    total += match v {
                        Value::Int(i) => *i as f64,
                        Value::Float(f) => *f,
                        _ => 0.0,
                    };
                }
                QueryResult::Value(Some(Value::Float(total)))
            } else {
                let mut total = 0i64;
                for v in &nums {
                    if let Value::Int(i) = v {
                        total = total.wrapping_add(*i);
                    }
                }
                QueryResult::Value(Some(Value::Int(total)))
            }
        }
        Aggregate::Min(attr) | Aggregate::Max(attr) => {
            let want_min = matches!(agg, Aggregate::Min(_));
            let mut best: Option<Value> = None;
            for &i in positions {
                vals.clear();
                entities[i].attr_values(attr, &mut vals);
                for v in vals.drain(..) {
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best.take() {
                        None => v,
                        Some(b) => {
                            let keep_new = match v.total_cmp(&b) {
                                Ordering::Less => want_min,
                                Ordering::Greater => !want_min,
                                Ordering::Equal => false,
                            };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
            }
            QueryResult::Value(best)
        }
        Aggregate::GroupBy(attr) => {
            let mut groups: BTreeMap<AttrKey, u64> = BTreeMap::new();
            for &i in positions {
                vals.clear();
                entities[i].attr_values(attr, &mut vals);
                for v in vals.drain(..) {
                    *groups.entry(AttrKey(v)).or_insert(0) += 1;
                }
            }
            QueryResult::Groups(groups.into_iter().map(|(k, n)| (k.0, n)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::IndexSpec;
    use datatamer_model::{Record, RecordId, SourceId};

    fn entity(key: &str, price: i64, kind: &str) -> FusedEntity {
        FusedEntity {
            key: key.to_string(),
            record: Record::from_pairs(
                SourceId(0),
                RecordId(0),
                vec![("PRICE", Value::Int(price)), ("KIND", Value::from(kind))],
            ),
            member_count: 1,
            confidence: None,
        }
    }

    fn snap() -> CollectionSnapshot {
        let es = vec![
            entity("a", 30, "musical"),
            entity("b", 10, "play"),
            entity("c", 20, "musical"),
            entity("d", 40, "opera"),
        ];
        CollectionSnapshot::from_entities(
            es,
            IndexSpec::default().hash_on("KIND").ordered_on("PRICE"),
        )
    }

    fn rows_keys(r: &QueryResult) -> Vec<String> {
        match r {
            QueryResult::Rows(rows) => rows.iter().map(|r| r.key.clone()).collect(),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn plans_agree_and_probe_is_used() {
        let s = snap();
        let q = Query::filtered(Predicate::Eq("KIND".into(), "musical".into()));
        let auto = s.execute(&q);
        assert_eq!(auto.plan, PlanKind::HashProbe);
        assert_eq!(auto.candidates, 2);
        let col = s.execute_as(&q, ScanMode::Columnar);
        let full = s.execute_as(&q, ScanMode::FullScan);
        let oracle = execute_oracle(s.entities(), &q);
        assert_eq!(auto.result, oracle);
        assert_eq!(col.result, oracle);
        assert_eq!(full.result, oracle);
        assert_eq!(rows_keys(&oracle), vec!["a", "c"]);
    }

    #[test]
    fn range_probe_and_order_limit() {
        let s = snap();
        let q = Query::filtered(Predicate::Gte("PRICE".into(), Value::Int(20)))
            .order_by("PRICE", Order::Desc)
            .take(2)
            .project(vec!["_key", "PRICE"]);
        let run = s.execute(&q);
        assert_eq!(run.plan, PlanKind::OrderedProbe);
        assert_eq!(run.result, execute_oracle(s.entities(), &q));
        assert_eq!(rows_keys(&run.result), vec!["d", "a"]);
    }

    #[test]
    fn aggregates_match_oracle() {
        let s = snap();
        for agg in [
            Aggregate::Count,
            Aggregate::Sum("PRICE".into()),
            Aggregate::Min("PRICE".into()),
            Aggregate::Max("PRICE".into()),
            Aggregate::GroupBy("KIND".into()),
        ] {
            let q = Query::filtered(Predicate::Gt("PRICE".into(), Value::Int(10)))
                .aggregate(agg.clone());
            assert_eq!(
                s.execute(&q).result,
                execute_oracle(s.entities(), &q),
                "aggregate {agg:?}"
            );
        }
        let q = Query::filtered(Predicate::True).aggregate(Aggregate::Sum("PRICE".into()));
        assert_eq!(s.execute(&q).result, QueryResult::Value(Some(Value::Int(100))));
    }

    #[test]
    fn point_lookup_goes_through_key_index() {
        let s = snap();
        assert_eq!(s.point_lookup("c").unwrap().record.get("PRICE"), Some(&Value::Int(20)));
        assert!(s.point_lookup("zz").is_none());
    }

    #[test]
    fn unindexed_filters_fall_back_to_columnar() {
        let s = snap();
        let q = Query::filtered(Predicate::Contains("KIND".into(), "usic".into()));
        let run = s.execute(&q);
        assert_eq!(run.plan, PlanKind::ColumnarScan);
        assert_eq!(run.result, execute_oracle(s.entities(), &q));
    }
}
