//! # datatamer-query — the read path over fused entities
//!
//! Everything before this crate *produces* the consolidated view — the
//! staged pipeline ingests, deduplicates, and fuses records into a
//! `Vec<FusedEntity>`. This crate is what makes that view a served
//! artifact rather than something callers scan by hand, in four layers:
//!
//! 1. **Secondary indexes** ([`index`]) — a hash index for equality and a
//!    `BTreeMap`-backed ordered index for ranges, over any entity
//!    attribute (including the `_key` / `_members` / `_confidence`
//!    pseudo-attributes). Keys use [`key::AttrKey`], whose equality,
//!    ordering, and hashing all derive from `Value::total_cmp`. Builds
//!    fan out with rayon but insert in a fixed order, and
//!    [`view::CollectionView::sync`] maintains them *incrementally* from
//!    `consolidate_delta`'s dirty-cluster set — counters on
//!    [`index::IndexMaintenance`] prove no full rebuilds happen during
//!    delta ingest.
//! 2. **Columnar projection** ([`columnar`]) — per-attribute typed vectors
//!    with presence bitmaps and `TokenInterner`-backed string
//!    dictionaries, for analytic scans that never touch whole entities.
//! 3. **Typed query AST + planner** ([`ast`], [`exec`]) — `Query { filter,
//!    project, aggregate, order_by, limit }`, planned into a hash probe,
//!    ordered probe, or columnar scan, executed with rayon. Every plan
//!    funnels through one shared result-shaping routine which is also the
//!    whole body of [`exec::execute_oracle`], so planned results are
//!    byte-identical to the naive full scan at any thread count — pinned
//!    by proptest in `tests/query_oracle.rs`.
//! 4. **HTTP/1.1 front end** ([`http`]) — hand-rolled request parsing on
//!    `std::net::TcpListener` (no registry deps), a bounded worker pool,
//!    and per-collection routes for point lookup, query, and stats.
//!    Ingest publishes immutable snapshots through [`http::SharedViews`]
//!    by swapping an `Arc`, so concurrent readers never see a torn view.
//!
//! The [`legacy`] module routes the document-store `storage::Query`
//! through this same engine, so there is exactly one predicate
//! evaluator in the workspace.
//!
//! ```
//! use datatamer_query::prelude::*;
//! use datatamer_core::fusion::FusedEntity;
//! use datatamer_model::{Record, RecordId, SourceId, Value};
//!
//! let entities: Vec<FusedEntity> = (0..100)
//!     .map(|i| FusedEntity {
//!         key: format!("show{i}"),
//!         record: Record::from_pairs(
//!             SourceId(0),
//!             RecordId(i),
//!             vec![
//!                 ("PRICE", Value::Int((i as i64 % 10) * 10)),
//!                 ("KIND", Value::from(if i % 3 == 0 { "musical" } else { "play" })),
//!             ],
//!         ),
//!         member_count: 1,
//!         confidence: None,
//!     })
//!     .collect();
//!
//! let snap = CollectionSnapshot::from_entities(
//!     entities,
//!     IndexSpec::default().hash_on("KIND").ordered_on("PRICE"),
//! );
//! let q = Query::filtered(Predicate::And(vec![
//!     Predicate::Eq("KIND".into(), "musical".into()),
//!     Predicate::Gte("PRICE".into(), Value::Int(50)),
//! ]))
//! .aggregate(Aggregate::Count);
//! let run = snap.execute(&q);
//! assert_eq!(run.plan, PlanKind::HashProbe);
//! assert_eq!(run.result, execute_oracle(snap.entities(), &q));
//! ```

pub mod ast;
pub mod columnar;
pub mod exec;
pub mod http;
pub mod index;
pub mod key;
pub mod legacy;
pub mod view;

pub use ast::{
    Aggregate, AttrSource, Order, Predicate, Query, QueryResult, Row, CONFIDENCE_ATTR, KEY_ATTR,
    MEMBERS_ATTR,
};
pub use columnar::{Column, ColumnData, Columnar};
pub use exec::{execute_oracle, CollectionSnapshot, Executed, PlanKind, ScanMode, SnapshotStats};
pub use http::{QueryServer, ServerConfig, SharedViews};
pub use index::{EntityIndexes, HashIndex, IndexMaintenance, OrderedIndex};
pub use key::AttrKey;
pub use view::{CollectionView, IndexSpec};

/// One-line import for the common query surface.
pub mod prelude {
    pub use crate::ast::{Aggregate, Order, Predicate, Query, QueryResult, Row};
    pub use crate::exec::{execute_oracle, CollectionSnapshot, PlanKind, ScanMode};
    pub use crate::http::{QueryServer, ServerConfig, SharedViews};
    pub use crate::view::{CollectionView, IndexSpec};
}
