//! Error type shared across the Data Tamer workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, DtError>;

/// Errors produced anywhere in the Data Tamer reproduction.
///
/// A single error enum is used across crates so that pipeline stages can be
/// composed without per-crate error-conversion boilerplate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtError {
    /// A document or value failed to decode from its binary representation.
    Decode(String),
    /// A value had an unexpected type for the requested operation.
    Type { expected: &'static str, got: &'static str },
    /// A named entity (collection, attribute, source...) was not found.
    NotFound(String),
    /// A named entity already exists and may not be redefined.
    AlreadyExists(String),
    /// Input data was structurally invalid (e.g. empty source, bad path).
    Invalid(String),
    /// A configuration parameter was out of range.
    Config(String),
    /// An I/O failure, carried as a string to keep the error `Clone + Eq`.
    Io(String),
}

impl fmt::Display for DtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtError::Decode(m) => write!(f, "decode error: {m}"),
            DtError::Type { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            DtError::NotFound(m) => write!(f, "not found: {m}"),
            DtError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            DtError::Invalid(m) => write!(f, "invalid input: {m}"),
            DtError::Config(m) => write!(f, "configuration error: {m}"),
            DtError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for DtError {}

impl From<std::io::Error> for DtError {
    fn from(e: std::io::Error) -> Self {
        DtError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_variant_context() {
        let e = DtError::Type { expected: "int", got: "str" };
        assert_eq!(e.to_string(), "type error: expected int, got str");
        let e = DtError::NotFound("dt.instance".into());
        assert!(e.to_string().contains("dt.instance"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DtError = io.into();
        assert!(matches!(e, DtError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DtError::Invalid("x".into()), DtError::Invalid("x".into()));
        assert_ne!(DtError::Invalid("x".into()), DtError::Invalid("y".into()));
    }
}
