//! Per-source schemas and statistical attribute profiles.
//!
//! Schema integration in Data Tamer matches attributes by *name* and by
//! *content*. The content side needs compact per-attribute statistics:
//! lexical-type histogram, null fraction, value-length stats, numeric
//! moments, and a bounded sample of distinct values for set-overlap and
//! TF-IDF cosine matchers. [`AttributeProfile`] accumulates these in one
//! streaming pass over a source.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::infer::{infer_value, LexicalType};
use crate::record::{Record, SourceId};
use crate::value::Value;

/// Default cap on the distinct-value sample retained per attribute.
pub const DEFAULT_SAMPLE_CAP: usize = 256;

/// Streaming statistical profile of one attribute.
#[derive(Debug, Clone)]
pub struct AttributeProfile {
    /// Total observations (including nulls).
    pub count: u64,
    /// Null observations.
    pub nulls: u64,
    /// Histogram of lexical types over non-null observations.
    pub type_counts: HashMap<LexicalType, u64>,
    /// First-seen distinct non-null values (text form), capped.
    sample: Vec<String>,
    sample_set: HashMap<String, u64>,
    sample_cap: usize,
    /// True once more distinct values were seen than the sample holds.
    pub sample_overflow: bool,
    /// Sum of text lengths of non-null values.
    pub total_len: u64,
    // Streaming numeric moments (Welford) over numeric-typed values.
    num_n: u64,
    num_mean: f64,
    num_m2: f64,
    num_min: f64,
    num_max: f64,
}

impl Default for AttributeProfile {
    fn default() -> Self {
        Self::with_sample_cap(DEFAULT_SAMPLE_CAP)
    }
}

impl AttributeProfile {
    /// Create a profile retaining at most `cap` distinct sample values.
    pub fn with_sample_cap(cap: usize) -> Self {
        AttributeProfile {
            count: 0,
            nulls: 0,
            type_counts: HashMap::new(),
            sample: Vec::new(),
            sample_set: HashMap::new(),
            sample_cap: cap.max(1),
            sample_overflow: false,
            total_len: 0,
            num_n: 0,
            num_mean: 0.0,
            num_m2: 0.0,
            num_min: f64::INFINITY,
            num_max: f64::NEG_INFINITY,
        }
    }

    /// Observe one value.
    pub fn observe(&mut self, v: &Value) {
        self.count += 1;
        let ty = infer_value(v);
        if ty == LexicalType::Null {
            self.nulls += 1;
            return;
        }
        *self.type_counts.entry(ty).or_insert(0) += 1;
        let text = v.to_text();
        self.total_len += text.len() as u64;
        if let Some(x) = numeric_magnitude(v, ty) {
            self.num_n += 1;
            self.num_min = self.num_min.min(x);
            self.num_max = self.num_max.max(x);
            let delta = x - self.num_mean;
            self.num_mean += delta / self.num_n as f64;
            self.num_m2 += delta * (x - self.num_mean);
        }
        match self.sample_set.entry(text) {
            Entry::Occupied(mut e) => *e.get_mut() += 1,
            Entry::Vacant(e) => {
                if self.sample.len() < self.sample_cap {
                    self.sample.push(e.key().clone());
                    e.insert(1);
                } else {
                    self.sample_overflow = true;
                }
            }
        }
    }

    /// Number of non-null observations.
    pub fn non_null(&self) -> u64 {
        self.count - self.nulls
    }

    /// Null fraction over all observations (0 when empty).
    pub fn null_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.nulls as f64 / self.count as f64
        }
    }

    /// Distinct values seen, lower-bounded by the sample (exact until the
    /// sample overflows).
    pub fn distinct_at_least(&self) -> usize {
        self.sample.len()
    }

    /// The retained distinct-value sample, in first-seen order.
    pub fn sample_values(&self) -> &[String] {
        &self.sample
    }

    /// Occurrence count of a sampled value.
    pub fn sample_frequency(&self, value: &str) -> u64 {
        self.sample_set.get(value).copied().unwrap_or(0)
    }

    /// Dominant lexical type (ties break toward the more specific type via
    /// the enum ordering), or `Null` when no non-null value was seen.
    pub fn dominant_type(&self) -> LexicalType {
        self.type_counts
            .iter()
            .max_by_key(|(ty, n)| (**n, std::cmp::Reverse(**ty)))
            .map(|(ty, _)| *ty)
            .unwrap_or(LexicalType::Null)
    }

    /// Fraction of non-null values having the dominant type.
    pub fn type_purity(&self) -> f64 {
        let nn = self.non_null();
        if nn == 0 {
            return 0.0;
        }
        let max = self.type_counts.values().copied().max().unwrap_or(0);
        max as f64 / nn as f64
    }

    /// Mean text length of non-null values.
    pub fn mean_len(&self) -> f64 {
        let nn = self.non_null();
        if nn == 0 {
            0.0
        } else {
            self.total_len as f64 / nn as f64
        }
    }

    /// Numeric summary `(n, min, max, mean, std)` over numeric values, when any.
    pub fn numeric_stats(&self) -> Option<NumericStats> {
        if self.num_n == 0 {
            return None;
        }
        let var = if self.num_n > 1 {
            self.num_m2 / (self.num_n - 1) as f64
        } else {
            0.0
        };
        Some(NumericStats {
            n: self.num_n,
            min: self.num_min,
            max: self.num_max,
            mean: self.num_mean,
            std: var.max(0.0).sqrt(),
        })
    }

    /// Merge another profile into this one (sample union is capped; numeric
    /// moments merge exactly via Chan's parallel algorithm).
    pub fn merge(&mut self, other: &AttributeProfile) {
        self.count += other.count;
        self.nulls += other.nulls;
        self.total_len += other.total_len;
        for (ty, n) in &other.type_counts {
            *self.type_counts.entry(*ty).or_insert(0) += n;
        }
        for v in &other.sample {
            let freq = other.sample_frequency(v);
            match self.sample_set.entry(v.clone()) {
                Entry::Occupied(mut e) => *e.get_mut() += freq,
                Entry::Vacant(e) => {
                    if self.sample.len() < self.sample_cap {
                        self.sample.push(e.key().clone());
                        e.insert(freq);
                    } else {
                        self.sample_overflow = true;
                    }
                }
            }
        }
        self.sample_overflow |= other.sample_overflow;
        if other.num_n > 0 {
            let (na, nb) = (self.num_n as f64, other.num_n as f64);
            let delta = other.num_mean - self.num_mean;
            let n = na + nb;
            if self.num_n == 0 {
                self.num_mean = other.num_mean;
                self.num_m2 = other.num_m2;
            } else {
                self.num_mean += delta * nb / n;
                self.num_m2 += other.num_m2 + delta * delta * na * nb / n;
            }
            self.num_n += other.num_n;
            self.num_min = self.num_min.min(other.num_min);
            self.num_max = self.num_max.max(other.num_max);
        }
    }
}

/// Numeric summary of an attribute's numeric-typed values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericStats {
    pub n: u64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub std: f64,
}

fn numeric_magnitude(v: &Value, ty: LexicalType) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Str(s) => match ty {
            LexicalType::Integer => crate::infer::parse_integer(s).map(|i| i as f64),
            LexicalType::Decimal => crate::infer::parse_decimal(s),
            LexicalType::Money => crate::infer::parse_money(s).map(|m| m.amount),
            LexicalType::Percent => {
                let t = s.trim().trim_end_matches('%');
                let t = t.trim_end_matches("percent").trim_end_matches("PERCENT");
                crate::infer::parse_decimal(t.trim())
            }
            _ => None,
        },
        _ => None,
    }
}

/// One attribute of a source schema.
#[derive(Debug, Clone)]
pub struct AttributeDef {
    /// Attribute name as it appears in the source.
    pub name: String,
    /// Statistical profile accumulated over the source's records.
    pub profile: AttributeProfile,
}

/// The schema of one data source: its attributes with content profiles.
#[derive(Debug, Clone)]
pub struct SourceSchema {
    /// Which source this schema describes.
    pub source: SourceId,
    /// Human-readable source name.
    pub name: String,
    /// Attributes in first-seen order.
    pub attributes: Vec<AttributeDef>,
    /// Records profiled.
    pub record_count: u64,
}

impl SourceSchema {
    /// Create an empty schema.
    pub fn new(source: SourceId, name: impl Into<String>) -> Self {
        SourceSchema { source, name: name.into(), attributes: Vec::new(), record_count: 0 }
    }

    /// Build a schema by profiling a slice of records.
    pub fn profile_records(source: SourceId, name: impl Into<String>, records: &[Record]) -> Self {
        let mut schema = SourceSchema::new(source, name);
        for r in records {
            schema.observe(r);
        }
        schema
    }

    /// Observe one record: every field updates its attribute profile, and
    /// attributes absent from the record accrue an implicit null.
    pub fn observe(&mut self, record: &Record) {
        self.record_count += 1;
        for (name, value) in record.iter() {
            match self.attributes.iter_mut().find(|a| a.name == name) {
                Some(attr) => attr.profile.observe(value),
                None => {
                    // Back-fill nulls for records seen before this attribute.
                    let mut profile = AttributeProfile {
                        count: self.record_count - 1,
                        nulls: self.record_count - 1,
                        ..Default::default()
                    };
                    profile.observe(value);
                    self.attributes.push(AttributeDef { name: name.to_owned(), profile });
                }
            }
        }
        for attr in &mut self.attributes {
            if record.get(&attr.name).is_none() {
                attr.profile.observe(&Value::Null);
            }
        }
    }

    /// Look up an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&AttributeDef> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Attribute names in order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordId;

    fn profile_of(values: &[Value]) -> AttributeProfile {
        let mut p = AttributeProfile::default();
        for v in values {
            p.observe(v);
        }
        p
    }

    #[test]
    fn counts_and_null_fraction() {
        let p = profile_of(&[Value::Int(1), Value::Null, Value::from("x"), Value::Null]);
        assert_eq!(p.count, 4);
        assert_eq!(p.nulls, 2);
        assert_eq!(p.non_null(), 2);
        assert!((p.null_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dominant_type_and_purity() {
        let p = profile_of(&[
            Value::from("$27"),
            Value::from("$30"),
            Value::from("$99.50"),
            Value::from("cheap"),
        ]);
        assert_eq!(p.dominant_type(), LexicalType::Money);
        assert!((p.type_purity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn numeric_stats_parse_money_and_percent() {
        let p = profile_of(&[Value::from("$20"), Value::from("$40")]);
        let s = p.numeric_stats().unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.min, 20.0);
        assert_eq!(s.max, 40.0);
        assert!((s.mean - 30.0).abs() < 1e-12);
        let p = profile_of(&[Value::from("50%"), Value::from("100%")]);
        assert!((p.numeric_stats().unwrap().mean - 75.0).abs() < 1e-12);
    }

    #[test]
    fn welford_std_matches_naive() {
        let xs = [3.0, 7.0, 7.0, 19.0];
        let p = profile_of(&xs.iter().map(|x| Value::Float(*x)).collect::<Vec<_>>());
        let s = p.numeric_stats().unwrap();
        let mean = xs.iter().sum::<f64>() / 4.0;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 3.0;
        assert!((s.std - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn sample_caps_and_flags_overflow() {
        let mut p = AttributeProfile::with_sample_cap(3);
        for i in 0..10 {
            p.observe(&Value::Int(i));
        }
        assert_eq!(p.sample_values().len(), 3);
        assert!(p.sample_overflow);
        assert_eq!(p.distinct_at_least(), 3);
        assert_eq!(p.sample_frequency("0"), 1);
    }

    #[test]
    fn sample_tracks_frequencies() {
        let p = profile_of(&[Value::from("a"), Value::from("a"), Value::from("b")]);
        assert_eq!(p.sample_frequency("a"), 2);
        assert_eq!(p.sample_frequency("b"), 1);
        assert_eq!(p.sample_frequency("zzz"), 0);
    }

    #[test]
    fn merge_combines_moments_exactly() {
        let mut a = profile_of(&[Value::Float(1.0), Value::Float(2.0)]);
        let b = profile_of(&[Value::Float(3.0), Value::Float(4.0), Value::Null]);
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.nulls, 1);
        let s = a.numeric_stats().unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        let direct = profile_of(&[
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Float(3.0),
            Value::Float(4.0),
        ]);
        let ds = direct.numeric_stats().unwrap();
        assert!((s.std - ds.std).abs() < 1e-9);
    }

    #[test]
    fn schema_backfills_nulls_for_late_attributes() {
        let mut schema = SourceSchema::new(SourceId(1), "shows");
        let r1 = Record::from_pairs(SourceId(1), RecordId(1), vec![("a", Value::Int(1))]);
        let r2 = Record::from_pairs(
            SourceId(1),
            RecordId(2),
            vec![("a", Value::Int(2)), ("b", Value::from("x"))],
        );
        schema.observe(&r1);
        schema.observe(&r2);
        assert_eq!(schema.arity(), 2);
        let b = schema.attribute("b").unwrap();
        assert_eq!(b.profile.count, 2);
        assert_eq!(b.profile.nulls, 1);
        // r1 lacked "b"; r2 had both: "a" has no nulls.
        let a = schema.attribute("a").unwrap();
        assert_eq!(a.profile.nulls, 0);
        assert_eq!(schema.record_count, 2);
    }

    #[test]
    fn profile_records_builds_full_schema() {
        let recs = vec![
            Record::from_pairs(SourceId(2), RecordId(1), vec![("show", "Matilda"), ("price", "$27")]),
            Record::from_pairs(SourceId(2), RecordId(2), vec![("show", "Wicked"), ("price", "$99")]),
        ];
        let schema = SourceSchema::profile_records(SourceId(2), "ftable_0", &recs);
        assert_eq!(schema.attribute_names(), vec!["show", "price"]);
        assert_eq!(schema.attribute("price").unwrap().profile.dominant_type(), LexicalType::Money);
        assert_eq!(schema.record_count, 2);
    }
}
