//! Core data model for the Data Tamer reproduction.
//!
//! This crate defines the dynamic value system ([`Value`]), hierarchical
//! semi-structured documents ([`Document`]), the *flattening* step that turns
//! hierarchical data into flat [`Record`]s (the paper's prerequisite before
//! any Data Tamer processing), per-source schemas with statistical attribute
//! profiles ([`SourceSchema`], [`AttributeProfile`]), and lexical type
//! inference ([`infer::LexicalType`]).
//!
//! Everything downstream — the sharded storage engine, the schema-integration
//! facility, entity consolidation, cleaning, and fusion — is built on these
//! types.

pub mod document;
pub mod error;
pub mod flatten;
pub mod infer;
pub mod record;
pub mod schema;
pub mod value;

pub use document::Document;
pub use error::{DtError, Result};
pub use flatten::{flatten, ArrayMode, FlattenOptions};
pub use infer::LexicalType;
pub use record::{AttrId, Record, RecordId, SourceId};
pub use schema::{AttributeDef, AttributeProfile, SourceSchema};
pub use value::Value;
