//! Dynamic value type for semi-structured data.
//!
//! [`Value`] is the leaf-to-root value representation used by the storage
//! engine, the flattener, and every downstream module. It intentionally
//! mirrors the value systems of document stores (null / bool / int / float /
//! string / array / document) since the paper's text-side substrate is a
//! MongoDB-style sharded document store.

use std::cmp::Ordering;
use std::fmt;

use crate::document::Document;

/// A dynamically typed value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// Absent / unknown value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered array of values.
    Array(Vec<Value>),
    /// Nested document.
    Doc(Document),
}

impl Value {
    /// Short, stable name of the value's runtime type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Array(_) => "array",
            Value::Doc(_) => "doc",
        }
    }

    /// Rank used for cross-type ordering (null < bool < numbers < str < array < doc).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Array(_) => 4,
            Value::Doc(_) => 5,
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True when the value is a scalar (not array/doc).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Value::Array(_) | Value::Doc(_))
    }

    /// Borrow as `&str`, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view, if the value is an int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as nested document.
    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Value::Doc(d) => Some(d),
            _ => None,
        }
    }

    /// Number of scalar leaves contained in this value (a scalar counts as 1).
    pub fn leaf_count(&self) -> usize {
        match self {
            Value::Array(a) => a.iter().map(Value::leaf_count).sum(),
            Value::Doc(d) => d.iter().map(|(_, v)| v.leaf_count()).sum(),
            _ => 1,
        }
    }

    /// Approximate in-memory footprint in bytes, used for extent accounting
    /// before binary encoding is available.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Array(a) => 5 + a.iter().map(Value::approx_size).sum::<usize>(),
            Value::Doc(d) => {
                5 + d
                    .iter()
                    .map(|(k, v)| 1 + k.len() + v.approx_size())
                    .sum::<usize>()
            }
        }
    }

    /// Canonical string rendering used for tokenisation and matching.
    ///
    /// Unlike `Display`, strings are rendered without quotes.
    pub fn to_text(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        }
    }

    /// Total ordering across all values, suitable for index keys.
    ///
    /// Floats order by IEEE total-order semantics (NaN sorts last among
    /// numbers); cross-type comparisons order by type rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Doc(a), Value::Doc(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => unreachable!("same type rank implies comparable variants"),
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Doc(d) => write!(f, "{d}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Document> for Value {
    fn from(d: Document) -> Self {
        Value::Doc(d)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(3i64).as_float(), Some(3.0));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert!(Value::Null.as_int().is_none());
        assert!(Value::from("x").as_float().is_none());
    }

    #[test]
    fn display_renders_json_like() {
        let v = Value::Array(vec![Value::Int(1), Value::Str("a".into()), Value::Null]);
        assert_eq!(v.to_string(), "[1, \"a\", null]");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
    }

    #[test]
    fn to_text_unquotes_strings() {
        assert_eq!(Value::from("Matilda").to_text(), "Matilda");
        assert_eq!(Value::Int(27).to_text(), "27");
    }

    #[test]
    fn total_cmp_orders_across_types() {
        let mut vals = [Value::Str("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::Str("a".into()));
    }

    #[test]
    fn total_cmp_mixes_ints_and_floats() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert_eq!(Value::Float(f64::NAN).total_cmp(&Value::Int(i64::MAX)), Ordering::Greater);
    }

    #[test]
    fn leaf_count_recurses() {
        let d = Document::from_pairs(vec![
            ("a", Value::Int(1)),
            ("b", Value::Array(vec![Value::Int(2), Value::Int(3)])),
            (
                "c",
                Value::Doc(Document::from_pairs(vec![("d", Value::Str("x".into()))])),
            ),
        ]);
        assert_eq!(Value::Doc(d).leaf_count(), 4);
    }

    #[test]
    fn approx_size_scales_with_content() {
        let small = Value::from("ab").approx_size();
        let big = Value::from("abcdefghij").approx_size();
        assert!(big > small);
        assert!(Value::Null.approx_size() >= 1);
    }

    #[test]
    fn array_ordering_is_lexicographic() {
        let a = Value::Array(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::Array(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::Array(vec![Value::Int(1)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
    }
}
