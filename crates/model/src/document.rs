//! Ordered hierarchical documents.
//!
//! A [`Document`] is an insertion-ordered mapping from field names to
//! [`Value`]s. Field order is preserved because the paper's semi-structured
//! collections are document-store collections whose statistics (and encoded
//! sizes) depend on the physical field layout.

use std::fmt;

use crate::value::Value;

/// An insertion-ordered field → value mapping.
///
/// Documents are small in practice (text-derived entities have a handful of
/// attributes; structured sources have 5–20), so lookups are linear scans —
/// measurably faster than hashing at these cardinalities and free of any
/// per-document allocation beyond the field vector itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    fields: Vec<(String, Value)>,
}

impl Document {
    /// Create an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty document with room for `cap` fields.
    pub fn with_capacity(cap: usize) -> Self {
        Document { fields: Vec::with_capacity(cap) }
    }

    /// Build a document from `(name, value)` pairs, keeping the given order.
    /// Later duplicates overwrite earlier ones in place.
    pub fn from_pairs<K: Into<String>, V: Into<Value>>(pairs: Vec<(K, V)>) -> Self {
        let mut doc = Document::with_capacity(pairs.len());
        for (k, v) in pairs {
            doc.set(k.into(), v.into());
        }
        doc
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Get a field's value by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Get a mutable reference to a field's value by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.fields.iter_mut().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// True when a field with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Set a field, overwriting in place when it already exists.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        let value = value.into();
        match self.get_mut(&name) {
            Some(slot) => *slot = value,
            None => self.fields.push((name, value)),
        }
    }

    /// Remove a field, returning its value when present.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|(k, _)| k == name)?;
        Some(self.fields.remove(idx).1)
    }

    /// Iterate fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate field names in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(k, _)| k.as_str())
    }

    /// Resolve a dotted path such as `"entities.0.name"`.
    ///
    /// Path segments that parse as integers index into arrays; all other
    /// segments are field names on nested documents.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut segments = path.split('.');
        let first = segments.next()?;
        let mut cur = self.get(first)?;
        for seg in segments {
            cur = match cur {
                Value::Doc(d) => d.get(seg)?,
                Value::Array(a) => {
                    let idx: usize = seg.parse().ok()?;
                    a.get(idx)?
                }
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Set a value at a dotted path, creating intermediate documents as
    /// needed. Array segments are not auto-created; setting through an array
    /// requires the element to already exist.
    pub fn set_path(&mut self, path: &str, value: impl Into<Value>) {
        let segments: Vec<&str> = path.split('.').collect();
        self.set_path_segments(&segments, value.into());
    }

    fn set_path_segments(&mut self, segments: &[&str], value: Value) {
        debug_assert!(!segments.is_empty());
        if segments.len() == 1 {
            self.set(segments[0], value);
            return;
        }
        let head = segments[0];
        if !matches!(self.get(head), Some(Value::Doc(_))) {
            self.set(head, Value::Doc(Document::new()));
        }
        if let Some(Value::Doc(d)) = self.get_mut(head) {
            d.set_path_segments(&segments[1..], value);
        }
    }

    /// Depth of nesting: a flat document has depth 1.
    pub fn depth(&self) -> usize {
        1 + self
            .fields
            .iter()
            .map(|(_, v)| value_depth(v))
            .max()
            .unwrap_or(0)
    }

    /// Approximate in-memory footprint (see [`Value::approx_size`]).
    pub fn approx_size(&self) -> usize {
        Value::Doc(self.clone()).approx_size()
    }

    /// Collect every `(dotted_path, scalar)` leaf pair in order.
    pub fn leaves(&self) -> Vec<(String, &Value)> {
        let mut out = Vec::new();
        for (k, v) in self.iter() {
            collect_leaves(k, v, &mut out);
        }
        out
    }
}

fn value_depth(v: &Value) -> usize {
    match v {
        Value::Doc(d) => d.depth(),
        Value::Array(a) => a.iter().map(value_depth).max().unwrap_or(0),
        _ => 0,
    }
}

fn collect_leaves<'a>(prefix: &str, v: &'a Value, out: &mut Vec<(String, &'a Value)>) {
    match v {
        Value::Doc(d) => {
            for (k, inner) in d.iter() {
                collect_leaves(&format!("{prefix}.{k}"), inner, out);
            }
        }
        Value::Array(a) => {
            for (i, inner) in a.iter().enumerate() {
                collect_leaves(&format!("{prefix}.{i}"), inner, out);
            }
        }
        scalar => out.push((prefix.to_owned(), scalar)),
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "\"{k}\": {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for Document {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut doc = Document::new();
        for (k, v) in iter {
            doc.set(k, v);
        }
        doc
    }
}

impl IntoIterator for Document {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.fields.into_iter()
    }
}

/// Convenience macro for building documents in tests and examples.
#[macro_export]
macro_rules! doc {
    () => { $crate::document::Document::new() };
    ($($key:expr => $val:expr),+ $(,)?) => {{
        let mut d = $crate::document::Document::new();
        $( d.set($key, $val); )+
        d
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites_in_place_preserving_order() {
        let mut d = doc! {"a" => 1i64, "b" => 2i64};
        d.set("a", 10i64);
        assert_eq!(d.get("a"), Some(&Value::Int(10)));
        assert_eq!(d.keys().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn remove_returns_value() {
        let mut d = doc! {"a" => 1i64, "b" => "x"};
        assert_eq!(d.remove("a"), Some(Value::Int(1)));
        assert_eq!(d.remove("a"), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn get_path_traverses_docs_and_arrays() {
        let d = doc! {
            "show" => "Matilda",
            "entities" => Value::Array(vec![
                Value::Doc(doc! {"type" => "Person", "name" => "Ann"}),
                Value::Doc(doc! {"type" => "City", "name" => "NYC"}),
            ])
        };
        assert_eq!(d.get_path("show"), Some(&Value::Str("Matilda".into())));
        assert_eq!(
            d.get_path("entities.1.name"),
            Some(&Value::Str("NYC".into()))
        );
        assert_eq!(d.get_path("entities.2.name"), None);
        assert_eq!(d.get_path("entities.x"), None);
        assert_eq!(d.get_path("missing.path"), None);
    }

    #[test]
    fn set_path_creates_intermediates() {
        let mut d = Document::new();
        d.set_path("a.b.c", 7i64);
        assert_eq!(d.get_path("a.b.c"), Some(&Value::Int(7)));
        d.set_path("a.b.c", 8i64);
        assert_eq!(d.get_path("a.b.c"), Some(&Value::Int(8)));
        // Setting through an existing scalar replaces it with a document.
        d.set_path("a.b.c.d", 9i64);
        assert_eq!(d.get_path("a.b.c.d"), Some(&Value::Int(9)));
    }

    #[test]
    fn depth_counts_nesting() {
        assert_eq!(doc! {"a" => 1i64}.depth(), 1);
        let nested = doc! {"a" => Value::Doc(doc! {"b" => Value::Doc(doc!{"c" => 1i64})})};
        assert_eq!(nested.depth(), 3);
        let arr = doc! {"a" => Value::Array(vec![Value::Doc(doc!{"b" => 1i64})])};
        assert_eq!(arr.depth(), 2);
    }

    #[test]
    fn leaves_enumerate_dotted_paths() {
        let d = doc! {
            "a" => 1i64,
            "b" => Value::Doc(doc! {"c" => "x"}),
            "d" => Value::Array(vec![Value::Int(2), Value::Int(3)])
        };
        let leaves = d.leaves();
        let paths: Vec<&str> = leaves.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["a", "b.c", "d.0", "d.1"]);
    }

    #[test]
    fn display_is_json_like() {
        let d = doc! {"name" => "Matilda", "price" => 27i64};
        assert_eq!(d.to_string(), "{\"name\": \"Matilda\", \"price\": 27}");
    }

    #[test]
    fn from_iter_dedups() {
        let d: Document = vec![
            ("a".to_string(), Value::Int(1)),
            ("a".to_string(), Value::Int(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d.get("a"), Some(&Value::Int(2)));
    }
}
