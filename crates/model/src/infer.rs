//! Lexical type inference over string data.
//!
//! Structured sources arrive as text (CSV cells, scraped tables) and parsed
//! web text is all strings; both the schema-integration matchers and the
//! cleaning/transformation engine need to know what a string *lexically is*:
//! a money amount (`"$27"`), a date (`"3/4/2013"`), a URL, a percentage, a
//! number, etc. All detectors are hand-rolled scanners — no regex engine.

use crate::value::Value;

/// Lexical type of a string value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LexicalType {
    Null,
    Bool,
    Integer,
    Decimal,
    /// Currency amount with symbol or code, e.g. `$27`, `€19.99`, `27 USD`.
    Money,
    /// Percentage, e.g. `93%`, `93 percent`.
    Percent,
    /// Calendar date in common numeric or month-name formats.
    Date,
    /// Clock time such as `7pm`, `19:30`.
    Time,
    /// `http(s)://...` or `www.`-prefixed URL.
    Url,
    /// Free text (fallback).
    Text,
}

impl LexicalType {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LexicalType::Null => "null",
            LexicalType::Bool => "bool",
            LexicalType::Integer => "integer",
            LexicalType::Decimal => "decimal",
            LexicalType::Money => "money",
            LexicalType::Percent => "percent",
            LexicalType::Date => "date",
            LexicalType::Time => "time",
            LexicalType::Url => "url",
            LexicalType::Text => "text",
        }
    }

    /// Whether values of this type carry a numeric magnitude.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            LexicalType::Integer | LexicalType::Decimal | LexicalType::Money | LexicalType::Percent
        )
    }
}

/// Infer the lexical type of a [`Value`].
pub fn infer_value(v: &Value) -> LexicalType {
    match v {
        Value::Null => LexicalType::Null,
        Value::Bool(_) => LexicalType::Bool,
        Value::Int(_) => LexicalType::Integer,
        Value::Float(_) => LexicalType::Decimal,
        Value::Str(s) => infer_str(s),
        Value::Array(_) | Value::Doc(_) => LexicalType::Text,
    }
}

/// Infer the lexical type of a raw string.
pub fn infer_str(raw: &str) -> LexicalType {
    let s = raw.trim();
    if s.is_empty() || s.eq_ignore_ascii_case("null") || s.eq_ignore_ascii_case("n/a") || s == "-" {
        return LexicalType::Null;
    }
    if s.eq_ignore_ascii_case("true") || s.eq_ignore_ascii_case("false") {
        return LexicalType::Bool;
    }
    if is_url(s) {
        return LexicalType::Url;
    }
    if parse_money(s).is_some() {
        return LexicalType::Money;
    }
    if is_percent(s) {
        return LexicalType::Percent;
    }
    if parse_date(s).is_some() {
        return LexicalType::Date;
    }
    if is_time(s) {
        return LexicalType::Time;
    }
    if parse_integer(s).is_some() {
        return LexicalType::Integer;
    }
    if parse_decimal(s).is_some() {
        return LexicalType::Decimal;
    }
    LexicalType::Text
}

/// Parse an integer allowing thousands separators: `960,998` → 960998.
pub fn parse_integer(s: &str) -> Option<i64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (neg, digits) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    if digits.is_empty() {
        return None;
    }
    let mut val: i64 = 0;
    let mut any = false;
    let mut since_comma = 0usize;
    let mut seen_comma = false;
    for c in digits.chars() {
        match c {
            '0'..='9' => {
                val = val.checked_mul(10)?.checked_add((c as u8 - b'0') as i64)?;
                any = true;
                since_comma += 1;
            }
            ',' => {
                // A separator must follow 1-3 leading digits and precede
                // exactly 3 digits per group; validate the group retroactively.
                if !any || (seen_comma && since_comma != 3) || since_comma > 3 {
                    return None;
                }
                seen_comma = true;
                since_comma = 0;
            }
            _ => return None,
        }
    }
    if seen_comma && since_comma != 3 {
        return None;
    }
    if !any {
        return None;
    }
    Some(if neg { -val } else { val })
}

/// Parse a decimal number with optional thousands separators.
pub fn parse_decimal(s: &str) -> Option<f64> {
    let s = s.trim();
    if let Some(dot) = s.find('.') {
        let (int_part, frac_part) = s.split_at(dot);
        let frac = &frac_part[1..];
        if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let int_val = if int_part.is_empty() || int_part == "-" || int_part == "+" {
            if int_part == "-" { -0.0 } else { 0.0 }
        } else {
            parse_integer(int_part)? as f64
        };
        let neg = int_part.starts_with('-');
        let frac_val = frac.bytes().fold(0f64, |acc, b| acc * 10.0 + (b - b'0') as f64)
            / 10f64.powi(frac.len() as i32);
        Some(if neg { int_val - frac_val } else { int_val + frac_val })
    } else {
        parse_integer(s).map(|i| i as f64)
    }
}

/// Known currency markers: `(symbol_or_code, iso)` pairs.
const CURRENCIES: &[(&str, &str)] = &[
    ("$", "USD"),
    ("€", "EUR"),
    ("£", "GBP"),
    ("¥", "JPY"),
    ("USD", "USD"),
    ("EUR", "EUR"),
    ("GBP", "GBP"),
    ("JPY", "JPY"),
    ("dollars", "USD"),
    ("euros", "EUR"),
];

/// A parsed money amount.
#[derive(Debug, Clone, PartialEq)]
pub struct Money {
    /// Amount in major units.
    pub amount: f64,
    /// ISO currency code.
    pub currency: &'static str,
}

/// Parse a currency amount: `$27`, `€19.99`, `27 USD`, `1,250 dollars`.
pub fn parse_money(s: &str) -> Option<Money> {
    let s = s.trim();
    // Prefix symbol/code form.
    for (marker, iso) in CURRENCIES {
        if let Some(rest) = strip_prefix_ci(s, marker) {
            let rest = rest.trim_start();
            if let Some(amount) = parse_decimal(rest) {
                return Some(Money { amount, currency: iso });
            }
        }
        if let Some(rest) = strip_suffix_ci(s, marker) {
            let rest = rest.trim_end();
            if !rest.is_empty() {
                if let Some(amount) = parse_decimal(rest) {
                    return Some(Money { amount, currency: iso });
                }
            }
        }
    }
    None
}

fn strip_prefix_ci<'a>(s: &'a str, prefix: &str) -> Option<&'a str> {
    if s.len() >= prefix.len()
        && s.is_char_boundary(prefix.len())
        && s[..prefix.len()].eq_ignore_ascii_case(prefix)
    {
        Some(&s[prefix.len()..])
    } else {
        None
    }
}

fn strip_suffix_ci<'a>(s: &'a str, suffix: &str) -> Option<&'a str> {
    let cut = s.len().checked_sub(suffix.len())?;
    if s.is_char_boundary(cut) && s[cut..].eq_ignore_ascii_case(suffix) {
        Some(&s[..cut])
    } else {
        None
    }
}

fn is_percent(s: &str) -> bool {
    if let Some(rest) = s.strip_suffix('%') {
        return parse_decimal(rest.trim_end()).is_some();
    }
    if let Some(rest) = strip_suffix_ci(s, "percent") {
        return parse_decimal(rest.trim_end()).is_some();
    }
    false
}

const MONTHS: &[&str] = &[
    "january", "february", "march", "april", "may", "june", "july", "august", "september",
    "october", "november", "december",
];

/// A parsed calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimpleDate {
    pub year: u16,
    pub month: u8,
    pub day: u8,
}

impl SimpleDate {
    /// Render in the paper's `M/D/YYYY` style (Table VI's `3/4/2013`).
    pub fn to_us_string(self) -> String {
        format!("{}/{}/{}", self.month, self.day, self.year)
    }

    /// Render in ISO `YYYY-MM-DD` style.
    pub fn to_iso_string(self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn month_from_name(name: &str) -> Option<u8> {
    let lower = name.to_ascii_lowercase();
    MONTHS
        .iter()
        .position(|m| *m == lower || (lower.len() >= 3 && m.starts_with(&lower[..3]) && lower.len() == 3))
        .map(|i| i as u8 + 1)
}

fn valid_date(year: u16, month: u8, day: u8) -> Option<SimpleDate> {
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) || !(1000..=3000).contains(&year) {
        return None;
    }
    Some(SimpleDate { year, month, day })
}

/// Parse common date formats: `3/4/2013`, `2013-03-04`, `March 4, 2013`,
/// `4 March 2013`, `Mar 4 2013`.
pub fn parse_date(s: &str) -> Option<SimpleDate> {
    let s = s.trim();
    // Numeric with separators.
    for sep in ['/', '-'] {
        let parts: Vec<&str> = s.split(sep).collect();
        if parts.len() == 3 && parts.iter().all(|p| p.bytes().all(|b| b.is_ascii_digit()) && !p.is_empty()) {
            let nums: Vec<u32> = parts.iter().map(|p| p.parse().unwrap_or(0)).collect();
            // YYYY-MM-DD
            if parts[0].len() == 4 {
                return valid_date(nums[0] as u16, nums[1] as u8, nums[2] as u8);
            }
            // M/D/YYYY
            if parts[2].len() == 4 {
                return valid_date(nums[2] as u16, nums[0] as u8, nums[1] as u8);
            }
            return None;
        }
    }
    // Month-name forms.
    let cleaned: String = s
        .chars()
        .map(|c| if c == ',' { ' ' } else { c })
        .collect();
    let tokens: Vec<&str> = cleaned.split_whitespace().collect();
    if tokens.len() == 3 {
        // "March 4 2013"
        if let Some(m) = month_from_name(tokens[0]) {
            if let (Ok(d), Ok(y)) = (tokens[1].parse::<u8>(), tokens[2].parse::<u16>()) {
                return valid_date(y, m, d);
            }
        }
        // "4 March 2013"
        if let Some(m) = month_from_name(tokens[1]) {
            if let (Ok(d), Ok(y)) = (tokens[0].parse::<u8>(), tokens[2].parse::<u16>()) {
                return valid_date(y, m, d);
            }
        }
    }
    None
}

fn is_time(s: &str) -> bool {
    let lower = s.to_ascii_lowercase();
    // "7pm", "7 pm", "11am"
    for suffix in ["am", "pm"] {
        if let Some(rest) = lower.strip_suffix(suffix) {
            let rest = rest.trim_end();
            if let Ok(h) = rest.parse::<u8>() {
                return (1..=12).contains(&h);
            }
            // "7:30pm"
            if let Some((h, m)) = rest.split_once(':') {
                return h.parse::<u8>().map(|h| (1..=12).contains(&h)).unwrap_or(false)
                    && m.parse::<u8>().map(|m| m < 60).unwrap_or(false);
            }
        }
    }
    // "19:30"
    if let Some((h, m)) = lower.split_once(':') {
        if let (Ok(h), Ok(m)) = (h.parse::<u8>(), m.parse::<u8>()) {
            return h < 24 && m < 60 && !lower.contains(' ');
        }
    }
    false
}

fn is_url(s: &str) -> bool {
    let lower = s.to_ascii_lowercase();
    if s.contains(char::is_whitespace) {
        return false;
    }
    (lower.starts_with("http://") || lower.starts_with("https://") || lower.starts_with("www."))
        && lower.len() > 8
        && lower.contains('.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_with_separators() {
        assert_eq!(parse_integer("960,998"), Some(960_998));
        assert_eq!(parse_integer("1,234,567"), Some(1_234_567));
        assert_eq!(parse_integer("-42"), Some(-42));
        assert_eq!(parse_integer("12,34"), None);
        assert_eq!(parse_integer("1,2345"), None);
        assert_eq!(parse_integer(",123"), None);
        assert_eq!(parse_integer(""), None);
        assert_eq!(parse_integer("12a"), None);
    }

    #[test]
    fn decimals() {
        assert_eq!(parse_decimal("27"), Some(27.0));
        assert_eq!(parse_decimal("19.99"), Some(19.99));
        assert_eq!(parse_decimal("1,250.50"), Some(1250.50));
        assert_eq!(parse_decimal("-0.5"), Some(-0.5));
        assert_eq!(parse_decimal("1."), None);
        assert_eq!(parse_decimal("a.5"), None);
    }

    #[test]
    fn money_prefix_and_suffix() {
        assert_eq!(parse_money("$27"), Some(Money { amount: 27.0, currency: "USD" }));
        assert_eq!(parse_money("€19.99"), Some(Money { amount: 19.99, currency: "EUR" }));
        assert_eq!(parse_money("27 USD"), Some(Money { amount: 27.0, currency: "USD" }));
        assert_eq!(
            parse_money("1,250 dollars"),
            Some(Money { amount: 1250.0, currency: "USD" })
        );
        assert_eq!(parse_money("27"), None);
        assert_eq!(parse_money("$"), None);
    }

    #[test]
    fn dates_in_paper_formats() {
        // Table VI: FIRST = "3/4/2013"
        let d = parse_date("3/4/2013").unwrap();
        assert_eq!((d.year, d.month, d.day), (2013, 3, 4));
        assert_eq!(d.to_us_string(), "3/4/2013");
        assert_eq!(d.to_iso_string(), "2013-03-04");
        let iso = parse_date("2013-03-04").unwrap();
        assert_eq!(iso, d);
        assert_eq!(parse_date("March 4, 2013"), Some(d));
        assert_eq!(parse_date("4 March 2013"), Some(d));
        assert_eq!(parse_date("Mar 4 2013"), Some(d));
        assert_eq!(parse_date("13/40/2013"), None);
        assert_eq!(parse_date("not a date"), None);
    }

    #[test]
    fn times() {
        for t in ["7pm", "7 pm", "11am", "7:30pm", "19:30"] {
            assert_eq!(infer_str(t), LexicalType::Time, "{t}");
        }
        assert_ne!(infer_str("25:99"), LexicalType::Time);
        assert_ne!(infer_str("13pm"), LexicalType::Time);
    }

    #[test]
    fn urls() {
        assert_eq!(infer_str("http://example.com/a"), LexicalType::Url);
        assert_eq!(infer_str("https://broadway.org"), LexicalType::Url);
        assert_eq!(infer_str("www.playbill.com"), LexicalType::Url);
        assert_eq!(infer_str("http://b ad.com"), LexicalType::Text);
    }

    #[test]
    fn full_inference_precedence() {
        assert_eq!(infer_str(""), LexicalType::Null);
        assert_eq!(infer_str("N/A"), LexicalType::Null);
        assert_eq!(infer_str("true"), LexicalType::Bool);
        assert_eq!(infer_str("$27"), LexicalType::Money);
        assert_eq!(infer_str("93%"), LexicalType::Percent);
        assert_eq!(infer_str("93 percent"), LexicalType::Percent);
        assert_eq!(infer_str("960,998"), LexicalType::Integer);
        assert_eq!(infer_str("0.93"), LexicalType::Decimal);
        assert_eq!(infer_str("Shubert Theatre"), LexicalType::Text);
    }

    #[test]
    fn infer_value_uses_native_types() {
        assert_eq!(infer_value(&Value::Int(3)), LexicalType::Integer);
        assert_eq!(infer_value(&Value::Float(3.5)), LexicalType::Decimal);
        assert_eq!(infer_value(&Value::Null), LexicalType::Null);
        assert_eq!(infer_value(&Value::Str("$5".into())), LexicalType::Money);
    }

    #[test]
    fn numeric_classification() {
        assert!(LexicalType::Money.is_numeric());
        assert!(LexicalType::Integer.is_numeric());
        assert!(!LexicalType::Date.is_numeric());
        assert!(!LexicalType::Text.is_numeric());
    }
}
