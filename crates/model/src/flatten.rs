//! Flattening hierarchical documents into flat records.
//!
//! The paper: *"By flattening here we mean the process of converting
//! hierarchical data into flat records before processing by Data Tamer."*
//! The domain-specific parser emits hierarchical instance/entity documents;
//! this module converts them to [`Record`]s that the schema-integration,
//! cleaning, and consolidation stages consume.

use crate::document::Document;
use crate::record::{Record, RecordId, SourceId};
use crate::value::Value;

/// How arrays are handled during flattening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrayMode {
    /// Arrays of documents *explode* into one output record per element
    /// (cartesian across sibling arrays); scalar arrays are joined into a
    /// single delimited string field. This is the default because it matches
    /// how parsed text (one instance, many extracted entities) maps onto
    /// entity records.
    #[default]
    Explode,
    /// Every array element becomes its own indexed column (`tags.0`,
    /// `tags.1`, ...). Lossless; used when record multiplicity must not
    /// change.
    Index,
    /// Scalar arrays join into a delimited string; arrays of documents take
    /// only their first element. Lossy but produces exactly one record.
    JoinFirst,
}

/// Options controlling flattening.
#[derive(Debug, Clone)]
pub struct FlattenOptions {
    /// Separator between path segments in generated column names.
    pub separator: char,
    /// Array handling mode.
    pub array_mode: ArrayMode,
    /// Join delimiter for scalar arrays in `Explode`/`JoinFirst` modes.
    pub join_with: String,
    /// Safety cap on records produced by the cartesian explosion of one
    /// document. Exceeding it truncates (never errors): parsed web text can
    /// carry dozens of entity arrays and curation must not die mid-ingest.
    pub max_explode: usize,
}

impl Default for FlattenOptions {
    fn default() -> Self {
        FlattenOptions {
            separator: '.',
            array_mode: ArrayMode::Explode,
            join_with: "; ".to_owned(),
            max_explode: 1024,
        }
    }
}

/// Flatten one hierarchical document into one or more flat records.
///
/// `source`/`base_id` seed the produced record identities; when a document
/// explodes into multiple records they share `base_id`'s high bits with a
/// low-bits ordinal (callers that need strict uniqueness should allocate ids
/// from a counter per produced record instead).
pub fn flatten(
    doc: &Document,
    source: SourceId,
    base_id: RecordId,
    opts: &FlattenOptions,
) -> Vec<Record> {
    // Start from one empty field-list and expand as arrays explode.
    let mut rows: Vec<Vec<(String, Value)>> = vec![Vec::new()];
    flatten_into(doc, "", opts, &mut rows);
    rows.truncate(opts.max_explode);
    rows.into_iter()
        .enumerate()
        .map(|(i, fields)| {
            let mut r = Record::new(source, RecordId(base_id.0.wrapping_add(i as u64)));
            for (k, v) in fields {
                r.set(k, v);
            }
            r
        })
        .collect()
}

fn flatten_into(
    doc: &Document,
    prefix: &str,
    opts: &FlattenOptions,
    rows: &mut Vec<Vec<(String, Value)>>,
) {
    for (key, value) in doc.iter() {
        let col = if prefix.is_empty() {
            key.to_owned()
        } else {
            format!("{prefix}{}{key}", opts.separator)
        };
        flatten_value(value, &col, opts, rows);
    }
}

fn flatten_value(
    value: &Value,
    col: &str,
    opts: &FlattenOptions,
    rows: &mut Vec<Vec<(String, Value)>>,
) {
    match value {
        Value::Doc(inner) => flatten_into(inner, col, opts, rows),
        Value::Array(items) => flatten_array(items, col, opts, rows),
        scalar => {
            for row in rows.iter_mut() {
                row.push((col.to_owned(), scalar.clone()));
            }
        }
    }
}

fn flatten_array(
    items: &[Value],
    col: &str,
    opts: &FlattenOptions,
    rows: &mut Vec<Vec<(String, Value)>>,
) {
    if items.is_empty() {
        return;
    }
    let all_scalar = items.iter().all(Value::is_scalar);
    match opts.array_mode {
        ArrayMode::Index => {
            for (i, item) in items.iter().enumerate() {
                let icol = format!("{col}{}{i}", opts.separator);
                flatten_value(item, &icol, opts, rows);
            }
        }
        ArrayMode::JoinFirst => {
            if all_scalar {
                let joined = join_scalars(items, &opts.join_with);
                for row in rows.iter_mut() {
                    row.push((col.to_owned(), Value::Str(joined.clone())));
                }
            } else {
                flatten_value(&items[0], col, opts, rows);
            }
        }
        ArrayMode::Explode => {
            if all_scalar {
                let joined = join_scalars(items, &opts.join_with);
                for row in rows.iter_mut() {
                    row.push((col.to_owned(), Value::Str(joined.clone())));
                }
            } else {
                // Cartesian product: each existing row forks per element.
                let base = std::mem::take(rows);
                for item in items {
                    let mut branch = base.clone();
                    flatten_value(item, col, opts, &mut branch);
                    rows.append(&mut branch);
                    if rows.len() >= opts.max_explode {
                        rows.truncate(opts.max_explode);
                        return;
                    }
                }
            }
        }
    }
}

fn join_scalars(items: &[Value], sep: &str) -> String {
    let mut out = String::new();
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(sep);
        }
        out.push_str(&v.to_text());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn src() -> (SourceId, RecordId) {
        (SourceId(7), RecordId(100))
    }

    fn parsed_instance() -> Document {
        doc! {
            "fragment" => "Matilda grossed 960,998",
            "meta" => Value::Doc(doc! {"lang" => "en", "chars" => 24i64}),
            "entities" => Value::Array(vec![
                Value::Doc(doc! {"type" => "Movie", "name" => "Matilda"}),
                Value::Doc(doc! {"type" => "City", "name" => "London"}),
            ]),
            "tags" => Value::Array(vec![Value::Str("theater".into()), Value::Str("review".into())])
        }
    }

    #[test]
    fn flat_doc_yields_single_record() {
        let (s, id) = src();
        let d = doc! {"a" => 1i64, "b" => "x"};
        let recs = flatten(&d, s, id, &FlattenOptions::default());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get("a"), Some(&Value::Int(1)));
        assert_eq!(recs[0].id, id);
    }

    #[test]
    fn nested_docs_become_dotted_columns() {
        let (s, id) = src();
        let recs = flatten(&parsed_instance(), s, id, &FlattenOptions::default());
        for r in &recs {
            assert_eq!(r.get("meta.lang"), Some(&Value::Str("en".into())));
            assert_eq!(r.get("meta.chars"), Some(&Value::Int(24)));
        }
    }

    #[test]
    fn explode_forks_per_array_document() {
        let (s, id) = src();
        let recs = flatten(&parsed_instance(), s, id, &FlattenOptions::default());
        assert_eq!(recs.len(), 2);
        let names: Vec<_> = recs
            .iter()
            .map(|r| r.get_text("entities.name").unwrap())
            .collect();
        assert!(names.contains(&"Matilda".to_string()));
        assert!(names.contains(&"London".to_string()));
        // Scalar arrays join even in Explode mode.
        assert_eq!(
            recs[0].get_text("tags").as_deref(),
            Some("theater; review")
        );
        // Exploded records get distinct ids.
        assert_ne!(recs[0].id, recs[1].id);
    }

    #[test]
    fn index_mode_is_lossless_single_record() {
        let (s, id) = src();
        let opts = FlattenOptions { array_mode: ArrayMode::Index, ..Default::default() };
        let recs = flatten(&parsed_instance(), s, id, &opts);
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.get_text("entities.0.name").as_deref(), Some("Matilda"));
        assert_eq!(r.get_text("entities.1.name").as_deref(), Some("London"));
        assert_eq!(r.get_text("tags.1").as_deref(), Some("review"));
    }

    #[test]
    fn join_first_takes_first_doc_element() {
        let (s, id) = src();
        let opts = FlattenOptions { array_mode: ArrayMode::JoinFirst, ..Default::default() };
        let recs = flatten(&parsed_instance(), s, id, &opts);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get_text("entities.name").as_deref(), Some("Matilda"));
    }

    #[test]
    fn empty_arrays_vanish() {
        let (s, id) = src();
        let d = doc! {"a" => 1i64, "empty" => Value::Array(vec![])};
        let recs = flatten(&d, s, id, &FlattenOptions::default());
        assert_eq!(recs.len(), 1);
        assert!(recs[0].get("empty").is_none());
    }

    #[test]
    fn explosion_is_capped() {
        let (s, id) = src();
        // Two sibling arrays of 40 docs each -> 1600 combinations uncapped.
        let items: Vec<Value> = (0..40)
            .map(|i| Value::Doc(doc! {"n" => Value::Int(i)}))
            .collect();
        let d = doc! {
            "xs" => Value::Array(items.clone()),
            "ys" => Value::Array(items)
        };
        let opts = FlattenOptions { max_explode: 100, ..Default::default() };
        let recs = flatten(&d, s, id, &opts);
        assert_eq!(recs.len(), 100);
    }

    #[test]
    fn custom_separator_applies() {
        let (s, id) = src();
        let opts = FlattenOptions { separator: '_', ..Default::default() };
        let d = doc! {"meta" => Value::Doc(doc! {"lang" => "en"})};
        let recs = flatten(&d, s, id, &opts);
        assert_eq!(recs[0].get_text("meta_lang").as_deref(), Some("en"));
    }

    #[test]
    fn index_mode_preserves_scalar_leaf_count() {
        let (s, id) = src();
        let d = parsed_instance();
        let expected = d.leaves().len();
        let opts = FlattenOptions { array_mode: ArrayMode::Index, ..Default::default() };
        let recs = flatten(&d, s, id, &opts);
        assert_eq!(recs[0].len(), expected);
    }
}
