//! Flat records — the unit Data Tamer's curation stages operate on.

use std::fmt;

use crate::value::Value;

/// Identifier of a registered data source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

/// Identifier of a record, unique within its source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u64);

/// Identifier of an attribute in a global schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}
impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rec{}", self.0)
    }
}
impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr{}", self.0)
    }
}

/// A flat record: named scalar fields from one source.
///
/// Records come out of the flattener (for hierarchical text-derived data) or
/// directly from structured sources. Field order matches the source layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Which source this record came from.
    pub source: SourceId,
    /// Source-local record id.
    pub id: RecordId,
    fields: Vec<(String, Value)>,
}

impl Record {
    /// Create an empty record.
    pub fn new(source: SourceId, id: RecordId) -> Self {
        Record { source, id, fields: Vec::new() }
    }

    /// Build from `(name, value)` pairs; later duplicates overwrite.
    pub fn from_pairs<K: Into<String>, V: Into<Value>>(
        source: SourceId,
        id: RecordId,
        pairs: Vec<(K, V)>,
    ) -> Self {
        let mut r = Record::new(source, id);
        for (k, v) in pairs {
            r.set(k.into(), v.into());
        }
        r
    }

    /// Number of fields (including null-valued ones).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Look up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Look up a field's text rendering (None when absent or null).
    pub fn get_text(&self, name: &str) -> Option<String> {
        match self.get(name) {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.to_text()),
        }
    }

    /// Set a field, overwriting in place when present.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        let value = value.into();
        match self.fields.iter_mut().find(|(k, _)| *k == name) {
            Some((_, slot)) => *slot = value,
            None => self.fields.push((name, value)),
        }
    }

    /// Remove a field by name, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|(k, _)| k == name)?;
        Some(self.fields.remove(idx).1)
    }

    /// Rename a field, keeping its position. Returns false when absent.
    pub fn rename(&mut self, from: &str, to: impl Into<String>) -> bool {
        match self.fields.iter_mut().find(|(k, _)| k == from) {
            Some((k, _)) => {
                *k = to.into();
                true
            }
            None => false,
        }
    }

    /// Iterate `(name, value)` pairs in field order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate field names.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(k, _)| k.as_str())
    }

    /// Fraction of fields that are null (0.0 for an empty record).
    pub fn null_fraction(&self) -> f64 {
        if self.fields.is_empty() {
            return 0.0;
        }
        let nulls = self.fields.iter().filter(|(_, v)| v.is_null()).count();
        nulls as f64 / self.fields.len() as f64
    }

    /// Consume into the underlying field vector.
    pub fn into_fields(self) -> Vec<(String, Value)> {
        self.fields
    }

    /// Globally unique key `(source, id)` pair.
    pub fn key(&self) -> (SourceId, RecordId) {
        (self.source, self.id)
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} {{", self.source, self.id)?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record::from_pairs(
            SourceId(1),
            RecordId(42),
            vec![("name", Value::from("Matilda")), ("price", Value::Int(27))],
        )
    }

    #[test]
    fn get_and_set_roundtrip() {
        let mut r = rec();
        assert_eq!(r.get("name"), Some(&Value::Str("Matilda".into())));
        r.set("price", 30i64);
        assert_eq!(r.get("price"), Some(&Value::Int(30)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn get_text_skips_nulls() {
        let mut r = rec();
        r.set("venue", Value::Null);
        assert_eq!(r.get_text("name").as_deref(), Some("Matilda"));
        assert_eq!(r.get_text("venue"), None);
        assert_eq!(r.get_text("missing"), None);
    }

    #[test]
    fn rename_preserves_position() {
        let mut r = rec();
        assert!(r.rename("name", "show_name"));
        assert!(!r.rename("name", "x"));
        assert_eq!(r.field_names().collect::<Vec<_>>(), vec!["show_name", "price"]);
    }

    #[test]
    fn null_fraction_counts_nulls() {
        let mut r = rec();
        assert_eq!(r.null_fraction(), 0.0);
        r.set("a", Value::Null);
        r.set("b", Value::Null);
        assert!((r.null_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(Record::new(SourceId(0), RecordId(0)).null_fraction(), 0.0);
    }

    #[test]
    fn display_includes_ids() {
        let shown = rec().to_string();
        assert!(shown.contains("src1"));
        assert!(shown.contains("rec42"));
        assert!(shown.contains("name=\"Matilda\""));
    }
}
