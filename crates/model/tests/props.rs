//! Property tests for the data model: flattening preserves leaves, value
//! ordering is a total order, documents behave like ordered maps, and the
//! attribute profile's streaming moments match batch computation.

use proptest::prelude::*;

use datatamer_model::{
    flatten, ArrayMode, AttributeProfile, Document, FlattenOptions, Record, RecordId, SourceId,
    Value,
};

fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        prop::num::f64::NORMAL.prop_map(Value::Float),
        "[a-z0-9 ]{0,12}".prop_map(Value::Str),
    ]
}

fn value() -> impl Strategy<Value = Value> {
    scalar().prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..3)
                .prop_map(|p| Value::Doc(Document::from_pairs(p))),
        ]
    })
}

fn document() -> impl Strategy<Value = Document> {
    prop::collection::vec(("[a-z]{1,6}", value()), 0..5).prop_map(Document::from_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn index_mode_flatten_preserves_scalar_leaves(doc in document()) {
        let opts = FlattenOptions { array_mode: ArrayMode::Index, ..Default::default() };
        let records = flatten(&doc, SourceId(0), RecordId(0), &opts);
        prop_assert_eq!(records.len(), 1, "index mode never multiplies records");
        let record = &records[0];
        // Every scalar leaf appears exactly once, under its dotted path.
        let leaves = doc.leaves();
        prop_assert_eq!(record.len(), leaves.len());
        for (path, leaf) in leaves {
            prop_assert_eq!(record.get(&path), Some(leaf), "missing {}", path);
        }
    }

    #[test]
    fn total_cmp_is_a_total_order(a in value(), b in value(), c in value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // Reflexivity.
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        // Transitivity of <=.
        if ab != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert!(a.total_cmp(&c) != Ordering::Greater);
        }
    }

    #[test]
    fn document_behaves_like_ordered_map(pairs in prop::collection::vec(("[a-z]{1,4}", 0i64..100), 0..12)) {
        let doc = Document::from_pairs(pairs.clone());
        // Last write per key wins.
        let mut expected: Vec<(String, i64)> = Vec::new();
        for (k, v) in &pairs {
            match expected.iter_mut().find(|(ek, _)| ek == k) {
                Some((_, ev)) => *ev = *v,
                None => expected.push((k.clone(), *v)),
            }
        }
        prop_assert_eq!(doc.len(), expected.len());
        for (k, v) in &expected {
            prop_assert_eq!(doc.get(k), Some(&Value::Int(*v)));
        }
        // Insertion order preserved.
        let keys: Vec<&str> = doc.keys().collect();
        let expected_keys: Vec<&str> = expected.iter().map(|(k, _)| k.as_str()).collect();
        prop_assert_eq!(keys, expected_keys);
    }

    #[test]
    fn get_path_agrees_with_leaves(doc in document()) {
        for (path, leaf) in doc.leaves() {
            prop_assert_eq!(doc.get_path(&path), Some(leaf), "path {}", path);
        }
    }

    #[test]
    fn profile_moments_match_batch(xs in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let mut profile = AttributeProfile::default();
        for x in &xs {
            profile.observe(&Value::Float(*x));
        }
        let stats = profile.numeric_stats().expect("numeric input");
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((stats.mean - mean).abs() < 1e-6 * mean.abs().max(1.0));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(stats.min, min);
        prop_assert_eq!(stats.max, max);
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((stats.std - var.sqrt()).abs() < 1e-4 * var.sqrt().max(1.0));
        }
    }

    #[test]
    fn profile_merge_equals_single_pass(
        xs in prop::collection::vec(-1e4f64..1e4, 0..30),
        ys in prop::collection::vec(-1e4f64..1e4, 0..30),
    ) {
        let mut merged = AttributeProfile::default();
        for x in &xs {
            merged.observe(&Value::Float(*x));
        }
        let mut other = AttributeProfile::default();
        for y in &ys {
            other.observe(&Value::Float(*y));
        }
        merged.merge(&other);

        let mut single = AttributeProfile::default();
        for v in xs.iter().chain(ys.iter()) {
            single.observe(&Value::Float(*v));
        }
        prop_assert_eq!(merged.count, single.count);
        match (merged.numeric_stats(), single.numeric_stats()) {
            (Some(m), Some(s)) => {
                prop_assert!((m.mean - s.mean).abs() < 1e-6 * s.mean.abs().max(1.0));
                prop_assert!((m.std - s.std).abs() < 1e-5 * s.std.max(1.0));
            }
            (None, None) => {}
            other => prop_assert!(false, "stats presence diverged: {:?}", other.0.is_some()),
        }
    }

    #[test]
    fn record_rename_preserves_everything_else(
        fields in prop::collection::vec(("[a-z]{1,5}", 0i64..10), 1..8),
    ) {
        let mut record = Record::from_pairs(
            SourceId(0),
            RecordId(0),
            fields.clone(),
        );
        let original_len = record.len();
        let first_name = record.field_names().next().unwrap().to_owned();
        record.rename(&first_name, "renamed_attr");
        prop_assert_eq!(record.len(), original_len);
        prop_assert!(record.get("renamed_attr").is_some());
    }
}
