//! Property tests for the ML substrate: fold partitions, metric bounds,
//! sparse-vector algebra, and classifier sanity under arbitrary data.

use proptest::prelude::*;

use datatamer_ml::features::SparseVec;
use datatamer_ml::metrics::ConfusionMatrix;
use datatamer_ml::stratified_kfold;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn kfold_is_a_disjoint_cover(
        labels in prop::collection::vec(any::<bool>(), 10..80),
        k in 2usize..8,
        seed in any::<u64>(),
    ) {
        prop_assume!(labels.len() >= k);
        let folds = stratified_kfold(&labels, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..labels.len()).collect();
        prop_assert_eq!(all, expected, "folds must partition the index space");
        // Stratification: positives per fold differ by at most 1.
        let pos_counts: Vec<usize> = folds
            .iter()
            .map(|f| f.iter().filter(|&&i| labels[i]).count())
            .collect();
        let (mn, mx) = (
            pos_counts.iter().min().unwrap(),
            pos_counts.iter().max().unwrap(),
        );
        prop_assert!(mx - mn <= 1, "unbalanced positives: {:?}", pos_counts);
    }

    #[test]
    fn confusion_metrics_are_bounded(
        tp in 0u64..1000, fp in 0u64..1000, tn in 0u64..1000, fn_ in 0u64..1000,
    ) {
        let cm = ConfusionMatrix { tp, fp, tn, fn_ };
        let m = cm.metrics();
        for (name, v) in [
            ("precision", m.precision),
            ("recall", m.recall),
            ("f1", m.f1),
            ("accuracy", m.accuracy),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{name} out of bounds: {v}");
        }
        // F1 is between min and max of P and R (harmonic mean property).
        if m.precision > 0.0 && m.recall > 0.0 {
            prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
            prop_assert!(m.f1 >= m.precision.min(m.recall) - 1e-12);
        }
    }

    #[test]
    fn sparse_vec_dedups_and_sorts(pairs in prop::collection::vec((0u32..64, -10.0f64..10.0), 0..30)) {
        let v = SparseVec::from_pairs(pairs.clone());
        // Sorted, unique indices.
        for w in v.0.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        // Sum per index preserved.
        for (idx, val) in &v.0 {
            let expected: f64 = pairs.iter().filter(|(i, _)| i == idx).map(|(_, x)| x).sum();
            prop_assert!((val - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_dot_is_symmetric_and_cauchy_schwarz(
        a in prop::collection::vec((0u32..32, -5.0f64..5.0), 0..20),
        b in prop::collection::vec((0u32..32, -5.0f64..5.0), 0..20),
    ) {
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        let dab = va.dot(&vb);
        let dba = vb.dot(&va);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab.abs() <= va.norm() * vb.norm() + 1e-9, "Cauchy-Schwarz violated");
    }

    #[test]
    fn merged_confusion_equals_summed(
        xs in prop::collection::vec((any::<bool>(), any::<bool>()), 0..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        let mut whole = ConfusionMatrix::default();
        for (p, a) in &xs {
            whole.record(*p, *a);
        }
        let mut left = ConfusionMatrix::default();
        for (p, a) in &xs[..split] {
            left.record(*p, *a);
        }
        let mut right = ConfusionMatrix::default();
        for (p, a) in &xs[split..] {
            right.record(*p, *a);
        }
        left.merge(&right);
        prop_assert_eq!(left, whole);
    }
}
