//! Multinomial naive Bayes over sparse count vectors.
//!
//! Powers the text-cleaning classifier (junk / boilerplate vs. content
//! fragments): fast to train, robust with small vocabularies, and fully
//! deterministic.

use crate::features::SparseVec;

/// A trained multinomial naive Bayes model for `num_classes` classes.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// log P(class)
    log_prior: Vec<f64>,
    /// log P(term | class), dense per class: `[class][term]`.
    log_likelihood: Vec<Vec<f64>>,
    vocab_size: usize,
}

impl NaiveBayes {
    /// Train from `(vector, class)` examples with Laplace smoothing `alpha`.
    ///
    /// `vocab_size` bounds term indices; out-of-range indices panic.
    pub fn train(
        examples: &[(SparseVec, usize)],
        num_classes: usize,
        vocab_size: usize,
        alpha: f64,
    ) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        assert!(!examples.is_empty(), "training set must be non-empty");
        let mut class_counts = vec![0u64; num_classes];
        let mut term_counts = vec![vec![0.0f64; vocab_size]; num_classes];
        let mut term_totals = vec![0.0f64; num_classes];
        for (vec, class) in examples {
            assert!(*class < num_classes, "class index out of range");
            class_counts[*class] += 1;
            for (idx, count) in &vec.0 {
                let i = *idx as usize;
                assert!(i < vocab_size, "term index {i} exceeds vocab size {vocab_size}");
                term_counts[*class][i] += count;
                term_totals[*class] += count;
            }
        }
        let n = examples.len() as f64;
        let log_prior = class_counts
            .iter()
            .map(|c| ((*c as f64 + alpha) / (n + alpha * num_classes as f64)).ln())
            .collect();
        let log_likelihood = (0..num_classes)
            .map(|c| {
                let denom = term_totals[c] + alpha * vocab_size as f64;
                term_counts[c]
                    .iter()
                    .map(|tc| ((tc + alpha) / denom).ln())
                    .collect()
            })
            .collect();
        NaiveBayes { log_prior, log_likelihood, vocab_size }
    }

    /// Log joint score per class.
    pub fn scores(&self, x: &SparseVec) -> Vec<f64> {
        self.log_prior
            .iter()
            .enumerate()
            .map(|(c, lp)| {
                lp + x
                    .0
                    .iter()
                    .map(|(idx, count)| {
                        let i = *idx as usize;
                        assert!(i < self.vocab_size, "term index out of range");
                        count * self.log_likelihood[c][i]
                    })
                    .sum::<f64>()
            })
            .collect()
    }

    /// Most probable class.
    pub fn predict(&self, x: &SparseVec) -> usize {
        let scores = self.scores(x);
        scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.log_prior.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Vocabulary;

    fn train_junk_detector() -> (NaiveBayes, Vocabulary) {
        let junk = [
            "click here buy now cheap tickets",
            "subscribe newsletter click banner ad",
            "cookie policy accept terms click",
            "advertisement sponsored click buy",
        ];
        let content = [
            "the show grossed well on broadway",
            "matilda opened at the shubert theatre",
            "critics praised the performance schedule",
            "the musical import from london impressed",
        ];
        let mut vocab = Vocabulary::new();
        for t in junk.iter().chain(content.iter()) {
            vocab.fit_doc(t);
        }
        let mut examples = Vec::new();
        for t in junk {
            examples.push((vocab.counts(t), 0usize));
        }
        for t in content {
            examples.push((vocab.counts(t), 1usize));
        }
        let nb = NaiveBayes::train(&examples, 2, vocab.len(), 1.0);
        (nb, vocab)
    }

    #[test]
    fn separates_junk_from_content() {
        let (nb, vocab) = train_junk_detector();
        assert_eq!(nb.predict(&vocab.counts("click buy cheap now")), 0);
        assert_eq!(nb.predict(&vocab.counts("the musical grossed well")), 1);
        assert_eq!(nb.num_classes(), 2);
    }

    #[test]
    fn unknown_terms_fall_back_to_prior() {
        let (nb, vocab) = train_junk_detector();
        // counts() drops unknown terms -> empty vector -> prior decides.
        let empty = vocab.counts("zzz qqq www");
        assert_eq!(empty.nnz(), 0);
        let scores = nb.scores(&empty);
        assert!((scores[0] - scores[1]).abs() < 1e-9, "balanced priors tie");
    }

    #[test]
    fn scores_are_finite_log_probs() {
        let (nb, vocab) = train_junk_detector();
        for s in nb.scores(&vocab.counts("click the show")) {
            assert!(s.is_finite());
            assert!(s < 0.0, "log-probabilities are negative");
        }
    }

    #[test]
    #[should_panic(expected = "class index out of range")]
    fn bad_class_panics() {
        let v = SparseVec::from_pairs(vec![(0, 1.0)]);
        NaiveBayes::train(&[(v, 5)], 2, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_panics() {
        NaiveBayes::train(&[], 2, 10, 1.0);
    }

    #[test]
    fn class_imbalance_shifts_prior() {
        let v = |i: u32| SparseVec::from_pairs(vec![(i, 1.0)]);
        // 3 examples of class 0, 1 of class 1, disjoint vocab.
        let examples = vec![(v(0), 0), (v(0), 0), (v(0), 0), (v(1), 1)];
        let nb = NaiveBayes::train(&examples, 2, 2, 1.0);
        let empty = SparseVec::default();
        let scores = nb.scores(&empty);
        assert!(scores[0] > scores[1], "majority class wins on empty input");
    }
}
