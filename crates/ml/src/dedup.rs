//! The dedup pair classifier (the paper's §IV headline result).
//!
//! A pair of entity surface forms is featurised with a battery of hand-rolled
//! similarity measures and classified duplicate / distinct by logistic
//! regression. Evaluated with stratified 10-fold cross-validation per entity
//! type, this is the experiment behind the paper's "89/90% precision/recall
//! ... on several different types of entities" claim (experiment M1).

use datatamer_sim as sim;

use crate::crossval::{cross_validate, CrossValReport};
use crate::logreg::{LogRegConfig, LogisticRegression};

/// Similarity feature extractor for name pairs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairFeatures;

impl PairFeatures {
    /// Number of features produced.
    pub const DIM: usize = 9;

    /// Feature names, index-aligned with [`PairFeatures::extract`] output
    /// (used by ablation reports).
    pub const NAMES: [&'static str; Self::DIM] = [
        "jaro_winkler",
        "levenshtein_sim",
        "token_jaccard",
        "bigram_jaccard",
        "trigram_jaccard",
        "soundex_equal",
        "length_ratio",
        "prefix4_equal",
        "canonical_equal",
    ];

    /// Extract the feature vector for a pair of surface forms.
    pub fn extract(a: &str, b: &str) -> Vec<f64> {
        let ca = canonical(a);
        let cb = canonical(b);
        let toks_a: std::collections::HashSet<String> =
            sim::tokenize(&ca).into_iter().collect();
        let toks_b: std::collections::HashSet<String> =
            sim::tokenize(&cb).into_iter().collect();
        let len_ratio = {
            let (la, lb) = (ca.chars().count() as f64, cb.chars().count() as f64);
            if la.max(lb) == 0.0 {
                1.0
            } else {
                la.min(lb) / la.max(lb)
            }
        };
        let soundex_eq = match (sim::soundex(&ca), sim::soundex(&cb)) {
            (Some(x), Some(y)) => f64::from(u8::from(x == y)),
            _ => 0.0,
        };
        let prefix4: f64 = {
            let pa: String = ca.chars().take(4).collect();
            let pb: String = cb.chars().take(4).collect();
            f64::from(u8::from(!pa.is_empty() && pa == pb))
        };
        vec![
            sim::jaro_winkler(&ca, &cb),
            sim::levenshtein_similarity(&ca, &cb),
            sim::jaccard(&toks_a, &toks_b),
            sim::ngram_similarity(&ca, &cb, 2),
            sim::ngram_similarity(&ca, &cb, 3),
            soundex_eq,
            len_ratio,
            prefix4,
            f64::from(u8::from(ca == cb)),
        ]
    }

    /// Normalise one surface form into a [`PreparedForm`]: everything
    /// [`PairFeatures::extract`] derives from a single side — the
    /// canonical spelling, token / bigram / trigram sets, char count,
    /// Soundex code, 4-char prefix — computed once. Batch scorers cache
    /// one form per record so a record in `k` candidate pairs pays its
    /// normalisation once instead of `k` times.
    pub fn prepare(s: &str) -> PreparedForm {
        let canonical = canonical(s);
        let sorted_set = |mut v: Vec<String>| {
            v.sort_unstable();
            v.dedup();
            v
        };
        PreparedForm {
            tokens: sorted_set(sim::tokenize(&canonical)),
            bigrams: sorted_set(sim::char_ngrams(&canonical, 2)),
            trigrams: sorted_set(sim::char_ngrams(&canonical, 3)),
            chars: canonical.chars().count() as f64,
            soundex: sim::soundex(&canonical),
            prefix4: canonical.chars().take(4).collect(),
            canonical,
        }
    }

    /// [`PairFeatures::extract`] over two cached [`PreparedForm`]s —
    /// bit-identical output (same expressions over the same canonical
    /// forms; the set similarities run on sorted slices, whose
    /// intersection/union counts equal the hash-set counts).
    pub fn extract_prepared(a: &PreparedForm, b: &PreparedForm) -> Vec<f64> {
        let len_ratio = if a.chars.max(b.chars) == 0.0 {
            1.0
        } else {
            a.chars.min(b.chars) / a.chars.max(b.chars)
        };
        let soundex_eq = match (&a.soundex, &b.soundex) {
            (Some(x), Some(y)) => f64::from(u8::from(x == y)),
            _ => 0.0,
        };
        let prefix4 = f64::from(u8::from(!a.prefix4.is_empty() && a.prefix4 == b.prefix4));
        vec![
            sim::jaro_winkler(&a.canonical, &b.canonical),
            sim::levenshtein_similarity(&a.canonical, &b.canonical),
            sim::jaccard_sorted(&a.tokens, &b.tokens),
            sim::jaccard_sorted(&a.bigrams, &b.bigrams),
            sim::jaccard_sorted(&a.trigrams, &b.trigrams),
            soundex_eq,
            len_ratio,
            prefix4,
            f64::from(u8::from(a.canonical == b.canonical)),
        ]
    }
}

/// One surface form's per-record half of the pair features: the cached
/// output of [`PairFeatures::prepare`]. Set features are stored as sorted,
/// deduplicated vectors so pair-time similarity runs through
/// [`sim::jaccard_sorted`] (merge intersection, no hashing, no
/// allocation).
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedForm {
    /// Canonicalised spelling (lowercased, whitespace-squeezed,
    /// article-stripped).
    pub canonical: String,
    /// Sorted, deduplicated word tokens of the canonical form.
    pub tokens: Vec<String>,
    /// Sorted, deduplicated padded character bigrams.
    pub bigrams: Vec<String>,
    /// Sorted, deduplicated padded character trigrams.
    pub trigrams: Vec<String>,
    /// `char` count of the canonical form.
    pub chars: f64,
    /// Soundex code of the canonical form, when it has one.
    pub soundex: Option<String>,
    /// First four `char`s of the canonical form.
    pub prefix4: String,
}

/// Canonicalise a surface form for comparison.
fn canonical(s: &str) -> String {
    let lower = s.trim().to_lowercase();
    let squeezed: String = {
        let mut out = String::with_capacity(lower.len());
        let mut last_space = true;
        for c in lower.chars() {
            if c.is_whitespace() {
                if !last_space {
                    out.push(' ');
                    last_space = true;
                }
            } else {
                out.push(c);
                last_space = false;
            }
        }
        out.trim_end().to_owned()
    };
    squeezed.strip_prefix("the ").map(str::to_owned).unwrap_or(squeezed)
}

/// A trained duplicate-pair classifier.
#[derive(Debug, Clone)]
pub struct DedupClassifier {
    model: LogisticRegression,
}

impl DedupClassifier {
    /// Train on labelled string pairs.
    pub fn train(pairs: &[(String, String, bool)], config: &LogRegConfig) -> Self {
        let xs: Vec<Vec<f64>> =
            pairs.iter().map(|(a, b, _)| PairFeatures::extract(a, b)).collect();
        let ys: Vec<bool> = pairs.iter().map(|(_, _, y)| *y).collect();
        DedupClassifier { model: LogisticRegression::train(&xs, &ys, config) }
    }

    /// Probability the pair is a duplicate.
    pub fn proba(&self, a: &str, b: &str) -> f64 {
        self.model.predict_proba(&PairFeatures::extract(a, b))
    }

    /// [`DedupClassifier::proba`] over cached [`PreparedForm`]s —
    /// bit-identical to the string form (see
    /// [`PairFeatures::extract_prepared`]), with the per-record
    /// normalisation (canonicalisation, token/ngram sets, Soundex) already
    /// paid at prepare time.
    pub fn proba_prepared(&self, a: &PreparedForm, b: &PreparedForm) -> f64 {
        self.model.predict_proba(&PairFeatures::extract_prepared(a, b))
    }

    /// Hard duplicate decision at threshold 0.5.
    pub fn is_duplicate(&self, a: &str, b: &str) -> bool {
        self.proba(a, b) >= 0.5
    }

    /// Access the underlying linear model.
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }
}

/// Stratified k-fold cross-validation of the dedup classifier over labelled
/// pairs — the paper's evaluation protocol (10-fold in the paper).
pub fn crossval_dedup(
    pairs: &[(String, String, bool)],
    k: usize,
    seed: u64,
    config: &LogRegConfig,
) -> CrossValReport {
    let features: Vec<Vec<f64>> =
        pairs.iter().map(|(a, b, _)| PairFeatures::extract(a, b)).collect();
    let labels: Vec<bool> = pairs.iter().map(|(_, _, y)| *y).collect();
    cross_validate(&labels, k, seed, |train_idx| {
        let xs: Vec<Vec<f64>> = train_idx.iter().map(|&i| features[i].clone()).collect();
        let ys: Vec<bool> = train_idx.iter().map(|&i| labels[i]).collect();
        let model = LogisticRegression::train(&xs, &ys, config);
        let features = features.clone();
        move |i: usize| model.predict(&features[i])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_pairs() -> Vec<(String, String, bool)> {
        let mut pairs = Vec::new();
        let dupes = [
            ("Matilda", "matilda"),
            ("The Walking Dead", "Walking Dead"),
            ("Goodfellas", "Goodfelas"),
            ("Raging Bull", "RAGING BULL"),
            ("James Smith", "J. Smith"),
            ("Mean Streets", "Mean Streets "),
            ("Shubert Theatre", "Shubert Theater"),
            ("Kinky Boots", "Kinki Boots"),
        ];
        let distinct = [
            ("Matilda", "Goodfellas"),
            ("James Smith", "Mary Johnson"),
            ("The Walking Dead", "The Lion King"),
            ("Raging Bull", "Mean Streets"),
            ("Shubert Theatre", "Gershwin Theatre"),
            ("Kinky Boots", "Rock of Ages"),
            ("Chicago", "Boston"),
            ("Wicked", "Written"),
        ];
        for (a, b) in dupes {
            pairs.push((a.to_owned(), b.to_owned(), true));
        }
        for (a, b) in distinct {
            pairs.push((a.to_owned(), b.to_owned(), false));
        }
        // Replicate with index suffixes so folds have enough data.
        let mut out = Vec::new();
        for rep in 0..6 {
            for (a, b, y) in &pairs {
                let _ = rep;
                out.push((a.clone(), b.clone(), *y));
            }
        }
        out
    }

    #[test]
    fn feature_vector_shape_and_bounds() {
        let f = PairFeatures::extract("Matilda", "matilda!");
        assert_eq!(f.len(), PairFeatures::DIM);
        assert_eq!(PairFeatures::NAMES.len(), PairFeatures::DIM);
        for (name, v) in PairFeatures::NAMES.iter().zip(&f) {
            assert!((0.0..=1.0).contains(v), "{name}={v}");
        }
    }

    #[test]
    fn prepared_features_are_bit_identical_to_extract() {
        // The prepared path feeds the same logistic model, so any drift in
        // any feature bit would drift classifier probabilities — pin exact
        // equality across tricky shapes: case damage, articles, repeated
        // tokens, whitespace runs, empty and punctuation-only forms.
        let forms = [
            "Matilda",
            "matilda!",
            "The Walking Dead",
            "Walking  Dead ",
            "La La Land",
            "the THE the",
            "",
            "---",
            "W. 44th St",
        ];
        for a in forms {
            for b in forms {
                let naive = PairFeatures::extract(a, b);
                let cached = PairFeatures::extract_prepared(
                    &PairFeatures::prepare(a),
                    &PairFeatures::prepare(b),
                );
                assert_eq!(naive.len(), cached.len());
                for (k, (x, y)) in naive.iter().zip(&cached).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "feature {} differs on ({a:?}, {b:?})",
                        PairFeatures::NAMES[k]
                    );
                }
            }
        }
        let model = DedupClassifier::train(&toy_pairs(), &LogRegConfig::default());
        let (pa, pb) =
            (PairFeatures::prepare("Matilda"), PairFeatures::prepare("matilda "));
        assert_eq!(
            model.proba("Matilda", "matilda ").to_bits(),
            model.proba_prepared(&pa, &pb).to_bits()
        );
    }

    #[test]
    fn identical_and_disjoint_extremes() {
        let same = PairFeatures::extract("Raging Bull", "Raging Bull");
        assert_eq!(same[0], 1.0);
        assert_eq!(same[8], 1.0);
        let far = PairFeatures::extract("Raging Bull", "Zyxw Qrst");
        assert!(far[0] < 0.6);
        assert_eq!(far[2], 0.0);
        assert_eq!(far[8], 0.0);
    }

    #[test]
    fn canonicalisation_strips_articles_and_case() {
        let f = PairFeatures::extract("The Walking Dead", "walking  dead");
        assert_eq!(f[8], 1.0, "canonical forms must match: {f:?}");
    }

    #[test]
    fn classifier_learns_toy_data() {
        let pairs = toy_pairs();
        let clf = DedupClassifier::train(&pairs, &LogRegConfig::default());
        assert!(clf.is_duplicate("Matilda", "matilda"));
        assert!(clf.is_duplicate("Trees Lounge", "Trees Lounge"));
        assert!(!clf.is_duplicate("Matilda", "The Lion King"));
        let p_dup = clf.proba("Goodfellas", "Goodfelas");
        let p_far = clf.proba("Goodfellas", "Annie");
        assert!(p_dup > p_far);
    }

    #[test]
    fn crossval_on_toy_data_is_strong() {
        let pairs = toy_pairs();
        let report = crossval_dedup(&pairs, 4, 7, &LogRegConfig::default());
        let m = report.metrics();
        assert!(m.precision > 0.9, "{m}");
        assert!(m.recall > 0.9, "{m}");
        assert_eq!(report.fold_matrices.len(), 4);
    }

    #[test]
    fn crossval_is_deterministic() {
        let pairs = toy_pairs();
        let a = crossval_dedup(&pairs, 4, 7, &LogRegConfig::default()).metrics();
        let b = crossval_dedup(&pairs, 4, 7, &LogRegConfig::default()).metrics();
        assert_eq!(a, b);
    }
}
