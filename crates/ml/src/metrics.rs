//! Classification metrics.

use std::fmt;

/// Binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    pub tp: u64,
    pub fp: u64,
    pub tn: u64,
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Record one `(predicted, actual)` outcome.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Derive the summary metrics.
    pub fn metrics(&self) -> BinaryMetrics {
        let div = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        let precision = div(self.tp, self.tp + self.fp);
        let recall = div(self.tp, self.tp + self.fn_);
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        BinaryMetrics {
            precision,
            recall,
            f1,
            accuracy: div(self.tp + self.tn, self.total()),
        }
    }
}

/// Precision / recall / F1 / accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryMetrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub accuracy: f64,
}

impl fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={:.1}% R={:.1}% F1={:.1}% acc={:.1}%",
            self.precision * 100.0,
            self.recall * 100.0,
            self.f1 * 100.0,
            self.accuracy * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let mut cm = ConfusionMatrix::default();
        for _ in 0..10 {
            cm.record(true, true);
            cm.record(false, false);
        }
        let m = cm.metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn textbook_values() {
        // tp=8, fp=2 -> P=0.8; tp=8, fn=2 -> R=0.8; F1=0.8
        let cm = ConfusionMatrix { tp: 8, fp: 2, tn: 88, fn_: 2 };
        let m = cm.metrics();
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 0.8).abs() < 1e-12);
        assert!((m.f1 - 0.8).abs() < 1e-12);
        assert!((m.accuracy - 0.96).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let m = ConfusionMatrix::default().metrics();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.accuracy, 0.0);
        // Never predicts positive.
        let cm = ConfusionMatrix { tp: 0, fp: 0, tn: 5, fn_: 5 };
        assert_eq!(cm.metrics().precision, 0.0);
        assert_eq!(cm.metrics().accuracy, 0.5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix { tp: 1, fp: 2, tn: 3, fn_: 4 };
        let b = ConfusionMatrix { tp: 10, fp: 20, tn: 30, fn_: 40 };
        a.merge(&b);
        assert_eq!(a, ConfusionMatrix { tp: 11, fp: 22, tn: 33, fn_: 44 });
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn display_is_percentages() {
        let cm = ConfusionMatrix { tp: 89, fp: 11, tn: 0, fn_: 10 };
        let shown = cm.metrics().to_string();
        assert!(shown.contains("P=89.0%"), "{shown}");
        assert!(shown.contains("R=89.9%"), "{shown}");
    }
}
