//! Feature extraction: bag-of-words, hashing vectoriser, TF-IDF.

use std::collections::HashMap;

use datatamer_sim::tokens::tokenize;

/// A sparse feature vector: sorted `(index, value)` pairs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec(pub Vec<(u32, f64)>);

impl SparseVec {
    /// Build from possibly-unsorted, possibly-duplicated pairs (duplicates
    /// are summed).
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_by_key(|(i, _)| *i);
        let mut out: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match out.last_mut() {
                Some((li, lv)) if *li == i => *lv += v,
                _ => out.push((i, v)),
            }
        }
        SparseVec(out)
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0;
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].0.cmp(&other.0[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.0[i].1 * other.0[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|(_, v)| v * v).sum::<f64>().sqrt()
    }

    /// Scale in place.
    pub fn scale(&mut self, k: f64) {
        for (_, v) in &mut self.0 {
            *v *= k;
        }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.0.len()
    }
}

/// Feature-hashing vectoriser: token → bucket in `[0, dim)` by FNV-1a.
/// Stateless and training-free, so train/test featurisation can never skew.
#[derive(Debug, Clone, Copy)]
pub struct HashingVectorizer {
    dim: u32,
}

impl HashingVectorizer {
    /// Create with the given dimensionality (buckets).
    pub fn new(dim: u32) -> Self {
        assert!(dim > 0, "dimension must be positive");
        HashingVectorizer { dim }
    }

    /// Dimensionality.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    fn bucket(&self, token: &str) -> u32 {
        let mut h = 0xcbf29ce484222325u64;
        for b in token.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % u64::from(self.dim)) as u32
    }

    /// Term-count vector of a text.
    pub fn transform(&self, text: &str) -> SparseVec {
        let pairs = tokenize(text)
            .into_iter()
            .map(|t| (self.bucket(&t), 1.0))
            .collect();
        SparseVec::from_pairs(pairs)
    }

    /// Transform pre-tokenised input.
    pub fn transform_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> SparseVec {
        let pairs = tokens.iter().map(|t| (self.bucket(t.as_ref()), 1.0)).collect();
        SparseVec::from_pairs(pairs)
    }
}

/// Vocabulary-based bag-of-words with document-frequency tracking (backs
/// both naive Bayes and TF-IDF weighting).
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    index: HashMap<String, u32>,
    doc_freq: Vec<u32>,
    num_docs: u32,
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no terms have been observed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of documents observed.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Observe a document during fitting (expands the vocabulary).
    pub fn fit_doc(&mut self, text: &str) {
        self.num_docs += 1;
        let mut seen: Vec<u32> = Vec::new();
        for tok in tokenize(text) {
            let next_id = self.index.len() as u32;
            let id = *self.index.entry(tok).or_insert(next_id);
            if id as usize >= self.doc_freq.len() {
                self.doc_freq.push(0);
            }
            if !seen.contains(&id) {
                seen.push(id);
                self.doc_freq[id as usize] += 1;
            }
        }
    }

    /// Term id, if known.
    pub fn id_of(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Count vector (unknown terms dropped).
    pub fn counts(&self, text: &str) -> SparseVec {
        let pairs = tokenize(text)
            .into_iter()
            .filter_map(|t| self.index.get(&t).map(|id| (*id, 1.0)))
            .collect();
        SparseVec::from_pairs(pairs)
    }

    /// TF-IDF vector (sub-linear TF, smoothed IDF, L2-normalised).
    pub fn tfidf(&self, text: &str) -> SparseVec {
        let mut v = self.counts(text);
        for (id, val) in &mut v.0 {
            let df = self.doc_freq[*id as usize];
            let idf = ((1.0 + f64::from(self.num_docs)) / (1.0 + f64::from(df))).ln() + 1.0;
            *val = (1.0 + val.ln()) * idf;
        }
        let n = v.norm();
        if n > 0.0 {
            v.scale(1.0 / n);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_from_pairs_sorts_and_sums() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.0, vec![(1, 2.0), (3, 1.5)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn sparse_dot_and_norm() {
        let a = SparseVec::from_pairs(vec![(0, 1.0), (2, 2.0)]);
        let b = SparseVec::from_pairs(vec![(2, 3.0), (5, 1.0)]);
        assert_eq!(a.dot(&b), 6.0);
        assert_eq!(b.dot(&a), 6.0);
        assert!((a.norm() - 5f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.dot(&SparseVec::default()), 0.0);
    }

    #[test]
    fn hashing_is_deterministic_and_bounded() {
        let h = HashingVectorizer::new(64);
        let a = h.transform("matilda at the shubert");
        let b = h.transform("matilda at the shubert");
        assert_eq!(a, b);
        assert!(a.0.iter().all(|(i, _)| *i < 64));
        assert!(a.nnz() >= 3);
    }

    #[test]
    fn hashing_identical_tokens_accumulate() {
        let h = HashingVectorizer::new(1024);
        let v = h.transform("show show show");
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.0[0].1, 3.0);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_dim_panics() {
        HashingVectorizer::new(0);
    }

    #[test]
    fn vocabulary_fit_and_counts() {
        let mut v = Vocabulary::new();
        v.fit_doc("the show grossed well");
        v.fit_doc("the show closed early");
        assert_eq!(v.num_docs(), 2);
        assert!(v.len() >= 6);
        let c = v.counts("show show unknown");
        let show_id = v.id_of("show").unwrap();
        assert_eq!(c.0, vec![(show_id, 2.0)]);
    }

    #[test]
    fn tfidf_downweights_ubiquitous_terms() {
        let mut v = Vocabulary::new();
        for t in ["the shubert theatre", "the gershwin theatre", "the matilda show"] {
            v.fit_doc(t);
        }
        let vec = v.tfidf("the matilda");
        let the_w = vec.0.iter().find(|(i, _)| *i == v.id_of("the").unwrap()).unwrap().1;
        let mat_w = vec.0.iter().find(|(i, _)| *i == v.id_of("matilda").unwrap()).unwrap().1;
        assert!(mat_w > the_w, "rare term must outweigh common: {mat_w} vs {the_w}");
        assert!((vec.norm() - 1.0).abs() < 1e-9, "tfidf is L2-normalised");
    }
}
