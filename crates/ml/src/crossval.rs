//! Stratified k-fold cross-validation.
//!
//! The paper's §IV headline — 89/90% precision/recall — is "by 10-fold
//! crossvalidation"; this module supplies exactly that protocol.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::metrics::{BinaryMetrics, ConfusionMatrix};

/// Produce `k` stratified folds over boolean labels: every fold receives a
/// near-equal share of positives and negatives. Returns per-fold index sets;
/// folds are disjoint and cover `0..labels.len()`.
pub fn stratified_kfold(labels: &[bool], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least two folds");
    assert!(labels.len() >= k, "fewer examples than folds");
    let mut pos: Vec<usize> = Vec::new();
    let mut neg: Vec<usize> = Vec::new();
    for (i, y) in labels.iter().enumerate() {
        if *y {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for arr in [&mut pos, &mut neg] {
        for i in (1..arr.len()).rev() {
            let j = rng.random_range(0..=i);
            arr.swap(i, j);
        }
    }
    let mut folds = vec![Vec::new(); k];
    for (n, idx) in pos.into_iter().enumerate() {
        folds[n % k].push(idx);
    }
    for (n, idx) in neg.into_iter().enumerate() {
        folds[n % k].push(idx);
    }
    folds
}

/// Per-fold and pooled results of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossValReport {
    /// One confusion matrix per fold.
    pub fold_matrices: Vec<ConfusionMatrix>,
}

impl CrossValReport {
    /// Pooled (micro-averaged) confusion matrix.
    pub fn pooled(&self) -> ConfusionMatrix {
        let mut total = ConfusionMatrix::default();
        for m in &self.fold_matrices {
            total.merge(m);
        }
        total
    }

    /// Micro-averaged metrics across folds.
    pub fn metrics(&self) -> BinaryMetrics {
        self.pooled().metrics()
    }

    /// Per-fold metrics.
    pub fn fold_metrics(&self) -> Vec<BinaryMetrics> {
        self.fold_matrices.iter().map(ConfusionMatrix::metrics).collect()
    }
}

/// Run k-fold cross-validation.
///
/// `train` receives the training indices and returns a model as a closure
/// that classifies an example index (true = positive). This shape keeps the
/// runner agnostic to feature representation.
pub fn cross_validate<F, M>(
    labels: &[bool],
    k: usize,
    seed: u64,
    train: F,
) -> CrossValReport
where
    F: Fn(&[usize]) -> M,
    M: Fn(usize) -> bool,
{
    let folds = stratified_kfold(labels, k, seed);
    let mut fold_matrices = Vec::with_capacity(k);
    for test_fold in &folds {
        let train_idx: Vec<usize> = folds
            .iter()
            .filter(|f| !std::ptr::eq(*f, test_fold))
            .flatten()
            .copied()
            .collect();
        let model = train(&train_idx);
        let mut cm = ConfusionMatrix::default();
        for &i in test_fold {
            cm.record(model(i), labels[i]);
        }
        fold_matrices.push(cm);
    }
    CrossValReport { fold_matrices }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n_pos: usize, n_neg: usize) -> Vec<bool> {
        let mut v = vec![true; n_pos];
        v.extend(vec![false; n_neg]);
        v
    }

    #[test]
    fn folds_partition_the_index_space() {
        let ys = labels(37, 63);
        let folds = stratified_kfold(&ys, 10, 1);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>(), "disjoint cover");
    }

    #[test]
    fn folds_are_stratified() {
        let ys = labels(50, 50);
        for fold in stratified_kfold(&ys, 10, 2) {
            let pos = fold.iter().filter(|&&i| ys[i]).count();
            assert_eq!(pos, 5, "each fold gets an equal share of positives");
            assert_eq!(fold.len(), 10);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ys = labels(20, 20);
        assert_eq!(stratified_kfold(&ys, 4, 9), stratified_kfold(&ys, 4, 9));
        assert_ne!(stratified_kfold(&ys, 4, 9), stratified_kfold(&ys, 4, 10));
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn k1_panics() {
        stratified_kfold(&[true, false], 1, 0);
    }

    #[test]
    #[should_panic(expected = "fewer examples")]
    fn too_few_examples_panics() {
        stratified_kfold(&[true, false], 3, 0);
    }

    #[test]
    fn cross_validate_perfect_oracle() {
        let ys = labels(30, 30);
        let report = cross_validate(&ys, 10, 3, |_train| {
            let ys = ys.clone();
            move |i: usize| ys[i]
        });
        let m = report.metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(report.fold_matrices.len(), 10);
        assert_eq!(report.pooled().total(), 60);
    }

    #[test]
    fn cross_validate_constant_negative_has_zero_recall() {
        let ys = labels(10, 50);
        let report = cross_validate(&ys, 5, 4, |_| |_: usize| false);
        let m = report.metrics();
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.precision, 0.0);
        assert!((m.accuracy - 50.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn training_sets_exclude_test_fold() {
        let ys = labels(10, 10);
        let folds = stratified_kfold(&ys, 4, 5);
        let _ = cross_validate(&ys, 4, 5, |train| {
            // The train set must be exactly the complement of one fold.
            let train_set: std::collections::HashSet<usize> = train.iter().copied().collect();
            let matching = folds
                .iter()
                .filter(|f| f.iter().all(|i| !train_set.contains(i)))
                .count();
            assert!(matching >= 1, "one fold fully held out");
            move |_i: usize| true
        });
    }
}
