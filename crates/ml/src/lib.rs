//! Hand-rolled machine learning for Data Tamer.
//!
//! The paper trains "a machine-learning classifier on a large-scale web-text
//! and used it for deduplication and data cleaning", reporting 89/90%
//! precision/recall by 10-fold cross-validation. The reproduction bands note
//! Rust's ML tooling is thin — everything here is implemented from scratch:
//!
//! * [`features`] — bag-of-words counting, hashing vectoriser, TF-IDF.
//! * [`nb`] — multinomial naive Bayes (text cleaning classifier).
//! * [`logreg`] — L2-regularised logistic regression trained by SGD
//!   (the dedup pair classifier's engine).
//! * [`crossval`] — stratified k-fold cross-validation.
//! * [`metrics`] — confusion matrices, precision / recall / F1 / accuracy.
//! * [`dedup`] — record-pair similarity features + the dedup classifier.

pub mod crossval;
pub mod dedup;
pub mod features;
pub mod logreg;
pub mod metrics;
pub mod nb;

pub use crossval::{stratified_kfold, CrossValReport};
pub use dedup::{DedupClassifier, PairFeatures, PreparedForm};
pub use logreg::LogisticRegression;
pub use metrics::{BinaryMetrics, ConfusionMatrix};
pub use nb::NaiveBayes;
