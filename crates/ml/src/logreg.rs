//! L2-regularised logistic regression trained with SGD.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate (decays as `lr / (1 + t * decay)`).
    pub learning_rate: f64,
    /// Learning-rate decay per epoch.
    pub decay: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig { epochs: 60, learning_rate: 0.3, decay: 0.05, l2: 1e-4, seed: 42 }
    }
}

/// A trained binary logistic-regression model over dense features.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Train on dense feature rows with boolean labels.
    ///
    /// # Panics
    /// When `xs` is empty, rows have inconsistent dimensions, or label count
    /// differs from row count.
    pub fn train(xs: &[Vec<f64>], ys: &[bool], config: &LogRegConfig) -> Self {
        assert!(!xs.is_empty(), "training set must be non-empty");
        assert_eq!(xs.len(), ys.len(), "feature/label count mismatch");
        let dim = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == dim), "inconsistent feature dimensions");

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for epoch in 0..config.epochs {
            let lr = config.learning_rate / (1.0 + epoch as f64 * config.decay);
            // Fisher-Yates shuffle with the seeded RNG.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                let x = &xs[idx];
                let y = if ys[idx] { 1.0 } else { 0.0 };
                let z = bias + dot_dense(&weights, x);
                let err = sigmoid(z) - y;
                for (w, xi) in weights.iter_mut().zip(x) {
                    *w -= lr * (err * xi + config.l2 * *w);
                }
                bias -= lr * err;
            }
        }
        LogisticRegression { weights, bias }
    }

    /// Probability that the label is positive.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        sigmoid(self.bias + dot_dense(&self.weights, x))
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Hard decision at a custom threshold.
    pub fn predict_at(&self, x: &[f64], threshold: f64) -> bool {
        self.predict_proba(x) >= threshold
    }

    /// Learned weights (for ablation inspection).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

fn dot_dense(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        // Positive iff x0 + x1 > 1.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..n {
            let a: f64 = rng.random::<f64>() * 2.0;
            let b: f64 = rng.random::<f64>() * 2.0;
            xs.push(vec![a, b]);
            ys.push(a + b > 1.0);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = linearly_separable(400);
        let model = LogisticRegression::train(&xs, &ys, &LogRegConfig::default());
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| model.predict(x) == **y)
            .count();
        assert!(correct >= 380, "train accuracy too low: {correct}/400");
    }

    #[test]
    fn probabilities_are_monotone_in_signal() {
        let (xs, ys) = linearly_separable(400);
        let model = LogisticRegression::train(&xs, &ys, &LogRegConfig::default());
        let low = model.predict_proba(&[0.0, 0.0]);
        let high = model.predict_proba(&[2.0, 2.0]);
        assert!(low < 0.5, "{low}");
        assert!(high > 0.5, "{high}");
        assert!((0.0..=1.0).contains(&low));
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = linearly_separable(100);
        let m1 = LogisticRegression::train(&xs, &ys, &LogRegConfig::default());
        let m2 = LogisticRegression::train(&xs, &ys, &LogRegConfig::default());
        assert_eq!(m1.weights(), m2.weights());
        assert_eq!(m1.bias(), m2.bias());
        let m3 = LogisticRegression::train(
            &xs,
            &ys,
            &LogRegConfig { seed: 99, ..Default::default() },
        );
        assert_ne!(m1.weights(), m3.weights());
    }

    #[test]
    fn l2_shrinks_weights() {
        let (xs, ys) = linearly_separable(200);
        let loose = LogisticRegression::train(
            &xs,
            &ys,
            &LogRegConfig { l2: 0.0, ..Default::default() },
        );
        let tight = LogisticRegression::train(
            &xs,
            &ys,
            &LogRegConfig { l2: 0.5, ..Default::default() },
        );
        let norm = |w: &[f64]| w.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm(tight.weights()) < norm(loose.weights()));
    }

    #[test]
    fn custom_threshold_changes_decisions() {
        let (xs, ys) = linearly_separable(200);
        let model = LogisticRegression::train(&xs, &ys, &LogRegConfig::default());
        let x = vec![0.55, 0.55];
        let p = model.predict_proba(&x);
        assert!(model.predict_at(&x, p - 0.01));
        assert!(!model.predict_at(&x, p + 0.01));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_panics() {
        LogisticRegression::train(&[], &[], &LogRegConfig::default());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_predict_panics() {
        let model = LogisticRegression::train(
            &[vec![1.0, 2.0]],
            &[true],
            &LogRegConfig { epochs: 1, ..Default::default() },
        );
        model.predict(&[1.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
