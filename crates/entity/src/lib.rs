//! Entity consolidation.
//!
//! Data Tamer's entity-consolidation module finds "records from different
//! data sources which describe the same entity" and consolidates them into
//! composite entity records. At web scale all-pairs comparison is
//! impossible, so the pipeline is: **block** (candidate generation) →
//! **score** pairs (rule-based or the ML dedup classifier) → **cluster**
//! (union-find over accepted pairs) → **merge** into composite records with
//! conflict resolution.
//!
//! * [`blocking`] — token, Soundex, sorted-neighbourhood, and MinHash-LSH
//!   candidate generation; oversized buckets degrade to progressive
//!   (sorted-neighborhood) expansion instead of truncating, so blocking
//!   never silently drops a record's candidates.
//! * [`pairsim`] — weighted per-attribute record-pair similarity with a
//!   prepare-once / score-many layer ([`ScoringContext`]): per-record
//!   features (interned attributes, parsed numerics, lowercased text,
//!   sorted interned token ids) are normalised once per run, so each of
//!   the millions of candidate pairs scores allocation-free.
//! * [`cluster`] — union-find clustering of accepted pairs.
//! * [`consolidate`] — composite-record merge with conflict resolution.
//! * [`pipeline`] — the end-to-end consolidation pipeline with statistics.
//! * [`incremental`] — delta ER with resident blocking indices, scoring
//!   context, score memo, and persistent union-find: ingest scales with
//!   the batch, not the corpus, while clusters stay byte-identical to a
//!   from-scratch run.

pub mod blocking;
pub mod cluster;
pub mod consolidate;
pub mod incremental;
pub mod pairsim;
pub mod pipeline;

pub use blocking::{
    blocking_recall, Blocker, BlockingOutcome, BlockingStrategy, OversizeFallback,
    ADAPTIVE_WINDOW_MAX, BUCKET_CAP, PROGRESSIVE_WINDOW,
};
pub use cluster::UnionFind;
pub use incremental::{DeltaReport, IncrementalConsolidator};
pub use consolidate::{merge_cluster, merge_composite, ConflictPolicy, MergePolicy};
pub use pairsim::{
    accepted_pairs, accepted_pairs_prepared, score_pairs, score_pairs_prepared, PairScorer,
    PrepareStats, RecordSimilarity, ScoringContext,
};
pub use pipeline::{ConsolidationPipeline, ConsolidationResult, PipelineConfig};
