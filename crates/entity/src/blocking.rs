//! Blocking: cheap candidate-pair generation.
//!
//! Comparing all `n²/2` record pairs is intractable at the paper's scale
//! (173M entities); blocking restricts comparisons to records sharing a
//! cheap key. Strategies trade recall against candidate volume — the
//! ablation bench sweeps them (`blocking/*` in `datatamer-bench`).
//!
//! ## Oversized buckets: progressive blocking, not truncation
//!
//! Bucket strategies (`Token`, `Soundex`) hit a wall on stopword-like keys:
//! a bucket of 100k members would expand to ~5·10⁹ pairs. The historic
//! answer was to cut the bucket at [`BUCKET_CAP`] — bounded cost, but a
//! *recall cliff*: every duplicate past the cap was silently unreachable.
//!
//! The default is now **progressive blocking**
//! ([`OversizeFallback::Progressive`]): an oversized bucket keeps the full
//! quadratic expansion over its first [`BUCKET_CAP`] members (so nothing
//! the cap used to find is ever lost) and *additionally* sorts the entire
//! membership by the records' full key and slides a window over that order,
//! so every member — including those past the cap — still meets its
//! lexicographic neighbours. True duplicates have near-identical full keys
//! and sort adjacent, so the window recovers them at
//! `O(cap² + |bucket| · window)` candidates instead of `O(|bucket|²)`.
//! Buckets handled this way are counted in
//! [`BlockingOutcome::degraded_buckets`]: degraded means "window recall
//! instead of exhaustive recall inside this bucket", never "records
//! dropped". The legacy cliff survives only as the opt-in
//! [`OversizeFallback::Truncate`], kept for recall-ablation comparisons.

use std::collections::HashMap;

use datatamer_model::Record;
use datatamer_sim::{for_each_token, soundex, tokenize, MinHashLsh, MinHasher, TokenInterner};
use rayon::prelude::*;

/// Available blocking strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// Records sharing any normalised token of the key attribute.
    Token,
    /// Records sharing the Soundex code of the key attribute's first word.
    Soundex,
    /// Sort by the key attribute; every pair within a window of `w`.
    SortedNeighborhood { window: usize },
    /// MinHash LSH over key-attribute tokens (bands × rows hash functions).
    MinHashLsh { bands: usize, rows: usize },
}

/// Bucket-based strategies treat buckets above this many members
/// (stopword-like tokens) as oversized and apply the configured
/// [`OversizeFallback`] to bound the quadratic blowup. Oversize handling is
/// never silent: it is reported as [`BlockingOutcome::degraded_buckets`].
pub const BUCKET_CAP: usize = 256;

/// Default sorted-neighborhood window for
/// [`OversizeFallback::Progressive`]: each member of an oversized bucket
/// meets this many lexicographic neighbours (minus one) on each side of the
/// full-key sort order.
pub const PROGRESSIVE_WINDOW: usize = 16;

/// Default clamp for [`OversizeFallback::ProgressiveAdaptive`]: however
/// oversized the bucket, the per-member window never exceeds this.
pub const ADAPTIVE_WINDOW_MAX: usize = 128;

/// What a bucket strategy does with a bucket larger than the cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OversizeFallback {
    /// Legacy behaviour: cut the bucket to the cap and expand only the
    /// survivors — bounded cost, but every duplicate pair past the cap is
    /// unreachable (the recall cliff). Kept for ablation comparisons; the
    /// progressive fallback's candidate set is always a superset of this
    /// one, so its recall on any truth set is at least as high.
    Truncate,
    /// Progressive blocking: keep the quadratic expansion over the first
    /// cap members *and* sort the whole bucket by the records' full key,
    /// sliding a window of `window` over that order so every member still
    /// gets candidates. `O(cap² + |bucket| · window)` pairs per bucket.
    Progressive {
        /// Sorted-neighborhood window width (at least 2).
        window: usize,
    },
    /// Progressive blocking with a window that *scales with bucket size*:
    /// `window = base · ⌈log₂(|bucket| / cap)⌉`, clamped to
    /// `[base, max]`. A bucket just over the cap gets the base window
    /// (identical to [`OversizeFallback::Progressive`] at `base`); each
    /// doubling of the overflow widens the window by another `base`, so
    /// recall inside stopword-sized buckets degrades logarithmically
    /// instead of cliff-like — while the candidate count stays
    /// `O(cap² + |bucket| · window)` with `window ≤ max`. The candidate
    /// set always contains the fixed-`base` progressive set (the window
    /// can only grow), so the recall-dominance invariant extends:
    /// adaptive ⊇ progressive(base) ⊇ truncated.
    ProgressiveAdaptive {
        /// Window at the smallest oversize (at least 2).
        base: usize,
        /// Hard ceiling on the scaled window.
        max: usize,
    },
}

impl Default for OversizeFallback {
    fn default() -> Self {
        OversizeFallback::Progressive { window: PROGRESSIVE_WINDOW }
    }
}

impl OversizeFallback {
    /// The default adaptive configuration: base [`PROGRESSIVE_WINDOW`],
    /// clamped at [`ADAPTIVE_WINDOW_MAX`].
    pub fn adaptive() -> Self {
        OversizeFallback::ProgressiveAdaptive {
            base: PROGRESSIVE_WINDOW,
            max: ADAPTIVE_WINDOW_MAX,
        }
    }
}

/// The adaptive window for one oversized bucket:
/// `base · ⌈log₂(bucket / cap)⌉` clamped into `[base, max]` (see
/// [`OversizeFallback::ProgressiveAdaptive`]). Only called for
/// `bucket > cap`, where the multiplier is at least 1.
pub(crate) fn adaptive_window(base: usize, max: usize, bucket: usize, cap: usize) -> usize {
    let base = base.max(2);
    let ratio = bucket as f64 / cap.max(1) as f64;
    let doublings = ratio.log2().ceil().max(1.0) as usize;
    (base.saturating_mul(doublings)).clamp(base, max.max(base))
}

/// Candidate generation plus blocking-health counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingOutcome {
    /// Candidate index pairs `(i, j)` with `i < j`, sorted, deduplicated.
    pub pairs: Vec<(usize, usize)>,
    /// Buckets whose membership exceeded the blocker's cap and fell back
    /// to the configured [`OversizeFallback`]. Under
    /// [`OversizeFallback::Progressive`] this means windowed (not
    /// exhaustive) recall inside those buckets; under
    /// [`OversizeFallback::Truncate`] it means beyond-cap members were
    /// dropped entirely — a recall hazard the caller must surface.
    pub degraded_buckets: usize,
}

/// Generates candidate pairs from records using one strategy.
#[derive(Debug, Clone)]
pub struct Blocker {
    /// The attribute whose value drives blocking.
    pub key_attr: String,
    /// The chosen strategy.
    pub strategy: BlockingStrategy,
    /// Bucket size above which the fallback kicks in ([`BUCKET_CAP`] by
    /// default; only the bucket strategies consult it).
    pub bucket_cap: usize,
    /// What to do with oversized buckets (progressive by default).
    pub fallback: OversizeFallback,
}

impl Blocker {
    /// Create a blocker on an attribute with the default bucket cap and
    /// progressive oversize fallback.
    pub fn new(key_attr: impl Into<String>, strategy: BlockingStrategy) -> Self {
        Blocker {
            key_attr: key_attr.into(),
            strategy,
            bucket_cap: BUCKET_CAP,
            fallback: OversizeFallback::default(),
        }
    }

    /// Builder: override the bucket cap (testing and ablation knob).
    pub fn with_bucket_cap(mut self, cap: usize) -> Self {
        self.bucket_cap = cap.max(2);
        self
    }

    /// Builder: override the oversized-bucket fallback.
    pub fn with_fallback(mut self, fallback: OversizeFallback) -> Self {
        self.fallback = fallback;
        self
    }

    /// Candidate index pairs `(i, j)` with `i < j`, sorted, deduplicated.
    /// Records lacking the key attribute never appear in any pair.
    pub fn candidates(&self, records: &[Record]) -> Vec<(usize, usize)> {
        self.candidates_with_report(records).pairs
    }

    /// [`Blocker::candidates`] plus the degradation counter. Only the
    /// bucket-based strategies (`Token`, `Soundex`) can degrade; the
    /// windowed and LSH strategies always report zero.
    pub fn candidates_with_report(&self, records: &[Record]) -> BlockingOutcome {
        self.candidates_with_report_keyed(records, &|| self.sort_keys(records))
    }

    /// [`Blocker::candidates_with_report`] with the full-key sort axis
    /// supplied by the caller instead of re-derived from the raw records.
    /// The `BlockedEr` path already holds every record's lowercased key
    /// text inside its prepared `ScoringContext`, so threading it through
    /// here removes a second rendering + lowercasing pass over the corpus.
    ///
    /// `sort_keys` is a thunk because only the sorted-neighborhood strategy
    /// and the progressive oversize fallbacks read the axis — the common
    /// no-degradation bucket path never invokes it. It must return one
    /// entry per record, byte-identical to
    /// `record.get_text(key_attr).map(|k| k.to_lowercase())`; the candidate
    /// output is then byte-identical to the unkeyed form.
    pub fn candidates_with_report_keyed(
        &self,
        records: &[Record],
        sort_keys: &(dyn Fn() -> Vec<Option<String>> + Sync),
    ) -> BlockingOutcome {
        match self.strategy {
            BlockingStrategy::Token => self.token_blocks(records, sort_keys),
            BlockingStrategy::Soundex => self.soundex_blocks(records, sort_keys),
            BlockingStrategy::SortedNeighborhood { window } => BlockingOutcome {
                pairs: sorted_neighborhood_pairs(&sort_keys(), window),
                degraded_buckets: 0,
            },
            BlockingStrategy::MinHashLsh { bands, rows } => BlockingOutcome {
                pairs: self.lsh_blocks(records, bands, rows),
                degraded_buckets: 0,
            },
        }
    }

    fn key_of(&self, r: &Record) -> Option<String> {
        r.get_text(&self.key_attr)
    }

    /// Lowercased full keys, indexed like `records` — the sort axis for
    /// progressive expansion inside oversized buckets.
    fn sort_keys(&self, records: &[Record]) -> Vec<Option<String>> {
        records.iter().map(|r| self.key_of(r).map(|k| k.to_lowercase())).collect()
    }

    fn token_blocks(
        &self,
        records: &[Record],
        sort_keys: &(dyn Fn() -> Vec<Option<String>> + Sync),
    ) -> BlockingOutcome {
        // Buckets are keyed by interned token id and stored in a dense
        // vector: one streaming tokenisation pass per record, token
        // equality reduced to `u32`, no per-record `Vec<String>` and no
        // string-keyed hash map. Bucket contents and the final pair set
        // are byte-identical to the string-keyed form (pairs are globally
        // sorted and deduplicated downstream).
        let mut interner = TokenInterner::new();
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        let mut ids: Vec<u32> = Vec::new();
        for (i, r) in records.iter().enumerate() {
            if let Some(key) = self.key_of(r) {
                // Distinct tokens only: a repeated token ("La La Land")
                // must not enter the record into its bucket twice, which
                // would emit a self-pair `(i, i)` and inflate bucket sizes
                // toward the cap.
                ids.clear();
                for_each_token(&key, |tok| ids.push(interner.intern(tok)));
                ids.sort_unstable();
                ids.dedup();
                for &id in &ids {
                    while buckets.len() <= id as usize {
                        buckets.push(Vec::new());
                    }
                    buckets[id as usize].push(i);
                }
            }
        }
        self.pairs_from_buckets(buckets, sort_keys)
    }

    fn soundex_blocks(
        &self,
        records: &[Record],
        sort_keys: &(dyn Fn() -> Vec<Option<String>> + Sync),
    ) -> BlockingOutcome {
        let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, r) in records.iter().enumerate() {
            if let Some(key) = self.key_of(r) {
                let first_word = key.split_whitespace().next().unwrap_or("");
                if let Some(code) = soundex(first_word) {
                    buckets.entry(code).or_default().push(i);
                }
            }
        }
        // dtlint::allow(map-iter, reason = "pairs_from_buckets sorts and dedups the expanded pair list")
        self.pairs_from_buckets(buckets.into_values(), sort_keys)
    }

    fn lsh_blocks(&self, records: &[Record], bands: usize, rows: usize) -> Vec<(usize, usize)> {
        let hasher = MinHasher::new(bands * rows, 0x1357_9bdf);
        let mut lsh: MinHashLsh<usize> = MinHashLsh::new(bands, rows);
        for (i, r) in records.iter().enumerate() {
            if let Some(key) = self.key_of(r) {
                // Empty token sets are rejected inside `insert` (their
                // all-MAX signatures would band-collide with each other).
                lsh.insert(i, &hasher.signature(&tokenize(&key)));
            }
        }
        // `candidate_pairs` is sorted and self-pair-free; re-normalising
        // here keeps the byte-determinism contract local to this function
        // instead of inherited, so a future index swap cannot silently
        // reintroduce HashMap iteration order into the output.
        let mut pairs: Vec<(usize, usize)> = lsh
            .candidate_pairs()
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Expand buckets into pairs. Pair expansion is independent across
    /// buckets — it fans out over the thread team while the final order
    /// stays deterministic (globally sorted, deduplicated). Buckets at or
    /// under the cap expand quadratically; oversized buckets apply the
    /// configured [`OversizeFallback`] and are counted as degraded.
    ///
    /// Pairs travel as packed `u64`s (`i` in the high half, `j` in the
    /// low) until the final unpack: packed order equals tuple order, so
    /// the dominant sort + dedup runs over half the bytes with single-word
    /// compares while the emitted pair list stays byte-identical.
    fn pairs_from_buckets<I: IntoIterator<Item = Vec<usize>>>(
        &self,
        buckets: I,
        sort_keys: &(dyn Fn() -> Vec<Option<String>> + Sync),
    ) -> BlockingOutcome {
        let cap = self.bucket_cap;
        // dtlint::allow(map-iter, reason = "generic IntoIterator param shares the name of a map local elsewhere in this file; output is sorted + deduped before return")
        let buckets: Vec<Vec<usize>> = buckets.into_iter().collect();
        // dtlint::allow(map-iter, reason = "Vec receiver; `buckets` is rebound to Vec<Vec<usize>> on the previous line")
        let degraded_buckets = buckets.iter().filter(|m| m.len() > cap).count();
        // The full-key sort axis is only read by the progressive arm, so
        // the thunk (an O(n) key clone + lowercase pass on the unkeyed
        // path) is never invoked on the common no-degradation path.
        let sort_keys: Vec<Option<String>> = if degraded_buckets > 0
            && matches!(
                self.fallback,
                OversizeFallback::Progressive { .. }
                    | OversizeFallback::ProgressiveAdaptive { .. }
            ) {
            sort_keys()
        } else {
            Vec::new()
        };
        let mut packed: Vec<u64> = buckets
            .par_iter()
            .flat_map(|members| {
                if members.len() <= cap {
                    return quadratic_pairs(members);
                }
                let window = match self.fallback {
                    OversizeFallback::Truncate => {
                        return quadratic_pairs(&members[..cap]);
                    }
                    OversizeFallback::Progressive { window } => window.max(2),
                    OversizeFallback::ProgressiveAdaptive { base, max } => {
                        adaptive_window(base, max, members.len(), cap)
                    }
                };
                // The quadratic core preserves everything the cap used to
                // find; the windowed pass over the full-key sort order is
                // what recovers beyond-cap duplicates.
                let mut local = quadratic_pairs(&members[..cap]);
                let mut sorted = members.clone();
                sorted.sort_unstable_by(|&a, &b| {
                    sort_keys[a].cmp(&sort_keys[b]).then(a.cmp(&b))
                });
                for i in 0..sorted.len() {
                    for j in (i + 1)..(i + window).min(sorted.len()) {
                        local.push(pack_pair(sorted[i], sorted[j]));
                    }
                }
                local
            })
            .collect();
        packed.sort_unstable();
        packed.dedup();
        let pairs: Vec<(usize, usize)> = packed.into_iter().map(unpack_pair).collect();
        BlockingOutcome { pairs, degraded_buckets }
    }
}

/// Sorted-neighborhood expansion over a prepared key axis: sort the keyed
/// records by `(key, index)` and emit every pair within `window` of each
/// other in that order. Records with no key (`None`) never pair. Shared by
/// the batch strategy and the incremental consolidator (which re-windows
/// the *current* axis per delta batch).
pub fn sorted_neighborhood_pairs(
    keys: &[Option<String>],
    window: usize,
) -> Vec<(usize, usize)> {
    let window = window.max(2);
    let mut keyed: Vec<(&str, usize)> = keys
        .iter()
        .enumerate()
        .filter_map(|(i, k)| k.as_deref().map(|k| (k, i)))
        .collect();
    keyed.sort();
    // Window expansion is independent per anchor index — rayon it.
    let mut out: Vec<(usize, usize)> = (0..keyed.len())
        .into_par_iter()
        .flat_map(|i| {
            let mut local = Vec::with_capacity(window - 1);
            for j in (i + 1)..(i + window).min(keyed.len()) {
                let (a, b) = (keyed[i].1, keyed[j].1);
                local.push((a.min(b), a.max(b)));
            }
            local
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Pack an unordered index pair into one word, smaller index high — packed
/// `u64` order is exactly `(min, max)` tuple order.
#[inline]
pub(crate) fn pack_pair(a: usize, b: usize) -> u64 {
    debug_assert!(a != b && a <= u32::MAX as usize && b <= u32::MAX as usize);
    let (lo, hi) = (a.min(b), a.max(b));
    ((lo as u64) << 32) | hi as u64
}

#[inline]
pub(crate) fn unpack_pair(p: u64) -> (usize, usize) {
    ((p >> 32) as usize, (p & u32::MAX as u64) as usize)
}

pub(crate) fn quadratic_pairs(members: &[usize]) -> Vec<u64> {
    let mut local = Vec::with_capacity(members.len().saturating_sub(1) * members.len() / 2);
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            local.push(pack_pair(members[i], members[j]));
        }
    }
    local
}

/// Recall of a candidate set against known duplicate pairs.
pub fn blocking_recall(candidates: &[(usize, usize)], truth: &[(usize, usize)]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<(usize, usize)> = candidates.iter().copied().collect();
    let hit = truth
        .iter()
        .filter(|(a, b)| set.contains(&(*a.min(b), *a.max(b))))
        .count();
    hit as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{RecordId, SourceId, Value};

    fn records(names: &[&str]) -> Vec<Record> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Record::from_pairs(
                    SourceId(0),
                    RecordId(i as u64),
                    vec![("name", Value::from(*n))],
                )
            })
            .collect()
    }

    /// One oversized bucket (every name shares "show") with duplicate pairs
    /// planted inside, straddling, and fully beyond the cap boundary. The
    /// planted duplicates have *near-identical* full keys (as real
    /// near-duplicates do) but distinct secondary tokens, so only the
    /// shared giant bucket can reach them — the structure the progressive
    /// full-key sort exploits and token truncation cannot.
    fn oversized_corpus() -> (Vec<Record>, Vec<(usize, usize)>) {
        let mut names: Vec<String> = (0..600).map(|i| format!("show number{i:03}")).collect();
        names[10] = "show aadupa1".to_owned();
        names[300] = "show aadupa2".to_owned();
        names[400] = "show zzdupb1".to_owned();
        names[599] = "show zzdupb2".to_owned();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let truth = vec![(0, 1), (10, 300), (400, 599)];
        (records(&refs), truth)
    }

    #[test]
    fn token_blocking_pairs_shared_tokens() {
        let rs = records(&["Matilda Musical", "Matilda Show", "Wicked Show", "Annie"]);
        let b = Blocker::new("name", BlockingStrategy::Token);
        let pairs = b.candidates(&rs);
        assert!(pairs.contains(&(0, 1)), "share 'matilda'");
        assert!(pairs.contains(&(1, 2)), "share 'show'");
        assert!(!pairs.contains(&(0, 3)));
        assert!(!pairs.contains(&(2, 3)));
    }

    #[test]
    fn soundex_blocking_groups_homophones() {
        let rs = records(&["Smith John", "Smyth Jon", "Jones Mary"]);
        let b = Blocker::new("name", BlockingStrategy::Soundex);
        let pairs = b.candidates(&rs);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn sorted_neighborhood_window() {
        let rs = records(&["aaa", "aab", "aac", "zzz"]);
        let b = Blocker::new("name", BlockingStrategy::SortedNeighborhood { window: 2 });
        let pairs = b.candidates(&rs);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(2, 3)), "window slides over the sorted order");
        assert!(!pairs.contains(&(0, 3)));
        assert!(!pairs.contains(&(0, 2)), "window 2 means adjacent only");
    }

    #[test]
    fn lsh_blocking_finds_similar_names() {
        let rs = records(&[
            "The Walking Dead Season Finale Review",
            "The Walking Dead Finale Season Review",
            "Completely Different Topic Entirely Here",
        ]);
        let b = Blocker::new("name", BlockingStrategy::MinHashLsh { bands: 8, rows: 4 });
        let pairs = b.candidates(&rs);
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(!pairs.contains(&(0, 2)));
    }

    #[test]
    fn lsh_blocking_output_is_sorted_dedup_and_stable_across_indexes() {
        // The LSH band tables are RandomState-seeded HashMaps, and every
        // Blocker run builds fresh ones with fresh seeds — so any leak of
        // table iteration order into the output shows up as two differing
        // runs. The output must also be sorted, deduplicated, and free of
        // self-pairs, like every other strategy.
        let names: Vec<String> = (0..120)
            .map(|i| format!("the walking dead season {} review extra words", i % 7))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let rs = records(&refs);
        let strategy = BlockingStrategy::MinHashLsh { bands: 8, rows: 4 };
        let first = Blocker::new("name", strategy).candidates(&rs);
        let second = Blocker::new("name", strategy).candidates(&rs);
        assert_eq!(first, second, "fresh hash seeds must not change the output");
        assert!(!first.is_empty());
        let mut normalized = first.clone();
        normalized.sort_unstable();
        normalized.dedup();
        assert_eq!(first, normalized, "output must arrive sorted and deduplicated");
        assert!(first.iter().all(|(a, b)| a < b), "no self-pairs, ordered endpoints");
    }

    #[test]
    fn lsh_empty_keys_never_pair_with_each_other() {
        // Empty key values tokenize to nothing: their all-MAX signatures
        // used to band-collide pairwise, pairing every empty-keyed record
        // with every other.
        let rs = records(&["", "", "", "The Walking Dead Show", "Walking Dead The Show"]);
        let b = Blocker::new("name", BlockingStrategy::MinHashLsh { bands: 8, rows: 4 });
        let pairs = b.candidates(&rs);
        assert!(
            pairs.iter().all(|(a, b)| *a >= 3 && *b >= 3),
            "empty-keyed records must never pair: {pairs:?}"
        );
        assert!(pairs.contains(&(3, 4)));
    }

    #[test]
    fn missing_key_records_never_pair() {
        let mut rs = records(&["Matilda", "Matilda"]);
        rs.push(Record::from_pairs(
            SourceId(0),
            RecordId(9),
            vec![("other", Value::from("Matilda"))],
        ));
        for strategy in [
            BlockingStrategy::Token,
            BlockingStrategy::Soundex,
            BlockingStrategy::SortedNeighborhood { window: 3 },
            BlockingStrategy::MinHashLsh { bands: 4, rows: 4 },
        ] {
            let pairs = Blocker::new("name", strategy).candidates(&rs);
            assert!(
                pairs.iter().all(|(a, b)| *a < 2 && *b < 2),
                "{strategy:?}: {pairs:?}"
            );
        }
    }

    #[test]
    fn repeated_tokens_never_emit_self_pairs() {
        let rs = records(&["La La Land", "La Strada", "Unrelated Title"]);
        let outcome =
            Blocker::new("name", BlockingStrategy::Token).candidates_with_report(&rs);
        assert!(
            outcome.pairs.iter().all(|(a, b)| a < b),
            "pairs must have distinct ordered endpoints: {:?}",
            outcome.pairs
        );
        assert!(outcome.pairs.contains(&(0, 1)), "share 'la'");
    }

    #[test]
    fn recall_measurement() {
        let cands = vec![(0, 1), (2, 3)];
        let truth = vec![(1, 0), (2, 3), (4, 5)];
        assert!((blocking_recall(&cands, &truth) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(blocking_recall(&cands, &[]), 1.0);
    }

    #[test]
    fn giant_buckets_degrade_progressively_and_are_reported() {
        // 600 records all sharing a token: uncapped would be ~180k pairs.
        // Progressive blocking bounds the bucket at cap² core + window pass.
        let (rs, _) = oversized_corpus();
        let outcome =
            Blocker::new("name", BlockingStrategy::Token).candidates_with_report(&rs);
        let bound = BUCKET_CAP * (BUCKET_CAP - 1) / 2 + 600 * (PROGRESSIVE_WINDOW - 1);
        assert!(
            outcome.pairs.len() <= bound + 600, // small buckets contribute a little
            "progressive expansion must bound the blowup: {} > {}",
            outcome.pairs.len(),
            bound + 600
        );
        assert!(
            outcome.pairs.len() < 600 * 599 / 2 / 3,
            "nowhere near quadratic: {}",
            outcome.pairs.len()
        );
        assert_eq!(
            outcome.degraded_buckets, 1,
            "the 'show' bucket exceeded the cap and must be reported"
        );
    }

    #[test]
    fn small_buckets_report_no_degradation() {
        let rs = records(&["Matilda Musical", "Matilda Show", "Wicked Show", "Annie"]);
        for strategy in [
            BlockingStrategy::Token,
            BlockingStrategy::Soundex,
            BlockingStrategy::SortedNeighborhood { window: 3 },
            BlockingStrategy::MinHashLsh { bands: 4, rows: 4 },
        ] {
            let outcome = Blocker::new("name", strategy).candidates_with_report(&rs);
            assert_eq!(outcome.degraded_buckets, 0, "{strategy:?}");
        }
    }

    #[test]
    fn oversized_bucket_blocking_recall_regression() {
        // One bucket of 600 (shared token) with known duplicates inside the
        // cap, straddling it, and fully beyond it. The legacy cap
        // necessarily lost the beyond-cap pairs; progressive blocking must
        // recover all of them — this test pins the recovery, where it used
        // to pin the loss — while staying O(cap² + bucket · window), not
        // quadratic.
        let (rs, truth) = oversized_corpus();
        let outcome =
            Blocker::new("name", BlockingStrategy::Token).candidates_with_report(&rs);
        assert_eq!(
            blocking_recall(&outcome.pairs, &truth),
            1.0,
            "progressive blocking must recover every planted duplicate"
        );
        assert_eq!(outcome.degraded_buckets, 1, "the degradation must still be announced");
        let bound = BUCKET_CAP * (BUCKET_CAP - 1) / 2 + 600 * (PROGRESSIVE_WINDOW - 1) + 600;
        assert!(outcome.pairs.len() <= bound, "{} > {bound}", outcome.pairs.len());

        // The legacy truncating fallback still loses everything past the
        // cap on the same corpus — the cliff progressive blocking replaces.
        let truncated = Blocker::new("name", BlockingStrategy::Token)
            .with_fallback(OversizeFallback::Truncate)
            .candidates_with_report(&rs);
        let recall = blocking_recall(&truncated.pairs, &truth);
        assert!(
            (recall - 1.0 / 3.0).abs() < 1e-12,
            "truncation keeps only the in-cap pair: {recall}"
        );
        assert_eq!(truncated.degraded_buckets, 1);

        // A small bucket keeps perfect recall over the same truth shape.
        let small: Vec<String> = (0..100).map(|i| format!("show number{i}")).collect();
        let small_refs: Vec<&str> = small.iter().map(String::as_str).collect();
        let small_outcome = Blocker::new("name", BlockingStrategy::Token)
            .candidates_with_report(&records(&small_refs));
        assert_eq!(blocking_recall(&small_outcome.pairs, &[(0, 1), (10, 90)]), 1.0);
        assert_eq!(small_outcome.degraded_buckets, 0);
    }

    #[test]
    fn progressive_candidates_superset_truncated() {
        let (rs, _) = oversized_corpus();
        let progressive =
            Blocker::new("name", BlockingStrategy::Token).candidates(&rs);
        let truncated = Blocker::new("name", BlockingStrategy::Token)
            .with_fallback(OversizeFallback::Truncate)
            .candidates(&rs);
        let set: std::collections::HashSet<_> = progressive.iter().copied().collect();
        assert!(
            truncated.iter().all(|p| set.contains(p)),
            "progressive must never lose a pair the cap found"
        );
        assert!(progressive.len() > truncated.len(), "and must add beyond-cap pairs");
    }

    #[test]
    fn adaptive_window_scales_logarithmically_and_clamps() {
        // Just over the cap: one doubling, base window.
        assert_eq!(adaptive_window(16, 128, 257, 256), 16);
        assert_eq!(adaptive_window(16, 128, 512, 256), 16, "exactly one doubling");
        // Each further doubling of the overflow adds another base.
        assert_eq!(adaptive_window(16, 128, 513, 256), 32);
        assert_eq!(adaptive_window(16, 128, 1025, 256), 48);
        // Stopword-sized buckets clamp at max.
        assert_eq!(adaptive_window(16, 128, 1 << 20, 256), 128);
        // Degenerate configs degrade instead of exploding.
        assert_eq!(adaptive_window(1, 0, 1000, 256), 2, "base floors at 2, max at base");
    }

    #[test]
    fn adaptive_candidates_superset_fixed_progressive() {
        let (rs, truth) = oversized_corpus();
        let base = || Blocker::new("name", BlockingStrategy::Token);
        let fixed = base()
            .with_fallback(OversizeFallback::Progressive { window: PROGRESSIVE_WINDOW })
            .candidates(&rs);
        let adaptive = base()
            .with_fallback(OversizeFallback::adaptive())
            .candidates_with_report(&rs);
        let set: std::collections::HashSet<_> = adaptive.pairs.iter().copied().collect();
        assert!(
            fixed.iter().all(|p| set.contains(p)),
            "the adaptive window can only widen, never narrow"
        );
        // 600 members over cap 256 is two doublings: window 32 > 16, so
        // the adaptive pass genuinely adds neighbours.
        assert!(adaptive.pairs.len() > fixed.len());
        assert_eq!(blocking_recall(&adaptive.pairs, &truth), 1.0);
        assert_eq!(adaptive.degraded_buckets, 1, "degradation still announced");
        // And stays nowhere near quadratic.
        assert!(adaptive.pairs.len() < 600 * 599 / 2 / 3);
    }

    #[test]
    fn bucket_cap_override_triggers_fallback_early() {
        let rs = records(&["show a", "show b", "show c", "show d", "show e"]);
        let outcome = Blocker::new("name", BlockingStrategy::Token)
            .with_bucket_cap(3)
            .candidates_with_report(&rs);
        assert_eq!(outcome.degraded_buckets, 1, "5-member 'show' bucket over cap 3");
        // Window pass over the sorted bucket still connects neighbours
        // beyond the cap boundary.
        assert!(outcome.pairs.contains(&(3, 4)), "{:?}", outcome.pairs);
    }
}
