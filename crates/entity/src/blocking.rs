//! Blocking: cheap candidate-pair generation.
//!
//! Comparing all `n²/2` record pairs is intractable at the paper's scale
//! (173M entities); blocking restricts comparisons to records sharing a
//! cheap key. Strategies trade recall against candidate volume — the
//! ablation bench sweeps them.

use std::collections::HashMap;

use datatamer_model::Record;
use datatamer_sim::{soundex, tokenize, MinHashLsh, MinHasher};
use rayon::prelude::*;

/// Available blocking strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// Records sharing any normalised token of the key attribute.
    Token,
    /// Records sharing the Soundex code of the key attribute's first word.
    Soundex,
    /// Sort by the key attribute; every pair within a window of `w`.
    SortedNeighborhood { window: usize },
    /// MinHash LSH over key-attribute tokens (bands × rows hash functions).
    MinHashLsh { bands: usize, rows: usize },
}

/// Bucket-based strategies cap gigantic buckets (stopword-like tokens) at
/// this many members to bound the quadratic blowup. Truncation is never
/// silent: it is reported as [`BlockingOutcome::truncated_buckets`].
pub const BUCKET_CAP: usize = 256;

/// Candidate generation plus blocking-health counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingOutcome {
    /// Candidate index pairs `(i, j)` with `i < j`, deduplicated.
    pub pairs: Vec<(usize, usize)>,
    /// Buckets whose membership exceeded [`BUCKET_CAP`] and were cut down
    /// to it — a recall hazard the caller must surface, not swallow.
    pub truncated_buckets: usize,
}

/// Generates candidate pairs from records using one strategy.
#[derive(Debug, Clone)]
pub struct Blocker {
    /// The attribute whose value drives blocking.
    pub key_attr: String,
    /// The chosen strategy.
    pub strategy: BlockingStrategy,
}

impl Blocker {
    /// Create a blocker on an attribute.
    pub fn new(key_attr: impl Into<String>, strategy: BlockingStrategy) -> Self {
        Blocker { key_attr: key_attr.into(), strategy }
    }

    /// Candidate index pairs `(i, j)` with `i < j`, deduplicated.
    /// Records lacking the key attribute never appear in any pair.
    pub fn candidates(&self, records: &[Record]) -> Vec<(usize, usize)> {
        self.candidates_with_report(records).pairs
    }

    /// [`Blocker::candidates`] plus the truncation counter. Only the
    /// bucket-based strategies (`Token`, `Soundex`) can truncate; the
    /// windowed and LSH strategies always report zero.
    pub fn candidates_with_report(&self, records: &[Record]) -> BlockingOutcome {
        match self.strategy {
            BlockingStrategy::Token => self.token_blocks(records),
            BlockingStrategy::Soundex => self.soundex_blocks(records),
            BlockingStrategy::SortedNeighborhood { window } => BlockingOutcome {
                pairs: self.sorted_neighborhood(records, window),
                truncated_buckets: 0,
            },
            BlockingStrategy::MinHashLsh { bands, rows } => BlockingOutcome {
                pairs: self.lsh_blocks(records, bands, rows),
                truncated_buckets: 0,
            },
        }
    }

    fn key_of(&self, r: &Record) -> Option<String> {
        r.get_text(&self.key_attr)
    }

    fn token_blocks(&self, records: &[Record]) -> BlockingOutcome {
        let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, r) in records.iter().enumerate() {
            if let Some(key) = self.key_of(r) {
                // Distinct tokens only: a repeated token ("La La Land")
                // must not enter the record into its bucket twice, which
                // would emit a self-pair `(i, i)` and inflate bucket sizes
                // toward the cap.
                let mut toks = tokenize(&key);
                toks.sort_unstable();
                toks.dedup();
                for tok in toks {
                    buckets.entry(tok).or_default().push(i);
                }
            }
        }
        pairs_from_buckets(buckets.into_values())
    }

    fn soundex_blocks(&self, records: &[Record]) -> BlockingOutcome {
        let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, r) in records.iter().enumerate() {
            if let Some(key) = self.key_of(r) {
                let first_word = key.split_whitespace().next().unwrap_or("");
                if let Some(code) = soundex(first_word) {
                    buckets.entry(code).or_default().push(i);
                }
            }
        }
        pairs_from_buckets(buckets.into_values())
    }

    fn sorted_neighborhood(&self, records: &[Record], window: usize) -> Vec<(usize, usize)> {
        let window = window.max(2);
        let mut keyed: Vec<(String, usize)> = records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| self.key_of(r).map(|k| (k.to_lowercase(), i)))
            .collect();
        keyed.sort();
        // Window expansion is independent per anchor index — rayon it.
        let mut out: Vec<(usize, usize)> = (0..keyed.len())
            .into_par_iter()
            .flat_map(|i| {
                let mut local = Vec::with_capacity(window - 1);
                for j in (i + 1)..(i + window).min(keyed.len()) {
                    let (a, b) = (keyed[i].1, keyed[j].1);
                    local.push((a.min(b), a.max(b)));
                }
                local
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn lsh_blocks(&self, records: &[Record], bands: usize, rows: usize) -> Vec<(usize, usize)> {
        let hasher = MinHasher::new(bands * rows, 0x1357_9bdf);
        let mut lsh: MinHashLsh<usize> = MinHashLsh::new(bands, rows);
        for (i, r) in records.iter().enumerate() {
            if let Some(key) = self.key_of(r) {
                let toks = tokenize(&key);
                if !toks.is_empty() {
                    lsh.insert(i, &hasher.signature(&toks));
                }
            }
        }
        lsh.candidate_pairs()
            .into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect()
    }
}

fn pairs_from_buckets<I: IntoIterator<Item = Vec<usize>>>(buckets: I) -> BlockingOutcome {
    // Pair expansion is quadratic inside a bucket and independent across
    // buckets — the expansion fans out over the thread team while the
    // final order stays deterministic (bucket-major, then sorted).
    let buckets: Vec<Vec<usize>> = buckets.into_iter().collect();
    let truncated_buckets = buckets.iter().filter(|m| m.len() > BUCKET_CAP).count();
    let mut pairs: Vec<(usize, usize)> = buckets
        .par_iter()
        .flat_map(|members| {
            let m = &members[..members.len().min(BUCKET_CAP)];
            let mut local = Vec::with_capacity(m.len().saturating_sub(1) * m.len() / 2);
            for i in 0..m.len() {
                for j in (i + 1)..m.len() {
                    local.push((m[i].min(m[j]), m[i].max(m[j])));
                }
            }
            local
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    BlockingOutcome { pairs, truncated_buckets }
}

/// Recall of a candidate set against known duplicate pairs.
pub fn blocking_recall(candidates: &[(usize, usize)], truth: &[(usize, usize)]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<(usize, usize)> = candidates.iter().copied().collect();
    let hit = truth
        .iter()
        .filter(|(a, b)| set.contains(&(*a.min(b), *a.max(b))))
        .count();
    hit as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{RecordId, SourceId, Value};

    fn records(names: &[&str]) -> Vec<Record> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Record::from_pairs(
                    SourceId(0),
                    RecordId(i as u64),
                    vec![("name", Value::from(*n))],
                )
            })
            .collect()
    }

    #[test]
    fn token_blocking_pairs_shared_tokens() {
        let rs = records(&["Matilda Musical", "Matilda Show", "Wicked Show", "Annie"]);
        let b = Blocker::new("name", BlockingStrategy::Token);
        let pairs = b.candidates(&rs);
        assert!(pairs.contains(&(0, 1)), "share 'matilda'");
        assert!(pairs.contains(&(1, 2)), "share 'show'");
        assert!(!pairs.contains(&(0, 3)));
        assert!(!pairs.contains(&(2, 3)));
    }

    #[test]
    fn soundex_blocking_groups_homophones() {
        let rs = records(&["Smith John", "Smyth Jon", "Jones Mary"]);
        let b = Blocker::new("name", BlockingStrategy::Soundex);
        let pairs = b.candidates(&rs);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn sorted_neighborhood_window() {
        let rs = records(&["aaa", "aab", "aac", "zzz"]);
        let b = Blocker::new("name", BlockingStrategy::SortedNeighborhood { window: 2 });
        let pairs = b.candidates(&rs);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(2, 3)), "window slides over the sorted order");
        assert!(!pairs.contains(&(0, 3)));
        assert!(!pairs.contains(&(0, 2)), "window 2 means adjacent only");
    }

    #[test]
    fn lsh_blocking_finds_similar_names() {
        let rs = records(&[
            "The Walking Dead Season Finale Review",
            "The Walking Dead Finale Season Review",
            "Completely Different Topic Entirely Here",
        ]);
        let b = Blocker::new("name", BlockingStrategy::MinHashLsh { bands: 8, rows: 4 });
        let pairs = b.candidates(&rs);
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(!pairs.contains(&(0, 2)));
    }

    #[test]
    fn missing_key_records_never_pair() {
        let mut rs = records(&["Matilda", "Matilda"]);
        rs.push(Record::from_pairs(
            SourceId(0),
            RecordId(9),
            vec![("other", Value::from("Matilda"))],
        ));
        for strategy in [
            BlockingStrategy::Token,
            BlockingStrategy::Soundex,
            BlockingStrategy::SortedNeighborhood { window: 3 },
            BlockingStrategy::MinHashLsh { bands: 4, rows: 4 },
        ] {
            let pairs = Blocker::new("name", strategy).candidates(&rs);
            assert!(
                pairs.iter().all(|(a, b)| *a < 2 && *b < 2),
                "{strategy:?}: {pairs:?}"
            );
        }
    }

    #[test]
    fn repeated_tokens_never_emit_self_pairs() {
        let rs = records(&["La La Land", "La Strada", "Unrelated Title"]);
        let outcome =
            Blocker::new("name", BlockingStrategy::Token).candidates_with_report(&rs);
        assert!(
            outcome.pairs.iter().all(|(a, b)| a < b),
            "pairs must have distinct ordered endpoints: {:?}",
            outcome.pairs
        );
        assert!(outcome.pairs.contains(&(0, 1)), "share 'la'");
    }

    #[test]
    fn recall_measurement() {
        let cands = vec![(0, 1), (2, 3)];
        let truth = vec![(1, 0), (2, 3), (4, 5)];
        assert!((blocking_recall(&cands, &truth) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(blocking_recall(&cands, &[]), 1.0);
    }

    #[test]
    fn giant_buckets_are_capped_and_reported() {
        // 600 records all sharing a token: uncapped would be ~180k pairs.
        let names: Vec<String> = (0..600).map(|i| format!("show number{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let rs = records(&refs);
        let outcome =
            Blocker::new("name", BlockingStrategy::Token).candidates_with_report(&rs);
        assert!(
            outcome.pairs.len() < 256 * 256,
            "bucket cap must bound the blowup: {}",
            outcome.pairs.len()
        );
        assert_eq!(
            outcome.truncated_buckets, 1,
            "the 'show' bucket exceeded the cap and must be reported"
        );
    }

    #[test]
    fn small_buckets_report_no_truncation() {
        let rs = records(&["Matilda Musical", "Matilda Show", "Wicked Show", "Annie"]);
        for strategy in [
            BlockingStrategy::Token,
            BlockingStrategy::Soundex,
            BlockingStrategy::SortedNeighborhood { window: 3 },
            BlockingStrategy::MinHashLsh { bands: 4, rows: 4 },
        ] {
            let outcome = Blocker::new("name", strategy).candidates_with_report(&rs);
            assert_eq!(outcome.truncated_buckets, 0, "{strategy:?}");
        }
    }

    #[test]
    fn oversized_bucket_blocking_recall_regression() {
        // One bucket of 600 (shared token) with known duplicates that sit
        // beyond the cap boundary: the cap necessarily loses them, and the
        // truncation counter is what makes that loss visible. This pins the
        // contract until progressive blocking (ROADMAP) replaces the cap.
        let names: Vec<String> = (0..600).map(|i| format!("show number{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let rs = records(&refs);
        let outcome =
            Blocker::new("name", BlockingStrategy::Token).candidates_with_report(&rs);

        // Truth: pairs inside the cap, straddling it, and fully beyond it.
        let truth = vec![(0, 1), (10, 300), (400, 599)];
        let recall = blocking_recall(&outcome.pairs, &truth);
        assert!(
            (recall - 1.0 / 3.0).abs() < 1e-12,
            "only the in-cap pair survives: {recall}"
        );
        assert_eq!(outcome.truncated_buckets, 1, "the recall loss must be announced");

        // A small bucket keeps perfect recall over the same truth shape.
        let small: Vec<String> = (0..100).map(|i| format!("show number{i}")).collect();
        let small_refs: Vec<&str> = small.iter().map(String::as_str).collect();
        let small_outcome = Blocker::new("name", BlockingStrategy::Token)
            .candidates_with_report(&records(&small_refs));
        assert_eq!(blocking_recall(&small_outcome.pairs, &[(0, 1), (10, 90)]), 1.0);
        assert_eq!(small_outcome.truncated_buckets, 0);
    }
}
