//! Composite-record merge with conflict resolution.
//!
//! Once a cluster of records is believed to describe one entity, Data Tamer
//! consolidates them "into a composite entity record". Different attributes
//! want different policies: names want the most common spelling, free text
//! wants the longest variant, prices want the minimum.

use std::collections::HashMap;

use datatamer_model::{Record, RecordId, SourceId, Value};

/// Conflict resolution policy for merging one attribute's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Most frequent non-null value; ties break to the first seen.
    MajorityVote,
    /// Longest text rendering (favours information-rich variants).
    Longest,
    /// First non-null in cluster order (source priority order).
    First,
    /// Numeric minimum (e.g. CHEAPEST_PRICE); non-numeric falls back to
    /// majority vote.
    NumericMin,
    /// Numeric maximum; non-numeric falls back to majority vote.
    NumericMax,
}

/// Per-attribute policies with a default.
#[derive(Debug, Clone)]
pub struct MergePolicy {
    /// `(attribute, policy)` overrides.
    pub per_attribute: Vec<(String, ConflictPolicy)>,
    /// Policy for attributes without an override.
    pub default: ConflictPolicy,
}

impl Default for MergePolicy {
    fn default() -> Self {
        MergePolicy { per_attribute: Vec::new(), default: ConflictPolicy::MajorityVote }
    }
}

impl MergePolicy {
    /// Policy for an attribute.
    pub fn policy_of(&self, attr: &str) -> ConflictPolicy {
        self.per_attribute
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, p)| *p)
            .unwrap_or(self.default)
    }
}

impl ConflictPolicy {
    /// Resolve one attribute's non-null values (cluster order) to a single
    /// surviving value under this policy. Panics on an empty slice.
    ///
    /// This is the merge primitive of [`merge_cluster`], exposed so
    /// higher-level truth-discovery resolvers (the fusion registry in
    /// `datatamer-core`) can delegate to the classic policies.
    pub fn resolve_values(&self, values: &[&Value]) -> Value {
        resolve(values, *self)
    }
}

/// Composite-record scaffolding shared by every merge flavour: the
/// composite's identity is the first member's `(source, id)`; every
/// attribute present in any member appears in the composite in first-seen
/// order; null values are filtered before resolution; an attribute whose
/// values are all null stays [`Value::Null`].
///
/// `resolve` receives the attribute name and its non-null values as
/// `(member index, value)` pairs in cluster order, and returns the
/// surviving value. [`merge_cluster`] instantiates it with the classic
/// [`MergePolicy`] table; the fusion resolver registry in `datatamer-core`
/// instantiates it with provenance-aware truth discovery.
pub fn merge_composite<F>(records: &[&Record], mut resolve: F) -> Record
where
    F: FnMut(&str, &[(usize, &Value)]) -> Value,
{
    assert!(!records.is_empty(), "cannot merge an empty cluster");
    let mut composite = Record::new(records[0].source, records[0].id);
    // First-seen attribute order across the cluster.
    let mut attr_order: Vec<&str> = Vec::new();
    for r in records {
        for name in r.field_names() {
            if !attr_order.contains(&name) {
                attr_order.push(name);
            }
        }
    }
    for attr in attr_order {
        let values: Vec<(usize, &Value)> = records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.get(attr).filter(|v| !v.is_null()).map(|v| (i, v)))
            .collect();
        if values.is_empty() {
            composite.set(attr, Value::Null);
            continue;
        }
        let resolved = resolve(attr, &values);
        composite.set(attr, resolved);
    }
    composite
}

/// Merge a cluster of records into one composite record under per-attribute
/// [`ConflictPolicy`] resolution (see [`merge_composite`] for the shared
/// composite contract).
pub fn merge_cluster(records: &[&Record], policy: &MergePolicy) -> Record {
    merge_composite(records, |attr, values| {
        let plain: Vec<&Value> = values.iter().map(|(_, v)| *v).collect();
        policy.policy_of(attr).resolve_values(&plain)
    })
}

fn resolve(values: &[&Value], policy: ConflictPolicy) -> Value {
    match policy {
        ConflictPolicy::First => (*values[0]).clone(),
        ConflictPolicy::Longest => (*values
            .iter()
            .max_by_key(|v| v.to_text().len())
            .expect("non-empty"))
        .clone(),
        ConflictPolicy::MajorityVote => majority(values),
        ConflictPolicy::NumericMin => numeric_extreme(values, true),
        ConflictPolicy::NumericMax => numeric_extreme(values, false),
    }
}

fn majority(values: &[&Value]) -> Value {
    let mut counts: HashMap<String, (usize, usize)> = HashMap::new(); // text -> (count, first_idx)
    for (i, v) in values.iter().enumerate() {
        let e = counts.entry(v.to_text()).or_insert((0, i));
        e.0 += 1;
    }
    let (_, (_, idx)) = counts
        // dtlint::allow(map-iter, reason = "max_by under the total order (count, Reverse(first_idx)) has a unique winner")
        .into_iter()
        .max_by(|(_, (ca, ia)), (_, (cb, ib))| ca.cmp(cb).then(ib.cmp(ia)))
        .expect("non-empty");
    (*values[idx]).clone()
}

fn numeric_extreme(values: &[&Value], min: bool) -> Value {
    let parsed: Vec<(usize, f64)> = values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| numeric_of(v).map(|x| (i, x)))
        .collect();
    if parsed.is_empty() {
        return majority(values);
    }
    let (idx, _) = parsed
        .into_iter()
        .min_by(|(_, a), (_, b)| {
            let ord = a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal);
            if min {
                ord
            } else {
                ord.reverse()
            }
        })
        .expect("non-empty");
    (*values[idx]).clone()
}

fn numeric_of(v: &Value) -> Option<f64> {
    if let Some(x) = v.as_float() {
        return Some(x);
    }
    let text = v.to_text();
    datatamer_model::infer::parse_money(&text)
        .map(|m| m.amount)
        .or_else(|| datatamer_model::infer::parse_decimal(&text))
}

/// Assign composite record ids: `(source, id)` of each cluster's first
/// member, preserved for provenance back-tracking.
pub fn composite_identity(cluster: &[&Record]) -> (SourceId, RecordId) {
    cluster[0].key()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, fields: Vec<(&str, &str)>) -> Record {
        Record::from_pairs(
            SourceId(0),
            RecordId(id),
            fields.into_iter().map(|(k, v)| (k, Value::from(v))).collect(),
        )
    }

    #[test]
    fn majority_vote_picks_common_spelling() {
        let rs = [
            rec(0, vec![("name", "Matilda")]),
            rec(1, vec![("name", "MATILDA")]),
            rec(2, vec![("name", "Matilda")]),
        ];
        let refs: Vec<&Record> = rs.iter().collect();
        let merged = merge_cluster(&refs, &MergePolicy::default());
        assert_eq!(merged.get_text("name").as_deref(), Some("Matilda"));
    }

    #[test]
    fn longest_keeps_richest_text() {
        let rs = [
            rec(0, vec![("venue", "Shubert")]),
            rec(1, vec![("venue", "Shubert 225 W. 44th St between 7th and 8th")]),
        ];
        let refs: Vec<&Record> = rs.iter().collect();
        let policy = MergePolicy {
            per_attribute: vec![("venue".into(), ConflictPolicy::Longest)],
            default: ConflictPolicy::MajorityVote,
        };
        let merged = merge_cluster(&refs, &policy);
        assert!(merged.get_text("venue").unwrap().contains("225 W. 44th"));
    }

    #[test]
    fn numeric_min_handles_money_strings() {
        let rs = [
            rec(0, vec![("price", "$45")]),
            rec(1, vec![("price", "$27")]),
            rec(2, vec![("price", "$99.50")]),
        ];
        let refs: Vec<&Record> = rs.iter().collect();
        let policy = MergePolicy {
            per_attribute: vec![("price".into(), ConflictPolicy::NumericMin)],
            default: ConflictPolicy::MajorityVote,
        };
        let merged = merge_cluster(&refs, &policy);
        assert_eq!(merged.get_text("price").as_deref(), Some("$27"));
    }

    #[test]
    fn numeric_max_and_fallback() {
        let rs = [rec(0, vec![("cap", "1460")]), rec(1, vec![("cap", "900")])];
        let refs: Vec<&Record> = rs.iter().collect();
        let policy = MergePolicy {
            per_attribute: vec![("cap".into(), ConflictPolicy::NumericMax)],
            default: ConflictPolicy::MajorityVote,
        };
        assert_eq!(merge_cluster(&refs, &policy).get_text("cap").as_deref(), Some("1460"));
        // Non-numeric values under a numeric policy fall back to majority.
        let rs = [rec(0, vec![("cap", "big")]), rec(1, vec![("cap", "big")])];
        let refs: Vec<&Record> = rs.iter().collect();
        assert_eq!(merge_cluster(&refs, &policy).get_text("cap").as_deref(), Some("big"));
    }

    #[test]
    fn union_of_attributes_with_nulls() {
        let rs = [
            rec(0, vec![("name", "Matilda")]),
            rec(1, vec![("name", "Matilda"), ("price", "$27")]),
        ];
        let refs: Vec<&Record> = rs.iter().collect();
        let merged = merge_cluster(&refs, &MergePolicy::default());
        assert_eq!(merged.get_text("price").as_deref(), Some("$27"));
        assert_eq!(merged.len(), 2);
        // Identity comes from the first member.
        assert_eq!(merged.id, RecordId(0));
        assert_eq!(composite_identity(&refs), (SourceId(0), RecordId(0)));
    }

    #[test]
    fn first_policy_respects_order() {
        let rs = [rec(0, vec![("x", "a")]), rec(1, vec![("x", "b")])];
        let refs: Vec<&Record> = rs.iter().collect();
        let policy = MergePolicy {
            per_attribute: vec![("x".into(), ConflictPolicy::First)],
            default: ConflictPolicy::MajorityVote,
        };
        assert_eq!(merge_cluster(&refs, &policy).get_text("x").as_deref(), Some("a"));
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_panics() {
        merge_cluster(&[], &MergePolicy::default());
    }
}
