//! Incremental consolidation: resident blocking indices + delta ER.
//!
//! Every batch consolidation run re-blocks and re-scores the whole corpus,
//! so steady-state ingest cost grows with corpus size. This module keeps
//! the expensive state **resident between runs** — the prepared
//! [`ScoringContext`], the blocking indices (interned token-id buckets,
//! Soundex buckets, LSH band tables, the sorted-neighborhood key axis), a
//! memo of every pair score ever computed, and a persistent [`UnionFind`]
//! — so ingesting a delta batch costs O(delta), not O(corpus):
//!
//! 1. the batch extends the scoring context in place
//!    ([`ScoringContext::extend`]: interners and arenas grow append-only,
//!    existing ids and features untouched);
//! 2. candidate generation probes only the buckets/bands the batch's own
//!    records touch — new-vs-new and new-vs-old pairs, never old-vs-old;
//! 3. accepted pairs merge into the persistent union-find, and only
//!    **dirty** clusters (membership changed this batch) need their fused
//!    entities re-resolved downstream.
//!
//! ## Why the result is byte-identical to a full run
//!
//! The correctness pin — for any split of a corpus into prefix + delta
//! batches, the final clusters equal a from-scratch run over the
//! concatenation at any thread count — rests on three structural facts:
//!
//! * **Scores never change.** The context grows append-only with dense
//!   first-seen ids, so a record's prepared features (and therefore any
//!   memoized pair score) are bit-identical under every later extension.
//! * **Core candidates are monotone.** Bucket membership is insertion
//!   order, so the quadratic core over a bucket's first `cap` members only
//!   gains pairs as the bucket grows; LSH co-bucketing never retracts.
//!   These pairs go into an append-only *core ledger*.
//! * **Window candidates are retractable but re-derivable.** Progressive
//!   windows over a sorted axis can drop a pair when an insertion pushes
//!   two members apart — but the distance between two fixed members in a
//!   sorted order is non-decreasing under insertion, so every old-old pair
//!   inside the *current* window was inside the window (or the quadratic
//!   core) of some earlier batch and its score is already memoized. Each
//!   batch therefore regenerates the window pair set of just the touched
//!   buckets (and the global sorted-neighborhood axis), scores only the
//!   pairs the memo lacks, and *replaces* the per-bucket accepted-window
//!   sets. The total accepted set is the core ledger ∪ the window sets:
//!   exactly the accepted set a full run computes. When a replacement
//!   retracts a previously accepted pair, the union-find is rebuilt from
//!   the ledger (rare); otherwise the new pairs union in place.
//!
//! ## Bounded residency
//!
//! The resident state is budgetable. The score memo is a **pure cache**:
//! any pair re-scores bit-identically (append-only context), so entries
//! can be dropped wholesale without affecting results — only future
//! re-scoring cost. [`IncrementalConsolidator::with_memo_budget`] caps it
//! with a generational policy (this batch's candidates are the hot set;
//! everything colder goes first). Window sets are *not* pure cache — they
//! feed the accepted union every batch — but they are **re-derivable**
//! from the resident bucket members and sort axis, so
//! [`IncrementalConsolidator::with_window_budget`] evicts whole slots
//! (largest first) and marks them for wholesale regeneration on the next
//! ingest. Both budgets preserve byte-identity at any setting, including
//! zero; the [`DeltaReport`] occupancy and eviction counters expose the
//! cost shift.
//!
//! The batch pipeline stays the oracle: `tests/incremental_equivalence.rs`
//! pins incremental-vs-full byte equality over random corpora, random
//! batch splits, serial and 8-thread pools.

use std::collections::HashMap;

use datatamer_model::Record;
use datatamer_sim::{for_each_token, soundex, tokenize, MinHashLsh, MinHasher, TokenInterner};
use rayon::prelude::*;

use crate::blocking::{
    adaptive_window, pack_pair, sorted_neighborhood_pairs, unpack_pair, Blocker,
    BlockingStrategy, OversizeFallback,
};
use crate::cluster::UnionFind;
use crate::pairsim::{PairScorer, ScoringContext};

/// What one delta batch cost and touched — the observable proof that
/// ingest work scaled with the batch, not the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeltaReport {
    /// Records in this batch.
    pub batch_records: usize,
    /// Corpus size after the batch.
    pub total_records: usize,
    /// Blocking buckets / band tables / sort axes this batch probed
    /// (buckets gaining a member; LSH band insertions; 1 for the global
    /// sorted-neighborhood axis).
    pub probed_buckets: usize,
    /// Distinct candidate pairs examined this batch (new core pairs plus
    /// the regenerated windows of touched buckets).
    pub candidate_pairs: usize,
    /// Pairs actually scored this batch — candidates the memo lacked.
    /// The gap to `candidate_pairs` is work the resident state saved.
    pub scored_pairs: usize,
    /// Total accepted pairs across the whole corpus after the batch.
    pub accepted_pairs: usize,
    /// Clusters whose membership changed this batch (fused entities must
    /// be re-resolved for exactly these).
    pub dirty_clusters: usize,
    /// Clusters carried over unchanged (fused entities reusable as-is).
    pub reused_clusters: usize,
    /// Fraction of the scoring context that predated this batch and was
    /// reused rather than re-prepared: `old_records / total_records`.
    pub reused_context_fraction: f64,
    /// Buckets currently over the cap (same meaning as
    /// [`crate::BlockingOutcome::degraded_buckets`]).
    pub degraded_buckets: usize,
    /// Pair scores resident in the memo after this batch's eviction pass.
    pub memo_entries: usize,
    /// Memoized scores dropped at this batch's commit under the memo
    /// budget. Dropping is always sound — a dropped pair re-scores
    /// bit-identically — it only costs future re-scoring.
    pub memo_evicted: usize,
    /// Candidate pairs this batch answered from the memo instead of
    /// scoring (`candidate_pairs - scored_pairs`).
    pub memo_hits: usize,
    /// Accepted window pairs resident across all retractable-window slots
    /// after this batch's eviction pass.
    pub window_entries: usize,
    /// Window pairs dropped at this batch's commit under the window
    /// budget; their slots regenerate wholesale on the next ingest.
    pub window_evicted: usize,
    /// Fused entities resident in the pipeline's per-cluster cache.
    /// Filled by the pipeline layer; always 0 from the consolidator.
    pub fused_cache_entries: usize,
    /// Fused entities the pipeline cache evicted this batch (ditto).
    pub fused_cache_evicted: usize,
}

/// Entity resolution with resident state: feed record batches with
/// [`IncrementalConsolidator::ingest`], read the clusters (and which ones
/// changed) after each. Configuration mirrors the batch path — same
/// [`Blocker`], same [`PairScorer`], same threshold — and the final
/// clusters are byte-identical to one batch run over the concatenation.
#[derive(Debug, Clone)]
pub struct IncrementalConsolidator {
    blocker: Blocker,
    threshold: f64,

    /// The corpus so far, in ingest order (cluster members index into it).
    records: Vec<Record>,
    /// Prepared scoring features, grown in place per batch.
    ctx: ScoringContext,
    /// Lowercased blocking keys per record — the progressive /
    /// sorted-neighborhood sort axis, extended from the context per batch.
    sort_keys: Vec<Option<String>>,

    // Resident blocking indices (only the configured strategy's are used).
    token_ids: TokenInterner,
    token_buckets: Vec<Vec<usize>>,
    soundex_buckets: HashMap<String, Vec<usize>>,
    lsh: Option<(MinHasher, MinHashLsh<usize>)>,

    /// Memoized pair scores, keyed by packed `(i, j)` — valid forever
    /// because context growth never changes a prepared feature, but
    /// droppable at will (pure cache): entries beyond `memo_budget` are
    /// evicted at each batch commit.
    scores: HashMap<u64, f64>,
    /// Cap on resident memo entries (`None` = unbounded).
    memo_budget: Option<usize>,
    /// Monotone accepted pairs (quadratic cores, LSH co-bucketing):
    /// sorted, deduplicated, append-only across batches.
    core_accepted: Vec<u64>,
    /// Accepted pairs of each oversized token bucket's current window
    /// (replaced wholesale when the bucket is touched).
    window_token: HashMap<usize, Vec<u64>>,
    /// Same for Soundex buckets.
    window_soundex: HashMap<String, Vec<u64>>,
    /// Same for the global sorted-neighborhood window.
    window_sn: Vec<u64>,
    /// Cap on resident window pairs across all slots (`None` = unbounded).
    window_budget: Option<usize>,
    /// Token-bucket window slots evicted at the last commit, awaiting
    /// wholesale regeneration on the next ingest (sorted).
    evicted_token: Vec<usize>,
    /// Soundex window slots evicted at the last commit (sorted).
    evicted_soundex: Vec<String>,
    /// Union of ledger + window sets after the last batch (sorted,
    /// deduplicated) — the superset check against its successor decides
    /// whether the union-find can grow in place.
    accepted: Vec<u64>,

    uf: UnionFind,
    clusters: Vec<Vec<usize>>,
    dirty: Vec<bool>,
    last_report: DeltaReport,
}

impl IncrementalConsolidator {
    /// An empty consolidator; `threshold` is the pair-acceptance score
    /// bound, as in the batch path.
    pub fn new(blocker: Blocker, scorer: PairScorer, threshold: f64) -> Self {
        let ctx = scorer.prepare(&[]);
        let lsh = match blocker.strategy {
            BlockingStrategy::MinHashLsh { bands, rows } => Some((
                MinHasher::new(bands * rows, 0x1357_9bdf),
                MinHashLsh::new(bands, rows),
            )),
            _ => None,
        };
        IncrementalConsolidator {
            blocker,
            threshold,
            records: Vec::new(),
            ctx,
            sort_keys: Vec::new(),
            token_ids: TokenInterner::new(),
            token_buckets: Vec::new(),
            soundex_buckets: HashMap::new(),
            lsh,
            scores: HashMap::new(),
            memo_budget: None,
            core_accepted: Vec::new(),
            window_token: HashMap::new(),
            window_soundex: HashMap::new(),
            window_sn: Vec::new(),
            window_budget: None,
            evicted_token: Vec::new(),
            evicted_soundex: Vec::new(),
            accepted: Vec::new(),
            uf: UnionFind::new(0),
            clusters: Vec::new(),
            dirty: Vec::new(),
            last_report: DeltaReport::default(),
        }
    }

    /// Cap the score memo at `budget` resident entries (`None` =
    /// unbounded). Eviction is generational, at each batch commit: the
    /// batch's own candidates are the hot set, everything colder goes
    /// first, and whatever still exceeds the budget is trimmed
    /// deterministically (smallest packed pair first). Any budget —
    /// including 0 — preserves byte-identical clusters; evicted pairs
    /// simply re-score when next needed.
    pub fn with_memo_budget(mut self, budget: Option<usize>) -> Self {
        self.memo_budget = budget;
        self
    }

    /// Cap the resident accepted-window pairs at `budget` across all
    /// slots (`None` = unbounded). Whole slots are evicted largest-first
    /// at each batch commit and regenerated wholesale on the next ingest
    /// from the resident bucket members and sort axis, so any budget —
    /// including 0 — preserves byte-identical clusters.
    pub fn with_window_budget(mut self, budget: Option<usize>) -> Self {
        self.window_budget = budget;
        self
    }

    /// Corpus records in ingest order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records ingested so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True before the first batch.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The resident scoring context (grows with every batch).
    pub fn context(&self) -> &ScoringContext {
        &self.ctx
    }

    /// Clusters after the last batch: members sorted ascending, clusters
    /// ordered by smallest member — identical shape (and content) to
    /// [`crate::cluster::cluster_pairs`] over a full run's accepted pairs.
    /// A cluster's stable id is its smallest member index.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Parallel to [`IncrementalConsolidator::clusters`]: true when that
    /// cluster's membership changed in the last batch (its fused entity
    /// must be re-resolved; clean clusters can reuse the previous one).
    pub fn dirty(&self) -> &[bool] {
        &self.dirty
    }

    /// The last batch's [`DeltaReport`].
    pub fn last_report(&self) -> DeltaReport {
        self.last_report
    }

    /// Accepted duplicate pairs across the whole corpus, `(i, j)` with
    /// `i < j`, sorted, deduplicated.
    pub fn accepted_pairs(&self) -> Vec<(usize, usize)> {
        self.accepted.iter().copied().map(unpack_pair).collect()
    }

    /// Ingest a batch: extend the resident state, resolve the delta, and
    /// report what it cost. O(delta) candidate work for the bucket and LSH
    /// strategies (the global sorted-neighborhood strategy re-windows its
    /// axis, which is O(corpus) enumeration but still O(delta) scoring).
    pub fn ingest(&mut self, batch: &[Record]) -> DeltaReport {
        let old_n = self.records.len();
        self.records.extend_from_slice(batch);
        let n = self.records.len();

        // 1. Grow the scoring context and the sort axis in place.
        self.ctx.extend(batch);
        let tail = self
            .ctx
            .sort_keys_from(&self.blocker.key_attr, old_n)
            .unwrap_or_else(|| {
                // Classifier context keyed on a different attribute:
                // derive the axis from the raw records instead.
                batch
                    .iter()
                    .map(|r| r.get_text(&self.blocker.key_attr).map(|k| k.to_lowercase()))
                    .collect()
            });
        self.sort_keys.extend(tail);
        debug_assert_eq!(self.sort_keys.len(), n);

        // 2. Probe the blocking indices with the new records only.
        let mut probed_buckets = 0usize;
        let mut new_core: Vec<u64> = Vec::new();
        let mut window_updates: Vec<(WindowSlot, Vec<u64>)> = Vec::new();
        match self.blocker.strategy {
            BlockingStrategy::Token => {
                // first new position per touched bucket, this batch.
                let mut touched: HashMap<usize, usize> = HashMap::new();
                let mut ids: Vec<u32> = Vec::new();
                for i in old_n..n {
                    if let Some(key) = self.records[i].get_text(&self.blocker.key_attr) {
                        ids.clear();
                        for_each_token(&key, |tok| ids.push(self.token_ids.intern(tok)));
                        ids.sort_unstable();
                        ids.dedup();
                        for &id in &ids {
                            let id = id as usize;
                            while self.token_buckets.len() <= id {
                                self.token_buckets.push(Vec::new());
                            }
                            touched.entry(id).or_insert(self.token_buckets[id].len());
                            self.token_buckets[id].push(i);
                        }
                    }
                }
                // Fold in slots evicted at the last commit: with
                // `first_new` past the end they contribute no core pairs,
                // only the wholesale window regeneration they owe.
                for id in std::mem::take(&mut self.evicted_token) {
                    touched.entry(id).or_insert_with(|| self.token_buckets[id].len());
                }
                probed_buckets = touched.len();
                // dtlint::allow(map-iter, reason = "collected into a Vec and sort_unstable'd on the next line")
                let mut touched_sorted: Vec<(usize, usize)> = touched.into_iter().collect();
                touched_sorted.sort_unstable();
                for (id, first_new) in touched_sorted {
                    let members = &self.token_buckets[id];
                    self.bucket_delta(
                        members,
                        first_new,
                        &mut new_core,
                        &mut window_updates,
                        WindowSlot::Token(id),
                    );
                }
            }
            BlockingStrategy::Soundex => {
                let mut touched: HashMap<String, usize> = HashMap::new();
                for i in old_n..n {
                    if let Some(key) = self.records[i].get_text(&self.blocker.key_attr) {
                        let first_word = key.split_whitespace().next().unwrap_or("");
                        if let Some(code) = soundex(first_word) {
                            let bucket = self.soundex_buckets.entry(code.clone()).or_default();
                            touched.entry(code).or_insert(bucket.len());
                            bucket.push(i);
                        }
                    }
                }
                for code in std::mem::take(&mut self.evicted_soundex) {
                    let end = self.soundex_buckets[&code].len();
                    touched.entry(code).or_insert(end);
                }
                probed_buckets = touched.len();
                // dtlint::allow(map-iter, reason = "collected into a Vec and sort_unstable'd on the next line")
                let mut touched_sorted: Vec<(String, usize)> = touched.into_iter().collect();
                touched_sorted.sort_unstable();
                for (code, first_new) in touched_sorted {
                    let members = &self.soundex_buckets[&code];
                    self.bucket_delta(
                        members,
                        first_new,
                        &mut new_core,
                        &mut window_updates,
                        WindowSlot::Soundex(code.clone()),
                    );
                }
            }
            BlockingStrategy::SortedNeighborhood { window } => {
                // One global retractable window: regenerate over the
                // current axis. Old-old pairs are memoized (the sorted
                // distance between fixed members never shrinks), so only
                // batch-involving pairs get scored below.
                probed_buckets = 1;
                let pairs = sorted_neighborhood_pairs(&self.sort_keys, window);
                window_updates.push((
                    WindowSlot::Sn,
                    pairs.into_iter().map(|(a, b)| pack_pair(a, b)).collect(),
                ));
            }
            BlockingStrategy::MinHashLsh { bands, .. } => {
                // Query-then-insert per new record, in index order: record
                // j meets every co-bucketed i < j exactly once, so the
                // union over batches is the full run's candidate set.
                let (hasher, lsh) =
                    self.lsh.as_mut().expect("LSH state exists for the LSH strategy");
                for i in old_n..n {
                    if let Some(key) = self.records[i].get_text(&self.blocker.key_attr) {
                        let sig = hasher.signature(&tokenize(&key));
                        let mut mates = lsh.candidates(&sig);
                        if lsh.insert(i, &sig) {
                            probed_buckets += bands;
                            mates.sort_unstable();
                            new_core.extend(mates.into_iter().map(|m| pack_pair(m, i)));
                        }
                    }
                }
            }
        }
        new_core.sort_unstable();
        new_core.dedup();

        // 3. Score what the memo lacks (pure per-pair work → rayon), then
        //    commit sequentially so the memo stays deterministic.
        let mut candidates: Vec<u64> = new_core
            .iter()
            .chain(window_updates.iter().flat_map(|(_, pairs)| pairs.iter()))
            .copied()
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let candidate_pairs = candidates.len();
        let to_score: Vec<u64> = candidates
            .iter()
            .copied()
            .filter(|p| !self.scores.contains_key(p))
            .collect();
        let scored: Vec<(u64, f64)> = to_score
            .par_iter()
            .map(|&p| {
                let (i, j) = unpack_pair(p);
                (p, self.ctx.score_pair(i, j))
            })
            .collect();
        let scored_pairs = scored.len();
        self.scores.extend(scored);

        // 4. Fold accepted pairs into the ledger and the window sets.
        let threshold = self.threshold;
        let accept = |scores: &HashMap<u64, f64>, p: &u64| scores[p] >= threshold;
        self.core_accepted.extend(new_core.iter().filter(|p| accept(&self.scores, p)));
        self.core_accepted.sort_unstable();
        self.core_accepted.dedup();
        for (slot, pairs) in window_updates {
            let kept: Vec<u64> =
                pairs.into_iter().filter(|p| accept(&self.scores, p)).collect();
            match slot {
                WindowSlot::Token(id) => {
                    self.window_token.insert(id, kept);
                }
                WindowSlot::Soundex(code) => {
                    self.window_soundex.insert(code, kept);
                }
                WindowSlot::Sn => self.window_sn = kept,
            }
        }
        let mut accepted: Vec<u64> = self
            .core_accepted
            .iter()
            .chain(self.window_token.values().flatten()) // dtlint::allow(map-iter, reason = "chained into `accepted`, which is sorted + deduped immediately below")
            .chain(self.window_soundex.values().flatten()) // dtlint::allow(map-iter, reason = "chained into `accepted`, which is sorted + deduped immediately below")
            .chain(self.window_sn.iter())
            .copied()
            .collect();
        accepted.sort_unstable();
        accepted.dedup();

        // 5. Union-find: grow in place when the accepted set only grew;
        //    rebuild from the ledger + window sets when a window
        //    replacement retracted a pair (rare — an insertion pushed two
        //    previously-adjacent members apart).
        self.uf.grow(n);
        if is_sorted_superset(&accepted, &self.accepted) {
            let mut old = self.accepted.iter().peekable();
            for &p in &accepted {
                if old.peek() == Some(&&p) {
                    old.next();
                    continue;
                }
                let (a, b) = unpack_pair(p);
                self.uf.union(a, b);
            }
        } else {
            self.uf = UnionFind::new(n);
            for &p in &accepted {
                let (a, b) = unpack_pair(p);
                self.uf.union(a, b);
            }
        }
        self.accepted = accepted;

        // 6. Re-materialise clusters; mark dirty where membership changed
        //    (stable id = smallest member).
        let prev: HashMap<usize, Vec<usize>> =
            self.clusters.drain(..).map(|c| (c[0], c)).collect();
        self.clusters = self.uf.clusters();
        self.dirty = self
            .clusters
            .iter()
            .map(|c| prev.get(&c[0]) != Some(c))
            .collect();
        let dirty_clusters = self.dirty.iter().filter(|d| **d).count();

        // 7. Commit-point eviction under the configured budgets.
        //
        //    Memo (pure cache): keep this batch's candidates — the hot
        //    generation — up to the budget, in packed-pair order; evicted
        //    pairs re-score bit-identically when next needed. Windows
        //    (re-derivable state): drop whole slots largest-first and
        //    mark them, so the next ingest regenerates them from the
        //    resident bucket members and sort axis before the accepted
        //    union is rebuilt.
        let mut memo_evicted = 0;
        if let Some(budget) = self.memo_budget {
            if self.scores.len() > budget {
                let before = self.scores.len();
                let keep: std::collections::HashSet<u64> =
                    candidates.iter().copied().take(budget).collect();
                self.scores.retain(|k, _| keep.contains(k));
                memo_evicted = before - self.scores.len();
            }
        }
        let mut window_evicted = 0;
        if let Some(budget) = self.window_budget {
            let total = self.window_entries();
            if total > budget {
                let mut slots: Vec<(usize, WindowSlot)> = self
                    .window_token
                    .iter() // dtlint::allow(map-iter, reason = "slots are sorted with a full tie-break before eviction below")
                    .map(|(id, v)| (v.len(), WindowSlot::Token(*id)))
                    .chain(
                        self.window_soundex
                            .iter() // dtlint::allow(map-iter, reason = "slots are sorted with a full tie-break before eviction below")
                            .map(|(c, v)| (v.len(), WindowSlot::Soundex(c.clone()))),
                    )
                    .collect();
                if !self.window_sn.is_empty() {
                    slots.push((self.window_sn.len(), WindowSlot::Sn));
                }
                slots.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
                let mut remaining = total;
                for (len, slot) in slots {
                    if remaining <= budget || len == 0 {
                        break;
                    }
                    remaining -= len;
                    window_evicted += len;
                    match slot {
                        WindowSlot::Token(id) => {
                            self.window_token.remove(&id);
                            self.evicted_token.push(id);
                        }
                        WindowSlot::Soundex(code) => {
                            self.window_soundex.remove(&code);
                            self.evicted_soundex.push(code);
                        }
                        // The global axis regenerates every ingest anyway;
                        // no marking needed.
                        WindowSlot::Sn => self.window_sn.clear(),
                    }
                }
                self.evicted_token.sort_unstable();
                self.evicted_soundex.sort_unstable();
            }
        }

        self.last_report = DeltaReport {
            batch_records: batch.len(),
            total_records: n,
            probed_buckets,
            candidate_pairs,
            scored_pairs,
            accepted_pairs: self.accepted.len(),
            dirty_clusters,
            reused_clusters: self.clusters.len() - dirty_clusters,
            reused_context_fraction: if n == 0 { 0.0 } else { old_n as f64 / n as f64 },
            degraded_buckets: self.degraded_buckets(),
            memo_entries: self.scores.len(),
            memo_evicted,
            memo_hits: candidate_pairs - scored_pairs,
            window_entries: self.window_entries(),
            window_evicted,
            fused_cache_entries: 0,
            fused_cache_evicted: 0,
        };
        self.last_report
    }

    /// Total accepted window pairs resident across all slots.
    fn window_entries(&self) -> usize {
        self.window_token.values().map(Vec::len).sum::<usize>() // dtlint::allow(map-iter, reason = "commutative integer sum; order cannot affect the result")
            + self.window_soundex.values().map(Vec::len).sum::<usize>() // dtlint::allow(map-iter, reason = "commutative integer sum; order cannot affect the result")
            + self.window_sn.len()
    }

    /// Delta candidates for one touched bucket: monotone quadratic-core
    /// pairs for new members landing under the cap, plus (for the
    /// progressive fallbacks) the bucket's full regenerated window set.
    fn bucket_delta(
        &self,
        members: &[usize],
        first_new: usize,
        new_core: &mut Vec<u64>,
        window_updates: &mut Vec<(WindowSlot, Vec<u64>)>,
        slot: WindowSlot,
    ) {
        let cap = self.blocker.bucket_cap;
        // Core: each new member within the first `cap` positions pairs
        // with every earlier member — exactly the pairs the full run's
        // quadratic core gains from this batch (membership is insertion
        // order, so positions never shift).
        for p in first_new..members.len().min(cap) {
            for q in 0..p {
                new_core.push(pack_pair(members[q], members[p]));
            }
        }
        if members.len() <= cap {
            return;
        }
        let window = match self.blocker.fallback {
            OversizeFallback::Truncate => return,
            OversizeFallback::Progressive { window } => window.max(2),
            OversizeFallback::ProgressiveAdaptive { base, max } => {
                adaptive_window(base, max, members.len(), cap)
            }
        };
        let mut sorted = members.to_vec();
        sorted.sort_unstable_by(|&a, &b| {
            self.sort_keys[a].cmp(&self.sort_keys[b]).then(a.cmp(&b))
        });
        let mut pairs = Vec::with_capacity(sorted.len() * (window - 1));
        for i in 0..sorted.len() {
            for j in (i + 1)..(i + window).min(sorted.len()) {
                pairs.push(pack_pair(sorted[i], sorted[j]));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        window_updates.push((slot, pairs));
    }

    fn degraded_buckets(&self) -> usize {
        let cap = self.blocker.bucket_cap;
        match self.blocker.strategy {
            BlockingStrategy::Token => {
                self.token_buckets.iter().filter(|m| m.len() > cap).count()
            }
            BlockingStrategy::Soundex => {
                // dtlint::allow(map-iter, reason = "order-independent count of oversize buckets")
                self.soundex_buckets.values().filter(|m| m.len() > cap).count()
            }
            _ => 0,
        }
    }
}

/// Which retractable-window set a regenerated pair list replaces. The
/// derived order (token id, then Soundex code, then the global axis)
/// breaks eviction ties deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum WindowSlot {
    Token(usize),
    Soundex(String),
    Sn,
}

/// `a ⊇ b` for sorted, deduplicated slices, in one merge pass.
fn is_sorted_superset(a: &[u64], b: &[u64]) -> bool {
    let mut ia = a.iter();
    'outer: for x in b {
        for y in ia.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairsim::RecordSimilarity;
    use datatamer_model::{RecordId, SourceId, Value};

    fn rec(i: u64, name: &str) -> Record {
        Record::from_pairs(SourceId(0), RecordId(i), vec![("name", Value::from(name))])
    }

    fn corpus(names: &[&str]) -> Vec<Record> {
        names.iter().enumerate().map(|(i, n)| rec(i as u64, n)).collect()
    }

    fn consolidator(strategy: BlockingStrategy) -> IncrementalConsolidator {
        IncrementalConsolidator::new(
            Blocker::new("name", strategy),
            PairScorer::Rules(RecordSimilarity::default()),
            0.85,
        )
    }

    /// From-scratch oracle: block + score + cluster in one batch run.
    fn full_run(strategy: BlockingStrategy, records: &[Record]) -> Vec<Vec<usize>> {
        let blocker = Blocker::new("name", strategy);
        let scorer = PairScorer::Rules(RecordSimilarity::default());
        let ctx = scorer.prepare(records);
        let outcome = blocker
            .candidates_with_report_keyed(records, &|| ctx.sort_keys("name").unwrap());
        let accepted = ctx.accepted_pairs(&outcome.pairs, 0.85);
        crate::cluster::cluster_pairs(records.len(), &accepted)
    }

    fn names() -> Vec<String> {
        // Mix of exact duplicates, near-duplicates, and singletons spread
        // across several shared-token buckets.
        (0..40)
            .map(|i| match i % 8 {
                0 => format!("matilda musical {}", i / 8),
                1 => format!("Matilda Musical {}", i / 8),
                2 => format!("wicked show {}", i / 8),
                3 => format!("wicked show {}", i / 8),
                4 => format!("annie broadway {}", i / 8),
                5 => format!("unique title number {i}"),
                6 => format!("lion king {}", i / 8),
                7 => format!("the lion king {}", i / 8),
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn single_batch_matches_full_run_per_strategy() {
        let names = names();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let records = corpus(&refs);
        for strategy in [
            BlockingStrategy::Token,
            BlockingStrategy::Soundex,
            BlockingStrategy::SortedNeighborhood { window: 4 },
            BlockingStrategy::MinHashLsh { bands: 8, rows: 4 },
        ] {
            let mut inc = consolidator(strategy);
            inc.ingest(&records);
            assert_eq!(
                inc.clusters(),
                full_run(strategy, &records).as_slice(),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn split_batches_match_full_run_per_strategy() {
        let names = names();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let records = corpus(&refs);
        for strategy in [
            BlockingStrategy::Token,
            BlockingStrategy::Soundex,
            BlockingStrategy::SortedNeighborhood { window: 4 },
            BlockingStrategy::MinHashLsh { bands: 8, rows: 4 },
        ] {
            for splits in [vec![10, 30, 40], vec![1, 2, 3, 40], vec![39, 40]] {
                let mut inc = consolidator(strategy);
                let mut start = 0;
                for end in splits.clone() {
                    inc.ingest(&records[start..end]);
                    start = end;
                }
                assert_eq!(
                    inc.clusters(),
                    full_run(strategy, &records).as_slice(),
                    "{strategy:?} {splits:?}"
                );
            }
        }
    }

    #[test]
    fn oversized_bucket_windows_stay_equivalent_across_batches() {
        // Everything shares the token "show" → one giant bucket over a
        // tiny cap, exercising the retractable-window path: later batches
        // insert records *between* earlier near-duplicates in the sorted
        // axis, forcing window regeneration (and occasionally the
        // union-find rebuild).
        let names: Vec<String> = (0..60)
            .map(|i| format!("show {:02} name{}", (i * 7) % 60, i % 3))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let records = corpus(&refs);
        let strategy = BlockingStrategy::Token;
        let blocker = Blocker::new("name", strategy).with_bucket_cap(8);
        let full = {
            let scorer = PairScorer::Rules(RecordSimilarity::default());
            let ctx = scorer.prepare(&records);
            let outcome = blocker
                .candidates_with_report_keyed(&records, &|| ctx.sort_keys("name").unwrap());
            let accepted = ctx.accepted_pairs(&outcome.pairs, 0.85);
            crate::cluster::cluster_pairs(records.len(), &accepted)
        };
        for batch in [1, 7, 13, 60] {
            let mut inc = IncrementalConsolidator::new(
                blocker.clone(),
                PairScorer::Rules(RecordSimilarity::default()),
                0.85,
            );
            for chunk in records.chunks(batch) {
                inc.ingest(chunk);
            }
            assert_eq!(inc.clusters(), full.as_slice(), "batch size {batch}");
            assert!(inc.last_report().degraded_buckets >= 1);
        }
    }

    #[test]
    fn delta_probes_only_touched_buckets_and_reuses_scores() {
        let names = names();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let records = corpus(&refs);
        let mut inc = consolidator(BlockingStrategy::Token);
        let first = inc.ingest(&records[..38]);
        assert!(first.scored_pairs > 0);
        assert_eq!(first.reused_context_fraction, 0.0);
        assert_eq!(first.dirty_clusters, inc.clusters().len());

        let delta = inc.ingest(&records[38..]);
        assert_eq!(delta.batch_records, 2);
        assert_eq!(delta.total_records, 40);
        assert!(
            delta.probed_buckets < first.probed_buckets,
            "a 2-record delta must touch fewer buckets than the 38-record load \
             ({} vs {})",
            delta.probed_buckets,
            first.probed_buckets
        );
        assert!(
            delta.scored_pairs < first.scored_pairs,
            "old-vs-old pairs must never be re-scored"
        );
        assert!(delta.reused_context_fraction > 0.9);
        assert!(
            delta.reused_clusters > 0,
            "untouched clusters must be recognised as clean"
        );
    }

    #[test]
    fn dirty_flags_track_membership_changes_exactly() {
        let records = corpus(&["matilda musical", "wicked broadway", "annie show"]);
        let mut inc = consolidator(BlockingStrategy::Token);
        inc.ingest(&records);
        let before: Vec<Vec<usize>> = inc.clusters().to_vec();
        assert!(inc.dirty().iter().all(|d| *d), "first batch: everything new");

        // A near-duplicate of "matilda musical" joins cluster 0; the
        // other clusters must come back clean.
        inc.ingest(&[rec(3, "Matilda Musical")]);
        let after = inc.clusters();
        assert!(after[0].contains(&3), "{after:?}");
        for (c, d) in after.iter().zip(inc.dirty()) {
            let changed = !before.contains(c);
            assert_eq!(*d, changed, "cluster {c:?}");
        }
        assert!(inc.dirty().iter().filter(|d| **d).count() < after.len());
    }

    #[test]
    fn empty_and_keyless_batches_are_harmless() {
        let mut inc = consolidator(BlockingStrategy::Token);
        let report = inc.ingest(&[]);
        assert_eq!(report.total_records, 0);
        assert_eq!(report.reused_context_fraction, 0.0);
        assert!(inc.clusters().is_empty());

        let keyless = Record::from_pairs(
            SourceId(0),
            RecordId(7),
            vec![("other", Value::from("x"))],
        );
        let report = inc.ingest(&[keyless]);
        assert_eq!(report.candidate_pairs, 0);
        assert_eq!(inc.clusters(), &[vec![0]]);
    }

    #[test]
    fn zero_budgets_still_match_full_run() {
        // Budget 0 on both caches is the adversarial extreme: the memo
        // clears at every commit (every batch re-scores all its
        // candidates) and every window slot is evicted and regenerated
        // each ingest — yet clusters must stay byte-identical. Each name
        // appears exactly twice, with its twin ~30 insertions away:
        // adjacent on the sorted axis but far outside the quadratic core,
        // so the accepted pairs live in the retractable windows.
        let names: Vec<String> =
            (0..60).map(|i| format!("show number {:02}", (i * 13) % 30)).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let records = corpus(&refs);
        let blocker = Blocker::new("name", BlockingStrategy::Token).with_bucket_cap(8);
        let full = {
            let scorer = PairScorer::Rules(RecordSimilarity::default());
            let ctx = scorer.prepare(&records);
            let outcome = blocker
                .candidates_with_report_keyed(&records, &|| ctx.sort_keys("name").unwrap());
            let accepted = ctx.accepted_pairs(&outcome.pairs, 0.85);
            crate::cluster::cluster_pairs(records.len(), &accepted)
        };
        for batch in [1, 7, 13] {
            let mut inc = IncrementalConsolidator::new(
                blocker.clone(),
                PairScorer::Rules(RecordSimilarity::default()),
                0.85,
            )
            .with_memo_budget(Some(0))
            .with_window_budget(Some(0));
            let mut memo_evicted = 0;
            let mut window_evicted = 0;
            for chunk in records.chunks(batch) {
                let report = inc.ingest(chunk);
                memo_evicted += report.memo_evicted;
                window_evicted += report.window_evicted;
                assert_eq!(report.memo_entries, 0, "budget 0 clears the memo");
                assert_eq!(report.window_entries, 0, "budget 0 clears every slot");
            }
            assert_eq!(inc.clusters(), full.as_slice(), "batch size {batch}");
            assert!(memo_evicted > 0, "eviction must actually fire");
            assert!(window_evicted > 0, "window eviction must actually fire");
        }
    }

    #[test]
    fn small_budgets_bound_occupancy_and_match_unbounded() {
        let names: Vec<String> = (0..60)
            .map(|i| format!("show {:02} name{}", (i * 7) % 60, i % 3))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let records = corpus(&refs);
        let blocker = Blocker::new("name", BlockingStrategy::Token).with_bucket_cap(8);
        let build = |memo: Option<usize>, window: Option<usize>| {
            let mut inc = IncrementalConsolidator::new(
                blocker.clone(),
                PairScorer::Rules(RecordSimilarity::default()),
                0.85,
            )
            .with_memo_budget(memo)
            .with_window_budget(window);
            for chunk in records.chunks(9) {
                let report = inc.ingest(chunk);
                if let Some(b) = memo {
                    assert!(report.memo_entries <= b, "memo over budget");
                }
                if let Some(b) = window {
                    assert!(report.window_entries <= b, "windows over budget");
                }
            }
            inc
        };
        let unbounded = build(None, None);
        assert!(unbounded.last_report().memo_evicted == 0);
        for (memo, window) in [(Some(40), None), (None, Some(10)), (Some(25), Some(5))] {
            let bounded = build(memo, window);
            assert_eq!(
                bounded.clusters(),
                unbounded.clusters(),
                "memo {memo:?} window {window:?}"
            );
        }
        // The unbounded run memoizes across batches; a bounded run trades
        // that for re-scoring, never for different answers.
        assert!(unbounded.last_report().memo_hits > 0);
    }

    #[test]
    fn soundex_windows_survive_eviction() {
        // Force oversized Soundex buckets (shared first word) so the
        // Soundex retractable-window slots exist, then evict them all.
        // Each name appears twice, twins far apart in insertion order.
        let names: Vec<String> =
            (0..30).map(|i| format!("robert show {:02}", ((i * 11) % 30) / 2)).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let records = corpus(&refs);
        let blocker = Blocker::new("name", BlockingStrategy::Soundex).with_bucket_cap(4);
        let full = {
            let scorer = PairScorer::Rules(RecordSimilarity::default());
            let ctx = scorer.prepare(&records);
            let outcome = blocker
                .candidates_with_report_keyed(&records, &|| ctx.sort_keys("name").unwrap());
            let accepted = ctx.accepted_pairs(&outcome.pairs, 0.85);
            crate::cluster::cluster_pairs(records.len(), &accepted)
        };
        let mut inc = IncrementalConsolidator::new(
            blocker,
            PairScorer::Rules(RecordSimilarity::default()),
            0.85,
        )
        .with_window_budget(Some(0));
        for chunk in records.chunks(6) {
            inc.ingest(chunk);
        }
        assert_eq!(inc.clusters(), full.as_slice());
    }

    #[test]
    fn eviction_is_idle_under_no_budget() {
        let names = names();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let records = corpus(&refs);
        let mut inc = consolidator(BlockingStrategy::Token);
        for chunk in records.chunks(10) {
            let report = inc.ingest(chunk);
            assert_eq!(report.memo_evicted, 0);
            assert_eq!(report.window_evicted, 0);
        }
        assert!(inc.last_report().memo_entries > 0);
    }

    #[test]
    fn sorted_superset_check() {
        assert!(is_sorted_superset(&[1, 2, 3], &[1, 3]));
        assert!(is_sorted_superset(&[1, 2, 3], &[]));
        assert!(is_sorted_superset(&[], &[]));
        assert!(!is_sorted_superset(&[1, 2, 3], &[4]));
        assert!(!is_sorted_superset(&[2, 3], &[1, 2]));
        assert!(!is_sorted_superset(&[], &[1]));
    }
}
