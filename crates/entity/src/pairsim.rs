//! Record-pair similarity scoring.

use datatamer_model::{Record, Value};
use datatamer_sim as sim;
use datatamer_ml::DedupClassifier;
use rayon::prelude::*;

/// How a pair of records is scored.
pub enum PairScorer {
    /// Rule-based weighted attribute similarity with an accept threshold.
    Rules(RecordSimilarity),
    /// The trained ML dedup classifier applied to a key attribute
    /// (probability ≥ 0.5 accepts).
    Classifier { key_attr: String, model: DedupClassifier },
}

impl PairScorer {
    /// Score a pair in `[0, 1]`.
    pub fn score(&self, a: &Record, b: &Record) -> f64 {
        match self {
            PairScorer::Rules(rs) => rs.score(a, b),
            PairScorer::Classifier { key_attr, model } => {
                match (a.get_text(key_attr), b.get_text(key_attr)) {
                    (Some(x), Some(y)) => model.proba(&x, &y),
                    _ => 0.0,
                }
            }
        }
    }
}

/// Weighted per-attribute record similarity.
///
/// Shared attributes compare value-by-value with type-aware measures; the
/// result is the weighted mean over compared attributes. Attributes missing
/// on either side contribute nothing (curated sources are sparse — absence
/// is not evidence of difference).
#[derive(Debug, Clone)]
pub struct RecordSimilarity {
    /// `(attribute, weight)`; attributes not listed get `default_weight`.
    pub weights: Vec<(String, f64)>,
    /// Weight of attributes not explicitly listed.
    pub default_weight: f64,
}

impl Default for RecordSimilarity {
    fn default() -> Self {
        RecordSimilarity { weights: Vec::new(), default_weight: 1.0 }
    }
}

impl RecordSimilarity {
    /// Build with explicit attribute weights.
    pub fn with_weights(weights: Vec<(String, f64)>, default_weight: f64) -> Self {
        RecordSimilarity { weights, default_weight }
    }

    fn weight_of(&self, attr: &str) -> f64 {
        self.weights
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, w)| *w)
            .unwrap_or(self.default_weight)
    }

    /// Similarity in `[0, 1]`; 0.0 when no attribute is comparable.
    pub fn score(&self, a: &Record, b: &Record) -> f64 {
        let mut total_weight = 0.0;
        let mut acc = 0.0;
        for (attr, va) in a.iter() {
            let Some(vb) = b.get(attr) else { continue };
            if va.is_null() || vb.is_null() {
                continue;
            }
            let w = self.weight_of(attr);
            if w == 0.0 {
                continue;
            }
            acc += w * value_similarity(va, vb);
            total_weight += w;
        }
        if total_weight == 0.0 {
            0.0
        } else {
            acc / total_weight
        }
    }
}

/// Score candidate pairs in parallel, preserving pair order.
///
/// This is the consolidation hot path — at paper scale the candidate set
/// runs to millions of pairs, each scoring independently, so the work is
/// embarrassingly parallel. Output index `k` is the score of `pairs[k]`
/// regardless of thread count.
pub fn score_pairs(
    scorer: &PairScorer,
    records: &[Record],
    pairs: &[(usize, usize)],
) -> Vec<f64> {
    pairs
        .par_iter()
        .map(|&(i, j)| scorer.score(&records[i], &records[j]))
        .collect()
}

/// Score candidate pairs in parallel and keep those at or above
/// `threshold` (order preserved).
pub fn accepted_pairs(
    scorer: &PairScorer,
    records: &[Record],
    pairs: &[(usize, usize)],
    threshold: f64,
) -> Vec<(usize, usize)> {
    score_pairs(scorer, records, pairs)
        .into_iter()
        .zip(pairs)
        .filter_map(|(score, &pair)| (score >= threshold).then_some(pair))
        .collect()
}

/// Type-aware scalar similarity.
pub fn value_similarity(a: &Value, b: &Value) -> f64 {
    if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) { return sim::relative_diff_similarity(x, y) }
    let (ta, tb) = (a.to_text(), b.to_text());
    // Numeric-looking strings (prices, years) compare numerically.
    if let (Some(x), Some(y)) = (parse_numericish(&ta), parse_numericish(&tb)) {
        return sim::relative_diff_similarity(x, y);
    }
    let la = ta.to_lowercase();
    let lb = tb.to_lowercase();
    if la == lb {
        return 1.0;
    }
    // Blend character- and token-level for robustness across lengths.
    let jw = sim::jaro_winkler(&la, &lb);
    let sa: std::collections::HashSet<String> = sim::tokenize(&la).into_iter().collect();
    let sb: std::collections::HashSet<String> = sim::tokenize(&lb).into_iter().collect();
    let jac = sim::jaccard(&sa, &sb);
    0.6 * jw + 0.4 * jac
}

fn parse_numericish(s: &str) -> Option<f64> {
    use datatamer_model::infer;
    if let Some(m) = infer::parse_money(s) {
        return Some(m.amount);
    }
    infer::parse_decimal(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{RecordId, SourceId};
    use datatamer_ml::logreg::LogRegConfig;

    fn rec(fields: Vec<(&str, &str)>) -> Record {
        Record::from_pairs(
            SourceId(0),
            RecordId(0),
            fields.into_iter().map(|(k, v)| (k, Value::from(v))).collect(),
        )
    }

    #[test]
    fn identical_records_score_one() {
        let a = rec(vec![("name", "Matilda"), ("price", "$27")]);
        let s = RecordSimilarity::default();
        assert!((s.score(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_duplicates_score_high_distinct_low() {
        let s = RecordSimilarity::default();
        let a = rec(vec![("name", "Matilda"), ("price", "$27")]);
        let b = rec(vec![("name", "matilda"), ("price", "$28")]);
        let c = rec(vec![("name", "The Lion King"), ("price", "$150")]);
        assert!(s.score(&a, &b) > 0.9, "{}", s.score(&a, &b));
        assert!(s.score(&a, &c) < 0.5, "{}", s.score(&a, &c));
    }

    #[test]
    fn missing_and_null_attributes_are_neutral() {
        let s = RecordSimilarity::default();
        let a = rec(vec![("name", "Matilda"), ("venue", "Shubert")]);
        let mut b = rec(vec![("name", "Matilda")]);
        assert!((s.score(&a, &b) - 1.0).abs() < 1e-9, "venue absent on b is ignored");
        b.set("venue", Value::Null);
        assert!((s.score(&a, &b) - 1.0).abs() < 1e-9, "null venue is ignored");
        let empty = rec(vec![]);
        assert_eq!(s.score(&a, &empty), 0.0, "nothing comparable");
    }

    #[test]
    fn weights_shift_the_score() {
        let a = rec(vec![("name", "Matilda"), ("city", "New York")]);
        let b = rec(vec![("name", "Wicked"), ("city", "New York")]);
        let name_heavy = RecordSimilarity::with_weights(vec![("name".into(), 10.0)], 1.0);
        let city_heavy = RecordSimilarity::with_weights(vec![("city".into(), 10.0)], 1.0);
        assert!(city_heavy.score(&a, &b) > name_heavy.score(&a, &b));
    }

    #[test]
    fn numeric_strings_compare_numerically() {
        assert!(value_similarity(&Value::from("$27"), &Value::from("27 USD")) > 0.99);
        assert!(value_similarity(&Value::from("1900"), &Value::from("1901")) > 0.99);
        assert!(value_similarity(&Value::from("$20"), &Value::from("$200")) < 0.2);
        assert_eq!(value_similarity(&Value::Int(5), &Value::Int(5)), 1.0);
    }

    #[test]
    fn classifier_scorer_uses_key_attribute() {
        let pairs = vec![
            ("Matilda".to_owned(), "matilda".to_owned(), true),
            ("Matilda".to_owned(), "Wicked".to_owned(), false),
            ("Annie".to_owned(), "Annie!".to_owned(), true),
            ("Annie".to_owned(), "Pippin".to_owned(), false),
            ("Goodfellas".to_owned(), "Goodfelas".to_owned(), true),
            ("Goodfellas".to_owned(), "Written".to_owned(), false),
        ];
        let model = DedupClassifier::train(&pairs, &LogRegConfig::default());
        let scorer = PairScorer::Classifier { key_attr: "name".into(), model };
        let a = rec(vec![("name", "Matilda")]);
        let b = rec(vec![("name", "matilda ")]);
        let c = rec(vec![("name", "Rock of Ages")]);
        assert!(scorer.score(&a, &b) > scorer.score(&a, &c));
        let no_key = rec(vec![("other", "x")]);
        assert_eq!(scorer.score(&a, &no_key), 0.0);
    }
}
