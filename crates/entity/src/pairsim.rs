//! Record-pair similarity scoring: prepare once, score many.
//!
//! Pair scoring is the consolidation hot path — blocking deliberately
//! *grows* the candidate set (progressive fallback) to protect recall, so
//! at paper scale one consolidation run scores millions of pairs, and a
//! record appearing in `k` candidate pairs used to pay its text
//! normalisation (`to_text`, money/decimal parsing, lowercasing, a fresh
//! `Vec<String>` → `HashSet<String>` tokenisation) `k` times over.
//!
//! The module is therefore layered in two:
//!
//! * **Naive scorers** — [`PairScorer::score`] / [`RecordSimilarity::score`]
//!   compute everything from the raw [`Record`]s on every call. They are
//!   the *semantic definition* of pair similarity and the test oracle.
//! * **Prepared scoring** — [`PairScorer::prepare`] runs one pass over the
//!   records and builds a [`ScoringContext`] holding, per record and per
//!   non-null attribute: the interned attribute id, the `as_float` /
//!   numeric-ish parses, the lowercased text (one shared arena), and the
//!   token set as a sorted, deduplicated `Vec<u32>` of ids from a global
//!   [`sim::TokenInterner`]. [`ScoringContext::score_pair`] then runs
//!   allocation-free: Jaccard by sorted-slice merge
//!   ([`sim::jaccard_sorted`]), O(1) attribute-weight lookup through a
//!   vector indexed by attribute id, and string work reduced to arena
//!   slices.
//!
//! Prepared scores are **bit-identical** to the naive path: preparation
//! only hoists the per-value normalisation (same expressions, same
//! evaluation order); interning changes equality *lookups*, never a float.
//! `tests/prepared_equivalence.rs` pins this property, and the
//! serial-vs-parallel byte-equivalence suite rides on it.
//!
//! The context is **growable**: [`ScoringContext::extend`] appends a batch
//! of new records in place — interners, arenas, and weights extend without
//! touching existing entries (token/attr ids are first-seen dense, so
//! growth preserves them), making `prepare(A)` + `extend(B)` structurally
//! identical to `prepare(A∥B)`. This is what lets the incremental
//! consolidator ([`crate::incremental`]) keep one context resident across
//! delta batches instead of re-preparing the corpus per run.

use datatamer_ml::{DedupClassifier, PairFeatures, PreparedForm};
use datatamer_model::{Record, Value};
use datatamer_sim as sim;
use rayon::prelude::*;

/// How a pair of records is scored.
#[derive(Debug, Clone)]
pub enum PairScorer {
    /// Rule-based weighted attribute similarity with an accept threshold.
    Rules(RecordSimilarity),
    /// The trained ML dedup classifier applied to a key attribute
    /// (probability ≥ 0.5 accepts).
    Classifier { key_attr: String, model: DedupClassifier },
}

impl PairScorer {
    /// Score a pair in `[0, 1]` from the raw records — the naive path.
    ///
    /// Normalises both sides from scratch on every call; fine for a
    /// handful of pairs, quadratic waste on a candidate set. Batch callers
    /// go through [`PairScorer::prepare`]; this stays as the oracle the
    /// prepared path is pinned against.
    pub fn score(&self, a: &Record, b: &Record) -> f64 {
        match self {
            PairScorer::Rules(rs) => rs.score(a, b),
            PairScorer::Classifier { key_attr, model } => {
                match (a.get_text(key_attr), b.get_text(key_attr)) {
                    (Some(x), Some(y)) => model.proba(&x, &y),
                    _ => 0.0,
                }
            }
        }
    }

    /// Build a [`ScoringContext`] for `records`: one normalisation pass
    /// (each record visited exactly once), after which any number of pairs
    /// score without re-deriving features. The context is self-contained
    /// (the classifier variant stores a clone of the model), so it can
    /// outlive the scorer and stay resident across incremental runs.
    pub fn prepare(&self, records: &[Record]) -> ScoringContext {
        let inner = match self {
            PairScorer::Rules(rs) => Prepared::Rules(PreparedRules::empty(rs)),
            PairScorer::Classifier { key_attr, model } => Prepared::Classifier {
                model: model.clone(),
                key_attr: key_attr.clone(),
                keys: Vec::new(),
                forms: Vec::new(),
                stats: PrepareStats { distinct_attrs: 1, ..PrepareStats::default() },
            },
        };
        let mut ctx = ScoringContext { inner };
        ctx.extend(records);
        ctx
    }
}

/// Weighted per-attribute record similarity.
///
/// Shared attributes compare value-by-value with type-aware measures; the
/// result is the weighted mean over compared attributes. Attributes missing
/// on either side contribute nothing (curated sources are sparse — absence
/// is not evidence of difference).
#[derive(Debug, Clone)]
pub struct RecordSimilarity {
    /// `(attribute, weight)`; attributes not listed get `default_weight`.
    pub weights: Vec<(String, f64)>,
    /// Weight of attributes not explicitly listed.
    pub default_weight: f64,
}

impl Default for RecordSimilarity {
    fn default() -> Self {
        RecordSimilarity { weights: Vec::new(), default_weight: 1.0 }
    }
}

impl RecordSimilarity {
    /// Build with explicit attribute weights.
    pub fn with_weights(weights: Vec<(String, f64)>, default_weight: f64) -> Self {
        RecordSimilarity { weights, default_weight }
    }

    fn weight_of(&self, attr: &str) -> f64 {
        self.weights
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, w)| *w)
            .unwrap_or(self.default_weight)
    }

    /// Similarity in `[0, 1]`; 0.0 when no attribute is comparable.
    pub fn score(&self, a: &Record, b: &Record) -> f64 {
        let mut total_weight = 0.0;
        let mut acc = 0.0;
        for (attr, va) in a.iter() {
            let Some(vb) = b.get(attr) else { continue };
            if va.is_null() || vb.is_null() {
                continue;
            }
            let w = self.weight_of(attr);
            if w == 0.0 {
                continue;
            }
            acc += w * value_similarity(va, vb);
            total_weight += w;
        }
        if total_weight == 0.0 {
            0.0
        } else {
            acc / total_weight
        }
    }
}

/// Counters from one [`PairScorer::prepare`] pass — the observable proof
/// of its prepare-once contract (each record contributes to `records` and
/// `values` exactly once; scoring never mutates them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrepareStats {
    /// Records visited (always the full input length).
    pub records: usize,
    /// Non-null values normalised (for the classifier: key texts found).
    pub values: usize,
    /// Distinct attribute names interned.
    pub distinct_attrs: usize,
    /// Distinct tokens interned across every value.
    pub distinct_tokens: usize,
}

/// One record's slice of the prepared-field arena.
#[derive(Debug, Clone, Copy)]
struct PreparedRecord {
    field_start: u32,
    field_len: u32,
}

/// One non-null attribute value, fully normalised at prepare time.
#[derive(Debug, Clone, Copy)]
struct PreparedField {
    /// Interned attribute id — index into the weights vector.
    attr: u32,
    /// `Value::as_float` (native numerics).
    float: Option<f64>,
    /// [`parse_numericish`] of the text rendering (prices, years).
    numericish: Option<f64>,
    /// Lowercased text rendering: byte range into the shared text arena.
    lo_start: u32,
    lo_len: u32,
    /// Sorted, deduplicated interned token ids: range into the token arena.
    tok_start: u32,
    tok_len: u32,
}

/// Prepared features for the rules scorer: every per-value normalisation
/// the naive path recomputes per pair, hoisted into flat arenas. The
/// interners stay live so [`PreparedRules::extend`] can keep assigning
/// consistent first-seen ids to later batches.
#[derive(Debug, Clone)]
struct PreparedRules {
    /// The scorer configuration, kept so extension can weight attributes
    /// first seen in a later batch.
    rs: RecordSimilarity,
    /// Attribute-name interner (ids index [`PreparedRules::weights`]).
    attr_ids: sim::TokenInterner,
    /// Value-token interner (ids fill the token arena).
    tokens: sim::TokenInterner,
    /// Attribute weight by interned attribute id — replaces the per-pair
    /// linear scan of `RecordSimilarity::weight_of` with one indexed load.
    weights: Vec<f64>,
    records: Vec<PreparedRecord>,
    fields: Vec<PreparedField>,
    token_arena: Vec<u32>,
    text_arena: String,
    stats: PrepareStats,
}

impl PreparedRules {
    fn empty(rs: &RecordSimilarity) -> Self {
        PreparedRules {
            rs: rs.clone(),
            attr_ids: sim::TokenInterner::new(),
            tokens: sim::TokenInterner::new(),
            weights: Vec::new(),
            records: Vec::new(),
            fields: Vec::new(),
            token_arena: Vec::new(),
            text_arena: String::new(),
            stats: PrepareStats::default(),
        }
    }

    /// Append a batch: every structure grows strictly by appending (the
    /// interners assign dense first-seen ids over the concatenated
    /// stream), so the result is structurally identical to building from
    /// the concatenation in one pass — the invariant the incremental
    /// equivalence suite pins.
    fn extend(&mut self, new_records: &[Record]) {
        let mut tok_buf: Vec<u32> = Vec::new();
        for r in new_records {
            debug_assert!(
                self.fields.len() <= u32::MAX as usize
                    && self.token_arena.len() <= u32::MAX as usize
                    && self.text_arena.len() <= u32::MAX as usize,
                "prepared arenas exceed u32 offsets — shard the records first"
            );
            let field_start = self.fields.len() as u32;
            for (attr, v) in r.iter() {
                if v.is_null() {
                    continue;
                }
                let attr_id = self.attr_ids.intern_str(attr);
                if attr_id as usize == self.weights.len() {
                    self.weights.push(self.rs.weight_of(attr));
                }
                let float = v.as_float();
                let text = v.to_text();
                let numericish = parse_numericish(&text);
                let lower = text.to_lowercase();
                tok_buf.clear();
                sim::for_each_token(&lower, |tok| tok_buf.push(self.tokens.intern(tok)));
                tok_buf.sort_unstable();
                tok_buf.dedup();
                let tok_start = self.token_arena.len() as u32;
                self.token_arena.extend_from_slice(&tok_buf);
                let lo_start = self.text_arena.len() as u32;
                self.text_arena.push_str(&lower);
                self.fields.push(PreparedField {
                    attr: attr_id,
                    float,
                    numericish,
                    lo_start,
                    lo_len: lower.len() as u32,
                    tok_start,
                    tok_len: tok_buf.len() as u32,
                });
                self.stats.values += 1;
            }
            self.records.push(PreparedRecord {
                field_start,
                field_len: self.fields.len() as u32 - field_start,
            });
        }
        self.stats.records = self.records.len();
        self.stats.distinct_attrs = self.attr_ids.len();
        self.stats.distinct_tokens = self.tokens.len();
    }

    fn fields_of(&self, i: usize) -> &[PreparedField] {
        let r = self.records[i];
        &self.fields[r.field_start as usize..(r.field_start + r.field_len) as usize]
    }

    fn lower_of(&self, f: &PreparedField) -> &str {
        &self.text_arena[f.lo_start as usize..(f.lo_start + f.lo_len) as usize]
    }

    fn tokens_of(&self, f: &PreparedField) -> &[u32] {
        &self.token_arena[f.tok_start as usize..(f.tok_start + f.tok_len) as usize]
    }

    /// Mirrors [`value_similarity`] over prepared features — same branch
    /// order, same float expressions, hence bit-identical scores.
    fn value_similarity(&self, a: &PreparedField, b: &PreparedField) -> f64 {
        if let (Some(x), Some(y)) = (a.float, b.float) {
            return sim::relative_diff_similarity(x, y);
        }
        if let (Some(x), Some(y)) = (a.numericish, b.numericish) {
            return sim::relative_diff_similarity(x, y);
        }
        let la = self.lower_of(a);
        let lb = self.lower_of(b);
        if la == lb {
            return 1.0;
        }
        let jw = sim::jaro_winkler(la, lb);
        let jac = sim::jaccard_sorted(self.tokens_of(a), self.tokens_of(b));
        0.6 * jw + 0.4 * jac
    }

    /// Mirrors [`RecordSimilarity::score`]: iterate `a`'s fields in record
    /// order (accumulation order is part of the bit-identical contract),
    /// match `b`'s field by interned id, weight by indexed lookup.
    fn score_pair(&self, i: usize, j: usize) -> f64 {
        let fields_a = self.fields_of(i);
        let fields_b = self.fields_of(j);
        let mut total_weight = 0.0;
        let mut acc = 0.0;
        for fa in fields_a {
            let Some(fb) = fields_b.iter().find(|f| f.attr == fa.attr) else { continue };
            let w = self.weights[fa.attr as usize];
            if w == 0.0 {
                continue;
            }
            acc += w * self.value_similarity(fa, fb);
            total_weight += w;
        }
        if total_weight == 0.0 {
            0.0
        } else {
            acc / total_weight
        }
    }
}

#[derive(Debug, Clone)]
enum Prepared {
    Rules(PreparedRules),
    Classifier {
        /// Owned model clone, so the context is self-contained and can
        /// stay resident between runs.
        model: DedupClassifier,
        /// The attribute the classifier reads.
        key_attr: String,
        /// Key-attribute text per record, hoisted out of the pair loop
        /// (the naive path re-allocates both strings per pair); also the
        /// source of blocking sort keys on this path.
        keys: Vec<Option<String>>,
        /// Per-record classifier features ([`PairFeatures::prepare`]):
        /// canonical form, token/ngram sets, Soundex, prefix — so pair
        /// scoring stops re-deriving the `get_text` features per pair.
        forms: Vec<Option<PreparedForm>>,
        stats: PrepareStats,
    },
}

/// Per-run scoring context built by [`PairScorer::prepare`]: normalised
/// features for every record, computed once, shared (immutably, hence
/// freely across threads) by every pair scored afterwards. Growable in
/// place via [`ScoringContext::extend`] for incremental runs.
#[derive(Debug, Clone)]
pub struct ScoringContext {
    inner: Prepared,
}

impl ScoringContext {
    /// Number of prepared records (pair indexes must stay below this).
    pub fn len(&self) -> usize {
        match &self.inner {
            Prepared::Rules(r) => r.records.len(),
            Prepared::Classifier { keys, .. } => keys.len(),
        }
    }

    /// True when no records were prepared.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters from the prepare pass.
    pub fn stats(&self) -> PrepareStats {
        match &self.inner {
            Prepared::Rules(r) => r.stats,
            Prepared::Classifier { stats, .. } => *stats,
        }
    }

    /// Append a batch of records to the context in place. Existing
    /// prepared features are untouched and every id already handed out is
    /// preserved (interners are append-only, first-seen dense), so
    /// `prepare(A)` followed by `extend(B)` scores bit-identically to
    /// `prepare(A∥B)` — the contract incremental consolidation rests on.
    pub fn extend(&mut self, new_records: &[Record]) {
        match &mut self.inner {
            Prepared::Rules(r) => r.extend(new_records),
            Prepared::Classifier { key_attr, keys, forms, stats, .. } => {
                for r in new_records {
                    let key = r.get_text(key_attr);
                    if key.is_some() {
                        stats.values += 1;
                    }
                    forms.push(key.as_deref().map(PairFeatures::prepare));
                    keys.push(key);
                }
                stats.records = keys.len();
            }
        }
    }

    /// The blocking sort axis for `attr` — each record's lowercased value,
    /// byte-identical to `Record::get_text(attr).to_lowercase()` but read
    /// from the prepared text arena instead of re-rendering and
    /// re-lowercasing every record. `None` when this context cannot derive
    /// the axis (a classifier context asked about anything but its key
    /// attribute); callers then fall back to the raw records.
    pub fn sort_keys(&self, attr: &str) -> Option<Vec<Option<String>>> {
        self.sort_keys_from(attr, 0)
    }

    /// [`ScoringContext::sort_keys`] restricted to records `start..len` —
    /// the incremental consolidator calls this with the previous corpus
    /// length after an [`ScoringContext::extend`], so growing its resident
    /// sort axis costs O(delta), not O(corpus).
    pub fn sort_keys_from(&self, attr: &str, start: usize) -> Option<Vec<Option<String>>> {
        match &self.inner {
            Prepared::Rules(r) => {
                let id = r.attr_ids.get(attr);
                Some(
                    (start..r.records.len())
                        .map(|i| {
                            let id = id?;
                            r.fields_of(i)
                                .iter()
                                .find(|f| f.attr == id)
                                .map(|f| r.lower_of(f).to_owned())
                        })
                        .collect(),
                )
            }
            Prepared::Classifier { key_attr, keys, .. } => (attr == key_attr).then(|| {
                keys[start.min(keys.len())..]
                    .iter()
                    .map(|k| k.as_ref().map(|s| s.to_lowercase()))
                    .collect()
            }),
        }
    }

    /// Score one prepared pair in `[0, 1]` — bit-identical to
    /// [`PairScorer::score`] on the same records, allocation-free on the
    /// rules path and free of per-pair feature re-derivation on the
    /// classifier path (cached [`PreparedForm`]s).
    pub fn score_pair(&self, i: usize, j: usize) -> f64 {
        match &self.inner {
            Prepared::Rules(r) => r.score_pair(i, j),
            Prepared::Classifier { model, forms, .. } => match (&forms[i], &forms[j]) {
                (Some(x), Some(y)) => model.proba_prepared(x, y),
                _ => 0.0,
            },
        }
    }

    /// Score candidate pairs in parallel, preserving pair order.
    ///
    /// This is the consolidation hot path — at paper scale the candidate
    /// set runs to millions of pairs, each scoring independently against
    /// the shared context, so the work is embarrassingly parallel. Output
    /// index `k` is the score of `pairs[k]` regardless of thread count.
    pub fn score_pairs(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        pairs.par_iter().map(|&(i, j)| self.score_pair(i, j)).collect()
    }

    /// Score candidate pairs in parallel and keep those at or above
    /// `threshold`, in one fused pass (order preserved) — no intermediate
    /// `Vec<f64>` of scores is ever materialised.
    pub fn accepted_pairs(&self, pairs: &[(usize, usize)], threshold: f64) -> Vec<(usize, usize)> {
        pairs
            .par_iter()
            .filter_map(|&(i, j)| (self.score_pair(i, j) >= threshold).then_some((i, j)))
            .collect()
    }
}

/// Score candidate pairs against a prepared context, preserving pair order
/// (free-function form of [`ScoringContext::score_pairs`]).
pub fn score_pairs_prepared(ctx: &ScoringContext, pairs: &[(usize, usize)]) -> Vec<f64> {
    ctx.score_pairs(pairs)
}

/// Filter candidate pairs at `threshold` against a prepared context in one
/// fused parallel pass (free-function form of
/// [`ScoringContext::accepted_pairs`]).
pub fn accepted_pairs_prepared(
    ctx: &ScoringContext,
    pairs: &[(usize, usize)],
    threshold: f64,
) -> Vec<(usize, usize)> {
    ctx.accepted_pairs(pairs, threshold)
}

/// Score candidate pairs in parallel, preserving pair order.
///
/// Prepares a [`ScoringContext`] internally (one pass over `records`) and
/// scores through it — callers holding the same records across several
/// candidate sets should call [`PairScorer::prepare`] themselves and reuse
/// the context.
pub fn score_pairs(
    scorer: &PairScorer,
    records: &[Record],
    pairs: &[(usize, usize)],
) -> Vec<f64> {
    scorer.prepare(records).score_pairs(pairs)
}

/// Score candidate pairs in parallel and keep those at or above
/// `threshold` (order preserved). Prepares once, then filters in a single
/// fused pass — see [`ScoringContext::accepted_pairs`].
pub fn accepted_pairs(
    scorer: &PairScorer,
    records: &[Record],
    pairs: &[(usize, usize)],
    threshold: f64,
) -> Vec<(usize, usize)> {
    scorer.prepare(records).accepted_pairs(pairs, threshold)
}

/// Type-aware scalar similarity (the naive, per-call form; the prepared
/// path hoists every normalisation here into [`PairScorer::prepare`]).
pub fn value_similarity(a: &Value, b: &Value) -> f64 {
    if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) { return sim::relative_diff_similarity(x, y) }
    let (ta, tb) = (a.to_text(), b.to_text());
    // Numeric-looking strings (prices, years) compare numerically.
    if let (Some(x), Some(y)) = (parse_numericish(&ta), parse_numericish(&tb)) {
        return sim::relative_diff_similarity(x, y);
    }
    let la = ta.to_lowercase();
    let lb = tb.to_lowercase();
    if la == lb {
        return 1.0;
    }
    // Blend character- and token-level for robustness across lengths.
    let jw = sim::jaro_winkler(&la, &lb);
    let sa: std::collections::HashSet<String> = sim::tokenize(&la).into_iter().collect();
    let sb: std::collections::HashSet<String> = sim::tokenize(&lb).into_iter().collect();
    let jac = sim::jaccard(&sa, &sb);
    0.6 * jw + 0.4 * jac
}

fn parse_numericish(s: &str) -> Option<f64> {
    use datatamer_model::infer;
    if let Some(m) = infer::parse_money(s) {
        return Some(m.amount);
    }
    infer::parse_decimal(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{RecordId, SourceId};
    use datatamer_ml::logreg::LogRegConfig;

    fn rec(fields: Vec<(&str, &str)>) -> Record {
        Record::from_pairs(
            SourceId(0),
            RecordId(0),
            fields.into_iter().map(|(k, v)| (k, Value::from(v))).collect(),
        )
    }

    #[test]
    fn identical_records_score_one() {
        let a = rec(vec![("name", "Matilda"), ("price", "$27")]);
        let s = RecordSimilarity::default();
        assert!((s.score(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_duplicates_score_high_distinct_low() {
        let s = RecordSimilarity::default();
        let a = rec(vec![("name", "Matilda"), ("price", "$27")]);
        let b = rec(vec![("name", "matilda"), ("price", "$28")]);
        let c = rec(vec![("name", "The Lion King"), ("price", "$150")]);
        assert!(s.score(&a, &b) > 0.9, "{}", s.score(&a, &b));
        assert!(s.score(&a, &c) < 0.5, "{}", s.score(&a, &c));
    }

    #[test]
    fn missing_and_null_attributes_are_neutral() {
        let s = RecordSimilarity::default();
        let a = rec(vec![("name", "Matilda"), ("venue", "Shubert")]);
        let mut b = rec(vec![("name", "Matilda")]);
        assert!((s.score(&a, &b) - 1.0).abs() < 1e-9, "venue absent on b is ignored");
        b.set("venue", Value::Null);
        assert!((s.score(&a, &b) - 1.0).abs() < 1e-9, "null venue is ignored");
        let empty = rec(vec![]);
        assert_eq!(s.score(&a, &empty), 0.0, "nothing comparable");
    }

    #[test]
    fn weights_shift_the_score() {
        let a = rec(vec![("name", "Matilda"), ("city", "New York")]);
        let b = rec(vec![("name", "Wicked"), ("city", "New York")]);
        let name_heavy = RecordSimilarity::with_weights(vec![("name".into(), 10.0)], 1.0);
        let city_heavy = RecordSimilarity::with_weights(vec![("city".into(), 10.0)], 1.0);
        assert!(city_heavy.score(&a, &b) > name_heavy.score(&a, &b));
    }

    #[test]
    fn numeric_strings_compare_numerically() {
        assert!(value_similarity(&Value::from("$27"), &Value::from("27 USD")) > 0.99);
        assert!(value_similarity(&Value::from("1900"), &Value::from("1901")) > 0.99);
        assert!(value_similarity(&Value::from("$20"), &Value::from("$200")) < 0.2);
        assert_eq!(value_similarity(&Value::Int(5), &Value::Int(5)), 1.0);
    }

    #[test]
    fn classifier_scorer_uses_key_attribute() {
        let pairs = vec![
            ("Matilda".to_owned(), "matilda".to_owned(), true),
            ("Matilda".to_owned(), "Wicked".to_owned(), false),
            ("Annie".to_owned(), "Annie!".to_owned(), true),
            ("Annie".to_owned(), "Pippin".to_owned(), false),
            ("Goodfellas".to_owned(), "Goodfelas".to_owned(), true),
            ("Goodfellas".to_owned(), "Written".to_owned(), false),
        ];
        let model = DedupClassifier::train(&pairs, &LogRegConfig::default());
        let scorer = PairScorer::Classifier { key_attr: "name".into(), model };
        let a = rec(vec![("name", "Matilda")]);
        let b = rec(vec![("name", "matilda ")]);
        let c = rec(vec![("name", "Rock of Ages")]);
        assert!(scorer.score(&a, &b) > scorer.score(&a, &c));
        let no_key = rec(vec![("other", "x")]);
        assert_eq!(scorer.score(&a, &no_key), 0.0);
    }

    #[test]
    fn prepared_scores_match_naive_on_mixed_values() {
        let records = vec![
            rec(vec![("name", "Matilda the Musical"), ("price", "$27"), ("year", "2013")]),
            rec(vec![("name", "matilda musical"), ("price", "27 USD"), ("year", "2013")]),
            rec(vec![("name", "The Lion King"), ("price", "$150"), ("venue", "Minskoff")]),
            rec(vec![("other", "x")]),
            rec(vec![]),
        ];
        let scorer = PairScorer::Rules(RecordSimilarity::with_weights(
            vec![("name".into(), 3.0), ("venue".into(), 0.0)],
            1.0,
        ));
        let ctx = scorer.prepare(&records);
        for i in 0..records.len() {
            for j in 0..records.len() {
                let naive = scorer.score(&records[i], &records[j]);
                let prepared = ctx.score_pair(i, j);
                assert_eq!(prepared.to_bits(), naive.to_bits(), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn prepared_free_functions_and_wrappers_agree() {
        let records = vec![
            rec(vec![("name", "Wicked"), ("price", "$99")]),
            rec(vec![("name", "WICKED"), ("price", "$98")]),
            rec(vec![("name", "Annie"), ("price", "$45")]),
        ];
        let scorer = PairScorer::Rules(RecordSimilarity::default());
        let pairs = vec![(0, 1), (0, 2), (1, 2)];
        let ctx = scorer.prepare(&records);
        let via_ctx = score_pairs_prepared(&ctx, &pairs);
        let via_wrapper = score_pairs(&scorer, &records, &pairs);
        assert_eq!(via_ctx, via_wrapper);
        assert_eq!(
            accepted_pairs_prepared(&ctx, &pairs, 0.75),
            accepted_pairs(&scorer, &records, &pairs, 0.75),
        );
        assert_eq!(accepted_pairs_prepared(&ctx, &pairs, 0.75), vec![(0, 1)]);
    }

    #[test]
    fn prepare_stats_count_one_visit_per_record() {
        let mut records = vec![
            rec(vec![("name", "Matilda"), ("price", "$27")]),
            rec(vec![("name", "Annie")]),
            rec(vec![]),
        ];
        records[1].set("venue", Value::Null);
        let scorer = PairScorer::Rules(RecordSimilarity::default());
        let ctx = scorer.prepare(&records);
        let stats = ctx.stats();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.values, 3, "nulls and empty records add nothing");
        assert_eq!(stats.distinct_attrs, 2, "name + price (null venue skipped)");
        // Scoring must not re-prepare: stats are immutable after the pass.
        let _ = ctx.score_pairs(&[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(ctx.stats(), stats);
    }
}
