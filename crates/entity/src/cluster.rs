//! Union-find clustering of accepted duplicate pairs.

/// Disjoint-set forest with union by rank and path compression.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Compress.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets holding `a` and `b`. Returns true when they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True when `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Grow to `n` elements, appending fresh singletons and leaving every
    /// existing set untouched — the persistence primitive for incremental
    /// consolidation, where a delta batch extends the element universe
    /// without invalidating the unions accumulated over earlier batches.
    /// Shrinking is not supported; `n` at or below the current length is a
    /// no-op.
    pub fn grow(&mut self, n: usize) {
        while self.parent.len() < n {
            self.parent.push(self.parent.len());
            self.rank.push(0);
        }
    }

    /// Materialise clusters: index lists grouped by representative, each
    /// cluster's members sorted ascending, clusters ordered by smallest
    /// member.
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..n {
            let r = self.find(i);
            by_root.entry(r).or_default().push(i);
        }
        // dtlint::allow(map-iter, reason = "members are sorted ascending and clusters sorted by smallest member below")
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        for c in &mut out {
            c.sort_unstable();
        }
        out.sort_by_key(|c| c[0]);
        out
    }
}

/// Cluster `n` items given accepted pairs.
pub fn cluster_pairs(n: usize, accepted: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    for (a, b) in accepted {
        uf.union(*a, *b);
    }
    uf.clusters()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_without_unions() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.clusters(), vec![vec![0], vec![1], vec![2]]);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_and_transitivity() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.clusters(), vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn cluster_pairs_end_to_end() {
        let clusters = cluster_pairs(6, &[(0, 1), (2, 3), (3, 4)]);
        assert_eq!(clusters, vec![vec![0, 1], vec![2, 3, 4], vec![5]]);
    }

    #[test]
    fn empty_and_self_pairs() {
        assert!(cluster_pairs(0, &[]).is_empty());
        let mut uf = UnionFind::new(2);
        assert!(!uf.union(1, 1), "self-union is a no-op");
        assert!(!uf.is_empty() && uf.len() == 2);
    }

    #[test]
    fn grow_preserves_existing_sets() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        uf.grow(5);
        assert_eq!(uf.len(), 5);
        assert!(uf.connected(0, 1), "grow must not disturb existing unions");
        assert!(!uf.connected(2, 3));
        uf.union(3, 4);
        assert_eq!(uf.clusters(), vec![vec![0, 1], vec![2], vec![3, 4]]);
        uf.grow(2);
        assert_eq!(uf.len(), 5, "grow never shrinks");

        // Growing then unioning reproduces the from-scratch clusters.
        let mut scratch = UnionFind::new(5);
        scratch.union(0, 1);
        scratch.union(3, 4);
        assert_eq!(uf.clusters(), scratch.clusters());
    }

    #[test]
    fn chain_compresses_correctly() {
        let n = 1000;
        let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let clusters = cluster_pairs(n, &pairs);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), n);
    }
}
