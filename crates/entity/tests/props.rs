//! Property tests for entity consolidation: union-find matches a naive
//! transitive closure, cluster merges preserve attribute coverage, and the
//! pipeline never invents or loses records.

use proptest::prelude::*;

use datatamer_entity::cluster::{cluster_pairs, UnionFind};
use datatamer_entity::consolidate::{merge_cluster, MergePolicy};
use datatamer_entity::pipeline::{ConsolidationPipeline, PipelineConfig};
use datatamer_model::{Record, RecordId, SourceId, Value};

/// Naive transitive closure for comparison.
fn naive_clusters(n: usize, pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut group: Vec<usize> = (0..n).collect();
    loop {
        let mut changed = false;
        for (a, b) in pairs {
            let (ga, gb) = (group[*a], group[*b]);
            if ga != gb {
                let target = ga.min(gb);
                for g in group.iter_mut() {
                    if *g == ga || *g == gb {
                        *g = target;
                    }
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, g) in group.iter().enumerate() {
        clusters.entry(*g).or_default().push(i);
    }
    clusters.into_values().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn union_find_matches_naive_closure(
        n in 1usize..30,
        raw_pairs in prop::collection::vec((0usize..30, 0usize..30), 0..40),
    ) {
        let pairs: Vec<(usize, usize)> = raw_pairs
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .collect();
        let fast = cluster_pairs(n, &pairs);
        let naive = naive_clusters(n, &pairs);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn connected_is_equivalence_relation(
        n in 2usize..20,
        raw_pairs in prop::collection::vec((0usize..20, 0usize..20), 0..30),
    ) {
        let mut uf = UnionFind::new(n);
        for (a, b) in &raw_pairs {
            uf.union(a % n, b % n);
        }
        for i in 0..n {
            prop_assert!(uf.connected(i, i), "reflexive");
            for j in 0..n {
                prop_assert_eq!(uf.connected(i, j), uf.connected(j, i), "symmetric");
            }
        }
    }

    #[test]
    fn merge_covers_union_of_attributes(
        cluster in prop::collection::vec(
            prop::collection::vec(("[a-c]", "[a-z]{1,6}"), 1..4),
            1..5,
        ),
    ) {
        let records: Vec<Record> = cluster
            .iter()
            .enumerate()
            .map(|(i, fields)| {
                Record::from_pairs(
                    SourceId(0),
                    RecordId(i as u64),
                    fields.iter().map(|(k, v)| (k.clone(), Value::from(v.clone()))).collect(),
                )
            })
            .collect();
        let refs: Vec<&Record> = records.iter().collect();
        let merged = merge_cluster(&refs, &MergePolicy::default());
        // Every attribute present in any member appears in the composite.
        for r in &records {
            for name in r.field_names() {
                prop_assert!(merged.get(name).is_some(), "lost attribute {}", name);
            }
        }
        // Majority vote picks an existing value.
        for (name, v) in merged.iter() {
            if v.is_null() {
                continue;
            }
            let seen = records.iter().any(|r| r.get(name) == Some(v));
            prop_assert!(seen, "invented value for {}", name);
        }
    }

    #[test]
    fn pipeline_clusters_partition_input(names in prop::collection::vec("[a-f]{2,6}", 1..30)) {
        let records: Vec<Record> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                Record::from_pairs(
                    SourceId(0),
                    RecordId(i as u64),
                    vec![("name", Value::from(name.clone()))],
                )
            })
            .collect();
        let pipeline = ConsolidationPipeline::new(PipelineConfig::rules_default("name"));
        let result = pipeline.run(&records);
        // Clusters partition 0..n.
        let mut all: Vec<usize> = result.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..records.len()).collect();
        prop_assert_eq!(all, expected);
        prop_assert_eq!(result.composites.len(), result.clusters.len());
        // Identical names always cluster together (token blocking + score 1).
        for (i, a) in names.iter().enumerate() {
            for (j, b) in names.iter().enumerate().skip(i + 1) {
                if a == b {
                    let ca = result.clusters.iter().position(|c| c.contains(&i));
                    let cb = result.clusters.iter().position(|c| c.contains(&j));
                    prop_assert_eq!(ca, cb, "identical names split: {}", a);
                }
            }
        }
    }
}
