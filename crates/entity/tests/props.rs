//! Property tests for entity consolidation: union-find matches a naive
//! transitive closure, cluster merges preserve attribute coverage, the
//! pipeline never invents or loses records, and blocking holds its output
//! invariants (sorted, deduplicated, ordered pairs; progressive recall
//! dominating the truncating cap) for every strategy.

use proptest::prelude::*;

use datatamer_entity::blocking::{
    blocking_recall, Blocker, BlockingStrategy, OversizeFallback,
};
use datatamer_entity::cluster::{cluster_pairs, UnionFind};
use datatamer_entity::consolidate::{merge_cluster, MergePolicy};
use datatamer_entity::pipeline::{ConsolidationPipeline, PipelineConfig};
use datatamer_model::{Record, RecordId, SourceId, Value};

/// Records with a `name` attribute from generated strings.
fn named_records(names: &[String]) -> Vec<Record> {
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Record::from_pairs(
                SourceId(0),
                RecordId(i as u64),
                vec![("name", Value::from(name.clone()))],
            )
        })
        .collect()
}

/// Every blocking strategy under test.
fn all_strategies() -> Vec<BlockingStrategy> {
    vec![
        BlockingStrategy::Token,
        BlockingStrategy::Soundex,
        BlockingStrategy::SortedNeighborhood { window: 3 },
        BlockingStrategy::MinHashLsh { bands: 4, rows: 4 },
    ]
}

/// Every distinct `(strategy, fallback)` behaviour: only the bucket-based
/// strategies consult the oversize fallback, so the windowed/LSH
/// strategies run once instead of twice.
fn strategy_fallback_pairs() -> Vec<(BlockingStrategy, OversizeFallback)> {
    let progressive = OversizeFallback::Progressive { window: 3 };
    let adaptive = OversizeFallback::ProgressiveAdaptive { base: 3, max: 12 };
    vec![
        (BlockingStrategy::Token, progressive),
        (BlockingStrategy::Token, adaptive),
        (BlockingStrategy::Token, OversizeFallback::Truncate),
        (BlockingStrategy::Soundex, progressive),
        (BlockingStrategy::Soundex, adaptive),
        (BlockingStrategy::Soundex, OversizeFallback::Truncate),
        (BlockingStrategy::SortedNeighborhood { window: 3 }, progressive),
        (BlockingStrategy::MinHashLsh { bands: 4, rows: 4 }, progressive),
    ]
}

/// Naive transitive closure for comparison.
fn naive_clusters(n: usize, pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut group: Vec<usize> = (0..n).collect();
    loop {
        let mut changed = false;
        for (a, b) in pairs {
            let (ga, gb) = (group[*a], group[*b]);
            if ga != gb {
                let target = ga.min(gb);
                for g in group.iter_mut() {
                    if *g == ga || *g == gb {
                        *g = target;
                    }
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, g) in group.iter().enumerate() {
        clusters.entry(*g).or_default().push(i);
    }
    clusters.into_values().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn union_find_matches_naive_closure(
        n in 1usize..30,
        raw_pairs in prop::collection::vec((0usize..30, 0usize..30), 0..40),
    ) {
        let pairs: Vec<(usize, usize)> = raw_pairs
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .collect();
        let fast = cluster_pairs(n, &pairs);
        let naive = naive_clusters(n, &pairs);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn connected_is_equivalence_relation(
        n in 2usize..20,
        raw_pairs in prop::collection::vec((0usize..20, 0usize..20), 0..30),
    ) {
        let mut uf = UnionFind::new(n);
        for (a, b) in &raw_pairs {
            uf.union(a % n, b % n);
        }
        for i in 0..n {
            prop_assert!(uf.connected(i, i), "reflexive");
            for j in 0..n {
                prop_assert_eq!(uf.connected(i, j), uf.connected(j, i), "symmetric");
            }
        }
    }

    #[test]
    fn merge_covers_union_of_attributes(
        cluster in prop::collection::vec(
            prop::collection::vec(("[a-c]", "[a-z]{1,6}"), 1..4),
            1..5,
        ),
    ) {
        let records: Vec<Record> = cluster
            .iter()
            .enumerate()
            .map(|(i, fields)| {
                Record::from_pairs(
                    SourceId(0),
                    RecordId(i as u64),
                    fields.iter().map(|(k, v)| (k.clone(), Value::from(v.clone()))).collect(),
                )
            })
            .collect();
        let refs: Vec<&Record> = records.iter().collect();
        let merged = merge_cluster(&refs, &MergePolicy::default());
        // Every attribute present in any member appears in the composite.
        for r in &records {
            for name in r.field_names() {
                prop_assert!(merged.get(name).is_some(), "lost attribute {}", name);
            }
        }
        // Majority vote picks an existing value.
        for (name, v) in merged.iter() {
            if v.is_null() {
                continue;
            }
            let seen = records.iter().any(|r| r.get(name) == Some(v));
            prop_assert!(seen, "invented value for {}", name);
        }
    }

    #[test]
    fn blocking_pairs_are_sorted_dedup_and_ordered(
        // A tiny alphabet with optional extra words forces shared tokens,
        // shared Soundex codes, and (under a small cap) oversized buckets.
        names in prop::collection::vec("[abcd ]{1,8}", 1..40),
    ) {
        let records = named_records(&names);
        for (strategy, fallback) in strategy_fallback_pairs() {
            let pairs = Blocker::new("name", strategy)
                .with_bucket_cap(4)
                .with_fallback(fallback)
                .candidates(&records);
            for &(a, b) in &pairs {
                prop_assert!(a < b, "{strategy:?}/{fallback:?}: unordered pair ({a},{b})");
                prop_assert!(b < records.len(), "{strategy:?}: index out of range");
            }
            let mut normalized = pairs.clone();
            normalized.sort_unstable();
            normalized.dedup();
            prop_assert_eq!(
                &pairs, &normalized,
                "{:?}/{:?}: output must be sorted and deduplicated", strategy, fallback
            );
        }
    }

    #[test]
    fn blocking_is_deterministic_across_fresh_blockers(
        names in prop::collection::vec("[abcd ]{1,8}", 1..30),
    ) {
        // Two independently built blockers (fresh LSH tables, fresh hash
        // seeds) must emit identical candidates — the byte-determinism
        // contract every strategy upholds.
        let records = named_records(&names);
        for strategy in all_strategies() {
            let first = Blocker::new("name", strategy).with_bucket_cap(4).candidates(&records);
            let second = Blocker::new("name", strategy).with_bucket_cap(4).candidates(&records);
            prop_assert_eq!(first, second, "{:?} must not depend on run state", strategy);
        }
    }

    #[test]
    fn progressive_recall_dominates_truncation(
        names in prop::collection::vec("[abc ]{1,6}", 2..50),
        raw_truth in prop::collection::vec((0usize..50, 0usize..50), 1..12),
    ) {
        // On ANY truth set, progressive blocking's candidate set is a
        // superset of the truncating cap's, so its recall can never be
        // lower — the invariant that replaces the recall cliff.
        let n = names.len();
        let truth: Vec<(usize, usize)> = raw_truth
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|(a, b)| a != b)
            .collect();
        let records = named_records(&names);
        let base = || Blocker::new("name", BlockingStrategy::Token).with_bucket_cap(4);
        let progressive = base()
            .with_fallback(OversizeFallback::Progressive { window: 3 })
            .candidates(&records);
        let truncated = base()
            .with_fallback(OversizeFallback::Truncate)
            .candidates(&records);
        let progressive_set: std::collections::HashSet<(usize, usize)> =
            progressive.iter().copied().collect();
        prop_assert!(
            truncated.iter().all(|p| progressive_set.contains(p)),
            "progressive candidates must be a superset of truncated ones"
        );
        prop_assert!(
            blocking_recall(&progressive, &truth)
                >= blocking_recall(&truncated, &truth) - 1e-12,
            "progressive recall must dominate"
        );
        // The adaptive window only ever widens from the same base, so its
        // candidate set dominates the fixed window's the same way the fixed
        // window dominates truncation: adaptive ⊇ progressive ⊇ truncated.
        let adaptive = base()
            .with_fallback(OversizeFallback::ProgressiveAdaptive { base: 3, max: 12 })
            .candidates(&records);
        let adaptive_set: std::collections::HashSet<(usize, usize)> =
            adaptive.iter().copied().collect();
        prop_assert!(
            progressive.iter().all(|p| adaptive_set.contains(p)),
            "adaptive candidates must be a superset of fixed-window ones"
        );
        prop_assert!(
            blocking_recall(&adaptive, &truth)
                >= blocking_recall(&progressive, &truth) - 1e-12,
            "adaptive recall must dominate the fixed window"
        );
    }

    #[test]
    fn pipeline_clusters_partition_input(names in prop::collection::vec("[a-f]{2,6}", 1..30)) {
        let records: Vec<Record> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                Record::from_pairs(
                    SourceId(0),
                    RecordId(i as u64),
                    vec![("name", Value::from(name.clone()))],
                )
            })
            .collect();
        let pipeline = ConsolidationPipeline::new(PipelineConfig::rules_default("name"));
        let result = pipeline.run(&records);
        // Clusters partition 0..n.
        let mut all: Vec<usize> = result.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..records.len()).collect();
        prop_assert_eq!(all, expected);
        prop_assert_eq!(result.composites.len(), result.clusters.len());
        // Identical names always cluster together (token blocking + score 1).
        for (i, a) in names.iter().enumerate() {
            for (j, b) in names.iter().enumerate().skip(i + 1) {
                if a == b {
                    let ca = result.clusters.iter().position(|c| c.contains(&i));
                    let cb = result.clusters.iter().position(|c| c.contains(&j));
                    prop_assert_eq!(ca, cb, "identical names split: {}", a);
                }
            }
        }
    }
}
