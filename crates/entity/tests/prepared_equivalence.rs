//! The prepared scoring layer's load-bearing contract: scores coming out
//! of a [`ScoringContext`] are **bit-identical** to the naive
//! [`PairScorer::score`] oracle on the same records — preparation hoists
//! work, it never moves a float — and preparation visits each record
//! exactly once no matter how many pairs are scored afterwards.

use proptest::prelude::*;

use datatamer_entity::pairsim::{
    accepted_pairs_prepared, score_pairs_prepared, PairScorer, RecordSimilarity,
};
use datatamer_ml::logreg::LogRegConfig;
use datatamer_ml::DedupClassifier;
use datatamer_model::{Record, RecordId, SourceId, Value};

/// Small fixed attribute alphabet so records genuinely share attributes.
const ATTRS: [&str; 5] = ["name", "price", "year", "venue", "misc"];

/// Values spanning every branch of `value_similarity`: native numerics,
/// numeric-looking strings (money, years, decimals), free text, empty
/// strings, and nulls.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-5000i64..5000).prop_map(Value::Int),
        (-1.0e4..1.0e4).prop_map(Value::Float),
        (0u32..3000).prop_map(|n| Value::from(format!("${n}"))),
        (0u32..3000).prop_map(|n| Value::from(n.to_string())),
        (0u32..300).prop_map(|n| Value::from(format!("{}.{:02}", n, n % 97))),
        "[a-d ]{0,10}".prop_map(Value::from),
        "[A-Za-z0-9_$ .-]{0,12}".prop_map(Value::from),
    ]
}

/// A record: up to 6 fields drawn from the shared attribute alphabet
/// (duplicate names collapse through `Record::set`, as everywhere else).
fn record_strategy() -> impl Strategy<Value = Vec<(usize, Value)>> {
    prop::collection::vec((0usize..ATTRS.len(), value_strategy()), 0..6)
}

fn build_records(raw: Vec<Vec<(usize, Value)>>) -> Vec<Record> {
    raw.into_iter()
        .enumerate()
        .map(|(i, fields)| {
            Record::from_pairs(
                SourceId(0),
                RecordId(i as u64),
                fields.into_iter().map(|(a, v)| (ATTRS[a], v)).collect(),
            )
        })
        .collect()
}

/// Weights with duplicates (first entry wins in `weight_of`) and explicit
/// zeros (skipped attributes), so the indexed weights vector is exercised
/// against every quirk of the linear-scan original.
fn weights_strategy() -> impl Strategy<Value = RecordSimilarity> {
    (
        prop::collection::vec(
            (0usize..ATTRS.len(), prop_oneof![Just(0.0f64), 0.01f64..4.0]),
            0..6,
        ),
        prop_oneof![Just(1.0f64), Just(0.0), 0.01f64..2.0],
    )
        .prop_map(|(entries, default_weight)| {
            RecordSimilarity::with_weights(
                entries.into_iter().map(|(a, w)| (ATTRS[a].to_owned(), w)).collect(),
                default_weight,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn prepared_rules_scores_are_bit_identical_to_naive(
        raw in prop::collection::vec(record_strategy(), 1..12),
        similarity in weights_strategy(),
        raw_pairs in prop::collection::vec((0usize..12, 0usize..12), 0..30),
        threshold in 0.0f64..1.0,
    ) {
        let records = build_records(raw);
        let n = records.len();
        let pairs: Vec<(usize, usize)> =
            raw_pairs.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let scorer = PairScorer::Rules(similarity);
        let ctx = scorer.prepare(&records);

        let prepared = score_pairs_prepared(&ctx, &pairs);
        prop_assert_eq!(prepared.len(), pairs.len());
        for (k, &(i, j)) in pairs.iter().enumerate() {
            let naive = scorer.score(&records[i], &records[j]);
            prop_assert_eq!(
                prepared[k].to_bits(),
                naive.to_bits(),
                "pair ({}, {}): prepared {} vs naive {}",
                i, j, prepared[k], naive
            );
        }

        // The fused accept filter equals the naive score-then-filter.
        let accepted = accepted_pairs_prepared(&ctx, &pairs, threshold);
        let expected: Vec<(usize, usize)> = pairs
            .iter()
            .copied()
            .filter(|&(i, j)| scorer.score(&records[i], &records[j]) >= threshold)
            .collect();
        prop_assert_eq!(accepted, expected);
    }

    #[test]
    fn preparation_visits_each_record_exactly_once(
        raw in prop::collection::vec(record_strategy(), 1..10),
        pair_count in 0usize..40,
    ) {
        let records = build_records(raw);
        let n = records.len();
        let scorer = PairScorer::Rules(RecordSimilarity::default());
        let ctx = scorer.prepare(&records);
        let stats = ctx.stats();

        // One visit per record, one prepared value per non-null field —
        // a re-visit would inflate both counters.
        let non_null: usize = records
            .iter()
            .map(|r| r.iter().filter(|(_, v)| !v.is_null()).count())
            .sum();
        prop_assert_eq!(stats.records, records.len());
        prop_assert_eq!(stats.values, non_null);
        prop_assert!(stats.distinct_attrs <= ATTRS.len());

        // Scoring any number of pairs must not re-prepare anything.
        let pairs: Vec<(usize, usize)> =
            (0..pair_count).map(|k| (k % n, (k * 7 + 1) % n)).collect();
        let _ = score_pairs_prepared(&ctx, &pairs);
        let _ = accepted_pairs_prepared(&ctx, &pairs, 0.5);
        prop_assert_eq!(ctx.stats(), stats);
    }
}

#[test]
fn prepared_classifier_scores_are_bit_identical_to_naive() {
    let training = vec![
        ("Matilda".to_owned(), "matilda".to_owned(), true),
        ("Matilda".to_owned(), "Wicked".to_owned(), false),
        ("Annie".to_owned(), "Annie!".to_owned(), true),
        ("Annie".to_owned(), "Pippin".to_owned(), false),
        ("Goodfellas".to_owned(), "Goodfelas".to_owned(), true),
        ("Goodfellas".to_owned(), "Written".to_owned(), false),
    ];
    let model = DedupClassifier::train(&training, &LogRegConfig::default());
    let scorer = PairScorer::Classifier { key_attr: "name".into(), model };

    let rec = |id: u64, fields: Vec<(&str, &str)>| {
        Record::from_pairs(
            SourceId(0),
            RecordId(id),
            fields.into_iter().map(|(k, v)| (k, Value::from(v))).collect(),
        )
    };
    let records = vec![
        rec(0, vec![("name", "Matilda"), ("price", "$27")]),
        rec(1, vec![("name", "matilda ")]),
        rec(2, vec![("name", "Rock of Ages")]),
        rec(3, vec![("other", "no key here")]),
        rec(4, vec![]),
    ];
    let ctx = scorer.prepare(&records);
    assert_eq!(ctx.len(), records.len());
    assert_eq!(ctx.stats().records, records.len());
    assert_eq!(ctx.stats().values, 3, "three records carry the key attribute");
    for i in 0..records.len() {
        for j in 0..records.len() {
            let naive = scorer.score(&records[i], &records[j]);
            let prepared = ctx.score_pair(i, j);
            assert_eq!(prepared.to_bits(), naive.to_bits(), "pair ({i}, {j})");
        }
    }
}
