//! Collection statistics in the shape of the paper's Tables I and II.

use std::fmt;

/// The `db.<collection>.stats()` report.
///
/// Field names mirror the paper's Table I/II output: `ns` (namespace),
/// `count` (total entries), `numExtents` (extents storing the collection),
/// `nindexes`, `lastExtentSize` (byte size of the last extent on disk), and
/// `totalIndexSize` (bytes across all indexes).
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionStats {
    /// Namespace, e.g. `dt.instance`.
    pub ns: String,
    /// Total live entries.
    pub count: u64,
    /// Number of allocated extents.
    pub num_extents: usize,
    /// Number of secondary indexes.
    pub nindexes: usize,
    /// Allocated byte size of the most recent extent.
    pub last_extent_size: usize,
    /// Total bytes across all indexes (measured from encoded keys).
    pub total_index_size: usize,
    /// Total encoded document bytes.
    pub data_size: usize,
    /// Mean encoded document size in bytes.
    pub avg_obj_size: f64,
}

impl fmt::Display for CollectionStats {
    /// Renders in the paper's `db.<coll>.stats()` JSON-ish style:
    ///
    /// ```text
    /// {
    /// "ns" : "dt.instance",
    /// "count" : 17731744,
    /// ...
    /// }
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        writeln!(f, "\"ns\" : \"{}\",", self.ns)?;
        writeln!(f, "\"count\" : {},", self.count)?;
        writeln!(f, "\"numExtents\" : {},", self.num_extents)?;
        writeln!(f, "\"nindexes\" : {},", self.nindexes)?;
        writeln!(f, "\"lastExtentSize\" : {},", self.last_extent_size)?;
        writeln!(f, "\"totalIndexSize\" : {},", self.total_index_size)?;
        writeln!(f, "\"dataSize\" : {},", self.data_size)?;
        writeln!(f, "\"avgObjSize\" : {:.1},", self.avg_obj_size)?;
        writeln!(f, "...")?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        let s = CollectionStats {
            ns: "dt.instance".into(),
            count: 17_731_744,
            num_extents: 242,
            nindexes: 1,
            last_extent_size: 1_903_786_752,
            total_index_size: 733_651_904,
            data_size: 0,
            avg_obj_size: 0.0,
        };
        let shown = s.to_string();
        assert!(shown.contains("\"ns\" : \"dt.instance\""));
        assert!(shown.contains("\"count\" : 17731744"));
        assert!(shown.contains("\"numExtents\" : 242"));
        assert!(shown.contains("\"lastExtentSize\" : 1903786752"));
        assert!(shown.starts_with("{\n"));
        assert!(shown.ends_with('}'));
    }
}
