//! A namespace of collections (the paper's `dt` database).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use datatamer_model::{DtError, Result};

use crate::collection::{Collection, CollectionConfig};
use crate::stats::CollectionStats;

/// A store: named collections under one namespace.
pub struct Store {
    namespace: String,
    collections: RwLock<BTreeMap<String, Arc<Collection>>>,
}

impl Store {
    /// Create a store with the given namespace (the paper uses `dt`).
    pub fn new(namespace: impl Into<String>) -> Self {
        Store { namespace: namespace.into(), collections: RwLock::new(BTreeMap::new()) }
    }

    /// The namespace prefix used in stats output.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Create a collection; errors when the name is taken or unsafe.
    ///
    /// Names become on-disk directory names (the persist layout and the
    /// file backend both interpolate them into paths), so names containing
    /// path separators, `..`, or NUL are rejected here — before they can
    /// ever reach a filesystem call.
    pub fn create_collection(
        &self,
        name: impl Into<String>,
        config: CollectionConfig,
    ) -> Result<Arc<Collection>> {
        let name = name.into();
        let mut cols = self.collections.write();
        if cols.contains_key(&name) {
            return Err(DtError::AlreadyExists(format!("collection {name}")));
        }
        let col = Arc::new(Collection::new(name.clone(), config)?);
        cols.insert(name, col.clone());
        Ok(col)
    }

    /// Fetch a collection handle.
    pub fn collection(&self, name: &str) -> Option<Arc<Collection>> {
        self.collections.read().get(name).cloned()
    }

    /// Fetch the collection, creating it under this call's write lock when
    /// absent. A fast read-locked probe serves the common hit path; the
    /// miss path takes the write lock once and re-checks under it, so two
    /// racing creators cannot observe "absent then also absent" — one
    /// inserts, the other gets the inserted handle.
    ///
    /// Errors when the collection does not already exist and `config` is
    /// invalid (zero extent size / bad shard count), the name is
    /// path-hostile, or a file backend fails to open its directory.
    pub fn collection_or_create(
        &self,
        name: &str,
        config: CollectionConfig,
    ) -> Result<Arc<Collection>> {
        if let Some(c) = self.collection(name) {
            return Ok(c);
        }
        let mut cols = self.collections.write();
        if let Some(c) = cols.get(name) {
            return Ok(c.clone());
        }
        let col = Arc::new(Collection::new(name, config)?);
        cols.insert(name.to_owned(), col.clone());
        Ok(col)
    }

    /// Drop a collection. Returns whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.collections.write().remove(name).is_some()
    }

    /// Collection names in order.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Stats for one collection, namespaced like `dt.instance`.
    pub fn stats(&self, name: &str) -> Option<CollectionStats> {
        self.collection(name).map(|c| c.stats(&self.namespace))
    }

    /// Stats for every collection.
    pub fn all_stats(&self) -> Vec<CollectionStats> {
        let cols = self.collections.read();
        cols.values().map(|c| c.stats(&self.namespace)).collect()
    }

    /// Internal: insert a restored collection (persistence path).
    pub(crate) fn adopt(&self, name: String, col: Collection) {
        self.collections.write().insert(name, Arc::new(col));
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("namespace", &self.namespace)
            .field("collections", &self.collection_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::doc;

    #[test]
    fn create_get_drop() {
        let store = Store::new("dt");
        let c = store.create_collection("instance", CollectionConfig::default()).unwrap();
        c.insert(&doc! {"a" => 1i64}).unwrap();
        assert!(store.collection("instance").is_some());
        assert!(store.create_collection("instance", CollectionConfig::default()).is_err());
        assert_eq!(store.collection_names(), vec!["instance"]);
        assert!(store.drop_collection("instance"));
        assert!(!store.drop_collection("instance"));
        assert!(store.collection("instance").is_none());
    }

    #[test]
    fn stats_are_namespaced() {
        let store = Store::new("dt");
        let c = store.create_collection("entity", CollectionConfig::default()).unwrap();
        c.insert(&doc! {"type" => "Person"}).unwrap();
        let stats = store.stats("entity").unwrap();
        assert_eq!(stats.ns, "dt.entity");
        assert_eq!(stats.count, 1);
        assert!(store.stats("missing").is_none());
        assert_eq!(store.all_stats().len(), 1);
    }

    #[test]
    fn path_hostile_names_never_become_collections() {
        // These names would previously have been interpolated unchecked
        // into `<dir>/<collection>/` by the persist layer.
        let store = Store::new("dt");
        for bad in ["../escape", "nested/dir", "back\\slash", "..", "", "nul\0byte"] {
            assert!(
                store.create_collection(bad, CollectionConfig::default()).is_err(),
                "{bad:?} must be rejected"
            );
        }
        assert!(store.collection_names().is_empty(), "nothing was created");
        // Benign punctuation still works.
        assert!(store.create_collection("shows.2026-v1", CollectionConfig::default()).is_ok());
    }

    #[test]
    fn collection_or_create_is_idempotent() {
        let store = Store::new("dt");
        let a = store.collection_or_create("x", CollectionConfig::default()).unwrap();
        a.insert(&doc! {"v" => 1i64}).unwrap();
        let b = store.collection_or_create("x", CollectionConfig::default()).unwrap();
        assert_eq!(b.len(), 1);
        assert!(
            store
                .collection_or_create("bad/name", CollectionConfig::default())
                .is_err(),
            "path-hostile names error instead of panicking"
        );
    }
}
