//! Extent residency: a byte-budget LRU over decoded extents.
//!
//! [`crate::backend::FileBackend`] keeps only each shard's tail extent
//! resident; every other extent lives in its own file. Before this module,
//! *every* read of a flushed extent — each scan pass, each point read —
//! re-read and re-decoded the file, so a pipeline that scans a file-backed
//! collection once per stage paid full-collection IO per stage. The
//! [`ExtentCache`] makes repeated passes cheap: decoded extents are kept
//! resident (shared as `Arc<Extent>`) up to a byte budget, evicting the
//! least-recently-used whole extent when over it.
//!
//! One cache per shard backend. The budget is expressed per shard
//! ([`crate::collection::CollectionConfig::extent_cache_budget`] hands the
//! same value to every shard):
//!
//! * `Some(0)` — **disabled**: every access loads from disk and nothing is
//!   retained — byte-identical to the pre-cache load-per-scan behaviour.
//! * `Some(n)` — bounded: resident decoded extents never exceed `n` bytes
//!   (measured by [`crate::extent::Extent::heap_bytes`]); an extent larger
//!   than the whole budget is served but never admitted.
//! * `None` — unbounded: after one full scan the backend reads like
//!   [`crate::backend::MemoryBackend`].
//!
//! The tail extent never enters the cache — it is pinned resident inside
//! the backend's slot chain (the `Loaded` slot), so appends never contend
//! with eviction.
//!
//! # Deterministic accounting
//!
//! Hit/miss/eviction counters surface in
//! [`crate::coordinator::StorageReport`], which is threaded into pipeline
//! stage reports — so, like the score-memo budgets of the entity crate,
//! they must be **sequentially deterministic**: the same operation
//! sequence yields the same counters at any rayon pool width. Two
//! mechanisms guarantee that under extent-parallel scans:
//!
//! * **Plan-time resolution.** A scan resolves every extent's hit-or-miss
//!   under one lock, in extent order, *before* fanning out
//!   ([`ExtentCache::plan_scan`]); hits are pinned (`Arc` cloned) so
//!   mid-scan eviction cannot retroactively turn a planned hit into a
//!   load.
//! * **Pre-assigned stamps.** Recency stamps are drawn from a monotone
//!   clock; a scan reserves one stamp per extent up front (stamp =
//!   `epoch + extent index`), so the post-scan cache contents — the
//!   maximal-stamp set of admitted extents that fits the budget, with
//!   eviction always removing the minimum stamp — are independent of the
//!   order in which parallel admissions land.
//!
//! Sequential operations (point reads, tombstone write-backs, tail
//! loads/rolls) draw one stamp each from the same clock, so interleaved
//! scans and writes keep a single total recency order per shard.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::extent::Extent;

/// Default per-shard extent-cache budget: 64 MiB of decoded extents. Large
/// enough that test- and bench-scale corpora become fully resident after
/// one pass, small enough that a file-backed shard stays out-of-core at
/// paper scale (2 GB extents never fit and are served load-per-scan).
pub const DEFAULT_EXTENT_CACHE_BUDGET: usize = 64 * 1024 * 1024;

/// Counters and occupancy of one shard's [`ExtentCache`], as reported in
/// [`crate::coordinator::ShardStorage`]. All counts are cumulative since
/// the backend opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtentCacheStats {
    /// Configured byte budget (`None` = unbounded, `Some(0)` = disabled).
    pub budget: Option<usize>,
    /// Resident decoded-extent bytes right now.
    pub occupancy_bytes: usize,
    /// Resident decoded extents right now.
    pub cached_extents: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a disk load.
    pub misses: u64,
    /// Extents dropped to stay within budget.
    pub evictions: u64,
    /// Extent files actually read from disk (decoded loads plus raw
    /// snapshot reads). With a healthy cache this tracks `misses`; a
    /// budget of 0 makes it count every access.
    pub disk_loads: u64,
}

/// Per-extent outcome of a scan plan (see [`ExtentCache::plan_scan`]).
#[derive(Debug, Clone)]
pub(crate) enum ScanSlot {
    /// Resolved as a cache hit at plan time; the extent is pinned for the
    /// duration of the scan.
    Pinned(Arc<Extent>),
    /// Resolved as a miss at plan time; the visitor loads the file and
    /// admits it under the scan's pre-assigned stamp.
    Miss,
    /// Resident in the backend's slot chain (the loaded tail) — the cache
    /// is not involved.
    Resident,
}

/// A prepared extent-parallel scan over one shard: the deterministic
/// hit/miss resolution plus the reserved stamp range. Obtained from
/// [`crate::backend::ShardBackend::begin_extent_scan`] and handed back to
/// each `visit_extent` call.
#[derive(Debug)]
pub struct ExtentScan {
    pub(crate) epoch: u64,
    pub(crate) extents: usize,
    /// One entry per extent for cached backends; empty for backends whose
    /// extents are all resident (memory).
    pub(crate) plan: Vec<ScanSlot>,
}

impl ExtentScan {
    /// A plan over `extents` fully-resident extents (memory backends).
    pub(crate) fn resident(extents: usize) -> Self {
        ExtentScan { epoch: 0, extents, plan: Vec::new() }
    }

    /// Number of extents this scan covers.
    pub fn extent_count(&self) -> usize {
        self.extents
    }
}

#[derive(Debug)]
struct CacheEntry {
    extent: Arc<Extent>,
    bytes: usize,
    stamp: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Extent index → entry. Ordered map so every walk (eviction victim
    /// search, stats) iterates in a deterministic order.
    entries: BTreeMap<u32, CacheEntry>,
    occupancy: usize,
}

/// Byte-budget LRU over one shard's decoded extents. See the module docs
/// for budget semantics and the determinism contract.
#[derive(Debug)]
pub struct ExtentCache {
    budget: Option<usize>,
    inner: Mutex<CacheInner>,
    /// Monotone recency clock; scans reserve ranges, sequential ops draw
    /// one tick each.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ExtentCache {
    /// An empty cache with the given byte budget (`None` = unbounded,
    /// `Some(0)` = disabled).
    pub fn new(budget: Option<usize>) -> Self {
        ExtentCache {
            budget,
            inner: Mutex::new(CacheInner::default()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// True when the cache retains nothing (budget `Some(0)`).
    fn disabled(&self) -> bool {
        self.budget == Some(0)
    }

    /// Counter + occupancy snapshot (disk loads are tracked by the owning
    /// backend, which fills that field in).
    pub fn stats(&self) -> ExtentCacheStats {
        let inner = self.inner.lock();
        ExtentCacheStats {
            budget: self.budget,
            occupancy_bytes: inner.occupancy,
            cached_extents: inner.entries.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_loads: 0,
        }
    }

    /// Sequential lookup: a hit refreshes the entry's stamp and returns
    /// the shared extent; a miss is counted and the caller loads + admits.
    pub fn lookup(&self, index: u32) -> Option<Arc<Extent>> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        self.lookup_at(index, stamp)
    }

    /// Lookup under a pre-assigned stamp (scan plans reserve their stamp
    /// range up front — see the module docs).
    fn lookup_at(&self, index: u32, stamp: u64) -> Option<Arc<Extent>> {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(&index) {
            Some(entry) => {
                entry.stamp = stamp;
                let shared = entry.extent.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(shared)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Sequential admission of a freshly-loaded (or freshly-rolled)
    /// extent, evicting least-recently-stamped entries while over budget.
    pub fn admit(&self, index: u32, extent: Arc<Extent>) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        self.admit_at(index, extent, stamp);
    }

    /// Admission under a pre-assigned stamp. An extent larger than the
    /// whole budget is never admitted (it would evict everything and then
    /// itself); re-admitting an index replaces the old entry in place.
    fn admit_at(&self, index: u32, extent: Arc<Extent>, stamp: u64) {
        if self.disabled() {
            return;
        }
        let bytes = extent.heap_bytes();
        if self.budget.is_some_and(|b| bytes > b) {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.insert(index, CacheEntry { extent, bytes, stamp }) {
            inner.occupancy -= old.bytes;
        }
        inner.occupancy += bytes;
        let evicted = self.evict_over_budget(&mut inner);
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drop minimum-stamp entries until occupancy fits the budget; returns
    /// how many were evicted. Caller holds the lock.
    fn evict_over_budget(&self, inner: &mut CacheInner) -> u64 {
        let Some(budget) = self.budget else { return 0 };
        let mut evicted = 0u64;
        while inner.occupancy > budget {
            // Deterministic victim: the minimum stamp (oldest access),
            // found by an ordered walk. Cached-extent counts are small —
            // O(n) per eviction keeps the structure to one map.
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(extent_index, e)| (e.stamp, **extent_index))
                .map(|(i, _)| *i);
            let Some(index) = victim else { return evicted };
            if let Some(old) = inner.entries.remove(&index) {
                inner.occupancy -= old.bytes;
                evicted += 1;
            }
        }
        evicted
    }

    /// Replace the cached copy of `index` in place (tombstone write-backs
    /// mutate a flushed extent) — a no-op when the extent is not resident.
    /// Keeps the entry's stamp: a write-through is not a recency signal
    /// for scan reuse.
    pub fn update(&self, index: u32, extent: Arc<Extent>) {
        if self.disabled() {
            return;
        }
        let bytes = extent.heap_bytes();
        let mut inner = self.inner.lock();
        let Some(entry) = inner.entries.get_mut(&index) else { return };
        let (old_bytes, stamp) = (entry.bytes, entry.stamp);
        *entry = CacheEntry { extent, bytes, stamp };
        inner.occupancy = inner.occupancy - old_bytes + bytes;
        let evicted = self.evict_over_budget(&mut inner);
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Take an extent *out* of the cache (a flushed tail being re-loaded
    /// for appends becomes resident in the slot chain — double residency
    /// would double-count memory). Counts as a hit or miss like any other
    /// lookup; not counted as an eviction.
    pub fn take(&self, index: u32) -> Option<Arc<Extent>> {
        let mut inner = self.inner.lock();
        match inner.entries.remove(&index) {
            Some(entry) => {
                inner.occupancy -= entry.bytes;
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.extent)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Peek without touching counters or stamps (snapshot serving).
    pub fn peek(&self, index: u32) -> Option<Arc<Extent>> {
        self.inner.lock().entries.get(&index).map(|e| e.extent.clone())
    }

    /// Drop every entry (restore replaces the whole chain). Counters keep
    /// their cumulative values; dropped entries are not evictions.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.occupancy = 0;
    }

    /// Resolve a whole scan deterministically: reserve one stamp per
    /// extent, then — under one lock, in extent order — classify each
    /// extent as a pinned hit, a miss (the visitor will load + admit at
    /// `epoch + index`), or resident (`is_flushed(i)` false: the extent
    /// lives in the backend's slot chain, the cache is not involved).
    pub(crate) fn plan_scan(
        &self,
        extents: usize,
        is_flushed: impl Fn(usize) -> bool,
    ) -> ExtentScan {
        let epoch = self.clock.fetch_add(extents as u64, Ordering::Relaxed);
        let mut plan = Vec::with_capacity(extents);
        let (mut hits, mut misses) = (0u64, 0u64);
        {
            let mut inner = self.inner.lock();
            for index in 0..extents {
                if !is_flushed(index) {
                    plan.push(ScanSlot::Resident);
                    continue;
                }
                match inner.entries.get_mut(&(index as u32)) {
                    Some(entry) => {
                        entry.stamp = epoch + index as u64;
                        hits += 1;
                        plan.push(ScanSlot::Pinned(entry.extent.clone()));
                    }
                    None => {
                        misses += 1;
                        plan.push(ScanSlot::Miss);
                    }
                }
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        ExtentScan { epoch, extents, plan }
    }

    /// Admission from a scan visitor: the stamp was reserved at plan time.
    pub(crate) fn admit_scanned(&self, scan: &ExtentScan, index: u32, extent: Arc<Extent>) {
        self.admit_at(index, extent, scan.epoch + u64::from(index));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::append_document;
    use datatamer_model::doc;

    /// Extents of identical byte size regardless of `tag` (the tag rides
    /// in a fixed-width string), so byte-budget arithmetic in these tests
    /// stays exact.
    fn extent_of(n: usize, tag: i64) -> Arc<Extent> {
        let mut e = Extent::new(1 << 20);
        for i in 0..n as i64 {
            append_document(
                &mut e,
                &doc! {"i" => i, "tag" => format!("t{tag:03}"), "pad" => "x".repeat(16)},
            );
        }
        Arc::new(e)
    }

    #[test]
    fn hit_miss_and_occupancy_accounting() {
        let cache = ExtentCache::new(None);
        assert!(cache.lookup(0).is_none(), "empty cache misses");
        let e = extent_of(4, 0);
        cache.admit(0, e.clone());
        assert!(cache.lookup(0).is_some(), "admitted extent hits");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.cached_extents, 1);
        assert_eq!(s.occupancy_bytes, e.heap_bytes());
    }

    #[test]
    fn budget_zero_disables_retention() {
        let cache = ExtentCache::new(Some(0));
        cache.admit(0, extent_of(4, 0));
        assert!(cache.lookup(0).is_none(), "nothing is retained at budget 0");
        let s = cache.stats();
        assert_eq!(s.cached_extents, 0);
        assert_eq!(s.evictions, 0, "never admitted, so never evicted");
    }

    #[test]
    fn lru_evicts_oldest_stamp_first() {
        let one = extent_of(4, 0).heap_bytes();
        let cache = ExtentCache::new(Some(one * 2 + 1));
        cache.admit(0, extent_of(4, 0));
        cache.admit(1, extent_of(4, 1));
        // Refresh 0 so 1 becomes the LRU victim.
        assert!(cache.lookup(0).is_some());
        cache.admit(2, extent_of(4, 2));
        assert!(cache.lookup(0).is_some(), "refreshed entry survives");
        assert!(cache.lookup(1).is_none(), "oldest stamp evicted");
        assert!(cache.lookup(2).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversize_extent_is_never_admitted() {
        let cache = ExtentCache::new(Some(64));
        let big = extent_of(16, 0);
        assert!(big.heap_bytes() > 64);
        cache.admit(0, big);
        let s = cache.stats();
        assert_eq!(s.cached_extents, 0);
        assert_eq!(s.evictions, 0, "an oversize admit must not flush the cache");
    }

    #[test]
    fn scan_plan_end_state_is_order_invariant() {
        // Admitting a scan's misses in any order converges to the same
        // cache contents: the maximal-stamp set that fits the budget.
        let one = extent_of(4, 0).heap_bytes();
        let extents: Vec<Arc<Extent>> = (0..4).map(|i| extent_of(4, i)).collect();
        let orders: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![2, 0, 3, 1]];
        let mut outcomes = Vec::new();
        for order in orders {
            let cache = ExtentCache::new(Some(one * 2 + 1));
            let scan = cache.plan_scan(4, |_| true);
            for &i in &order {
                cache.admit_scanned(&scan, i, extents[i as usize].clone());
            }
            let survivors: Vec<u32> =
                (0..4).filter(|&i| cache.peek(i).is_some()).collect();
            outcomes.push((survivors, cache.stats().evictions));
        }
        assert_eq!(outcomes[0], outcomes[1], "admission order must not matter");
        assert_eq!(outcomes[0], outcomes[2], "admission order must not matter");
        assert_eq!(outcomes[0].0, vec![2, 3], "highest-stamped extents survive");
    }

    #[test]
    fn take_removes_and_update_replaces_in_place() {
        let cache = ExtentCache::new(None);
        cache.admit(3, extent_of(2, 3));
        let taken = cache.take(3);
        assert!(taken.is_some());
        assert_eq!(cache.stats().cached_extents, 0);
        assert!(cache.take(3).is_none(), "second take misses");
        // update on a non-resident index is a no-op.
        cache.update(3, extent_of(2, 4));
        assert_eq!(cache.stats().cached_extents, 0);
        cache.admit(3, extent_of(2, 3));
        cache.update(3, extent_of(8, 5));
        let s = cache.stats();
        assert_eq!(s.cached_extents, 1);
        assert_eq!(s.occupancy_bytes, extent_of(8, 5).heap_bytes());
    }
}
