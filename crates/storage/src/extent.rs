//! Fixed-size append-only extents.
//!
//! A collection's data lives in a chain of extents. Each extent is a
//! contiguous byte arena of fixed capacity holding encoded documents plus a
//! slot table. When an insert does not fit, a new extent is allocated — this
//! is precisely the `numExtents` / `lastExtentSize` bookkeeping the paper's
//! Tables I–II report (242 and 56 extents of 2 GB at paper scale).

use datatamer_model::{Document, Result};

use crate::encode::{decode_document, encode_document};

/// One fixed-capacity extent.
#[derive(Debug, Clone)]
pub struct Extent {
    /// Encoded document bytes, appended back to back.
    data: Vec<u8>,
    /// Byte offset of each slot's document in `data`.
    offsets: Vec<u32>,
    /// Tombstones; `true` means the slot was deleted.
    dead: Vec<bool>,
    /// Capacity in bytes.
    capacity: usize,
    live: usize,
}

impl Extent {
    /// Allocate an extent with the given byte capacity.
    pub fn new(capacity: usize) -> Self {
        Extent {
            data: Vec::new(),
            offsets: Vec::new(),
            dead: Vec::new(),
            capacity,
            live: 0,
        }
    }

    /// Try to append an encoded document; returns the slot number, or `None`
    /// when it does not fit. Documents larger than the whole extent capacity
    /// are accepted into an otherwise-empty extent (oversize documents must
    /// not be unstorable — mirrors document stores' jumbo handling).
    pub fn append(&mut self, encoded: &[u8]) -> Option<u32> {
        let fits = self.data.len() + encoded.len() <= self.capacity;
        let jumbo_ok = self.offsets.is_empty();
        if !fits && !jumbo_ok {
            return None;
        }
        let slot = self.offsets.len() as u32;
        self.offsets.push(self.data.len() as u32);
        self.dead.push(false);
        self.data.extend_from_slice(encoded);
        self.live += 1;
        Some(slot)
    }

    /// Number of slots (live + dead).
    pub fn slot_count(&self) -> usize {
        self.offsets.len()
    }

    /// Number of live documents.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Bytes used by encoded documents.
    pub fn used_bytes(&self) -> usize {
        self.data.len()
    }

    /// The extent's fixed capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Approximate resident heap footprint of this decoded extent: data
    /// bytes plus the slot tables. This is what the extent-cache byte
    /// budget meters ([`crate::cache::ExtentCache`]).
    pub fn heap_bytes(&self) -> usize {
        self.data.len()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.dead.len()
    }

    /// Raw encoded bytes of a slot, or `None` when out of range or dead.
    pub fn slot_bytes(&self, slot: u32) -> Option<&[u8]> {
        let i = slot as usize;
        if i >= self.offsets.len() || self.dead[i] {
            return None;
        }
        let start = self.offsets[i] as usize;
        let end = if i + 1 < self.offsets.len() {
            self.offsets[i + 1] as usize
        } else {
            self.data.len()
        };
        Some(&self.data[start..end])
    }

    /// Decode the document in a slot.
    pub fn get(&self, slot: u32) -> Option<Result<Document>> {
        self.slot_bytes(slot).map(decode_document)
    }

    /// Mark a slot deleted. Returns whether it was live.
    pub fn delete(&mut self, slot: u32) -> bool {
        let i = slot as usize;
        if i < self.dead.len() && !self.dead[i] {
            self.dead[i] = true;
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Iterate `(slot, encoded bytes)` of live documents.
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &[u8])> {
        (0..self.offsets.len() as u32).filter_map(move |s| self.slot_bytes(s).map(|b| (s, b)))
    }

    /// Serialise the extent for persistence (capacity, slot table, data).
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::encode::put_varint;
        let mut out = Vec::with_capacity(self.data.len() + self.offsets.len() * 5 + 32);
        put_varint(&mut out, self.capacity as u64);
        put_varint(&mut out, self.offsets.len() as u64);
        for (i, off) in self.offsets.iter().enumerate() {
            put_varint(&mut out, u64::from(*off));
            out.push(u8::from(self.dead[i]));
        }
        put_varint(&mut out, self.data.len() as u64);
        out.extend_from_slice(&self.data);
        out
    }

    /// Restore an extent serialised by [`Extent::to_bytes`].
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self> {
        use crate::encode::get_varint;
        use bytes::Buf;
        use datatamer_model::DtError;
        let capacity = get_varint(&mut bytes)? as usize;
        let n = get_varint(&mut bytes)? as usize;
        if n > bytes.len() {
            return Err(DtError::Decode("extent: slot table exceeds input".into()));
        }
        let mut offsets = Vec::with_capacity(n);
        let mut dead = Vec::with_capacity(n);
        for _ in 0..n {
            offsets.push(get_varint(&mut bytes)? as u32);
            if !bytes.has_remaining() {
                return Err(DtError::Decode("extent: truncated slot table".into()));
            }
            dead.push(bytes.get_u8() != 0);
        }
        let dlen = get_varint(&mut bytes)? as usize;
        if bytes.len() < dlen {
            return Err(DtError::Decode("extent: truncated data".into()));
        }
        let data = bytes[..dlen].to_vec();
        let live = dead.iter().filter(|d| !**d).count();
        Ok(Extent { data, offsets, dead, capacity, live })
    }
}

/// Helper: encode and append a document.
pub fn append_document(extent: &mut Extent, doc: &Document) -> Option<u32> {
    extent.append(&encode_document(doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::doc;

    #[test]
    fn append_get_roundtrip() {
        let mut e = Extent::new(1024);
        let d1 = doc! {"a" => 1i64};
        let d2 = doc! {"b" => "two"};
        let s1 = append_document(&mut e, &d1).unwrap();
        let s2 = append_document(&mut e, &d2).unwrap();
        assert_eq!(e.get(s1).unwrap().unwrap(), d1);
        assert_eq!(e.get(s2).unwrap().unwrap(), d2);
        assert_eq!(e.slot_count(), 2);
        assert_eq!(e.live_count(), 2);
    }

    #[test]
    fn capacity_overflow_rejects() {
        let d = doc! {"k" => "0123456789"};
        let sz = encode_document(&d).len();
        let mut e = Extent::new(sz * 2);
        assert!(append_document(&mut e, &d).is_some());
        assert!(append_document(&mut e, &d).is_some());
        assert!(append_document(&mut e, &d).is_none(), "third must overflow");
        assert_eq!(e.used_bytes(), sz * 2);
    }

    #[test]
    fn jumbo_document_fits_empty_extent_only() {
        let big = doc! {"blob" => "x".repeat(100)};
        let mut e = Extent::new(16);
        assert!(append_document(&mut e, &big).is_some(), "jumbo allowed when empty");
        assert!(append_document(&mut e, &doc! {"a" => 1i64}).is_none());
    }

    #[test]
    fn delete_tombstones() {
        let mut e = Extent::new(1024);
        let s = append_document(&mut e, &doc! {"a" => 1i64}).unwrap();
        assert!(e.delete(s));
        assert!(!e.delete(s), "double delete is a no-op");
        assert!(e.get(s).is_none());
        assert_eq!(e.live_count(), 0);
        assert_eq!(e.slot_count(), 1);
        assert!(!e.delete(99), "unknown slot");
    }

    #[test]
    fn iter_live_skips_dead() {
        let mut e = Extent::new(4096);
        let docs: Vec<_> = (0..5i64).map(|i| doc! {"i" => i}).collect();
        let slots: Vec<u32> = docs.iter().map(|d| append_document(&mut e, d).unwrap()).collect();
        e.delete(slots[1]);
        e.delete(slots[3]);
        let live: Vec<u32> = e.iter_live().map(|(s, _)| s).collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    fn persistence_roundtrip() {
        let mut e = Extent::new(512);
        for i in 0..4i64 {
            append_document(&mut e, &doc! {"i" => i, "s" => format!("row{i}")}).unwrap();
        }
        e.delete(2);
        let bytes = e.to_bytes();
        let restored = Extent::from_bytes(&bytes).unwrap();
        assert_eq!(restored.capacity(), 512);
        assert_eq!(restored.slot_count(), 4);
        assert_eq!(restored.live_count(), 3);
        assert!(restored.get(2).is_none());
        assert_eq!(
            restored.get(3).unwrap().unwrap(),
            doc! {"i" => 3i64, "s" => "row3"}
        );
    }

    #[test]
    fn corrupt_persistence_errors() {
        let mut e = Extent::new(64);
        append_document(&mut e, &doc! {"a" => 1i64}).unwrap();
        let bytes = e.to_bytes();
        assert!(Extent::from_bytes(&bytes[..bytes.len() - 2]).is_err());
        assert!(Extent::from_bytes(&[]).is_err());
    }
}
