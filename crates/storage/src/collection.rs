//! Sharded collections of documents.
//!
//! A collection is a [`crate::coordinator::ShardCoordinator`] — routing
//! plus one [`crate::backend::ShardBackend`] per shard — wrapped with
//! secondary indexes and stats. Each shard owns a chain of fixed-size
//! extents, in process ([`BackendConfig::Memory`]) or out of core on files
//! ([`BackendConfig::File`]), so concurrent ingest scales with shard count
//! — the in-process analogue of the paper's distributed 2 GB-extent
//! collections. Document ids pack `(shard, extent, slot)` so point reads
//! touch exactly one shard with no id→location map. Routing is declarative
//! ([`RoutingPolicy`]): round robin, key hashing (co-locate equal keys for
//! blocking locality), or byte-range partitioning.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use datatamer_model::{Document, DtError, Result, Value};

use crate::backend::{BackendConfig, FileBackend, MemoryBackend, ShardBackend};
use crate::coordinator::{ShardCoordinator, StorageReport};
use crate::index::{Index, IndexSpec};
use crate::routing::RoutingPolicy;
use crate::stats::CollectionStats;

/// Packed document id: `shard (8) | extent (24) | slot (32)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

impl DocId {
    /// Pack from components.
    pub fn pack(shard: u8, extent: u32, slot: u32) -> Self {
        debug_assert!(extent < (1 << 24), "extent index exceeds 24 bits");
        DocId((u64::from(shard) << 56) | (u64::from(extent) << 32) | u64::from(slot))
    }

    /// Shard component.
    pub fn shard(self) -> u8 {
        (self.0 >> 56) as u8
    }

    /// Extent-within-shard component.
    pub fn extent(self) -> u32 {
        ((self.0 >> 32) & 0x00ff_ffff) as u32
    }

    /// Slot-within-extent component.
    pub fn slot(self) -> u32 {
        self.0 as u32
    }
}

/// Collection configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionConfig {
    /// Extent capacity in bytes (the paper's extents are 2 GB; scale-down
    /// experiments shrink this so `numExtents` stays in the paper's range).
    pub extent_size: usize,
    /// Number of shards (1–256).
    pub shards: usize,
    /// Where each shard's extent chain lives (in-process memory by
    /// default, or one file per flushed extent for out-of-core
    /// collections).
    pub backend: BackendConfig,
    /// How documents route to shards (round robin by default).
    pub routing: RoutingPolicy,
    /// Per-shard extent-cache byte budget for file-backed shards (`None` =
    /// unbounded, `Some(0)` = disabled — load-per-read, byte-identical to
    /// the uncached behaviour). Ignored by memory backends, whose extents
    /// are all resident anyway.
    pub extent_cache_budget: Option<usize>,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        CollectionConfig {
            extent_size: 2 * 1024 * 1024,
            shards: 8,
            backend: BackendConfig::Memory,
            routing: RoutingPolicy::RoundRobin,
            extent_cache_budget: Some(crate::cache::DEFAULT_EXTENT_CACHE_BUDGET),
        }
    }
}

/// Reject collection names that would be unsafe as on-disk directory names
/// (the persist layout and the file backend both interpolate the name into
/// a path) or that are plain nonsense as identifiers.
pub(crate) fn validate_collection_name(name: &str) -> Result<()> {
    if name.is_empty() {
        return Err(DtError::Config("collection name must not be empty".into()));
    }
    if name.contains(['/', '\\', '\0']) || name.contains("..") || name == "." {
        return Err(DtError::Config(format!(
            "collection name {name:?} must not contain path separators, \
             '..', or NUL — it becomes an on-disk directory name"
        )));
    }
    Ok(())
}

/// A sharded document collection with secondary indexes.
pub struct Collection {
    name: String,
    config: CollectionConfig,
    coordinator: ShardCoordinator,
    indexes: RwLock<Vec<Index>>,
    count: AtomicU64,
}

impl Collection {
    /// Create an empty collection (or, for a file backend, adopt whatever
    /// extent chains already exist under its directory).
    pub fn new(name: impl Into<String>, config: CollectionConfig) -> Result<Self> {
        let name = name.into();
        validate_collection_name(&name)?;
        if config.shards == 0 || config.shards > 256 {
            return Err(DtError::Config(format!(
                "shard count {} out of range 1..=256",
                config.shards
            )));
        }
        if config.extent_size == 0 {
            return Err(DtError::Config("extent_size must be positive".into()));
        }
        let mut backends: Vec<Box<dyn ShardBackend>> = Vec::with_capacity(config.shards);
        for shard_no in 0..config.shards {
            backends.push(match &config.backend {
                BackendConfig::Memory => Box::new(MemoryBackend::new(config.extent_size)),
                BackendConfig::File { dir } => {
                    let shard_dir = dir.join(&name).join(format!("shard{shard_no:03}"));
                    Box::new(FileBackend::open_with_cache(
                        shard_dir,
                        config.extent_size,
                        config.extent_cache_budget,
                    )?)
                }
            });
        }
        let coordinator = ShardCoordinator::new(backends, config.routing.clone());
        // A reopened file backend may already hold documents.
        let count = AtomicU64::new(coordinator.len());
        Ok(Collection {
            name,
            config,
            coordinator,
            indexes: RwLock::new(Vec::new()),
            count,
        })
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configuration this collection was created with.
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Number of live documents.
    pub fn len(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when no live documents exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a document, returning its id. Backend I/O failure
    /// (file-backed shards only — the in-memory default never fails) is
    /// the error; nothing was stored and no index was touched.
    pub fn insert(&self, doc: &Document) -> Result<DocId> {
        let id = self.coordinator.insert(doc)?;
        {
            let mut indexes = self.indexes.write();
            for idx in indexes.iter_mut() {
                idx.insert(id, doc);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Insert a batch, returning ids in input order.
    ///
    /// The batch path is what makes ingest scale: the coordinator encodes
    /// documents in parallel across the rayon team, routes the batch in
    /// input order (round robin reserves its window with one atomic bump),
    /// and appends each shard's documents under a single lock acquisition
    /// (shards proceed in parallel) instead of one lock round-trip per
    /// document. Shard routing is identical to repeated [`Self::insert`]
    /// calls under every [`RoutingPolicy`]. Backend I/O failure surfaces
    /// as the error (shards that already appended keep their documents —
    /// the count and indexes then exclude them, matching what a reopen
    /// would adopt only after a `sync`).
    pub fn insert_many<'a, I: IntoIterator<Item = &'a Document>>(
        &self,
        docs: I,
    ) -> Result<Vec<DocId>> {
        let docs: Vec<&Document> = docs.into_iter().collect();
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let ids = self.coordinator.insert_many(&docs)?;
        {
            let mut indexes = self.indexes.write();
            for idx in indexes.iter_mut() {
                for (doc, id) in docs.iter().zip(&ids) {
                    idx.insert(*id, doc);
                }
            }
        }
        self.count.fetch_add(docs.len() as u64, Ordering::Relaxed);
        Ok(ids)
    }

    /// Fetch a document by id.
    pub fn get(&self, id: DocId) -> Option<Document> {
        self.coordinator.get(id)
    }

    /// Fetch a document by id, surfacing unreadable extents as errors
    /// instead of folding them into `None`. Query execution uses this so
    /// an index probe cannot silently drop documents on a torn extent.
    pub fn try_get(&self, id: DocId) -> Result<Option<Document>> {
        self.coordinator.try_get(id)
    }

    /// Delete a document by id. Returns whether it was live; a failed
    /// tombstone write-back on a file shard is the error.
    pub fn delete(&self, id: DocId) -> Result<bool> {
        let Some(doc) = self.coordinator.delete(id)? else {
            return Ok(false);
        };
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            idx.remove(id, &doc);
        }
        drop(indexes);
        self.count.fetch_sub(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Create a secondary index, back-filling existing documents.
    pub fn create_index(&self, spec: IndexSpec) -> Result<()> {
        {
            let indexes = self.indexes.read();
            if indexes.iter().any(|i| i.spec.name == spec.name) {
                return Err(DtError::AlreadyExists(format!("index {}", spec.name)));
            }
        }
        let mut idx = Index::new(spec);
        self.for_each(|id, doc| idx.insert(id, doc))?;
        self.indexes.write().push(idx);
        Ok(())
    }

    /// Number of indexes.
    pub fn index_count(&self) -> usize {
        self.indexes.read().len()
    }

    /// Run `f` against an index by name.
    pub fn with_index<T>(&self, name: &str, f: impl FnOnce(&Index) -> T) -> Option<T> {
        let indexes = self.indexes.read();
        indexes.iter().find(|i| i.spec.name == name).map(f)
    }

    /// Find an index covering `path`, applying `f` to it.
    pub fn with_index_on_path<T>(&self, path: &str, f: impl FnOnce(&Index) -> T) -> Option<T> {
        let indexes = self.indexes.read();
        indexes.iter().find(|i| i.spec.path == path).map(f)
    }

    /// Sequentially visit every live document. An unreadable extent stops
    /// the walk with its error.
    pub fn for_each(&self, f: impl FnMut(DocId, &Document)) -> Result<()> {
        self.coordinator.for_each(f)
    }

    /// Scan all shards in parallel via rayon, collecting `f`'s non-`None`
    /// outputs. Output order is deterministic regardless of thread count
    /// and backend: shard-major, then extent, then slot. Any shard's read
    /// failure fails the scan.
    pub fn parallel_scan<T, F>(&self, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(DocId, &Document) -> Option<T> + Sync,
    {
        self.coordinator.parallel_scan(f)
    }

    /// Flush file-backed shards' resident tails to their extent files so a
    /// reopen (a fresh [`Collection::new`] over the same directory) sees
    /// the full chain. A no-op for memory backends.
    pub fn sync(&self) -> Result<()> {
        self.coordinator.sync()
    }

    /// Per-shard distribution report: backend kind, doc/extent counts,
    /// routing policy, and flush traffic.
    pub fn storage_report(&self) -> StorageReport {
        self.coordinator.report(&self.name)
    }

    /// Group-by over a path: `(value, count)` in value order. Uses an index
    /// on the path when one exists, otherwise a parallel scan.
    pub fn count_by(&self, path: &str) -> Result<Vec<(Value, u64)>> {
        if let Some(counts) = self.with_index_on_path(path, |idx| {
            idx.key_counts().into_iter().map(|(k, n)| (k, n as u64)).collect::<Vec<_>>()
        }) {
            return Ok(counts);
        }
        let values = self.parallel_scan(|_, doc| doc.get_path(path).cloned())?;
        let mut counts: std::collections::BTreeMap<crate::index::IndexKey, u64> =
            std::collections::BTreeMap::new();
        for v in values {
            *counts.entry(crate::index::IndexKey(v)).or_insert(0) += 1;
        }
        Ok(counts.into_iter().map(|(k, n)| (k.0, n)).collect())
    }

    /// Statistics in the shape of the paper's Tables I–II.
    pub fn stats(&self, namespace: &str) -> CollectionStats {
        let num_extents = self.coordinator.extent_count();
        let data_bytes = self.coordinator.used_bytes();
        // The "last" extent convention: the byte size of the final extent
        // of the last shard that has one.
        let last_extent_size = self.coordinator.last_extent_capacity();
        let indexes = self.indexes.read();
        let total_index_size = indexes.iter().map(|i| i.size_bytes()).sum();
        let count = self.len();
        CollectionStats {
            ns: format!("{namespace}.{}", self.name),
            count,
            num_extents,
            nindexes: indexes.len(),
            last_extent_size,
            total_index_size,
            data_size: data_bytes,
            avg_obj_size: if count == 0 { 0.0 } else { data_bytes as f64 / count as f64 },
        }
    }

    /// Access for persistence: snapshot extents per shard.
    pub(crate) fn snapshot_extents(&self) -> Result<Vec<Vec<Vec<u8>>>> {
        self.coordinator.snapshot_extents()
    }

    /// Restore a collection from persisted extents and index specs.
    pub(crate) fn restore(
        name: String,
        config: CollectionConfig,
        shard_extents: Vec<Vec<Vec<u8>>>,
        index_specs: Vec<IndexSpec>,
    ) -> Result<Self> {
        if shard_extents.len() != config.shards {
            return Err(DtError::Decode(format!(
                "expected {} shards, found {}",
                config.shards,
                shard_extents.len()
            )));
        }
        let col = Collection::new(name, config)?;
        let total = col.coordinator.restore_extents(shard_extents)?;
        col.count.store(total, Ordering::Relaxed);
        for spec in index_specs {
            col.create_index(spec)?;
        }
        Ok(col)
    }

    /// Index specs currently defined, in creation order.
    pub fn index_specs(&self) -> Vec<IndexSpec> {
        self.indexes.read().iter().map(|i| i.spec.clone()).collect()
    }
}

impl std::fmt::Debug for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collection")
            .field("name", &self.name)
            .field("count", &self.len())
            .field("shards", &self.coordinator.shard_count())
            .field("backend", &self.config.backend.kind())
            .field("routing", &self.coordinator.routing().name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::doc;
    use rayon::prelude::*;

    fn small() -> Collection {
        Collection::new(
            "test",
            CollectionConfig { extent_size: 256, shards: 4, ..Default::default() },
        )
        .unwrap()
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dt_collection_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn docid_packing_roundtrips() {
        let id = DocId::pack(255, (1 << 24) - 1, u32::MAX);
        assert_eq!(id.shard(), 255);
        assert_eq!(id.extent(), (1 << 24) - 1);
        assert_eq!(id.slot(), u32::MAX);
        let id = DocId::pack(3, 17, 42);
        assert_eq!((id.shard(), id.extent(), id.slot()), (3, 17, 42));
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = small();
        let d = doc! {"show" => "Matilda", "price" => 27i64};
        let id = c.insert(&d).unwrap();
        assert_eq!(c.get(id), Some(d));
        assert_eq!(c.len(), 1);
        assert!(c.get(DocId::pack(0, 9, 9)).is_none());
    }

    #[test]
    fn inserts_spread_over_shards_and_extents() {
        let c = small();
        for i in 0..100i64 {
            c.insert(&doc! {"i" => i, "pad" => "x".repeat(40)}).unwrap();
        }
        assert_eq!(c.len(), 100);
        let stats = c.stats("dt");
        assert!(stats.num_extents > 4, "tiny extents must chain: {}", stats.num_extents);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.last_extent_size, 256);
    }

    #[test]
    fn delete_removes_and_updates_count() {
        let c = small();
        let id = c.insert(&doc! {"a" => 1i64}).unwrap();
        assert!(c.delete(id).unwrap());
        assert!(!c.delete(id).unwrap());
        assert_eq!(c.len(), 0);
        assert!(c.get(id).is_none());
    }

    #[test]
    fn index_backfills_and_maintains() {
        let c = small();
        let d1 = doc! {"type" => "Person"};
        let d2 = doc! {"type" => "City"};
        let id1 = c.insert(&d1).unwrap();
        c.create_index(IndexSpec::new("by_type", "type")).unwrap();
        let id2 = c.insert(&d2).unwrap();
        let persons = c.with_index("by_type", |i| i.lookup(&Value::from("Person"))).unwrap();
        assert_eq!(persons, vec![id1]);
        let cities = c.with_index("by_type", |i| i.lookup(&Value::from("City"))).unwrap();
        assert_eq!(cities, vec![id2]);
        c.delete(id1).unwrap();
        let persons = c.with_index("by_type", |i| i.lookup(&Value::from("Person"))).unwrap();
        assert!(persons.is_empty());
        assert!(c.create_index(IndexSpec::new("by_type", "type")).is_err());
    }

    #[test]
    fn parallel_scan_sees_all_live_docs() {
        let c = small();
        let ids: Vec<DocId> =
            (0..50i64).map(|i| c.insert(&doc! {"i" => i}).unwrap()).collect();
        c.delete(ids[10]).unwrap();
        let seen = c.parallel_scan(|_, d| d.get("i").and_then(|v| v.as_int())).unwrap();
        assert_eq!(seen.len(), 49);
        assert!(!seen.contains(&10));
    }

    #[test]
    fn count_by_with_and_without_index() {
        let c = small();
        for ty in ["Person", "Person", "Movie"] {
            c.insert(&doc! {"type" => ty}).unwrap();
        }
        let scan_counts = c.count_by("type").unwrap();
        c.create_index(IndexSpec::new("by_type", "type")).unwrap();
        let index_counts = c.count_by("type").unwrap();
        assert_eq!(scan_counts, index_counts);
        assert_eq!(
            scan_counts,
            vec![(Value::from("Movie"), 1), (Value::from("Person"), 2)]
        );
    }

    #[test]
    fn stats_reflect_index_sizes() {
        let c = small();
        for i in 0..20i64 {
            c.insert(&doc! {"n" => i}).unwrap();
        }
        let before = c.stats("dt").total_index_size;
        assert_eq!(before, 0);
        c.create_index(IndexSpec::new("by_n", "n")).unwrap();
        let after = c.stats("dt");
        assert!(after.total_index_size > 0);
        assert_eq!(after.nindexes, 1);
        assert_eq!(after.ns, "dt.test");
        assert!(after.avg_obj_size > 0.0);
    }

    #[test]
    fn concurrent_inserts_are_consistent() {
        let c = Collection::new(
            "conc",
            CollectionConfig { extent_size: 4096, shards: 8, ..Default::default() },
        )
        .unwrap();
        (0..8usize).into_par_iter().for_each(|t| {
            for i in 0..100i64 {
                c.insert(&doc! {"t" => t as i64, "i" => i}).unwrap();
            }
        });
        assert_eq!(c.len(), 800);
        assert_eq!(c.parallel_scan(|_, _| Some(())).unwrap().len(), 800);
    }

    #[test]
    fn insert_many_matches_repeated_insert() {
        let a = small();
        let b = small();
        let docs: Vec<_> = (0..37i64).map(|i| doc! {"i" => i, "pad" => "y".repeat(9)}).collect();
        let one_by_one: Vec<DocId> = docs.iter().map(|d| a.insert(d).unwrap()).collect();
        let batched = b.insert_many(&docs).unwrap();
        assert_eq!(one_by_one, batched, "batch routing must match repeated inserts");
        assert_eq!(b.len(), 37);
        for (id, d) in batched.iter().zip(&docs) {
            assert_eq!(b.get(*id).as_ref(), Some(d));
        }
    }

    #[test]
    fn insert_many_maintains_indexes() {
        let c = small();
        c.create_index(IndexSpec::new("by_type", "type")).unwrap();
        let docs = vec![doc! {"type" => "Person"}, doc! {"type" => "City"}, doc! {"type" => "Person"}];
        let ids = c.insert_many(&docs).unwrap();
        let persons = c.with_index("by_type", |i| i.lookup(&Value::from("Person"))).unwrap();
        assert_eq!(persons, vec![ids[0], ids[2]]);
        assert!(c.insert_many(std::iter::empty()).unwrap().is_empty());
    }

    #[test]
    fn bad_configs_rejected() {
        let cfg = |extent_size, shards| CollectionConfig {
            extent_size,
            shards,
            ..Default::default()
        };
        assert!(Collection::new("x", cfg(0, 1)).is_err());
        assert!(Collection::new("x", cfg(10, 0)).is_err());
        assert!(Collection::new("x", cfg(10, 257)).is_err());
    }

    #[test]
    fn path_hostile_names_rejected() {
        for bad in ["", "a/b", "a\\b", "..", "a..b", ".", "evil/../../etc"] {
            assert!(
                Collection::new(bad, CollectionConfig::default()).is_err(),
                "name {bad:?} must be rejected"
            );
        }
        for good in ["instance", "global_records", "My.Coll-2", "x"] {
            assert!(Collection::new(good, CollectionConfig::default()).is_ok(), "{good:?}");
        }
    }

    #[test]
    fn file_backend_collection_roundtrips_and_reopens() {
        let dir = tempdir("file_roundtrip");
        let config = CollectionConfig {
            extent_size: 256,
            shards: 3,
            backend: BackendConfig::File { dir: dir.clone() },
            ..Default::default()
        };
        let docs: Vec<Document> =
            (0..40i64).map(|i| doc! {"i" => i, "pad" => "z".repeat(20)}).collect();
        let ids = {
            let col = Collection::new("shows", config.clone()).unwrap();
            let ids = col.insert_many(&docs).unwrap();
            assert_eq!(col.len(), 40);
            assert_eq!(col.get(ids[7]).as_ref(), Some(&docs[7]));
            col.sync().unwrap();
            ids
        };
        // Reopen over the same directory: same chain, same documents.
        let reopened = Collection::new("shows", config).unwrap();
        assert_eq!(reopened.len(), 40);
        for (id, d) in ids.iter().zip(&docs) {
            assert_eq!(reopened.get(*id).as_ref(), Some(d));
        }
        let report = reopened.storage_report();
        assert_eq!(report.shards.len(), 3);
        assert!(report.shards.iter().all(|s| s.backend == crate::backend::BackendKind::File));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_and_file_collections_scan_identically() {
        let dir = tempdir("mem_vs_file");
        let docs: Vec<Document> =
            (0..60i64).map(|i| doc! {"i" => i, "k" => format!("key{}", i % 7)}).collect();
        for routing in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::HashKey { attr: "k".into() },
            RoutingPolicy::Range { attr: "k".into() },
        ] {
            let mem = Collection::new(
                "c",
                CollectionConfig {
                    extent_size: 512,
                    shards: 4,
                    routing: routing.clone(),
                    ..Default::default()
                },
            )
            .unwrap();
            let file = Collection::new(
                "c",
                CollectionConfig {
                    extent_size: 512,
                    shards: 4,
                    backend: BackendConfig::File {
                        dir: dir.join(routing.name()),
                    },
                    routing: routing.clone(),
                    ..Default::default()
                },
            )
            .unwrap();
            let mem_ids = mem.insert_many(&docs).unwrap();
            let file_ids = file.insert_many(&docs).unwrap();
            assert_eq!(mem_ids, file_ids, "{routing:?}: placement must match");
            let mem_scan = mem.parallel_scan(|id, d| Some((id, format!("{d:?}")))).unwrap();
            let file_scan = file.parallel_scan(|id, d| Some((id, format!("{d:?}")))).unwrap();
            assert_eq!(mem_scan, file_scan, "{routing:?}: scans must be byte-identical");
            assert_eq!(mem.stats("dt").count, file.stats("dt").count);
            assert_eq!(mem.stats("dt").num_extents, file.stats("dt").num_extents);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hash_routing_co_locates_equal_keys_in_collection() {
        let c = Collection::new(
            "keyed",
            CollectionConfig {
                extent_size: 1024,
                shards: 8,
                routing: RoutingPolicy::HashKey { attr: "show".into() },
                ..Default::default()
            },
        )
        .unwrap();
        let docs: Vec<Document> =
            (0..32i64).map(|i| doc! {"show" => format!("s{}", i % 4), "i" => i}).collect();
        let ids = c.insert_many(&docs).unwrap();
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                if i % 4 == j % 4 {
                    assert_eq!(a.shard(), b.shard(), "equal keys co-locate");
                }
            }
        }
        let report = c.storage_report();
        assert_eq!(report.routing, "hash_key");
        assert_eq!(report.docs(), 32);
        assert!(
            report.shards.iter().filter(|s| s.docs > 0).count() <= 4,
            "at most one shard per distinct key: {report:?}"
        );
    }
}
