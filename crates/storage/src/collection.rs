//! Sharded collections of documents.
//!
//! Inserts route round-robin to shards; each shard owns a chain of
//! fixed-size extents behind its own lock, so concurrent ingest scales with
//! shard count — the in-process analogue of the paper's distributed
//! 2 GB-extent collections. Document ids pack `(shard, extent, slot)` so
//! point reads touch exactly one shard with no id→location map.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use rayon::prelude::*;

use datatamer_model::{Document, DtError, Result, Value};

use crate::encode::encode_document;
use crate::extent::Extent;
use crate::index::{Index, IndexSpec};
use crate::stats::CollectionStats;

/// Packed document id: `shard (8) | extent (24) | slot (32)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

impl DocId {
    /// Pack from components.
    pub fn pack(shard: u8, extent: u32, slot: u32) -> Self {
        debug_assert!(extent < (1 << 24), "extent index exceeds 24 bits");
        DocId((u64::from(shard) << 56) | (u64::from(extent) << 32) | u64::from(slot))
    }

    /// Shard component.
    pub fn shard(self) -> u8 {
        (self.0 >> 56) as u8
    }

    /// Extent-within-shard component.
    pub fn extent(self) -> u32 {
        ((self.0 >> 32) & 0x00ff_ffff) as u32
    }

    /// Slot-within-extent component.
    pub fn slot(self) -> u32 {
        self.0 as u32
    }
}

/// Collection configuration.
#[derive(Debug, Clone)]
pub struct CollectionConfig {
    /// Extent capacity in bytes (the paper's extents are 2 GB; scale-down
    /// experiments shrink this so `numExtents` stays in the paper's range).
    pub extent_size: usize,
    /// Number of shards (1–256).
    pub shards: usize,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        CollectionConfig { extent_size: 2 * 1024 * 1024, shards: 8 }
    }
}

#[derive(Debug, Default)]
struct Shard {
    extents: Vec<Extent>,
}

impl Shard {
    /// Append encoded bytes to the last extent, chaining a new extent when
    /// full. Returns `(extent_index, slot)`.
    fn append(&mut self, encoded: &[u8], extent_size: usize) -> (usize, u32) {
        loop {
            if let Some(last) = self.extents.last_mut() {
                if let Some(slot) = last.append(encoded) {
                    return (self.extents.len() - 1, slot);
                }
            }
            self.extents.push(Extent::new(extent_size));
        }
    }
}

/// A sharded document collection with secondary indexes.
pub struct Collection {
    name: String,
    config: CollectionConfig,
    shards: Vec<RwLock<Shard>>,
    indexes: RwLock<Vec<Index>>,
    count: AtomicU64,
    next_shard: AtomicU64,
}

impl Collection {
    /// Create an empty collection.
    pub fn new(name: impl Into<String>, config: CollectionConfig) -> Result<Self> {
        if config.shards == 0 || config.shards > 256 {
            return Err(DtError::Config(format!(
                "shard count {} out of range 1..=256",
                config.shards
            )));
        }
        if config.extent_size == 0 {
            return Err(DtError::Config("extent_size must be positive".into()));
        }
        let shards = (0..config.shards).map(|_| RwLock::new(Shard::default())).collect();
        Ok(Collection {
            name: name.into(),
            config,
            shards,
            indexes: RwLock::new(Vec::new()),
            count: AtomicU64::new(0),
            next_shard: AtomicU64::new(0),
        })
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configuration this collection was created with.
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Number of live documents.
    pub fn len(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when no live documents exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a document, returning its id.
    pub fn insert(&self, doc: &Document) -> DocId {
        let encoded = encode_document(doc);
        let shard_no =
            (self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len() as u64) as usize;
        let id = {
            let mut shard = self.shards[shard_no].write();
            let (extent_idx, slot) = shard.append(&encoded, self.config.extent_size);
            DocId::pack(shard_no as u8, extent_idx as u32, slot)
        };
        {
            let mut indexes = self.indexes.write();
            for idx in indexes.iter_mut() {
                idx.insert(id, doc);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Insert a batch, returning ids in input order.
    ///
    /// The batch path is what makes ingest scale: documents encode in
    /// parallel across the rayon team, the batch reserves its round-robin
    /// window with one atomic bump, and each shard's documents append
    /// under a single write-lock acquisition (shards proceed in parallel)
    /// instead of one lock round-trip per document. Shard routing is
    /// identical to repeated [`Self::insert`] calls.
    pub fn insert_many<'a, I: IntoIterator<Item = &'a Document>>(&self, docs: I) -> Vec<DocId> {
        let docs: Vec<&Document> = docs.into_iter().collect();
        if docs.is_empty() {
            return Vec::new();
        }
        let encoded: Vec<Vec<u8>> =
            docs.par_iter().map(|d| encode_document(d)).collect();

        let nshards = self.shards.len() as u64;
        let base = self.next_shard.fetch_add(docs.len() as u64, Ordering::Relaxed);
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for i in 0..docs.len() {
            per_shard[((base + i as u64) % nshards) as usize].push(i);
        }

        let placed: Vec<Vec<(usize, DocId)>> = (0..self.shards.len())
            .into_par_iter()
            .map(|shard_no| {
                let doc_indexes = &per_shard[shard_no];
                if doc_indexes.is_empty() {
                    return Vec::new();
                }
                let mut shard = self.shards[shard_no].write();
                doc_indexes
                    .iter()
                    .map(|&i| {
                        let (extent_idx, slot) =
                            shard.append(&encoded[i], self.config.extent_size);
                        (i, DocId::pack(shard_no as u8, extent_idx as u32, slot))
                    })
                    .collect()
            })
            .collect();

        let mut ids = vec![DocId(0); docs.len()];
        for (i, id) in placed.into_iter().flatten() {
            ids[i] = id;
        }
        {
            let mut indexes = self.indexes.write();
            for idx in indexes.iter_mut() {
                for (doc, id) in docs.iter().zip(&ids) {
                    idx.insert(*id, doc);
                }
            }
        }
        self.count.fetch_add(docs.len() as u64, Ordering::Relaxed);
        ids
    }

    /// Fetch a document by id.
    pub fn get(&self, id: DocId) -> Option<Document> {
        let shard = self.shards.get(id.shard() as usize)?.read();
        let extent = shard.extents.get(id.extent() as usize)?;
        extent.get(id.slot()).and_then(|r| r.ok())
    }

    /// Delete a document by id. Returns whether it was live.
    pub fn delete(&self, id: DocId) -> bool {
        let Some(lock) = self.shards.get(id.shard() as usize) else {
            return false;
        };
        let doc = {
            let mut shard = lock.write();
            let Some(extent) = shard.extents.get_mut(id.extent() as usize) else {
                return false;
            };
            let Some(doc) = extent.get(id.slot()).and_then(|r| r.ok()) else {
                return false;
            };
            if !extent.delete(id.slot()) {
                return false;
            }
            doc
        };
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            idx.remove(id, &doc);
        }
        drop(indexes);
        self.count.fetch_sub(1, Ordering::Relaxed);
        true
    }

    /// Create a secondary index, back-filling existing documents.
    pub fn create_index(&self, spec: IndexSpec) -> Result<()> {
        {
            let indexes = self.indexes.read();
            if indexes.iter().any(|i| i.spec.name == spec.name) {
                return Err(DtError::AlreadyExists(format!("index {}", spec.name)));
            }
        }
        let mut idx = Index::new(spec);
        self.for_each(|id, doc| idx.insert(id, doc));
        self.indexes.write().push(idx);
        Ok(())
    }

    /// Number of indexes.
    pub fn index_count(&self) -> usize {
        self.indexes.read().len()
    }

    /// Run `f` against an index by name.
    pub fn with_index<T>(&self, name: &str, f: impl FnOnce(&Index) -> T) -> Option<T> {
        let indexes = self.indexes.read();
        indexes.iter().find(|i| i.spec.name == name).map(f)
    }

    /// Find an index covering `path`, applying `f` to it.
    pub fn with_index_on_path<T>(&self, path: &str, f: impl FnOnce(&Index) -> T) -> Option<T> {
        let indexes = self.indexes.read();
        indexes.iter().find(|i| i.spec.path == path).map(f)
    }

    /// Sequentially visit every live document.
    pub fn for_each(&self, mut f: impl FnMut(DocId, &Document)) {
        for (shard_no, lock) in self.shards.iter().enumerate() {
            let shard = lock.read();
            for (extent_idx, extent) in shard.extents.iter().enumerate() {
                for (slot, bytes) in extent.iter_live() {
                    if let Ok(doc) = crate::encode::decode_document(bytes) {
                        f(DocId::pack(shard_no as u8, extent_idx as u32, slot), &doc);
                    }
                }
            }
        }
    }

    /// Scan all shards in parallel via rayon, collecting `f`'s non-`None`
    /// outputs. Output order is deterministic regardless of thread count:
    /// shard-major, then extent, then slot.
    pub fn parallel_scan<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(DocId, &Document) -> Option<T> + Sync,
    {
        (0..self.shards.len())
            .into_par_iter()
            .flat_map(|shard_no| {
                let shard = self.shards[shard_no].read();
                let mut out = Vec::new();
                for (extent_idx, extent) in shard.extents.iter().enumerate() {
                    for (slot, bytes) in extent.iter_live() {
                        if let Ok(doc) = crate::encode::decode_document(bytes) {
                            let id = DocId::pack(shard_no as u8, extent_idx as u32, slot);
                            if let Some(t) = f(id, &doc) {
                                out.push(t);
                            }
                        }
                    }
                }
                out
            })
            .collect()
    }

    /// Group-by over a path: `(value, count)` in value order. Uses an index
    /// on the path when one exists, otherwise a parallel scan.
    pub fn count_by(&self, path: &str) -> Vec<(Value, u64)> {
        if let Some(counts) = self.with_index_on_path(path, |idx| {
            idx.key_counts().into_iter().map(|(k, n)| (k, n as u64)).collect::<Vec<_>>()
        }) {
            return counts;
        }
        let values = self.parallel_scan(|_, doc| doc.get_path(path).cloned());
        let mut counts: std::collections::BTreeMap<crate::index::IndexKey, u64> =
            std::collections::BTreeMap::new();
        for v in values {
            *counts.entry(crate::index::IndexKey(v)).or_insert(0) += 1;
        }
        counts.into_iter().map(|(k, n)| (k.0, n)).collect()
    }

    /// Statistics in the shape of the paper's Tables I–II.
    pub fn stats(&self, namespace: &str) -> CollectionStats {
        let mut num_extents = 0usize;
        let mut last_extent_size = 0usize;
        let mut data_bytes = 0usize;
        // The "last" extent is the most recently allocated across all shards;
        // we take the maximum-fill convention: report the byte size of the
        // final extent of the last shard that has one.
        for lock in &self.shards {
            let shard = lock.read();
            num_extents += shard.extents.len();
            for e in &shard.extents {
                data_bytes += e.used_bytes();
            }
            if let Some(last) = shard.extents.last() {
                last_extent_size = last.capacity();
            }
        }
        let indexes = self.indexes.read();
        let total_index_size = indexes.iter().map(|i| i.size_bytes()).sum();
        let count = self.len();
        CollectionStats {
            ns: format!("{namespace}.{}", self.name),
            count,
            num_extents,
            nindexes: indexes.len(),
            last_extent_size,
            total_index_size,
            data_size: data_bytes,
            avg_obj_size: if count == 0 { 0.0 } else { data_bytes as f64 / count as f64 },
        }
    }

    /// Access for persistence: snapshot extents per shard.
    pub(crate) fn snapshot_extents(&self) -> Vec<Vec<Vec<u8>>> {
        self.shards
            .iter()
            .map(|lock| lock.read().extents.iter().map(|e| e.to_bytes()).collect())
            .collect()
    }

    /// Restore a collection from persisted extents and index specs.
    pub(crate) fn restore(
        name: String,
        config: CollectionConfig,
        shard_extents: Vec<Vec<Vec<u8>>>,
        index_specs: Vec<IndexSpec>,
    ) -> Result<Self> {
        if shard_extents.len() != config.shards {
            return Err(DtError::Decode(format!(
                "expected {} shards, found {}",
                config.shards,
                shard_extents.len()
            )));
        }
        let col = Collection::new(name, config)?;
        let mut total = 0u64;
        for (shard_no, extents) in shard_extents.into_iter().enumerate() {
            let mut shard = col.shards[shard_no].write();
            for bytes in extents {
                let e = Extent::from_bytes(&bytes)?;
                total += e.live_count() as u64;
                shard.extents.push(e);
            }
        }
        col.count.store(total, Ordering::Relaxed);
        for spec in index_specs {
            col.create_index(spec)?;
        }
        Ok(col)
    }

    /// Index specs currently defined, in creation order.
    pub fn index_specs(&self) -> Vec<IndexSpec> {
        self.indexes.read().iter().map(|i| i.spec.clone()).collect()
    }
}

impl std::fmt::Debug for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collection")
            .field("name", &self.name)
            .field("count", &self.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::doc;

    fn small() -> Collection {
        Collection::new("test", CollectionConfig { extent_size: 256, shards: 4 }).unwrap()
    }

    #[test]
    fn docid_packing_roundtrips() {
        let id = DocId::pack(255, (1 << 24) - 1, u32::MAX);
        assert_eq!(id.shard(), 255);
        assert_eq!(id.extent(), (1 << 24) - 1);
        assert_eq!(id.slot(), u32::MAX);
        let id = DocId::pack(3, 17, 42);
        assert_eq!((id.shard(), id.extent(), id.slot()), (3, 17, 42));
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = small();
        let d = doc! {"show" => "Matilda", "price" => 27i64};
        let id = c.insert(&d);
        assert_eq!(c.get(id), Some(d));
        assert_eq!(c.len(), 1);
        assert!(c.get(DocId::pack(0, 9, 9)).is_none());
    }

    #[test]
    fn inserts_spread_over_shards_and_extents() {
        let c = small();
        for i in 0..100i64 {
            c.insert(&doc! {"i" => i, "pad" => "x".repeat(40)});
        }
        assert_eq!(c.len(), 100);
        let stats = c.stats("dt");
        assert!(stats.num_extents > 4, "tiny extents must chain: {}", stats.num_extents);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.last_extent_size, 256);
    }

    #[test]
    fn delete_removes_and_updates_count() {
        let c = small();
        let id = c.insert(&doc! {"a" => 1i64});
        assert!(c.delete(id));
        assert!(!c.delete(id));
        assert_eq!(c.len(), 0);
        assert!(c.get(id).is_none());
    }

    #[test]
    fn index_backfills_and_maintains() {
        let c = small();
        let d1 = doc! {"type" => "Person"};
        let d2 = doc! {"type" => "City"};
        let id1 = c.insert(&d1);
        c.create_index(IndexSpec::new("by_type", "type")).unwrap();
        let id2 = c.insert(&d2);
        let persons = c.with_index("by_type", |i| i.lookup(&Value::from("Person"))).unwrap();
        assert_eq!(persons, vec![id1]);
        let cities = c.with_index("by_type", |i| i.lookup(&Value::from("City"))).unwrap();
        assert_eq!(cities, vec![id2]);
        c.delete(id1);
        let persons = c.with_index("by_type", |i| i.lookup(&Value::from("Person"))).unwrap();
        assert!(persons.is_empty());
        assert!(c.create_index(IndexSpec::new("by_type", "type")).is_err());
    }

    #[test]
    fn parallel_scan_sees_all_live_docs() {
        let c = small();
        let ids: Vec<DocId> = (0..50i64).map(|i| c.insert(&doc! {"i" => i})).collect();
        c.delete(ids[10]);
        let seen = c.parallel_scan(|_, d| d.get("i").and_then(|v| v.as_int()));
        assert_eq!(seen.len(), 49);
        assert!(!seen.contains(&10));
    }

    #[test]
    fn count_by_with_and_without_index() {
        let c = small();
        for ty in ["Person", "Person", "Movie"] {
            c.insert(&doc! {"type" => ty});
        }
        let scan_counts = c.count_by("type");
        c.create_index(IndexSpec::new("by_type", "type")).unwrap();
        let index_counts = c.count_by("type");
        assert_eq!(scan_counts, index_counts);
        assert_eq!(
            scan_counts,
            vec![(Value::from("Movie"), 1), (Value::from("Person"), 2)]
        );
    }

    #[test]
    fn stats_reflect_index_sizes() {
        let c = small();
        for i in 0..20i64 {
            c.insert(&doc! {"n" => i});
        }
        let before = c.stats("dt").total_index_size;
        assert_eq!(before, 0);
        c.create_index(IndexSpec::new("by_n", "n")).unwrap();
        let after = c.stats("dt");
        assert!(after.total_index_size > 0);
        assert_eq!(after.nindexes, 1);
        assert_eq!(after.ns, "dt.test");
        assert!(after.avg_obj_size > 0.0);
    }

    #[test]
    fn concurrent_inserts_are_consistent() {
        let c =
            Collection::new("conc", CollectionConfig { extent_size: 4096, shards: 8 }).unwrap();
        (0..8usize).into_par_iter().for_each(|t| {
            for i in 0..100i64 {
                c.insert(&doc! {"t" => t as i64, "i" => i});
            }
        });
        assert_eq!(c.len(), 800);
        assert_eq!(c.parallel_scan(|_, _| Some(())).len(), 800);
    }

    #[test]
    fn insert_many_matches_repeated_insert() {
        let a = small();
        let b = small();
        let docs: Vec<_> = (0..37i64).map(|i| doc! {"i" => i, "pad" => "y".repeat(9)}).collect();
        let one_by_one: Vec<DocId> = docs.iter().map(|d| a.insert(d)).collect();
        let batched = b.insert_many(&docs);
        assert_eq!(one_by_one, batched, "batch routing must match repeated inserts");
        assert_eq!(b.len(), 37);
        for (id, d) in batched.iter().zip(&docs) {
            assert_eq!(b.get(*id).as_ref(), Some(d));
        }
    }

    #[test]
    fn insert_many_maintains_indexes() {
        let c = small();
        c.create_index(IndexSpec::new("by_type", "type")).unwrap();
        let docs = vec![doc! {"type" => "Person"}, doc! {"type" => "City"}, doc! {"type" => "Person"}];
        let ids = c.insert_many(&docs);
        let persons = c.with_index("by_type", |i| i.lookup(&Value::from("Person"))).unwrap();
        assert_eq!(persons, vec![ids[0], ids[2]]);
        assert!(c.insert_many(std::iter::empty()).is_empty());
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(Collection::new("x", CollectionConfig { extent_size: 0, shards: 1 }).is_err());
        assert!(Collection::new("x", CollectionConfig { extent_size: 10, shards: 0 }).is_err());
        assert!(Collection::new("x", CollectionConfig { extent_size: 10, shards: 257 }).is_err());
    }
}
