//! Ordered secondary indexes over dotted document paths.
//!
//! An index maps extracted key values to document ids. Keys keep full
//! [`Value`] typing and order by [`Value::total_cmp`]; when the indexed path
//! resolves to an array, every element is indexed (multikey), matching how
//! document stores index the paper's `entities` arrays. Index byte sizes are
//! accounted from real encoded key lengths so `totalIndexSize` in the stats
//! report is measured, not estimated.

use std::collections::BTreeMap;
use std::ops::Bound;

use datatamer_model::{Document, Value};

use crate::collection::DocId;
use crate::encode::encoded_len;

/// Per-entry bookkeeping overhead (tree node amortised cost + docid).
const ENTRY_OVERHEAD: usize = 24;

/// Declaration of a secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Index name, unique within its collection.
    pub name: String,
    /// Dotted path whose value(s) are indexed.
    pub path: String,
}

impl IndexSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, path: impl Into<String>) -> Self {
        IndexSpec { name: name.into(), path: path.into() }
    }
}

/// Total-ordered wrapper so `Value` can key a `BTreeMap`.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Value);

impl Eq for IndexKey {}
impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One secondary index.
#[derive(Debug)]
pub struct Index {
    /// The index declaration.
    pub spec: IndexSpec,
    entries: BTreeMap<IndexKey, Vec<DocId>>,
    key_bytes: usize,
    entry_count: usize,
}

impl Index {
    /// Create an empty index for a spec.
    pub fn new(spec: IndexSpec) -> Self {
        Index { spec, entries: BTreeMap::new(), key_bytes: 0, entry_count: 0 }
    }

    /// Extract the keys a document contributes under this index's path.
    /// Arrays are multikey: each element becomes its own key. Missing paths
    /// contribute nothing (sparse index semantics).
    pub fn extract_keys(&self, doc: &Document) -> Vec<Value> {
        // Support both "a.b" direct resolution and multikey through arrays
        // of documents ("entities.type" indexing every element's `type`).
        let mut keys = Vec::new();
        extract_path(doc, &self.spec.path, &mut keys);
        keys
    }

    /// Index a document under its id.
    pub fn insert(&mut self, id: DocId, doc: &Document) {
        for key in self.extract_keys(doc) {
            let klen = encoded_len(&key);
            self.entries.entry(IndexKey(key)).or_default().push(id);
            self.key_bytes += klen;
            self.entry_count += 1;
        }
    }

    /// Remove a document's entries.
    pub fn remove(&mut self, id: DocId, doc: &Document) {
        for key in self.extract_keys(doc) {
            let klen = encoded_len(&key);
            let wrapped = IndexKey(key);
            if let Some(ids) = self.entries.get_mut(&wrapped) {
                if let Some(pos) = ids.iter().position(|x| *x == id) {
                    ids.swap_remove(pos);
                    self.key_bytes -= klen;
                    self.entry_count -= 1;
                    if ids.is_empty() {
                        self.entries.remove(&wrapped);
                    }
                }
            }
        }
    }

    /// Ids whose key equals `key`.
    pub fn lookup(&self, key: &Value) -> Vec<DocId> {
        self.entries
            .get(&IndexKey(key.clone()))
            .map(|v| v.to_vec())
            .unwrap_or_default()
    }

    /// Ids whose key falls within the given bounds.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<DocId> {
        let lo = map_bound(lo);
        let hi = map_bound(hi);
        let mut out = Vec::new();
        for ids in self.entries.range((lo, hi)).map(|(_, v)| v) {
            out.extend_from_slice(ids);
        }
        out
    }

    /// Distinct keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &Value> {
        self.entries.keys().map(|k| &k.0)
    }

    /// `(key, number of docs)` pairs in key order — powers group-by-type
    /// statistics like the paper's Table III.
    pub fn key_counts(&self) -> Vec<(Value, usize)> {
        self.entries
            .iter()
            .map(|(k, ids)| (k.0.clone(), ids.len()))
            .collect()
    }

    /// Number of `(key, id)` entries.
    pub fn len(&self) -> usize {
        self.entry_count
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Measured index size in bytes (keys + per-entry overhead).
    pub fn size_bytes(&self) -> usize {
        self.key_bytes + self.entry_count * ENTRY_OVERHEAD
    }
}

fn map_bound(b: Bound<&Value>) -> Bound<IndexKey> {
    match b {
        Bound::Included(v) => Bound::Included(IndexKey(v.clone())),
        Bound::Excluded(v) => Bound::Excluded(IndexKey(v.clone())),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Resolve a dotted path allowing multikey traversal through arrays.
fn extract_path(doc: &Document, path: &str, out: &mut Vec<Value>) {
    fn walk(v: &Value, segments: &[&str], out: &mut Vec<Value>) {
        let Some((seg, rest)) = segments.split_first() else {
            match v {
                Value::Array(items) => {
                    for item in items {
                        out.push(item.clone());
                    }
                }
                other => out.push(other.clone()),
            }
            return;
        };
        match v {
            Value::Doc(d) => {
                if let Some(inner) = d.get(seg) {
                    walk(inner, rest, out);
                }
            }
            Value::Array(items) => {
                // Numeric segment indexes; otherwise descend into each element.
                if let Ok(i) = seg.parse::<usize>() {
                    if let Some(item) = items.get(i) {
                        walk(item, rest, out);
                    }
                } else {
                    for item in items {
                        walk(item, segments, out);
                    }
                }
            }
            _ => {}
        }
    }
    let segments: Vec<&str> = path.split('.').collect();
    walk(&Value::Doc(doc.clone()), &segments, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::doc;

    fn id(n: u64) -> DocId {
        DocId(n)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = Index::new(IndexSpec::new("by_type", "type"));
        let d1 = doc! {"type" => "Person", "name" => "Ann"};
        let d2 = doc! {"type" => "Person", "name" => "Bob"};
        let d3 = doc! {"type" => "City", "name" => "NYC"};
        idx.insert(id(1), &d1);
        idx.insert(id(2), &d2);
        idx.insert(id(3), &d3);
        assert_eq!(idx.lookup(&Value::from("Person")).len(), 2);
        assert_eq!(idx.lookup(&Value::from("City")), vec![id(3)]);
        assert!(idx.lookup(&Value::from("Movie")).is_empty());
        idx.remove(id(1), &d1);
        assert_eq!(idx.lookup(&Value::from("Person")), vec![id(2)]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn multikey_indexes_array_elements() {
        let mut idx = Index::new(IndexSpec::new("by_tag", "tags"));
        let d = doc! {"tags" => Value::Array(vec!["a".into(), "b".into()])};
        idx.insert(id(7), &d);
        assert_eq!(idx.lookup(&Value::from("a")), vec![id(7)]);
        assert_eq!(idx.lookup(&Value::from("b")), vec![id(7)]);
        assert_eq!(idx.len(), 2);
        idx.remove(id(7), &d);
        assert!(idx.is_empty());
    }

    #[test]
    fn multikey_descends_arrays_of_docs() {
        let mut idx = Index::new(IndexSpec::new("by_ent_type", "entities.type"));
        let d = doc! {"entities" => Value::Array(vec![
            Value::Doc(doc! {"type" => "Movie", "name" => "Matilda"}),
            Value::Doc(doc! {"type" => "City", "name" => "London"}),
        ])};
        idx.insert(id(5), &d);
        assert_eq!(idx.lookup(&Value::from("Movie")), vec![id(5)]);
        assert_eq!(idx.lookup(&Value::from("City")), vec![id(5)]);
    }

    #[test]
    fn numeric_segment_indexes_one_element() {
        let mut idx = Index::new(IndexSpec::new("first_ent", "entities.0.type"));
        let d = doc! {"entities" => Value::Array(vec![
            Value::Doc(doc! {"type" => "Movie"}),
            Value::Doc(doc! {"type" => "City"}),
        ])};
        idx.insert(id(5), &d);
        assert_eq!(idx.lookup(&Value::from("Movie")), vec![id(5)]);
        assert!(idx.lookup(&Value::from("City")).is_empty());
    }

    #[test]
    fn missing_path_is_sparse() {
        let mut idx = Index::new(IndexSpec::new("by_x", "x"));
        idx.insert(id(1), &doc! {"y" => 1i64});
        assert!(idx.is_empty());
        assert_eq!(idx.size_bytes(), 0);
    }

    #[test]
    fn range_queries_use_value_order() {
        let mut idx = Index::new(IndexSpec::new("by_n", "n"));
        for i in 0..10i64 {
            idx.insert(id(i as u64), &doc! {"n" => i});
        }
        let got = idx.range(Bound::Included(&Value::Int(3)), Bound::Excluded(&Value::Int(6)));
        assert_eq!(got, vec![id(3), id(4), id(5)]);
        let all = idx.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn key_counts_group_by() {
        let mut idx = Index::new(IndexSpec::new("by_type", "type"));
        for (i, ty) in ["Person", "Person", "City", "Movie", "Person"].iter().enumerate() {
            idx.insert(id(i as u64), &doc! {"type" => *ty});
        }
        let counts = idx.key_counts();
        let person = counts.iter().find(|(k, _)| k == &Value::from("Person")).unwrap();
        assert_eq!(person.1, 3);
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn size_accounting_grows_and_shrinks() {
        let mut idx = Index::new(IndexSpec::new("by_name", "name"));
        let d = doc! {"name" => "The Walking Dead"};
        assert_eq!(idx.size_bytes(), 0);
        idx.insert(id(1), &d);
        let sz = idx.size_bytes();
        assert!(sz > ENTRY_OVERHEAD);
        idx.insert(id(2), &d);
        assert!(idx.size_bytes() > sz);
        idx.remove(id(1), &d);
        idx.remove(id(2), &d);
        assert_eq!(idx.size_bytes(), 0);
    }
}
