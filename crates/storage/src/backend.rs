//! Pluggable shard backends: where one shard's extent chain lives.
//!
//! A shard is a chain of fixed-size extents. Historically that chain was an
//! in-process `Vec<Extent>` behind a lock inside `Collection`; the
//! [`ShardBackend`] trait lifts it into an interface — append, point read,
//! ordered scan, tombstone delete, snapshot/restore — so the coordinator
//! can place shards on different substrates:
//!
//! * [`MemoryBackend`] — the extracted in-process shard: everything on the
//!   heap, zero I/O. Byte-compatible with the pre-coordinator collection.
//! * [`FileBackend`] — out-of-core shards: only the tail extent (the one
//!   taking appends) stays in memory; a full extent is flushed to its own
//!   file (the [`crate::extent::Extent::to_bytes`] persist encoding, one
//!   file per extent exactly like [`crate::persist`]) and served back
//!   through a per-shard [`ExtentCache`] — a byte-budget LRU of decoded
//!   extents, so repeated scans hit memory instead of disk. Resident
//!   memory is O(extent_size + cache budget) per shard regardless of
//!   collection size (budget 0 restores the pure load-per-read
//!   behaviour), and reopening a backend over the same directory resumes
//!   the chain.
//!
//! Both backends produce byte-identical scan output for the same append
//! sequence — the coordinator's equivalence contract, pinned by tests —
//! at any cache budget. Scans can also run extent-parallel: a scan is
//! prepared with [`ShardBackend::begin_extent_scan`] (which resolves
//! cache hits deterministically, in extent order, before any fan-out) and
//! each extent is then visited independently via
//! [`ShardBackend::visit_extent`].

use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use datatamer_model::{Document, DtError, Result};

use crate::cache::{ExtentCache, ExtentCacheStats, ExtentScan, ScanSlot};
use crate::encode::decode_document;
use crate::extent::Extent;

/// Which substrate a backend stores its extents on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// In-process heap extents.
    Memory,
    /// One file per flushed extent under a shard directory.
    File,
}

impl BackendKind {
    /// Short stable name for reports and bench ids.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Memory => "memory",
            BackendKind::File => "file",
        }
    }
}

/// Declarative backend choice for a collection (travels on
/// [`crate::collection::CollectionConfig`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BackendConfig {
    /// In-process shards (the default).
    #[default]
    Memory,
    /// File-backed shards rooted at `dir`: the collection stores its
    /// shards under `dir/<collection-name>/shard<NNN>/`.
    File {
        /// Root directory for file-backed collections.
        dir: PathBuf,
    },
}

impl BackendConfig {
    /// The [`BackendKind`] this config instantiates.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendConfig::Memory => BackendKind::Memory,
            BackendConfig::File { .. } => BackendKind::File,
        }
    }
}

/// Storage operations over one shard's extent chain.
///
/// Implementations are internally synchronised (`&self` methods take their
/// own locks) and `Send + Sync`: the coordinator fans `insert_many` and
/// scans out across the rayon team with one backend per shard.
pub trait ShardBackend: Send + Sync {
    /// Which substrate this backend is.
    fn kind(&self) -> BackendKind;

    /// Append one encoded document, chaining a new extent when the tail is
    /// full. Returns `(extent_index, slot)`.
    fn append(&self, encoded: &[u8]) -> Result<(u32, u32)>;

    /// Append a batch under a single lock acquisition, in order.
    fn append_batch(&self, encoded: &[&[u8]]) -> Result<Vec<(u32, u32)>> {
        encoded.iter().map(|e| self.append(e)).collect()
    }

    /// Decode the live document at `(extent, slot)`, if any. Point reads
    /// deliberately fold "not live" and "unreadable" into `None` (the
    /// lookup contract callers already hold); bulk reads ([`Self::visit`])
    /// surface I/O failure as an error instead, because a silent skip
    /// there would drop whole extents from scan output.
    fn get(&self, extent: u32, slot: u32) -> Option<Document>;

    /// Like [`Self::get`], but an unreadable extent is an error instead of
    /// `None`: `Ok(None)` strictly means "not live". Query paths use this
    /// so index probes cannot silently drop documents whose extent failed
    /// to read. The default suits fully resident backends, where reads
    /// cannot fail.
    fn try_get(&self, extent: u32, slot: u32) -> Result<Option<Document>> {
        Ok(self.get(extent, slot))
    }

    /// Tombstone `(extent, slot)`; returns the document when it was live
    /// (same `None` folding as [`Self::get`] on the read side). A failed
    /// tombstone *write-back* is an error — swallowing it would leave the
    /// caller's count/indexes agreeing with neither the old nor the new
    /// on-disk state, and aborting the process (the old behaviour) turns
    /// one torn extent into an outage.
    fn delete(&self, extent: u32, slot: u32) -> Result<Option<Document>>;

    /// Visit every live document in `(extent, slot)` order — the scan
    /// order every backend must share for byte-identical results. An
    /// unreadable extent aborts the scan with an error rather than being
    /// skipped (a skip would silently drop every document in it) or
    /// panicking (the pre-PR-7 behaviour). Individual documents that fail
    /// to decode are skipped but counted ([`Self::decode_errors`]) — never
    /// silently dropped.
    fn visit(&self, f: &mut dyn FnMut(u32, u32, &Document)) -> Result<()>;

    /// Prepare an extent-parallel scan over this shard. For cached
    /// backends this resolves every extent's hit-or-miss **sequentially,
    /// in extent order, before any fan-out** and pins the hits — so cache
    /// counters and post-scan contents are identical at any rayon pool
    /// width. The default covers backends whose extents are all resident.
    fn begin_extent_scan(&self) -> ExtentScan {
        ExtentScan::resident(self.extent_count())
    }

    /// Visit the live documents of one extent (`f` receives `(slot,
    /// doc)`), as part of a scan prepared by [`Self::begin_extent_scan`].
    /// Extents past the plan (or tombstoned away) visit nothing; an
    /// unreadable extent is an error, and per-document decode failures
    /// count into [`Self::decode_errors`] exactly like [`Self::visit`].
    fn visit_extent(
        &self,
        scan: &ExtentScan,
        extent: u32,
        f: &mut dyn FnMut(u32, &Document),
    ) -> Result<()>;

    /// Live documents in this shard.
    fn len(&self) -> u64;

    /// True when no live documents exist.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extents in the chain.
    fn extent_count(&self) -> usize;

    /// Bytes used by encoded documents across the chain.
    fn used_bytes(&self) -> usize;

    /// Capacity of the last extent, or 0 when the chain is empty.
    fn last_extent_capacity(&self) -> usize;

    /// Serialise every extent in chain order (persist encoding).
    fn snapshot(&self) -> Result<Vec<Vec<u8>>>;

    /// Replace the chain with restored extents; returns the live count.
    fn restore(&self, extents: Vec<Vec<u8>>) -> Result<u64>;

    /// Flush volatile state to stable storage (no-op for memory).
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Extent writes to stable storage so far (0 for memory backends).
    fn flushes(&self) -> u64 {
        0
    }

    /// Documents skipped because their bytes failed to decode, cumulative
    /// across every read of this backend. A nonzero value means the
    /// corpus is silently smaller than what was stored — surfaced in
    /// [`crate::coordinator::StorageReport`] instead of being swallowed.
    fn decode_errors(&self) -> u64 {
        0
    }

    /// Extent-cache counters, for backends that serve reads through an
    /// [`ExtentCache`] (`None` for fully-resident backends).
    fn cache_stats(&self) -> Option<ExtentCacheStats> {
        None
    }
}

/// Iterate one decoded extent's live slots, counting (never silently
/// dropping) documents whose bytes fail to decode.
fn visit_live(extent: &Extent, decode_errors: &AtomicU64, f: &mut dyn FnMut(u32, &Document)) {
    for (slot, bytes) in extent.iter_live() {
        match decode_document(bytes) {
            Ok(doc) => f(slot, &doc),
            Err(_) => {
                decode_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Fold a slot read into the point-read contract (`None` for missing or
/// unreadable) while counting decode failures.
fn fold_decode(decode_errors: &AtomicU64, slot: Option<Result<Document>>) -> Option<Document> {
    match slot {
        Some(Ok(doc)) => Some(doc),
        Some(Err(_)) => {
            decode_errors.fetch_add(1, Ordering::Relaxed);
            None
        }
        None => None,
    }
}

// ---------------------------------------------------------------------------
// MemoryBackend
// ---------------------------------------------------------------------------

/// The in-process shard: `Vec<Extent>` behind one lock — exactly what
/// `Collection` used to inline per shard.
#[derive(Debug)]
pub struct MemoryBackend {
    extent_size: usize,
    extents: RwLock<Vec<Extent>>,
    decode_errors: AtomicU64,
}

impl MemoryBackend {
    /// Empty in-process shard with the given extent capacity.
    pub fn new(extent_size: usize) -> Self {
        MemoryBackend {
            extent_size,
            extents: RwLock::new(Vec::new()),
            decode_errors: AtomicU64::new(0),
        }
    }

    /// Append to the tail extent of `extents`, chaining when full.
    fn append_to(extents: &mut Vec<Extent>, encoded: &[u8], extent_size: usize) -> (u32, u32) {
        loop {
            if let Some(last) = extents.last_mut() {
                if let Some(slot) = last.append(encoded) {
                    return ((extents.len() - 1) as u32, slot);
                }
            }
            extents.push(Extent::new(extent_size));
        }
    }
}

impl ShardBackend for MemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }

    fn append(&self, encoded: &[u8]) -> Result<(u32, u32)> {
        let mut extents = self.extents.write();
        Ok(Self::append_to(&mut extents, encoded, self.extent_size))
    }

    fn append_batch(&self, encoded: &[&[u8]]) -> Result<Vec<(u32, u32)>> {
        let mut extents = self.extents.write();
        Ok(encoded
            .iter()
            .map(|e| Self::append_to(&mut extents, e, self.extent_size))
            .collect())
    }

    fn get(&self, extent: u32, slot: u32) -> Option<Document> {
        let extents = self.extents.read();
        let slot_read = extents.get(extent as usize)?.get(slot);
        fold_decode(&self.decode_errors, slot_read)
    }

    fn delete(&self, extent: u32, slot: u32) -> Result<Option<Document>> {
        let mut extents = self.extents.write();
        let Some(e) = extents.get_mut(extent as usize) else { return Ok(None) };
        let Some(doc) = fold_decode(&self.decode_errors, e.get(slot)) else {
            return Ok(None);
        };
        Ok(e.delete(slot).then_some(doc))
    }

    fn visit(&self, f: &mut dyn FnMut(u32, u32, &Document)) -> Result<()> {
        let extents = self.extents.read();
        for (idx, extent) in extents.iter().enumerate() {
            visit_live(extent, &self.decode_errors, &mut |slot, doc| {
                f(idx as u32, slot, doc);
            });
        }
        Ok(())
    }

    fn visit_extent(
        &self,
        _scan: &ExtentScan,
        extent: u32,
        f: &mut dyn FnMut(u32, &Document),
    ) -> Result<()> {
        let extents = self.extents.read();
        if let Some(e) = extents.get(extent as usize) {
            visit_live(e, &self.decode_errors, f);
        }
        Ok(())
    }

    fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    fn len(&self) -> u64 {
        self.extents.read().iter().map(|e| e.live_count() as u64).sum()
    }

    fn extent_count(&self) -> usize {
        self.extents.read().len()
    }

    fn used_bytes(&self) -> usize {
        self.extents.read().iter().map(Extent::used_bytes).sum()
    }

    fn last_extent_capacity(&self) -> usize {
        self.extents.read().last().map_or(0, Extent::capacity)
    }

    fn snapshot(&self) -> Result<Vec<Vec<u8>>> {
        Ok(self.extents.read().iter().map(Extent::to_bytes).collect())
    }

    fn restore(&self, serialized: Vec<Vec<u8>>) -> Result<u64> {
        let mut extents = self.extents.write();
        extents.clear();
        let mut live = 0u64;
        for bytes in serialized {
            let e = Extent::from_bytes(&bytes)?;
            live += e.live_count() as u64;
            extents.push(e);
        }
        Ok(live)
    }
}

// ---------------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------------

/// Cached shape of a flushed extent, so stats and routing never touch disk.
#[derive(Debug, Clone, Copy)]
struct ExtentMeta {
    live: usize,
    used: usize,
    capacity: usize,
}

impl ExtentMeta {
    fn of(e: &Extent) -> Self {
        ExtentMeta { live: e.live_count(), used: e.used_bytes(), capacity: e.capacity() }
    }
}

/// One link of a file-backed chain: either resident (the tail taking
/// appends) or flushed to its file with only metadata cached.
#[derive(Debug)]
enum ExtentSlot {
    Loaded(Extent),
    Flushed(ExtentMeta),
}

impl ExtentSlot {
    fn meta(&self) -> ExtentMeta {
        match self {
            ExtentSlot::Loaded(e) => ExtentMeta::of(e),
            ExtentSlot::Flushed(m) => *m,
        }
    }
}

/// Out-of-core shard: extents live as files under a directory, with only
/// the tail extent resident in the slot chain and recently-read flushed
/// extents held by a byte-budget [`ExtentCache`]. See the module docs for
/// the layout contract.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    extent_size: usize,
    slots: RwLock<Vec<ExtentSlot>>,
    /// Residency layer for flushed extents; every read path goes through
    /// it. Lock order: `slots` before `cache`, never the reverse.
    cache: ExtentCache,
    flushes: AtomicU64,
    /// Extent files actually read (decoded loads + raw snapshot reads).
    disk_loads: AtomicU64,
    decode_errors: AtomicU64,
}

impl FileBackend {
    /// Open (or create) a file-backed shard at `dir` with the default
    /// extent-cache budget ([`DEFAULT_EXTENT_CACHE_BUDGET`] — see
    /// [`FileBackend::open_with_cache`] to choose one). An existing chain —
    /// `ext000000`, `ext000001`, … — is adopted: all extents start flushed
    /// and the tail is re-loaded on the first append. Each flushed extent
    /// carries a small `.meta` sidecar (data length + live/used/capacity),
    /// so adoption reads O(extent count) bytes, not the whole collection;
    /// a missing, corrupt, or length-mismatched sidecar falls back to
    /// decoding that one extent (see [`read_meta_sidecar`] for the one
    /// crash window the length check cannot cover).
    pub fn open(dir: impl Into<PathBuf>, extent_size: usize) -> Result<Self> {
        Self::open_with_cache(dir, extent_size, Some(crate::cache::DEFAULT_EXTENT_CACHE_BUDGET))
    }

    /// [`FileBackend::open`] with an explicit extent-cache byte budget:
    /// `None` = unbounded, `Some(0)` = disabled (byte-identical to
    /// load-per-read), `Some(n)` = at most `n` bytes of decoded flushed
    /// extents resident. Nothing is admitted at open — the cache warms on
    /// first read.
    pub fn open_with_cache(
        dir: impl Into<PathBuf>,
        extent_size: usize,
        cache_budget: Option<usize>,
    ) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut slots = Vec::new();
        let mut fallback_loads = 0u64;
        loop {
            let path = dir.join(extent_file(slots.len()));
            if !path.exists() {
                break;
            }
            let file_len = fs::metadata(&path)?.len();
            let meta = match read_meta_sidecar(&dir.join(meta_file(slots.len())), file_len) {
                Some(meta) => meta,
                None => {
                    fallback_loads += 1;
                    ExtentMeta::of(&read_extent(&path)?)
                }
            };
            slots.push(ExtentSlot::Flushed(meta));
        }
        Ok(FileBackend {
            dir,
            extent_size,
            slots: RwLock::new(slots),
            cache: ExtentCache::new(cache_budget),
            flushes: AtomicU64::new(0),
            disk_loads: AtomicU64::new(fallback_loads),
            decode_errors: AtomicU64::new(0),
        })
    }

    /// The directory holding this shard's extent files.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// The extent cache's configured byte budget.
    pub fn cache_budget(&self) -> Option<usize> {
        self.cache.budget()
    }

    fn path_of(&self, index: usize) -> PathBuf {
        self.dir.join(extent_file(index))
    }

    fn meta_path_of(&self, index: usize) -> PathBuf {
        self.dir.join(meta_file(index))
    }

    fn write_extent_bytes(&self, index: usize, bytes: &[u8], meta: ExtentMeta) -> Result<()> {
        fs::File::create(self.path_of(index))?.write_all(bytes)?;
        write_meta_sidecar(&self.meta_path_of(index), meta, bytes.len() as u64)?;
        self.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_extent(&self, index: usize, extent: &Extent) -> Result<()> {
        self.write_extent_bytes(index, &extent.to_bytes(), ExtentMeta::of(extent))
    }

    fn load_extent(&self, index: usize) -> Result<Extent> {
        self.disk_loads.fetch_add(1, Ordering::Relaxed);
        read_extent(&self.path_of(index))
    }

    /// A flushed extent, through the cache: a hit returns the resident
    /// copy; a miss loads the file, admits the decoded extent (evicting
    /// under budget pressure), and returns it.
    fn cached_extent(&self, index: u32) -> Result<Arc<Extent>> {
        if let Some(shared) = self.cache.lookup(index) {
            return Ok(shared);
        }
        let shared = Arc::new(self.load_extent(index as usize)?);
        self.cache.admit(index, shared.clone());
        Ok(shared)
    }

    /// Remove any `extN` / `extN.meta` files at or past `from` — restore
    /// shrinking a chain must not leave surplus extents behind for the
    /// next [`FileBackend::open`] to resurrect.
    fn remove_extent_files_from(&self, from: usize) -> Result<()> {
        let mut index = from;
        loop {
            let path = self.path_of(index);
            if !path.exists() {
                return Ok(());
            }
            fs::remove_file(&path)?;
            let meta = self.meta_path_of(index);
            if meta.exists() {
                fs::remove_file(&meta)?;
            }
            index += 1;
        }
    }

    /// Make the tail extent resident (taking it from the cache when it is
    /// there — double residency would double-count memory — or loading it
    /// from its file), appending an empty tail to an empty chain. Returns
    /// the tail's index; `slots[index]` is `Loaded` on success.
    fn ensure_tail_loaded(&self, slots: &mut Vec<ExtentSlot>) -> Result<usize> {
        match slots.last() {
            None => slots.push(ExtentSlot::Loaded(Extent::new(self.extent_size))),
            Some(ExtentSlot::Flushed(_)) => {
                let index = slots.len() - 1;
                let tail = match self.cache.take(index as u32) {
                    Some(shared) => match Arc::try_unwrap(shared) {
                        Ok(extent) => extent,
                        Err(shared) => (*shared).clone(),
                    },
                    None => self.load_extent(index)?,
                };
                slots[index] = ExtentSlot::Loaded(tail);
            }
            Some(ExtentSlot::Loaded(_)) => {}
        }
        Ok(slots.len() - 1)
    }

    /// Append with flush-on-roll: a full tail is written to its file,
    /// demoted to metadata, and a fresh resident tail opens. The rolled
    /// extent moves into the cache — tail-adjacent data is the hottest —
    /// rather than being dropped and re-read on the next scan.
    fn append_locked(&self, slots: &mut Vec<ExtentSlot>, encoded: &[u8]) -> Result<(u32, u32)> {
        loop {
            let index = self.ensure_tail_loaded(slots)?;
            // Every `ensure_tail_loaded` arm leaves `slots[index]`
            // resident; an `Err` here instead of `unreachable!` keeps
            // the storage crate panic-free even if that drifts.
            let ExtentSlot::Loaded(tail) = &mut slots[index] else {
                return Err(DtError::Io("tail extent not resident after load".into()));
            };
            if let Some(slot) = tail.append(encoded) {
                return Ok((index as u32, slot));
            }
            let meta = ExtentMeta::of(tail);
            self.write_extent(index, tail)?;
            let rolled = std::mem::replace(&mut slots[index], ExtentSlot::Flushed(meta));
            if let ExtentSlot::Loaded(extent) = rolled {
                self.cache.admit(index as u32, Arc::new(extent));
            }
            slots.push(ExtentSlot::Loaded(Extent::new(self.extent_size)));
        }
    }
}

fn extent_file(index: usize) -> String {
    format!("ext{index:06}")
}

fn meta_file(index: usize) -> String {
    format!("ext{index:06}.meta")
}

fn read_extent(path: &std::path::Path) -> Result<Extent> {
    let mut bytes = Vec::new();
    fs::File::open(path)
        .map_err(|e| DtError::Io(format!("{}: {e}", path.display())))?
        .read_to_end(&mut bytes)?;
    Extent::from_bytes(&bytes)
}

const META_MAGIC: &[u8; 4] = b"DTXM";

fn write_meta_sidecar(path: &std::path::Path, meta: ExtentMeta, file_len: u64) -> Result<()> {
    use crate::encode::put_varint;
    let mut buf = Vec::with_capacity(4 + 20);
    buf.extend_from_slice(META_MAGIC);
    put_varint(&mut buf, file_len);
    put_varint(&mut buf, meta.live as u64);
    put_varint(&mut buf, meta.used as u64);
    put_varint(&mut buf, meta.capacity as u64);
    fs::File::create(path)?.write_all(&buf)?;
    Ok(())
}

/// Best-effort sidecar read: any miss (absent, truncated, bad magic, or a
/// recorded data-file length that no longer matches the extent file)
/// returns `None` and the caller decodes the extent itself instead. The
/// length check catches the common crash window — an extent rewritten
/// (append roll, restore) without its sidecar reaching disk. A crash
/// between a *tombstone* write-through and its sidecar is the one case
/// this cannot detect (tombstoning flips a flag byte, leaving the length
/// unchanged), so `live`/`used` may then overcount until the extent is
/// next rewritten; scans and point reads always decode the real file and
/// are never affected. Journaled metadata would close that window — out
/// of scope here.
fn read_meta_sidecar(path: &std::path::Path, file_len: u64) -> Option<ExtentMeta> {
    use crate::encode::get_varint;
    let mut bytes = Vec::new();
    fs::File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    if bytes.len() < 4 || &bytes[..4] != META_MAGIC {
        return None;
    }
    let mut buf = &bytes[4..];
    let recorded_len = get_varint(&mut buf).ok()?;
    if recorded_len != file_len {
        return None;
    }
    let live = get_varint(&mut buf).ok()? as usize;
    let used = get_varint(&mut buf).ok()? as usize;
    let capacity = get_varint(&mut buf).ok()? as usize;
    Some(ExtentMeta { live, used, capacity })
}

impl ShardBackend for FileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::File
    }

    fn append(&self, encoded: &[u8]) -> Result<(u32, u32)> {
        let mut slots = self.slots.write();
        self.append_locked(&mut slots, encoded)
    }

    fn append_batch(&self, encoded: &[&[u8]]) -> Result<Vec<(u32, u32)>> {
        let mut slots = self.slots.write();
        encoded.iter().map(|e| self.append_locked(&mut slots, e)).collect()
    }

    fn get(&self, extent: u32, slot: u32) -> Option<Document> {
        let slots = self.slots.read();
        match slots.get(extent as usize)? {
            ExtentSlot::Loaded(e) => fold_decode(&self.decode_errors, e.get(slot)),
            ExtentSlot::Flushed(_) => {
                // Through the cache: a warm extent makes this a map probe
                // instead of a whole-extent decode; a cold one loads once
                // and stays resident for the next same-extent read.
                let shared = self.cached_extent(extent).ok()?;
                fold_decode(&self.decode_errors, shared.get(slot))
            }
        }
    }

    fn try_get(&self, extent: u32, slot: u32) -> Result<Option<Document>> {
        let slots = self.slots.read();
        match slots.get(extent as usize) {
            None => Ok(None),
            Some(ExtentSlot::Loaded(e)) => {
                Ok(fold_decode(&self.decode_errors, e.get(slot)))
            }
            Some(ExtentSlot::Flushed(_)) => {
                // Unlike `get`, an unreadable extent propagates: the query
                // layer must distinguish "tombstoned" from "lost an extent".
                let shared = self.cached_extent(extent)?;
                Ok(fold_decode(&self.decode_errors, shared.get(slot)))
            }
        }
    }

    fn delete(&self, extent: u32, slot: u32) -> Result<Option<Document>> {
        let mut slots = self.slots.write();
        let index = extent as usize;
        match slots.get_mut(index) {
            None => Ok(None),
            Some(ExtentSlot::Loaded(e)) => {
                let Some(doc) = fold_decode(&self.decode_errors, e.get(slot)) else {
                    return Ok(None);
                };
                Ok(e.delete(slot).then_some(doc))
            }
            Some(ExtentSlot::Flushed(_)) => {
                // Read-modify-write: the tombstone must reach the file, or
                // a reopen would resurrect the document. The read side
                // folds "unreadable" into `None` like `get`; the
                // write-back surfaces its error — swallowing it would
                // leave the caller's count/indexes agreeing with neither
                // the old nor the new on-disk state. The cached copy is
                // replaced in place so cache and file never disagree.
                let Ok(shared) = self.cached_extent(extent) else { return Ok(None) };
                let Some(doc) = fold_decode(&self.decode_errors, shared.get(slot)) else {
                    return Ok(None);
                };
                let mut e = (*shared).clone();
                if !e.delete(slot) {
                    return Ok(None);
                }
                self.write_extent(index, &e).map_err(|err| {
                    DtError::Io(format!("tombstone write-back, extent {index}: {err}"))
                })?;
                let meta = ExtentMeta::of(&e);
                self.cache.update(extent, Arc::new(e));
                slots[index] = ExtentSlot::Flushed(meta);
                Ok(Some(doc))
            }
        }
    }

    fn visit(&self, f: &mut dyn FnMut(u32, u32, &Document)) -> Result<()> {
        let slots = self.slots.read();
        for (index, slot_state) in slots.iter().enumerate() {
            match slot_state {
                ExtentSlot::Loaded(e) => {
                    visit_live(e, &self.decode_errors, &mut |slot, doc| {
                        f(index as u32, slot, doc);
                    });
                }
                // An error here, like the write path: silently skipping an
                // unreadable extent would drop every document in it from
                // scans — wrong fused output with no error. The cache
                // bounds residency: at most one loaded extent is held here
                // beyond what the budget retains.
                ExtentSlot::Flushed(_) => {
                    let shared = self.cached_extent(index as u32).map_err(|e| {
                        DtError::Io(format!("shard extent {index} unreadable: {e}"))
                    })?;
                    visit_live(&shared, &self.decode_errors, &mut |slot, doc| {
                        f(index as u32, slot, doc);
                    });
                }
            }
        }
        Ok(())
    }

    fn begin_extent_scan(&self) -> ExtentScan {
        let slots = self.slots.read();
        self.cache.plan_scan(slots.len(), |i| {
            matches!(slots.get(i), Some(ExtentSlot::Flushed(_)))
        })
    }

    fn visit_extent(
        &self,
        scan: &ExtentScan,
        extent: u32,
        f: &mut dyn FnMut(u32, &Document),
    ) -> Result<()> {
        let index = extent as usize;
        match scan.plan.get(index) {
            Some(ScanSlot::Pinned(shared)) => {
                visit_live(shared, &self.decode_errors, f);
                Ok(())
            }
            Some(ScanSlot::Miss) => {
                let shared = Arc::new(self.load_extent(index).map_err(|e| {
                    DtError::Io(format!("shard extent {index} unreadable: {e}"))
                })?);
                self.cache.admit_scanned(scan, extent, shared.clone());
                visit_live(&shared, &self.decode_errors, f);
                Ok(())
            }
            // Resident at plan time (the loaded tail), or past the plan.
            // Re-check the chain: an append racing the scan may have
            // rolled the tail to Flushed since — fall back to the cache.
            Some(ScanSlot::Resident) | None => {
                let slots = self.slots.read();
                match slots.get(index) {
                    Some(ExtentSlot::Loaded(e)) => {
                        visit_live(e, &self.decode_errors, f);
                        Ok(())
                    }
                    Some(ExtentSlot::Flushed(_)) => {
                        drop(slots);
                        let shared = self.cached_extent(extent).map_err(|e| {
                            DtError::Io(format!("shard extent {index} unreadable: {e}"))
                        })?;
                        visit_live(&shared, &self.decode_errors, f);
                        Ok(())
                    }
                    None => Ok(()),
                }
            }
        }
    }

    fn len(&self) -> u64 {
        self.slots.read().iter().map(|s| s.meta().live as u64).sum()
    }

    fn extent_count(&self) -> usize {
        self.slots.read().len()
    }

    fn used_bytes(&self) -> usize {
        self.slots.read().iter().map(|s| s.meta().used).sum()
    }

    fn last_extent_capacity(&self) -> usize {
        self.slots.read().last().map_or(0, |s| s.meta().capacity)
    }

    fn snapshot(&self) -> Result<Vec<Vec<u8>>> {
        let slots = self.slots.read();
        slots
            .iter()
            .enumerate()
            .map(|(index, s)| match s {
                ExtentSlot::Loaded(e) => Ok(e.to_bytes()),
                // Flushed extents already hold the persist encoding — a
                // cached decoded copy re-serialises to exactly the file
                // bytes (the file was written from `to_bytes`), so a warm
                // extent never touches disk.
                ExtentSlot::Flushed(_) => {
                    if let Some(shared) = self.cache.lookup(index as u32) {
                        return Ok(shared.to_bytes());
                    }
                    self.disk_loads.fetch_add(1, Ordering::Relaxed);
                    let path = self.path_of(index);
                    let mut bytes = Vec::new();
                    fs::File::open(&path)
                        .map_err(|e| DtError::Io(format!("{}: {e}", path.display())))?
                        .read_to_end(&mut bytes)?;
                    Ok(bytes)
                }
            })
            .collect()
    }

    fn restore(&self, serialized: Vec<Vec<u8>>) -> Result<u64> {
        let mut slots = self.slots.write();
        // The whole chain is being replaced — every cached extent is stale.
        self.cache.clear();
        slots.clear();
        let mut live = 0u64;
        for (index, bytes) in serialized.iter().enumerate() {
            let e = Extent::from_bytes(bytes)?;
            live += e.live_count() as u64;
            let meta = ExtentMeta::of(&e);
            self.write_extent_bytes(index, bytes, meta)?;
            slots.push(ExtentSlot::Flushed(meta));
        }
        // A restore that shrinks the chain must clear the old tail's
        // files, or the next open would adopt them and resurrect stale
        // documents past the restored chain.
        self.remove_extent_files_from(serialized.len())?;
        Ok(live)
    }

    fn sync(&self) -> Result<()> {
        let mut slots = self.slots.write();
        if let Some(index) = slots.len().checked_sub(1) {
            if let ExtentSlot::Loaded(tail) = &slots[index] {
                let meta = ExtentMeta::of(tail);
                self.write_extent(index, tail)?;
                // The demoted tail stays readable through the cache
                // instead of being dropped and re-read on the next scan.
                let demoted = std::mem::replace(&mut slots[index], ExtentSlot::Flushed(meta));
                if let ExtentSlot::Loaded(extent) = demoted {
                    self.cache.admit(index as u32, Arc::new(extent));
                }
            }
        }
        Ok(())
    }

    fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    fn cache_stats(&self) -> Option<ExtentCacheStats> {
        let mut stats = self.cache.stats();
        stats.disk_loads = self.disk_loads.load(Ordering::Relaxed);
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use datatamer_model::doc;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dt_backend_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn encoded(i: i64) -> Vec<u8> {
        encode_document(&doc! {"i" => i, "pad" => "x".repeat(24)})
    }

    #[test]
    fn memory_and_file_append_identically() {
        let dir = tempdir("ident");
        let mem = MemoryBackend::new(128);
        let file = FileBackend::open(&dir, 128).unwrap();
        for i in 0..20i64 {
            let e = encoded(i);
            assert_eq!(mem.append(&e).unwrap(), file.append(&e).unwrap(), "doc {i}");
        }
        assert_eq!(mem.len(), file.len());
        assert_eq!(mem.extent_count(), file.extent_count());
        assert_eq!(mem.used_bytes(), file.used_bytes());
        let mut mem_seen = Vec::new();
        mem.visit(&mut |e, s, d| mem_seen.push((e, s, format!("{d:?}")))).unwrap();
        let mut file_seen = Vec::new();
        file.visit(&mut |e, s, d| file_seen.push((e, s, format!("{d:?}")))).unwrap();
        assert_eq!(mem_seen, file_seen, "scan order and content must match");
        assert!(file.flushes() > 0, "rolled extents were written out");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_reopens_the_chain() {
        let dir = tempdir("reopen");
        {
            let file = FileBackend::open(&dir, 128).unwrap();
            for i in 0..12i64 {
                file.append(&encoded(i)).unwrap();
            }
            file.sync().unwrap();
        }
        let reopened = FileBackend::open(&dir, 128).unwrap();
        assert_eq!(reopened.len(), 12);
        let mut seen = Vec::new();
        reopened.visit(&mut |_, _, d| seen.push(d.get("i").cloned().unwrap())).unwrap();
        assert_eq!(seen.len(), 12);
        // And the chain keeps growing from where it left off.
        let (ext, _) = reopened.append(&encoded(99)).unwrap();
        assert!(ext as usize >= reopened.extent_count() - 1);
        assert_eq!(reopened.len(), 13);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_delete_reaches_flushed_extents() {
        let dir = tempdir("del");
        let file = FileBackend::open(&dir, 96).unwrap();
        let spots: Vec<(u32, u32)> =
            (0..10i64).map(|i| file.append(&encoded(i)).unwrap()).collect();
        // Delete one doc from a rolled (flushed) extent and one from the tail.
        let (fe, fs_) = spots[0];
        assert!(file.delete(fe, fs_).unwrap().is_some());
        assert!(file.delete(fe, fs_).unwrap().is_none(), "double delete is a no-op");
        let (te, ts) = *spots.last().unwrap();
        assert!(file.delete(te, ts).unwrap().is_some());
        assert_eq!(file.len(), 8);
        file.sync().unwrap();
        let reopened = FileBackend::open(&dir, 96).unwrap();
        assert_eq!(reopened.len(), 8, "tombstones survive reopen");
        assert!(reopened.get(fe, fs_).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_shrinking_the_chain_clears_surplus_files() {
        // Regression: restore() used to rewrite only the restored prefix,
        // leaving old extent files behind — the next open() adopted them
        // and resurrected stale documents past the restored chain.
        let dir = tempdir("shrink");
        let long_snapshot = {
            let file = FileBackend::open(&dir, 96).unwrap();
            for i in 0..20i64 {
                file.append(&encoded(i)).unwrap();
            }
            file.sync().unwrap();
            assert!(file.extent_count() > 2, "need a multi-extent chain");
            file.snapshot().unwrap()
        };
        let short_snapshot = long_snapshot[..2].to_vec();
        let short_live: u64 = short_snapshot
            .iter()
            .map(|b| Extent::from_bytes(b).unwrap().live_count() as u64)
            .sum();

        let file = FileBackend::open(&dir, 96).unwrap();
        assert_eq!(file.restore(short_snapshot).unwrap(), short_live);
        assert_eq!(file.extent_count(), 2);
        let reopened = FileBackend::open(&dir, 96).unwrap();
        assert_eq!(reopened.extent_count(), 2, "surplus extent files must be gone");
        assert_eq!(reopened.len(), short_live, "no resurrected documents");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_uses_meta_sidecars_and_survives_their_absence() {
        let dir = tempdir("sidecar");
        {
            let file = FileBackend::open(&dir, 96).unwrap();
            for i in 0..12i64 {
                file.append(&encoded(i)).unwrap();
            }
            file.sync().unwrap();
        }
        // Sidecars exist for every flushed extent.
        assert!(dir.join("ext000000.meta").exists());
        // Deleting one sidecar degrades that extent to a full decode, not
        // an error — and a corrupt sidecar behaves the same.
        fs::remove_file(dir.join("ext000000.meta")).unwrap();
        fs::write(dir.join("ext000001.meta"), b"garbage").unwrap();
        let reopened = FileBackend::open(&dir, 96).unwrap();
        assert_eq!(reopened.len(), 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_restore_roundtrip_across_backends() {
        let dir = tempdir("snap");
        let file = FileBackend::open(&dir, 128).unwrap();
        for i in 0..15i64 {
            file.append(&encoded(i)).unwrap();
        }
        let snap = file.snapshot().unwrap();
        let mem = MemoryBackend::new(128);
        assert_eq!(mem.restore(snap).unwrap(), 15);
        let mut a = Vec::new();
        file.visit(&mut |e, s, d| a.push((e, s, format!("{d:?}")))).unwrap();
        let mut b = Vec::new();
        mem.visit(&mut |e, s, d| b.push((e, s, format!("{d:?}")))).unwrap();
        assert_eq!(a, b, "a file snapshot restores byte-identically into memory");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_cache_serves_repeated_scans_without_disk_reads() {
        let dir = tempdir("warmscan");
        {
            let file = FileBackend::open(&dir, 96).unwrap();
            for i in 0..12i64 {
                file.append(&encoded(i)).unwrap();
            }
            file.sync().unwrap();
        }
        // A cold (freshly-opened, unbounded-cache) backend: the first scan
        // loads every extent from disk, the second and third load nothing.
        let file = FileBackend::open_with_cache(&dir, 96, None).unwrap();
        let scan = |f: &FileBackend| {
            let mut n = 0u64;
            f.visit(&mut |_, _, _| n += 1).unwrap();
            n
        };
        assert_eq!(scan(&file), 12);
        let loads_after_first = file.cache_stats().unwrap().disk_loads;
        assert_eq!(loads_after_first, file.extent_count() as u64, "cold scan reads each extent once");
        assert_eq!(scan(&file), 12);
        assert_eq!(scan(&file), 12);
        let stats = file.cache_stats().unwrap();
        assert_eq!(
            stats.disk_loads, loads_after_first,
            "second and subsequent scans perform zero extent file reads"
        );
        assert!(stats.hits >= 2 * file.extent_count() as u64, "{stats:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn point_reads_load_each_extent_once() {
        let dir = tempdir("pointget");
        let spots: Vec<(u32, u32)> = {
            let file = FileBackend::open(&dir, 96).unwrap();
            let spots = (0..12i64).map(|i| file.append(&encoded(i)).unwrap()).collect();
            file.sync().unwrap();
            spots
        };
        let file = FileBackend::open(&dir, 96).unwrap();
        // N point reads into one flushed extent: exactly one disk read.
        let first_extent: Vec<_> = spots.iter().filter(|(e, _)| *e == 0).collect();
        assert!(first_extent.len() > 1, "need several docs in extent 0");
        for _ in 0..5 {
            for (e, s) in &first_extent {
                assert!(file.get(*e, *s).is_some());
            }
        }
        assert_eq!(
            file.cache_stats().unwrap().disk_loads,
            1,
            "same-extent gets share one load"
        );
        // Reads spanning every extent still load each at most once.
        for _ in 0..3 {
            for (e, s) in &spots {
                assert!(file.get(*e, *s).is_some());
            }
        }
        assert_eq!(
            file.cache_stats().unwrap().disk_loads,
            file.extent_count() as u64,
            "one disk read per extent across repeated gets"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decode_errors_are_counted_not_silently_dropped() {
        let mem = MemoryBackend::new(256);
        mem.append(&encoded(1)).unwrap();
        mem.append(b"\xff\xffgarbage that is not a document").unwrap();
        mem.append(&encoded(2)).unwrap();
        let mut seen = 0u64;
        mem.visit(&mut |_, _, _| seen += 1).unwrap();
        assert_eq!(seen, 2, "the two well-formed documents still scan");
        assert_eq!(mem.decode_errors(), 1, "the corrupt one is counted, not dropped");
    }

    #[test]
    fn torn_extent_is_an_error_not_a_crash() {
        // Regression: an unreadable flushed extent used to panic! inside
        // visit (and the tombstone write-back likewise aborted). Both now
        // surface as Err so the pipeline can report them. A *warm* cache
        // legitimately keeps serving its resident copy, so this backend
        // runs with the cache disabled — every visit reads the real file.
        let dir = tempdir("torn");
        let file = FileBackend::open_with_cache(&dir, 96, Some(0)).unwrap();
        for i in 0..10i64 {
            file.append(&encoded(i)).unwrap();
        }
        file.sync().unwrap();
        assert!(file.extent_count() > 1, "need a flushed extent");
        // Tear the first flushed extent (and its sidecar, so nothing masks
        // the damage).
        fs::write(dir.join("ext000000"), b"torn").unwrap();
        let _ = fs::remove_file(dir.join("ext000000.meta"));
        let err = file.visit(&mut |_, _, _| {}).unwrap_err();
        assert!(format!("{err}").contains("extent 0"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
