//! Filters, projections, sorting, and query execution with index selection.

use std::ops::Bound;

use datatamer_model::{Document, Result, Value};

use crate::collection::{Collection, DocId};

/// A predicate over documents, evaluated against dotted paths.
#[derive(Debug, Clone)]
pub enum Filter {
    /// Path value equals the given value (multikey: any array element).
    Eq(String, Value),
    /// Path value differs (or path missing).
    Ne(String, Value),
    /// Path value strictly greater (by `Value::total_cmp`).
    Gt(String, Value),
    /// Path value greater-or-equal.
    Gte(String, Value),
    /// Path value strictly less.
    Lt(String, Value),
    /// Path value less-or-equal.
    Lte(String, Value),
    /// Path value is one of the listed values.
    In(String, Vec<Value>),
    /// String value at path contains the needle, case-insensitively.
    Contains(String, String),
    /// The path resolves to a non-null value.
    Exists(String),
    /// All sub-filters hold.
    And(Vec<Filter>),
    /// Any sub-filter holds.
    Or(Vec<Filter>),
    /// Negation.
    Not(Box<Filter>),
    /// Matches every document.
    True,
}

impl Filter {
    /// Evaluate against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        match self {
            Filter::Eq(path, v) => path_values(doc, path).contains(&v),
            Filter::Ne(path, v) => !path_values(doc, path).contains(&v),
            Filter::Gt(path, v) => cmp_any(doc, path, |o| o == std::cmp::Ordering::Greater, v),
            Filter::Gte(path, v) => cmp_any(doc, path, |o| o != std::cmp::Ordering::Less, v),
            Filter::Lt(path, v) => cmp_any(doc, path, |o| o == std::cmp::Ordering::Less, v),
            Filter::Lte(path, v) => cmp_any(doc, path, |o| o != std::cmp::Ordering::Greater, v),
            Filter::In(path, vs) => path_values(doc, path).iter().any(|x| vs.contains(x)),
            Filter::Contains(path, needle) => {
                let needle = needle.to_lowercase();
                path_values(doc, path).iter().any(|x| match x {
                    Value::Str(s) => s.to_lowercase().contains(&needle),
                    _ => false,
                })
            }
            Filter::Exists(path) => {
                path_values(doc, path).iter().any(|v| !v.is_null())
            }
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
            Filter::True => true,
        }
    }

    /// If this filter (or a conjunct of it) can seed an index probe, return
    /// `(path, probe)`. The rest of the filter still post-filters.
    fn index_probe(&self) -> Option<(&str, IndexProbe<'_>)> {
        match self {
            Filter::Eq(path, v) => Some((path, IndexProbe::Point(v))),
            Filter::In(path, vs) => Some((path, IndexProbe::Set(vs))),
            Filter::Gt(p, v) => Some((p, IndexProbe::Range(Bound::Excluded(v), Bound::Unbounded))),
            Filter::Gte(p, v) => Some((p, IndexProbe::Range(Bound::Included(v), Bound::Unbounded))),
            Filter::Lt(p, v) => Some((p, IndexProbe::Range(Bound::Unbounded, Bound::Excluded(v)))),
            Filter::Lte(p, v) => Some((p, IndexProbe::Range(Bound::Unbounded, Bound::Included(v)))),
            Filter::And(fs) => fs.iter().find_map(|f| f.index_probe()),
            _ => None,
        }
    }
}

enum IndexProbe<'a> {
    Point(&'a Value),
    Set(&'a [Value]),
    Range(Bound<&'a Value>, Bound<&'a Value>),
}

/// True when any value at `path` compares to `v` with an ordering accepted
/// by `accept`. Cross-type comparisons never match ordering predicates.
fn cmp_any(
    doc: &Document,
    path: &str,
    accept: impl Fn(std::cmp::Ordering) -> bool,
    v: &Value,
) -> bool {
    path_values(doc, path).iter().any(|x| {
        let same_family = matches!(
            (x, v),
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_))
                | (Value::Str(_), Value::Str(_))
                | (Value::Bool(_), Value::Bool(_))
        );
        same_family && accept(x.total_cmp(v))
    })
}

/// Values reachable at a dotted path, descending through arrays (multikey).
fn path_values<'a>(doc: &'a Document, path: &str) -> Vec<&'a Value> {
    fn walk<'a>(v: &'a Value, segs: &[&str], out: &mut Vec<&'a Value>) {
        let Some((seg, rest)) = segs.split_first() else {
            match v {
                Value::Array(items) => out.extend(items.iter()),
                other => out.push(other),
            }
            return;
        };
        match v {
            Value::Doc(d) => {
                if let Some(inner) = d.get(seg) {
                    walk(inner, rest, out);
                }
            }
            Value::Array(items) => {
                if let Ok(i) = seg.parse::<usize>() {
                    if let Some(item) = items.get(i) {
                        walk(item, rest, out);
                    }
                } else {
                    for item in items {
                        walk(item, segs, out);
                    }
                }
            }
            _ => {}
        }
    }
    let segs: Vec<&str> = path.split('.').collect();
    let mut out = Vec::new();
    // `split` always yields at least one segment, but `.get` keeps this
    // path panic-free by construction rather than by that invariant.
    if let Some(first) = segs.first().and_then(|s| doc.get(s)) {
        walk(first, &segs[1..], &mut out);
    }
    out
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    Ascending,
    Descending,
}

/// A declarative query: filter + projection + sort + pagination.
///
/// Legacy document-store entry point. The typed AST in `datatamer-query`
/// is the one query engine going forward; its `legacy` module converts
/// this struct (via `predicate_from`) and runs it through the same
/// planner/evaluator used for fused-entity queries, with an equivalence
/// test pinning the two paths together. Prefer that path for new code;
/// `execute` stays for existing callers.
#[derive(Debug, Clone)]
pub struct Query {
    /// Predicate; `Filter::True` scans everything.
    pub filter: Filter,
    /// When non-empty, keep only these top-level paths in results.
    pub projection: Vec<String>,
    /// Optional `(path, order)` sort.
    pub sort: Option<(String, SortOrder)>,
    /// Skip this many result documents (after sort).
    pub skip: usize,
    /// Cap results (after sort and skip); `usize::MAX` = unlimited.
    pub limit: usize,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            filter: Filter::True,
            projection: Vec::new(),
            sort: None,
            skip: 0,
            limit: usize::MAX,
        }
    }
}

impl Query {
    /// Query with just a filter.
    pub fn filtered(filter: Filter) -> Self {
        Query { filter, ..Default::default() }
    }

    /// Builder: set projection.
    pub fn project<S: Into<String>>(mut self, paths: Vec<S>) -> Self {
        self.projection = paths.into_iter().map(Into::into).collect();
        self
    }

    /// Builder: set sort.
    pub fn sort_by(mut self, path: impl Into<String>, order: SortOrder) -> Self {
        self.sort = Some((path.into(), order));
        self
    }

    /// Builder: set limit.
    pub fn take(mut self, n: usize) -> Self {
        self.limit = n;
        self
    }

    /// Builder: set skip.
    pub fn offset(mut self, n: usize) -> Self {
        self.skip = n;
        self
    }

    /// Execute against a collection, returning `(id, document)` pairs.
    ///
    /// Planning: when a conjunct of the filter is a point/set/range predicate
    /// on an indexed path, candidate ids come from the index and the full
    /// filter re-checks each candidate; otherwise all shards are scanned in
    /// parallel (an unreadable extent fails the query).
    pub fn execute(&self, col: &Collection) -> Result<Vec<(DocId, Document)>> {
        let mut results: Vec<(DocId, Document)> = match self.filter.index_probe() {
            Some((path, probe)) => {
                let ids = col.with_index_on_path(path, |idx| match probe {
                    IndexProbe::Point(v) => idx.lookup(v),
                    IndexProbe::Set(vs) => {
                        let mut ids: Vec<DocId> =
                            vs.iter().flat_map(|v| idx.lookup(v)).collect();
                        ids.sort_unstable();
                        ids.dedup();
                        ids
                    }
                    IndexProbe::Range(lo, hi) => idx.range(lo, hi),
                });
                match ids {
                    Some(ids) => {
                        // `try_get` so an unreadable extent fails the query
                        // (like the scan path) instead of shrinking results.
                        let mut hits = Vec::new();
                        for id in ids {
                            if let Some(d) = col.try_get(id)? {
                                if self.filter.matches(&d) {
                                    hits.push((id, d));
                                }
                            }
                        }
                        hits
                    }
                    // No index on that path: fall back to a scan.
                    None => col.parallel_scan(|id, d| {
                        self.filter.matches(d).then(|| (id, d.clone()))
                    })?,
                }
            }
            None => {
                col.parallel_scan(|id, d| self.filter.matches(d).then(|| (id, d.clone())))?
            }
        };

        if let Some((path, order)) = &self.sort {
            results.sort_by(|(_, a), (_, b)| {
                let va = a.get_path(path).cloned().unwrap_or(Value::Null);
                let vb = b.get_path(path).cloned().unwrap_or(Value::Null);
                let ord = va.total_cmp(&vb);
                match order {
                    SortOrder::Ascending => ord,
                    SortOrder::Descending => ord.reverse(),
                }
            });
        }
        let end = self.skip.saturating_add(self.limit).min(results.len());
        let start = self.skip.min(results.len());
        let mut page: Vec<(DocId, Document)> = results.drain(start..end).collect();

        if !self.projection.is_empty() {
            for (_, doc) in page.iter_mut() {
                let mut projected = Document::with_capacity(self.projection.len());
                for p in &self.projection {
                    if let Some(v) = doc.get_path(p) {
                        projected.set(p.clone(), v.clone());
                    }
                }
                *doc = projected;
            }
        }
        Ok(page)
    }

    /// Count matching documents without materialising them.
    pub fn count(&self, col: &Collection) -> Result<usize> {
        Ok(col.parallel_scan(|_, d| self.filter.matches(d).then_some(()))?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionConfig;
    use crate::index::IndexSpec;
    use datatamer_model::doc;

    fn seed() -> Collection {
        let c = Collection::new("shows", CollectionConfig { extent_size: 4096, shards: 4, ..Default::default() })
            .unwrap();
        let rows = [
            ("Matilda", 27i64, "musical"),
            ("Wicked", 99, "musical"),
            ("Hamlet", 45, "play"),
            ("Chicago", 67, "musical"),
            ("Macbeth", 30, "play"),
        ];
        for (name, price, kind) in rows {
            c.insert(&doc! {"name" => name, "price" => price, "kind" => kind}).unwrap();
        }
        c
    }

    #[test]
    fn eq_and_contains() {
        let c = seed();
        let r = Query::filtered(Filter::Eq("kind".into(), "play".into())).execute(&c).unwrap();
        assert_eq!(r.len(), 2);
        let r = Query::filtered(Filter::Contains("name".into(), "mat".into())).execute(&c).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1.get("name"), Some(&Value::from("Matilda")));
    }

    #[test]
    fn range_filters() {
        let c = seed();
        let r = Query::filtered(Filter::And(vec![
            Filter::Gte("price".into(), Value::Int(30)),
            Filter::Lt("price".into(), Value::Int(70)),
        ]))
        .execute(&c).unwrap();
        let names: Vec<String> = r.iter().map(|(_, d)| d.get_text_or_empty("name")).collect();
        assert_eq!(r.len(), 3, "{names:?}");
    }

    #[test]
    fn sort_skip_limit() {
        let c = seed();
        let r = Query::filtered(Filter::True)
            .sort_by("price", SortOrder::Descending)
            .offset(1)
            .take(2)
            .execute(&c).unwrap();
        let prices: Vec<i64> = r.iter().filter_map(|(_, d)| d.get("price")?.as_int()).collect();
        assert_eq!(prices, vec![67, 45]);
    }

    #[test]
    fn projection_keeps_only_listed_paths() {
        let c = seed();
        let r = Query::filtered(Filter::Eq("name".into(), "Matilda".into()))
            .project(vec!["name", "price"])
            .execute(&c).unwrap();
        assert_eq!(r[0].1.len(), 2);
        assert!(r[0].1.get("kind").is_none());
    }

    #[test]
    fn index_and_scan_agree() {
        let c = seed();
        let q = Query::filtered(Filter::Eq("kind".into(), "musical".into()));
        let scan = q.execute(&c).unwrap();
        c.create_index(IndexSpec::new("by_kind", "kind")).unwrap();
        let mut indexed = q.execute(&c).unwrap();
        indexed.sort_by_key(|(id, _)| *id);
        let mut scan = scan;
        scan.sort_by_key(|(id, _)| *id);
        assert_eq!(scan, indexed);
    }

    #[test]
    fn in_filter_uses_index_dedup() {
        let c = seed();
        c.create_index(IndexSpec::new("by_kind", "kind")).unwrap();
        let q = Query::filtered(Filter::In(
            "kind".into(),
            vec!["musical".into(), "play".into(), "musical".into()],
        ));
        assert_eq!(q.execute(&c).unwrap().len(), 5);
    }

    #[test]
    fn and_post_filters_after_index_probe() {
        let c = seed();
        c.create_index(IndexSpec::new("by_kind", "kind")).unwrap();
        let q = Query::filtered(Filter::And(vec![
            Filter::Eq("kind".into(), "musical".into()),
            Filter::Lt("price".into(), Value::Int(50)),
        ]));
        let r = q.execute(&c).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1.get("name"), Some(&Value::from("Matilda")));
    }

    #[test]
    fn ne_not_or_exists() {
        let c = seed();
        assert_eq!(
            Query::filtered(Filter::Ne("kind".into(), "play".into())).count(&c).unwrap(),
            3
        );
        assert_eq!(
            Query::filtered(Filter::Not(Box::new(Filter::Eq("kind".into(), "play".into()))))
                .count(&c).unwrap(),
            3
        );
        assert_eq!(
            Query::filtered(Filter::Or(vec![
                Filter::Eq("name".into(), "Matilda".into()),
                Filter::Eq("name".into(), "Wicked".into()),
            ]))
            .count(&c).unwrap(),
            2
        );
        assert_eq!(Query::filtered(Filter::Exists("price".into())).count(&c).unwrap(), 5);
        assert_eq!(Query::filtered(Filter::Exists("nope".into())).count(&c).unwrap(), 0);
    }

    #[test]
    fn multikey_path_filters() {
        let c = Collection::new("inst", CollectionConfig::default()).unwrap();
        c.insert(&doc! {"entities" => Value::Array(vec![
            Value::Doc(doc! {"type" => "Movie", "name" => "Matilda"}),
            Value::Doc(doc! {"type" => "City", "name" => "London"}),
        ])}).unwrap();
        c.insert(&doc! {"entities" => Value::Array(vec![
            Value::Doc(doc! {"type" => "Person", "name" => "Ann"}),
        ])}).unwrap();
        let q = Query::filtered(Filter::Eq("entities.type".into(), "Movie".into()));
        assert_eq!(q.count(&c).unwrap(), 1);
    }

    trait GetTextOrEmpty {
        fn get_text_or_empty(&self, k: &str) -> String;
    }
    impl GetTextOrEmpty for Document {
        fn get_text_or_empty(&self, k: &str) -> String {
            self.get(k).map(|v| v.to_text()).unwrap_or_default()
        }
    }
}
