//! Declarative shard-routing policies for the coordinator.
//!
//! Routing decides which shard an incoming document lands on. The historic
//! behaviour — a round-robin counter hard-coded inside `Collection` — is
//! now one policy among several:
//!
//! * [`RoutingPolicy::RoundRobin`] — even spread, no data locality; the
//!   default and byte-compatible with the pre-coordinator router.
//! * [`RoutingPolicy::HashKey`] — hash of one attribute's text, so records
//!   sharing a key co-locate on one shard (blocking locality: a later
//!   per-shard consolidation pass sees whole buckets without shuffling).
//! * [`RoutingPolicy::Range`] — byte-range partitioning of the key space,
//!   keeping lexicographic neighbours on the same or adjacent shards
//!   (range scans touch few shards).
//!
//! Hash and range routing are pure functions of the document, so placement
//! is deterministic at any thread count and across batch boundaries.
//! Round-robin depends on arrival order only: a batch reserves its window
//! with one atomic bump, which makes `insert_many` route exactly like the
//! same sequence of single inserts.

use std::sync::atomic::{AtomicU64, Ordering};

use datatamer_model::Document;
use rayon::prelude::*;

/// How the coordinator assigns documents to shards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Arrival-order round robin (the historic default).
    #[default]
    RoundRobin,
    /// FNV-1a hash of `attr`'s text rendering, modulo the shard count.
    /// Records with equal keys always share a shard; documents lacking the
    /// attribute hash the empty string (deterministically shard-stable).
    HashKey {
        /// Dotted document path supplying the routing key.
        attr: String,
    },
    /// Partition the key space by the first byte of `attr`'s text: shard
    /// `⌊first_byte · shards / 256⌋`. Keyless or empty-keyed documents go
    /// to shard 0.
    Range {
        /// Dotted document path supplying the routing key.
        attr: String,
    },
}

impl RoutingPolicy {
    /// Short stable name for reports and bench ids.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round_robin",
            RoutingPolicy::HashKey { .. } => "hash_key",
            RoutingPolicy::Range { .. } => "range",
        }
    }
}

/// FNV-1a over the key bytes — stable across platforms and runs (unlike
/// `RandomState`), which is what keeps hash routing byte-deterministic.
/// Same constants as `datatamer-sim`'s `FnvHasher` (the token interner's
/// hash); duplicated rather than imported because this crate sits below
/// `datatamer-sim` in the workspace graph — keep the two in sync.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Text rendering of the routing key, empty when absent.
fn key_text(doc: &Document, attr: &str) -> String {
    doc.get_path(attr).map(|v| v.to_text()).unwrap_or_default()
}

/// The routing engine: a policy plus the round-robin cursor.
#[derive(Debug)]
pub struct Router {
    policy: RoutingPolicy,
    next: AtomicU64,
}

impl Router {
    /// Router for a policy, cursor at zero.
    pub fn new(policy: RoutingPolicy) -> Self {
        Router { policy, next: AtomicU64::new(0) }
    }

    /// The policy in force.
    pub fn policy(&self) -> &RoutingPolicy {
        &self.policy
    }

    /// Shard for one document.
    pub fn route_one(&self, doc: &Document, shards: usize) -> usize {
        match &self.policy {
            RoutingPolicy::RoundRobin => {
                (self.next.fetch_add(1, Ordering::Relaxed) % shards as u64) as usize
            }
            RoutingPolicy::HashKey { attr } => {
                (fnv1a(key_text(doc, attr).as_bytes()) % shards as u64) as usize
            }
            RoutingPolicy::Range { attr } => range_shard(&key_text(doc, attr), shards),
        }
    }

    /// Shards for a batch, in input order. Round robin reserves the whole
    /// window with one atomic bump so the assignment matches the same
    /// documents arriving one by one; the keyed policies are pure per
    /// document, so their key extraction + hash fans out across the rayon
    /// team (output stays positional — determinism is unaffected).
    pub fn route_many(&self, docs: &[&Document], shards: usize) -> Vec<usize> {
        match &self.policy {
            RoutingPolicy::RoundRobin => {
                let base = self.next.fetch_add(docs.len() as u64, Ordering::Relaxed);
                (0..docs.len())
                    .map(|i| ((base + i as u64) % shards as u64) as usize)
                    .collect()
            }
            _ => docs.par_iter().map(|d| self.route_one(d, shards)).collect(),
        }
    }
}

fn range_shard(key: &str, shards: usize) -> usize {
    match key.as_bytes().first() {
        Some(&b) => (b as usize * shards) >> 8,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::doc;

    #[test]
    fn round_robin_cycles_and_batches_match_singles() {
        let docs: Vec<_> = (0..7i64).map(|i| doc! {"i" => i}).collect();
        let refs: Vec<&Document> = docs.iter().collect();
        let single = Router::new(RoutingPolicy::RoundRobin);
        let one_by_one: Vec<usize> = refs.iter().map(|d| single.route_one(d, 3)).collect();
        let batched = Router::new(RoutingPolicy::RoundRobin).route_many(&refs, 3);
        assert_eq!(one_by_one, batched);
        assert_eq!(batched, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn hash_key_co_locates_equal_keys() {
        let router = Router::new(RoutingPolicy::HashKey { attr: "show".into() });
        let a = doc! {"show" => "Matilda", "price" => 27i64};
        let b = doc! {"show" => "Matilda", "price" => 45i64};
        let c = doc! {"show" => "Wicked"};
        let (sa, sb) = (router.route_one(&a, 8), router.route_one(&b, 8));
        assert_eq!(sa, sb, "same key must co-locate");
        assert!(router.route_one(&c, 8) < 8);
        // Keyless documents are stable too (they hash the empty string).
        let missing = doc! {"other" => 1i64};
        assert_eq!(router.route_one(&missing, 8), router.route_one(&missing, 8));
    }

    #[test]
    fn range_partitions_by_leading_byte() {
        let router = Router::new(RoutingPolicy::Range { attr: "k".into() });
        assert_eq!(router.route_one(&doc! {"k" => "aardvark"}, 4), (b'a' as usize * 4) >> 8);
        assert_eq!(router.route_one(&doc! {"k" => "zebra"}, 4), (b'z' as usize * 4) >> 8);
        assert!(
            router.route_one(&doc! {"k" => "apple"}, 4)
                <= router.route_one(&doc! {"k" => "zoo"}, 4),
            "ranges are ordered"
        );
        assert_eq!(router.route_one(&doc! {"other" => 1i64}, 4), 0, "keyless to shard 0");
        // Shard index always in range, even for the highest byte.
        assert!(range_shard("\u{7f}", 256) < 256);
    }

    #[test]
    fn keyed_routing_ignores_the_cursor() {
        let router = Router::new(RoutingPolicy::HashKey { attr: "k".into() });
        let d = doc! {"k" => "stable"};
        let first = router.route_one(&d, 5);
        for _ in 0..10 {
            assert_eq!(router.route_one(&d, 5), first, "no hidden arrival-order state");
        }
    }
}
