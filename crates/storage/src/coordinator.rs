//! The shard coordinator: routing + scatter/gather over pluggable backends.
//!
//! [`ShardCoordinator`] owns one [`ShardBackend`] per shard and a
//! [`Router`]. It is the layer `Collection` delegates to: single inserts
//! route and append; batches scatter across shards (encode in parallel,
//! route in input order, one lock acquisition per shard, shards appending
//! concurrently) and gather `DocId`s back in input order; scans fan out one
//! rayon task per **(shard, extent)** — flushed extents decode concurrently
//! — and stitch results back shard-major/extent-major, so output is
//! byte-identical at any thread count and under any backend mix. Cache
//! hit/miss resolution happens at plan time, sequentially, in shard order
//! ([`ShardBackend::begin_extent_scan`]), so the cache counters carried on
//! [`StorageReport`] are deterministic too.

use rayon::prelude::*;

use datatamer_model::{Document, Result};

use crate::backend::{BackendKind, ShardBackend};
use crate::cache::{ExtentCacheStats, ExtentScan};
use crate::collection::DocId;
use crate::encode::encode_document;
use crate::routing::{Router, RoutingPolicy};

/// Per-shard shape of one collection — the unit of [`StorageReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStorage {
    /// Substrate the shard lives on.
    pub backend: BackendKind,
    /// Live documents on this shard.
    pub docs: u64,
    /// Extents in this shard's chain.
    pub extents: usize,
    /// Documents skipped because their bytes failed to decode — a nonzero
    /// value means reads silently saw a smaller corpus than was stored.
    pub decode_errors: u64,
    /// Extent-cache occupancy and counters, for shards that serve reads
    /// through an [`crate::cache::ExtentCache`] (`None` on memory shards).
    pub cache: Option<ExtentCacheStats>,
}

/// How one collection's data is distributed: per-shard doc/extent counts,
/// the routing policy, and flush traffic. Threaded into the pipeline's
/// stage reports so distribution skew and backend I/O are visible per run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageReport {
    /// The collection reported on.
    pub collection: String,
    /// Routing policy name (`round_robin` / `hash_key` / `range`).
    pub routing: &'static str,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStorage>,
    /// Extent writes to stable storage (0 for all-memory collections).
    pub flushes: u64,
}

impl StorageReport {
    /// Total live documents across shards.
    pub fn docs(&self) -> u64 {
        self.shards.iter().map(|s| s.docs).sum()
    }

    /// Largest shard's doc count — `max / mean` reads as routing skew.
    pub fn largest_shard_docs(&self) -> u64 {
        self.shards.iter().map(|s| s.docs).max().unwrap_or(0)
    }

    /// Documents skipped due to decode failures, summed across shards.
    pub fn decode_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.decode_errors).sum()
    }

    /// Extent-cache counters summed across shards (`None` when no shard
    /// serves reads through a cache — all-memory collections). `budget` is
    /// the per-shard value (every shard gets the same configured budget).
    pub fn cache_totals(&self) -> Option<ExtentCacheStats> {
        let mut total: Option<ExtentCacheStats> = None;
        for shard in &self.shards {
            let Some(c) = shard.cache else { continue };
            let t = total.get_or_insert(ExtentCacheStats {
                budget: c.budget,
                ..Default::default()
            });
            t.occupancy_bytes += c.occupancy_bytes;
            t.cached_extents += c.cached_extents;
            t.hits += c.hits;
            t.misses += c.misses;
            t.evictions += c.evictions;
            t.disk_loads += c.disk_loads;
        }
        total
    }

    /// Flatten the report into `(name, value)` counter pairs — the shape
    /// the serving layer's stats endpoint and logs consume.
    pub fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![
            ("storage.docs", self.docs()),
            ("storage.largest_shard_docs", self.largest_shard_docs()),
            ("storage.shards", self.shards.len() as u64),
            ("storage.flushes", self.flushes),
            ("storage.decode_errors", self.decode_errors()),
            (
                "storage.extents",
                self.shards.iter().map(|s| s.extents as u64).sum(),
            ),
        ];
        if let Some(c) = self.cache_totals() {
            out.push(("storage.cache_hits", c.hits));
            out.push(("storage.cache_misses", c.misses));
            out.push(("storage.cache_evictions", c.evictions));
            out.push(("storage.cache_disk_loads", c.disk_loads));
            out.push(("storage.cache_occupancy_bytes", c.occupancy_bytes as u64));
        }
        out
    }
}

/// Routing plus per-shard backends; see the module docs.
pub struct ShardCoordinator {
    backends: Vec<Box<dyn ShardBackend>>,
    router: Router,
}

impl ShardCoordinator {
    /// Coordinator over `backends` (one per shard, at most 256 — the
    /// `DocId` shard field is 8 bits) with `routing` in force.
    pub fn new(backends: Vec<Box<dyn ShardBackend>>, routing: RoutingPolicy) -> Self {
        assert!(
            !backends.is_empty() && backends.len() <= 256,
            "shard count {} out of range 1..=256",
            backends.len()
        );
        ShardCoordinator { backends, router: Router::new(routing) }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.backends.len()
    }

    /// The routing policy in force.
    pub fn routing(&self) -> &RoutingPolicy {
        self.router.policy()
    }

    /// Live documents across all shards.
    pub fn len(&self) -> u64 {
        self.backends.iter().map(|b| b.len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Route and append one document.
    pub fn insert(&self, doc: &Document) -> Result<DocId> {
        let shard = self.router.route_one(doc, self.backends.len());
        let encoded = encode_document(doc);
        let (extent, slot) = self.backends[shard].append(&encoded)?;
        Ok(DocId::pack(shard as u8, extent, slot))
    }

    /// Scatter a batch across shards and gather ids in input order.
    ///
    /// Documents encode in parallel, the router assigns shards in input
    /// order (round robin reserves its window with one atomic bump, so the
    /// assignment matches repeated [`ShardCoordinator::insert`] calls),
    /// and each shard's documents append under a single lock acquisition
    /// while shards proceed concurrently.
    pub fn insert_many(&self, docs: &[&Document]) -> Result<Vec<DocId>> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let encoded: Vec<Vec<u8>> = docs.par_iter().map(|d| encode_document(d)).collect();
        let assignment = self.router.route_many(docs, self.backends.len());
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.backends.len()];
        for (i, &shard) in assignment.iter().enumerate() {
            per_shard[shard].push(i);
        }

        let placed: Vec<Result<Vec<(usize, DocId)>>> = (0..self.backends.len())
            .into_par_iter()
            .map(|shard_no| {
                let doc_indexes = &per_shard[shard_no];
                if doc_indexes.is_empty() {
                    return Ok(Vec::new());
                }
                let batch: Vec<&[u8]> =
                    doc_indexes.iter().map(|&i| encoded[i].as_slice()).collect();
                let spots = self.backends[shard_no].append_batch(&batch)?;
                Ok(doc_indexes
                    .iter()
                    .zip(spots)
                    .map(|(&i, (extent, slot))| {
                        (i, DocId::pack(shard_no as u8, extent, slot))
                    })
                    .collect())
            })
            .collect();

        let mut ids = vec![DocId(0); docs.len()];
        for shard_result in placed {
            for (i, id) in shard_result? {
                ids[i] = id;
            }
        }
        Ok(ids)
    }

    /// Point read: exactly one shard is touched.
    pub fn get(&self, id: DocId) -> Option<Document> {
        self.backends.get(id.shard() as usize)?.get(id.extent(), id.slot())
    }

    /// Point read that surfaces unreadable extents as errors; `Ok(None)`
    /// strictly means "no live document at that id".
    pub fn try_get(&self, id: DocId) -> Result<Option<Document>> {
        match self.backends.get(id.shard() as usize) {
            None => Ok(None),
            Some(b) => b.try_get(id.extent(), id.slot()),
        }
    }

    /// Tombstone a document, returning it when it was live. A failed
    /// tombstone write-back on a file shard surfaces as the error.
    pub fn delete(&self, id: DocId) -> Result<Option<Document>> {
        match self.backends.get(id.shard() as usize) {
            None => Ok(None),
            Some(b) => b.delete(id.extent(), id.slot()),
        }
    }

    /// Sequentially visit every live document, shard-major. An unreadable
    /// extent stops the walk with its error.
    pub fn for_each(&self, mut f: impl FnMut(DocId, &Document)) -> Result<()> {
        for (shard_no, backend) in self.backends.iter().enumerate() {
            backend.visit(&mut |extent, slot, doc| {
                f(DocId::pack(shard_no as u8, extent, slot), doc);
            })?;
        }
        Ok(())
    }

    /// Scatter/gather scan: one rayon task per **(shard, extent)** —
    /// flushed extents decode concurrently — with outputs stitched back
    /// shard-major then extent then slot, deterministic at any thread
    /// count. Each shard's scan is planned sequentially up front
    /// ([`ShardBackend::begin_extent_scan`]), so cache hits are pinned and
    /// counted before any fan-out. Any extent's read failure fails the
    /// scan (first error in (shard, extent) order, so the reported error
    /// is thread-count-deterministic too).
    pub fn parallel_scan<T, F>(&self, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(DocId, &Document) -> Option<T> + Sync,
    {
        let plans: Vec<ExtentScan> =
            self.backends.iter().map(|b| b.begin_extent_scan()).collect();
        let mut tasks: Vec<(usize, u32)> = Vec::new();
        for (shard_no, plan) in plans.iter().enumerate() {
            for extent in 0..plan.extent_count() as u32 {
                tasks.push((shard_no, extent));
            }
        }
        let per_extent: Vec<Result<Vec<T>>> = tasks
            .par_iter()
            .map(|&(shard_no, extent)| {
                let mut out = Vec::new();
                self.backends[shard_no].visit_extent(
                    &plans[shard_no],
                    extent,
                    &mut |slot, doc| {
                        let id = DocId::pack(shard_no as u8, extent, slot);
                        if let Some(t) = f(id, doc) {
                            out.push(t);
                        }
                    },
                )?;
                Ok(out)
            })
            .collect();
        let mut all = Vec::new();
        for chunk in per_extent {
            all.extend(chunk?);
        }
        Ok(all)
    }

    /// Total extents across shards.
    pub fn extent_count(&self) -> usize {
        self.backends.iter().map(|b| b.extent_count()).sum()
    }

    /// Total encoded-document bytes across shards.
    pub fn used_bytes(&self) -> usize {
        self.backends.iter().map(|b| b.used_bytes()).sum()
    }

    /// Capacity of the final extent of the last shard that has one (the
    /// stats convention inherited from the pre-coordinator collection).
    pub fn last_extent_capacity(&self) -> usize {
        self.backends
            .iter()
            .rev()
            .map(|b| b.last_extent_capacity())
            .find(|&c| c > 0)
            .unwrap_or(0)
    }

    /// Serialise every shard's chain (persist encoding), shard order.
    pub fn snapshot_extents(&self) -> Result<Vec<Vec<Vec<u8>>>> {
        self.backends.iter().map(|b| b.snapshot()).collect()
    }

    /// Replace every shard's chain from a snapshot; returns total live.
    pub fn restore_extents(&self, shard_extents: Vec<Vec<Vec<u8>>>) -> Result<u64> {
        let mut live = 0u64;
        for (backend, extents) in self.backends.iter().zip(shard_extents) {
            live += backend.restore(extents)?;
        }
        Ok(live)
    }

    /// Flush every backend's volatile tail to stable storage.
    pub fn sync(&self) -> Result<()> {
        for backend in &self.backends {
            backend.sync()?;
        }
        Ok(())
    }

    /// The distribution report for this coordinator's collection.
    pub fn report(&self, collection: &str) -> StorageReport {
        StorageReport {
            collection: collection.to_owned(),
            routing: self.router.policy().name(),
            shards: self
                .backends
                .iter()
                .map(|b| ShardStorage {
                    backend: b.kind(),
                    docs: b.len(),
                    extents: b.extent_count(),
                    decode_errors: b.decode_errors(),
                    cache: b.cache_stats(),
                })
                .collect(),
            flushes: self.backends.iter().map(|b| b.flushes()).sum(),
        }
    }
}

impl std::fmt::Debug for ShardCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCoordinator")
            .field("shards", &self.backends.len())
            .field("routing", self.router.policy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use datatamer_model::doc;

    fn memory_coordinator(shards: usize, routing: RoutingPolicy) -> ShardCoordinator {
        let backends: Vec<Box<dyn ShardBackend>> = (0..shards)
            .map(|_| Box::new(MemoryBackend::new(512)) as Box<dyn ShardBackend>)
            .collect();
        ShardCoordinator::new(backends, routing)
    }

    #[test]
    fn hash_routing_co_locates_and_scatter_matches_singles() {
        let docs: Vec<_> = (0..40i64)
            .map(|i| doc! {"show" => format!("show{}", i % 5), "i" => i})
            .collect();
        let refs: Vec<&Document> = docs.iter().collect();
        let routing = RoutingPolicy::HashKey { attr: "show".into() };

        let singles = memory_coordinator(4, routing.clone());
        let one_by_one: Vec<DocId> =
            refs.iter().map(|d| singles.insert(d).unwrap()).collect();
        let batched = memory_coordinator(4, routing);
        let ids = batched.insert_many(&refs).unwrap();
        assert_eq!(one_by_one, ids, "keyed batches route like singles");

        // Equal keys share a shard.
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                if i % 5 == j % 5 {
                    assert_eq!(a.shard(), b.shard(), "docs {i} and {j} share a key");
                }
            }
        }
        assert_eq!(batched.len(), 40);
    }

    #[test]
    fn report_shapes_the_distribution() {
        let coordinator = memory_coordinator(3, RoutingPolicy::RoundRobin);
        let docs: Vec<_> = (0..9i64).map(|i| doc! {"i" => i}).collect();
        let refs: Vec<&Document> = docs.iter().collect();
        coordinator.insert_many(&refs).unwrap();
        let report = coordinator.report("things");
        assert_eq!(report.collection, "things");
        assert_eq!(report.routing, "round_robin");
        assert_eq!(report.shards.len(), 3);
        assert!(report.shards.iter().all(|s| s.docs == 3), "{report:?}");
        assert!(report.shards.iter().all(|s| s.backend == BackendKind::Memory));
        assert_eq!(report.docs(), 9);
        assert_eq!(report.largest_shard_docs(), 3);
        assert_eq!(report.flushes, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_shards_panic() {
        memory_coordinator(0, RoutingPolicy::RoundRobin);
    }
}
