//! Compact binary encoding of documents (BSON-like, hand-rolled).
//!
//! Layout: every value starts with a one-byte tag. Lengths and counts are
//! LEB128 varints. Strings are UTF-8 bytes. Documents are sequences of
//! `(name, value)` pairs. Sizes reported by the stats module are sizes of
//! this encoding — extents store exactly these bytes.

use bytes::{Buf, BufMut};
use datatamer_model::{Document, DtError, Result, Value};

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_ARRAY: u8 = 0x06;
const TAG_DOC: u8 = 0x07;

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a LEB128 varint.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DtError::Decode("varint: unexpected end of input".into()));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(DtError::Decode("varint: overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag-encode a signed integer so small magnitudes stay small.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Number of bytes `v` takes as a varint.
pub fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Append one value.
pub fn encode_value(buf: &mut impl BufMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            put_varint(buf, zigzag(*i));
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        Value::Array(items) => {
            buf.put_u8(TAG_ARRAY);
            put_varint(buf, items.len() as u64);
            for item in items {
                encode_value(buf, item);
            }
        }
        Value::Doc(d) => {
            buf.put_u8(TAG_DOC);
            put_varint(buf, d.len() as u64);
            for (k, val) in d.iter() {
                put_varint(buf, k.len() as u64);
                buf.put_slice(k.as_bytes());
                encode_value(buf, val);
            }
        }
    }
}

/// Decode one value.
pub fn decode_value(buf: &mut impl Buf) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(DtError::Decode("value: unexpected end of input".into()));
    }
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(unzigzag(get_varint(buf)?))),
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(DtError::Decode("float: truncated".into()));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        TAG_STR => Ok(Value::Str(get_string(buf)?)),
        TAG_ARRAY => {
            let n = get_varint(buf)? as usize;
            if n > buf.remaining() {
                return Err(DtError::Decode(format!("array: claimed {n} items exceeds input")));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(buf)?);
            }
            Ok(Value::Array(items))
        }
        TAG_DOC => {
            let n = get_varint(buf)? as usize;
            if n > buf.remaining() {
                return Err(DtError::Decode(format!("doc: claimed {n} fields exceeds input")));
            }
            let mut d = Document::with_capacity(n);
            for _ in 0..n {
                let key = get_string(buf)?;
                let val = decode_value(buf)?;
                d.set(key, val);
            }
            Ok(Value::Doc(d))
        }
        tag => Err(DtError::Decode(format!("unknown tag 0x{tag:02x}"))),
    }
}

fn get_string(buf: &mut impl Buf) -> Result<String> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DtError::Decode("string: truncated".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| DtError::Decode(format!("string: invalid utf8: {e}")))
}

/// Encode a document to a fresh byte vector.
pub fn encode_document(doc: &Document) -> Vec<u8> {
    let mut buf = Vec::with_capacity(doc.approx_size());
    encode_value(&mut buf, &Value::Doc(doc.clone()));
    buf
}

/// Decode a document from bytes (must be a `Doc`-tagged value).
pub fn decode_document(mut bytes: &[u8]) -> Result<Document> {
    match decode_value(&mut bytes)? {
        Value::Doc(d) => Ok(d),
        other => Err(DtError::Type { expected: "doc", got: other.type_name() }),
    }
}

/// Exact encoded size of a value, without allocating.
pub fn encoded_len(v: &Value) -> usize {
    match v {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(i) => 1 + varint_len(zigzag(*i)),
        Value::Float(_) => 9,
        Value::Str(s) => 1 + varint_len(s.len() as u64) + s.len(),
        Value::Array(items) => {
            1 + varint_len(items.len() as u64)
                + items.iter().map(encoded_len).sum::<usize>()
        }
        Value::Doc(d) => {
            1 + varint_len(d.len() as u64)
                + d.iter()
                    .map(|(k, val)| varint_len(k.len() as u64) + k.len() + encoded_len(val))
                    .sum::<usize>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::doc;

    fn roundtrip(v: Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&mut buf, &v);
        assert_eq!(buf.len(), encoded_len(&v), "encoded_len must be exact for {v}");
        let mut slice = buf.as_slice();
        let out = decode_value(&mut slice).unwrap();
        assert!(slice.is_empty(), "decoder must consume all bytes");
        out
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(2.5),
            Value::Float(f64::INFINITY),
            Value::Str(String::new()),
            Value::Str("Matilda — the musical €27".into()),
        ] {
            assert_eq!(roundtrip(v.clone()), v);
        }
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let v = roundtrip(Value::Float(f64::NAN));
        assert!(matches!(v, Value::Float(f) if f.is_nan()), "expected NaN float, got {v:?}");
    }

    #[test]
    fn nested_document_roundtrips() {
        let d = doc! {
            "show" => "Matilda",
            "gross" => 960_998i64,
            "pct" => 0.93,
            "entities" => Value::Array(vec![
                Value::Doc(doc! {"type" => "Movie", "name" => "Matilda"}),
                Value::Null,
            ]),
            "meta" => Value::Doc(doc! {"lang" => "en"})
        };
        let bytes = encode_document(&d);
        assert_eq!(decode_document(&bytes).unwrap(), d);
        assert_eq!(bytes.len(), encoded_len(&Value::Doc(d)));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v));
            assert_eq!(get_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn small_ints_encode_small() {
        assert_eq!(encoded_len(&Value::Int(3)), 2);
        assert_eq!(encoded_len(&Value::Int(-3)), 2);
        assert!(encoded_len(&Value::Int(i64::MAX)) <= 11);
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let d = doc! {"a" => "hello", "b" => 42i64};
        let bytes = encode_document(&d);
        for cut in 0..bytes.len() {
            let r = decode_document(&bytes[..cut]);
            assert!(r.is_err(), "decoding {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn garbage_tag_errors() {
        let r = decode_value(&mut [0xFFu8].as_slice());
        assert!(matches!(r, Err(DtError::Decode(_))));
    }

    #[test]
    fn claimed_length_overflow_rejected() {
        // Array claiming u64::MAX items must not attempt allocation.
        let mut buf = vec![0x06u8];
        put_varint(&mut buf, u64::MAX);
        assert!(decode_value(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn non_doc_top_level_rejected_by_decode_document() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Int(5));
        assert!(matches!(decode_document(&buf), Err(DtError::Type { .. })));
    }
}
