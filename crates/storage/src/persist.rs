//! Saving and loading a store to a directory of extent files.
//!
//! Layout: `<dir>/<collection>/manifest` holds the config and index specs;
//! `<dir>/<collection>/shard<NN>.ext<MM>` holds one serialised extent each.
//! The format is the crate's own binary encoding end to end — no external
//! serialisation.

use std::fs;
use std::io::{Read, Write};
use std::path::Path;

use datatamer_model::{DtError, Result};

use crate::collection::{Collection, CollectionConfig};
use crate::encode::{get_varint, put_varint};
use crate::index::IndexSpec;
use crate::store::Store;

const MANIFEST_MAGIC: &[u8; 8] = b"DTMANIF1";

fn write_manifest(
    path: &Path,
    config: &CollectionConfig,
    shard_extent_counts: &[usize],
    specs: &[IndexSpec],
) -> Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MANIFEST_MAGIC);
    put_varint(&mut buf, config.extent_size as u64);
    put_varint(&mut buf, config.shards as u64);
    for n in shard_extent_counts {
        put_varint(&mut buf, *n as u64);
    }
    put_varint(&mut buf, specs.len() as u64);
    for s in specs {
        put_string(&mut buf, &s.name);
        put_string(&mut buf, &s.path);
    }
    fs::File::create(path)?.write_all(&buf)?;
    Ok(())
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn read_string(buf: &mut &[u8]) -> Result<String> {
    let len = get_varint(buf)? as usize;
    if buf.len() < len {
        return Err(DtError::Decode("manifest string truncated".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|e| DtError::Decode(format!("manifest utf8: {e}")))?;
    *buf = &buf[len..];
    Ok(s)
}

struct Manifest {
    config: CollectionConfig,
    shard_extent_counts: Vec<usize>,
    specs: Vec<IndexSpec>,
}

fn read_manifest(path: &Path) -> Result<Manifest> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 8 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(DtError::Decode("bad manifest magic".into()));
    }
    let mut buf = &bytes[8..];
    let extent_size = get_varint(&mut buf)? as usize;
    let shards = get_varint(&mut buf)? as usize;
    if shards == 0 || shards > 256 {
        return Err(DtError::Decode(format!("manifest shard count {shards} invalid")));
    }
    let mut shard_extent_counts = Vec::with_capacity(shards);
    for _ in 0..shards {
        shard_extent_counts.push(get_varint(&mut buf)? as usize);
    }
    let nspecs = get_varint(&mut buf)? as usize;
    let mut specs = Vec::with_capacity(nspecs.min(1024));
    for _ in 0..nspecs {
        let name = read_string(&mut buf)?;
        let path = read_string(&mut buf)?;
        specs.push(IndexSpec::new(name, path));
    }
    // The manifest predates the coordinator and stays format-stable: it
    // records extent size and shard count only, so loaded collections come
    // back on the default backend/routing (in-process, round robin) —
    // callers wanting a file-backed reopen use the file backend's own
    // directory adoption instead of this snapshot path.
    Ok(Manifest {
        config: CollectionConfig { extent_size, shards, ..Default::default() },
        shard_extent_counts,
        specs,
    })
}

/// Save every collection of `store` under `dir` (created if absent).
pub fn save_store(store: &Store, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir)?;
    for name in store.collection_names() {
        // The name list and the collection map can in principle drift
        // under a concurrent drop; surface that as an error, not a panic.
        let col = store
            .collection(&name)
            .ok_or_else(|| DtError::NotFound(format!("listed collection `{name}` disappeared")))?;
        save_collection(&col, &dir.join(&name))?;
    }
    Ok(())
}

/// Save a single collection under `dir`.
pub fn save_collection(col: &Collection, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir)?;
    let snapshots = col.snapshot_extents()?;
    let counts: Vec<usize> = snapshots.iter().map(Vec::len).collect();
    write_manifest(&dir.join("manifest"), col.config(), &counts, &col.index_specs())?;
    for (shard_no, extents) in snapshots.iter().enumerate() {
        for (ext_no, bytes) in extents.iter().enumerate() {
            let fname = dir.join(format!("shard{shard_no:03}.ext{ext_no:06}"));
            fs::File::create(fname)?.write_all(bytes)?;
        }
    }
    Ok(())
}

/// Load a collection from `dir`, rebuilding indexes from the manifest.
pub fn load_collection(name: &str, dir: &Path) -> Result<Collection> {
    let manifest = read_manifest(&dir.join("manifest"))?;
    let mut shard_extents = Vec::with_capacity(manifest.config.shards);
    for (shard_no, n) in manifest.shard_extent_counts.iter().enumerate() {
        let mut extents = Vec::with_capacity(*n);
        for ext_no in 0..*n {
            let fname = dir.join(format!("shard{shard_no:03}.ext{ext_no:06}"));
            let mut bytes = Vec::new();
            fs::File::open(&fname)
                .map_err(|e| DtError::Io(format!("{}: {e}", fname.display())))?
                .read_to_end(&mut bytes)?;
            extents.push(bytes);
        }
        shard_extents.push(extents);
    }
    Collection::restore(name.to_owned(), manifest.config, shard_extents, manifest.specs)
}

/// Load a whole store: every subdirectory of `dir` becomes a collection.
pub fn load_store(namespace: &str, dir: &Path) -> Result<Store> {
    let store = Store::new(namespace);
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    for name in names {
        let col = load_collection(&name, &dir.join(&name))?;
        store.adopt(name, col);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexSpec;
    use crate::query::{Filter, Query};
    use datatamer_model::{doc, Value};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dt_persist_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn collection_roundtrip_with_indexes() {
        let dir = tempdir("col");
        let col = Collection::new(
            "shows",
            CollectionConfig { extent_size: 512, shards: 3, ..Default::default() },
        )
        .unwrap();
        for i in 0..30i64 {
            col.insert(&doc! {"i" => i, "kind" => if i % 2 == 0 { "even" } else { "odd" }})
                .unwrap();
        }
        col.create_index(IndexSpec::new("by_kind", "kind")).unwrap();
        save_collection(&col, &dir).unwrap();

        let restored = load_collection("shows", &dir).unwrap();
        assert_eq!(restored.len(), 30);
        assert_eq!(restored.index_count(), 1);
        let evens = Query::filtered(Filter::Eq("kind".into(), "even".into()))
            .execute(&restored)
            .unwrap();
        assert_eq!(evens.len(), 15);
        let stats = restored.stats("dt");
        assert_eq!(stats.count, 30);
        assert!(stats.total_index_size > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_roundtrip() {
        let dir = tempdir("store");
        let store = Store::new("dt");
        let a = store.create_collection("instance", CollectionConfig::default()).unwrap();
        a.insert(&doc! {"fragment" => "Matilda grossed 960,998"}).unwrap();
        let b = store.create_collection("entity", CollectionConfig::default()).unwrap();
        b.insert(&doc! {"type" => "Movie", "name" => "Matilda"}).unwrap();
        b.create_index(IndexSpec::new("by_type", "type")).unwrap();
        save_store(&store, &dir).unwrap();

        let loaded = load_store("dt", &dir).unwrap();
        assert_eq!(loaded.collection_names(), vec!["entity", "instance"]);
        let ent = loaded.collection("entity").unwrap();
        assert_eq!(ent.len(), 1);
        let hits = ent.with_index("by_type", |i| i.lookup(&Value::from("Movie"))).unwrap();
        assert_eq!(hits.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_corrupt_files_error() {
        let dir = tempdir("corrupt");
        assert!(load_collection("x", &dir).is_err());
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("manifest"), b"NOTMAGIC").unwrap();
        assert!(load_collection("x", &dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
