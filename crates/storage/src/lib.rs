//! Sharded semi-structured storage engine.
//!
//! The paper's text-side substrate is a "Web-scale distributed semi-structured
//! storage engine" — it reports MongoDB-style collection statistics
//! (`count`, `numExtents`, `nindexes`, `lastExtentSize`, `totalIndexSize`,
//! Tables I–II). This crate is that substrate, built from scratch:
//!
//! * [`encode`] — compact binary document encoding (BSON-like) on [`bytes`].
//! * [`extent`] — fixed-size append-only extents; a collection grows by
//!   allocating new extents exactly as the paper's 2 GB extents do (the
//!   extent size is configurable so experiments can run at reduced scale
//!   while preserving the count : extent ratios).
//! * [`backend`] — pluggable shard substrates behind the [`ShardBackend`]
//!   trait: [`backend::MemoryBackend`] (in-process extents) and
//!   [`backend::FileBackend`] (out-of-core: only the tail extent resident,
//!   full extents flushed to one file each and served back through the
//!   extent cache).
//! * [`cache`] — the [`ExtentCache`]: a byte-budget LRU of decoded extents
//!   with deterministic hit/miss/eviction accounting, so repeated scans of
//!   a file-backed collection hit memory instead of disk.
//! * [`routing`] — declarative shard routing ([`RoutingPolicy`]): round
//!   robin, key-hash co-location, or byte-range partitioning — pure
//!   functions of the document (or arrival order), so placement is
//!   deterministic at any thread count.
//! * [`coordinator`] — the [`ShardCoordinator`]: one backend per shard
//!   plus a router, running rayon scatter/gather for batch inserts and
//!   parallel scans, and reporting per-shard distribution
//!   ([`StorageReport`]).
//! * [`collection`] — sharded collections: a coordinator wrapped with
//!   secondary indexes, stats, and the packed `(shard, extent, slot)`
//!   [`DocId`] scheme.
//! * [`index`] — ordered secondary indexes (optionally multikey) over dotted
//!   paths, with byte-accurate size accounting.
//! * [`query`] — filters, projections, sorts, index selection, and parallel
//!   shard scans.
//! * [`stats`] — the `db.<coll>.stats()` report of Tables I and II.
//! * [`store`] — a namespace ("dt") holding collections. Collection names
//!   are validated at creation: path separators, `..`, and NUL are
//!   rejected before a name can become an on-disk directory.
//! * [`persist`] — save/load a store to a directory of extent files.
//! * [`delta_log`] — checksummed, torn-tail-tolerant append-only log of
//!   accepted delta batches, so a restarted consolidation session replays
//!   instead of re-consolidating.

pub mod backend;
pub mod cache;
pub mod collection;
pub mod coordinator;
pub mod delta_log;
pub mod encode;
pub mod extent;
pub mod index;
pub mod persist;
pub mod query;
pub mod routing;
pub mod stats;
pub mod store;

pub use backend::{BackendConfig, BackendKind, FileBackend, MemoryBackend, ShardBackend};
pub use cache::{ExtentCache, ExtentCacheStats, ExtentScan, DEFAULT_EXTENT_CACHE_BUDGET};
pub use collection::{Collection, CollectionConfig, DocId};
pub use delta_log::DeltaLog;
pub use coordinator::{ShardCoordinator, ShardStorage, StorageReport};
pub use index::IndexSpec;
pub use query::{Filter, Query, SortOrder};
pub use routing::RoutingPolicy;
pub use stats::CollectionStats;
pub use store::Store;
