//! Sharded semi-structured storage engine.
//!
//! The paper's text-side substrate is a "Web-scale distributed semi-structured
//! storage engine" — it reports MongoDB-style collection statistics
//! (`count`, `numExtents`, `nindexes`, `lastExtentSize`, `totalIndexSize`,
//! Tables I–II). This crate is that substrate, built from scratch:
//!
//! * [`encode`] — compact binary document encoding (BSON-like) on [`bytes`].
//! * [`extent`] — fixed-size append-only extents; a collection grows by
//!   allocating new extents exactly as the paper's 2 GB extents do (the
//!   extent size is configurable so experiments can run at reduced scale
//!   while preserving the count : extent ratios).
//! * [`collection`] — sharded collections: inserts route to shards, each
//!   shard owns a chain of extents behind its own lock.
//! * [`index`] — ordered secondary indexes (optionally multikey) over dotted
//!   paths, with byte-accurate size accounting.
//! * [`query`] — filters, projections, sorts, index selection, and parallel
//!   shard scans.
//! * [`stats`] — the `db.<coll>.stats()` report of Tables I and II.
//! * [`store`] — a namespace ("dt") holding collections.
//! * [`persist`] — save/load a store to a directory of extent files.

pub mod collection;
pub mod encode;
pub mod extent;
pub mod index;
pub mod persist;
pub mod query;
pub mod stats;
pub mod store;

pub use collection::{Collection, CollectionConfig, DocId};
pub use index::IndexSpec;
pub use query::{Filter, Query, SortOrder};
pub use stats::CollectionStats;
pub use store::Store;
