//! Append-only delta-batch log: the restart story for incremental ER.
//!
//! Every delta batch a resident consolidation session accepts is appended
//! here as one *frame*; a restarted process rebuilds the resident state by
//! replaying the frames over the base corpus instead of re-consolidating
//! from scratch. The file format follows the [`crate::persist`] idiom —
//! a magic header and varint-framed payloads — with two additions that a
//! crash-tolerant log needs:
//!
//! * **Per-frame checksum.** Each frame carries an FNV-1a 64 of its
//!   payload, so a torn or bit-rotted frame is detected on open rather
//!   than decoded into garbage records.
//! * **Torn-tail truncation.** A process killed mid-append leaves a
//!   partial final frame. [`DeltaLog::open`] scans to the last fully
//!   valid frame and truncates the file there — the log reopens with
//!   every *completed* batch intact, which is exactly the boundary the
//!   byte-equivalence pin covers (a batch either committed and was
//!   logged, or neither happened).
//!
//! Frames accumulate one per batch; [`DeltaLog::compact`] merges them all
//! into a single frame. That is lossless for consolidation because batch
//! boundaries provably do not affect the final clusters (the incremental
//! equivalence suite pins any prefix/delta split byte-identical to a full
//! rebuild) — only the concatenated record order matters, and compaction
//! preserves it.
//!
//! Layout: `magic (8) · frame*` where `frame = payload_len varint ·
//! fnv1a64(payload) varint · payload` and `payload = record_count varint ·
//! record*`, `record = source varint · id varint · field_count varint ·
//! (name_len varint · name · value)*` with values in the
//! [`crate::encode`] encoding.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use datatamer_model::{DtError, Record, RecordId, Result, SourceId, Value};

use crate::encode::{decode_value, encode_value, get_varint, put_varint};

const LOG_MAGIC: &[u8; 8] = b"DTDELTA1";

/// FNV-1a 64 — tiny, dependency-free, and plenty to catch torn writes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_records(records: &[Record]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, records.len() as u64);
    for r in records {
        put_varint(&mut buf, u64::from(r.source.0));
        put_varint(&mut buf, r.id.0);
        put_varint(&mut buf, r.len() as u64);
        for (name, value) in r.iter() {
            put_varint(&mut buf, name.len() as u64);
            buf.extend_from_slice(name.as_bytes());
            encode_value(&mut buf, value);
        }
    }
    buf
}

fn decode_records(mut buf: &[u8]) -> Result<Vec<Record>> {
    let count = get_varint(&mut buf)? as usize;
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let source = SourceId(get_varint(&mut buf)? as u32);
        let id = RecordId(get_varint(&mut buf)?);
        let fields = get_varint(&mut buf)? as usize;
        let mut pairs: Vec<(String, Value)> = Vec::with_capacity(fields);
        for _ in 0..fields {
            let len = get_varint(&mut buf)? as usize;
            if buf.len() < len {
                return Err(DtError::Decode("delta-log field name truncated".into()));
            }
            let name = std::str::from_utf8(&buf[..len])
                .map_err(|_| DtError::Decode("delta-log field name not UTF-8".into()))?
                .to_owned();
            buf = &buf[len..];
            let value = decode_value(&mut buf)?;
            pairs.push((name, value));
        }
        records.push(Record::from_pairs(source, id, pairs));
    }
    if !buf.is_empty() {
        return Err(DtError::Decode("delta-log frame has trailing bytes".into()));
    }
    Ok(records)
}

/// The append-only delta-batch log. See the module docs for the format and
/// crash-tolerance contract.
#[derive(Debug)]
pub struct DeltaLog {
    path: PathBuf,
    frames: usize,
    records: u64,
    /// End of the last valid frame — appends go here.
    end: u64,
}

impl DeltaLog {
    /// Open (or create) the log at `path`, scanning existing frames and
    /// truncating any torn tail left by a crash mid-append.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut bytes = Vec::new();
        match fs::File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::File::create(&path)?.write_all(LOG_MAGIC)?;
                bytes.extend_from_slice(LOG_MAGIC);
            }
            Err(e) => return Err(DtError::Io(format!("{}: {e}", path.display()))),
        }
        if bytes.len() < LOG_MAGIC.len() || bytes[..LOG_MAGIC.len()] != LOG_MAGIC[..] {
            return Err(DtError::Decode(format!(
                "{}: not a delta log (bad magic)",
                path.display()
            )));
        }
        let mut frames = 0usize;
        let mut records = 0u64;
        let mut end = LOG_MAGIC.len() as u64;
        // Walk frames; the first incomplete or checksum-failing frame marks
        // the torn tail and everything from there is discarded.
        loop {
            let mut cursor = &bytes[end as usize..];
            let before = cursor.len();
            let Ok(len) = get_varint(&mut cursor) else { break };
            let Ok(sum) = get_varint(&mut cursor) else { break };
            let header = before - cursor.len();
            let len = len as usize;
            if cursor.len() < len {
                break;
            }
            let payload = &cursor[..len];
            if fnv1a64(payload) != sum {
                break;
            }
            let Ok(batch) = decode_records(payload) else { break };
            frames += 1;
            records += batch.len() as u64;
            end += (header + len) as u64;
        }
        if end < bytes.len() as u64 {
            let f = fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(end)?;
        }
        Ok(DeltaLog { path, frames, records, end })
    }

    /// The file this log lives in.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed frames (= accepted batches since the last compaction).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Records across all frames.
    pub fn records_len(&self) -> u64 {
        self.records
    }

    /// Append one accepted batch as a frame and flush it to the OS. An
    /// empty batch is a no-op (no empty frames, so `frames` keeps meaning
    /// "batches with content to replay").
    pub fn append(&mut self, records: &[Record]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let payload = encode_records(records);
        let mut frame = Vec::with_capacity(payload.len() + 20);
        put_varint(&mut frame, payload.len() as u64);
        put_varint(&mut frame, fnv1a64(&payload));
        frame.extend_from_slice(&payload);
        let mut f = fs::OpenOptions::new().write(true).open(&self.path)?;
        // Seek to the known-good end rather than blindly appending: if a
        // previous run tore the tail and nothing reopened the log since,
        // appending after garbage would orphan this frame.
        f.seek(SeekFrom::Start(self.end))?;
        f.write_all(&frame)?;
        f.flush()?;
        self.end += frame.len() as u64;
        self.frames += 1;
        self.records += records.len() as u64;
        Ok(())
    }

    /// All batches in append order.
    pub fn replay(&self) -> Result<Vec<Vec<Record>>> {
        let mut bytes = Vec::new();
        fs::File::open(&self.path)
            .map_err(|e| DtError::Io(format!("{}: {e}", self.path.display())))?
            .read_to_end(&mut bytes)?;
        let mut batches = Vec::with_capacity(self.frames);
        let mut offset = LOG_MAGIC.len();
        while (offset as u64) < self.end {
            let mut cursor = &bytes[offset..];
            let before = cursor.len();
            let len = get_varint(&mut cursor)? as usize;
            let _sum = get_varint(&mut cursor)?;
            let header = before - cursor.len();
            if cursor.len() < len {
                return Err(DtError::Decode(format!(
                    "{}: frame truncated under the validated end",
                    self.path.display()
                )));
            }
            batches.push(decode_records(&cursor[..len])?);
            offset += header + len;
        }
        Ok(batches)
    }

    /// Every record across all frames, in append order — what a restart
    /// ingests (batch boundaries don't affect the final clusters, so the
    /// flattened order is all that matters).
    pub fn replay_records(&self) -> Result<Vec<Record>> {
        Ok(self.replay()?.into_iter().flatten().collect())
    }

    /// Merge every frame into one, rewriting through a temp file + rename
    /// so a crash mid-compaction leaves either the old log or the new one,
    /// never a half-written file in between.
    pub fn compact(&mut self) -> Result<()> {
        if self.frames <= 1 {
            return Ok(());
        }
        let all = self.replay_records()?;
        let payload = encode_records(&all);
        let mut bytes = Vec::with_capacity(LOG_MAGIC.len() + payload.len() + 20);
        bytes.extend_from_slice(LOG_MAGIC);
        put_varint(&mut bytes, payload.len() as u64);
        put_varint(&mut bytes, fnv1a64(&payload));
        bytes.extend_from_slice(&payload);
        let tmp = self.path.with_extension("compact");
        fs::File::create(&tmp)?.write_all(&bytes)?;
        fs::rename(&tmp, &self.path)?;
        self.frames = 1;
        self.records = all.len() as u64;
        self.end = bytes.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::Value;

    fn tempfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dt_delta_log_{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{tag}.dlog"));
        let _ = fs::remove_file(&path);
        path
    }

    fn rec(i: u64) -> Record {
        Record::from_pairs(
            SourceId(1),
            RecordId(i),
            vec![
                ("name", Value::from(format!("show {i}"))),
                ("price", Value::Int(i as i64)),
                ("rating", Value::Float(i as f64 / 2.0)),
            ],
        )
    }

    #[test]
    fn append_replay_roundtrips_across_reopen() {
        let path = tempfile("roundtrip");
        let batches: Vec<Vec<Record>> =
            vec![(0..5).map(rec).collect(), vec![], (5..7).map(rec).collect()];
        {
            let mut log = DeltaLog::open(&path).unwrap();
            for b in &batches {
                log.append(b).unwrap();
            }
            assert_eq!(log.frames(), 2, "empty batches write no frame");
            assert_eq!(log.records_len(), 7);
        }
        let log = DeltaLog::open(&path).unwrap();
        assert_eq!(log.frames(), 2);
        let replayed = log.replay().unwrap();
        assert_eq!(replayed, vec![batches[0].clone(), batches[2].clone()]);
        assert_eq!(log.replay_records().unwrap().len(), 7);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tempfile("torn");
        {
            let mut log = DeltaLog::open(&path).unwrap();
            log.append(&(0..4).map(rec).collect::<Vec<_>>()).unwrap();
            log.append(&(4..6).map(rec).collect::<Vec<_>>()).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the final frame.
        let len = fs::metadata(&path).unwrap().len();
        fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 3).unwrap();
        let mut log = DeltaLog::open(&path).unwrap();
        assert_eq!(log.frames(), 1, "the torn frame is gone, the complete one kept");
        assert_eq!(log.replay_records().unwrap().len(), 4);
        // The log keeps taking appends from the truncation point.
        log.append(&(6..9).map(rec).collect::<Vec<_>>()).unwrap();
        let log = DeltaLog::open(&path).unwrap();
        assert_eq!(log.frames(), 2);
        assert_eq!(log.replay_records().unwrap().len(), 7);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_fails_the_checksum_and_is_dropped() {
        let path = tempfile("corrupt");
        {
            let mut log = DeltaLog::open(&path).unwrap();
            log.append(&(0..3).map(rec).collect::<Vec<_>>()).unwrap();
        }
        // Flip a byte inside the payload (past magic + frame header).
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let log = DeltaLog::open(&path).unwrap();
        assert_eq!(log.frames(), 0, "checksum failure drops the frame");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_preserves_record_order() {
        let path = tempfile("compact");
        let mut log = DeltaLog::open(&path).unwrap();
        for chunk in [0..3u64, 3..4, 4..9] {
            log.append(&chunk.map(rec).collect::<Vec<_>>()).unwrap();
        }
        let before = log.replay_records().unwrap();
        let size_before = fs::metadata(&path).unwrap().len();
        log.compact().unwrap();
        assert_eq!(log.frames(), 1);
        assert_eq!(log.replay_records().unwrap(), before);
        assert!(fs::metadata(&path).unwrap().len() <= size_before);
        // Reopen agrees.
        let reopened = DeltaLog::open(&path).unwrap();
        assert_eq!(reopened.frames(), 1);
        assert_eq!(reopened.replay_records().unwrap(), before);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_log_file_is_rejected() {
        let path = tempfile("badmagic");
        fs::write(&path, b"definitely not a delta log").unwrap();
        assert!(DeltaLog::open(&path).is_err());
        fs::remove_file(&path).unwrap();
    }
}
