//! Property tests for the shard-coordinator subsystem: the file backend
//! round-trips byte-identically through flush + reopen, memory- and
//! file-backed collections are observationally equivalent under every
//! routing policy, and keyed routing is a pure function of the data —
//! identical at any rayon pool width.

use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

use datatamer_model::{doc, Document};
use datatamer_storage::{
    BackendConfig, Collection, CollectionConfig, DocId, RoutingPolicy,
};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dt_backend_props_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Documents with a routing key drawn from a small alphabet (forcing
/// co-location collisions) plus a unique payload.
fn documents(keys: &[String]) -> Vec<Document> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| doc! {"k" => k.clone(), "i" => i as i64, "pad" => "p".repeat(i % 13)})
        .collect()
}

fn all_routings() -> Vec<RoutingPolicy> {
    vec![
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashKey { attr: "k".into() },
        RoutingPolicy::Range { attr: "k".into() },
    ]
}

/// The full observable state of a collection: ids with their documents in
/// deterministic scan order.
fn fingerprint(col: &Collection) -> Vec<(DocId, String)> {
    col.parallel_scan(|id, d| Some((id, format!("{d:?}")))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // insert_many → sync → reopen: the reopened file-backed collection
    // scans byte-identically to the original — nothing is lost at the
    // flush boundary, nothing is resurrected past a tombstone.
    #[test]
    fn file_backend_roundtrips_through_reopen(
        keys in prop::collection::vec("[abc]{1,3}", 1..60),
        delete_every in 2usize..9,
    ) {
        let dir = tempdir("roundtrip");
        let config = CollectionConfig {
            extent_size: 256,
            shards: 3,
            backend: BackendConfig::File { dir: dir.clone() },
            ..Default::default()
        };
        let docs = documents(&keys);
        let before = {
            let col = Collection::new("c", config.clone()).unwrap();
            let ids = col.insert_many(&docs).unwrap();
            for id in ids.iter().step_by(delete_every) {
                prop_assert!(col.delete(*id).unwrap());
            }
            col.sync().unwrap();
            fingerprint(&col)
        };
        let reopened = Collection::new("c", config).unwrap();
        prop_assert_eq!(
            fingerprint(&reopened), before,
            "reopen must reproduce the scan byte for byte"
        );
        prop_assert_eq!(reopened.len() as usize, docs.len() - docs.len().div_ceil(delete_every));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // A memory-backed and a file-backed collection fed the same batch
    // under the same routing place every document identically and scan
    // byte-identically — the backend is invisible to every reader.
    #[test]
    fn memory_and_file_backends_are_equivalent(
        keys in prop::collection::vec("[abcd]{1,4}", 1..50),
    ) {
        let dir = tempdir("equiv");
        let docs = documents(&keys);
        for routing in all_routings() {
            let mem = Collection::new("c", CollectionConfig {
                extent_size: 192,
                shards: 4,
                routing: routing.clone(),
                ..Default::default()
            }).unwrap();
            let file = Collection::new("c", CollectionConfig {
                extent_size: 192,
                shards: 4,
                backend: BackendConfig::File { dir: dir.join(routing.name()) },
                routing: routing.clone(),
                ..Default::default()
            }).unwrap();
            let mem_ids = mem.insert_many(&docs).unwrap();
            let file_ids = file.insert_many(&docs).unwrap();
            prop_assert_eq!(&mem_ids, &file_ids, "{:?}: placement must match", routing);
            prop_assert_eq!(
                fingerprint(&mem), fingerprint(&file),
                "{:?}: scans must be byte-identical", routing
            );
            let (ms, fs) = (mem.stats("dt"), file.stats("dt"));
            prop_assert_eq!(ms.count, fs.count);
            prop_assert_eq!(ms.num_extents, fs.num_extents);
            prop_assert_eq!(ms.data_size, fs.data_size);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Keyed routing is deterministic across rayon pool widths: the same
    // batch inserted under 1-thread and 8-thread pools lands on the same
    // shards with the same ids and scans identically.
    #[test]
    fn hash_routing_is_thread_count_invariant(
        keys in prop::collection::vec("[ab]{1,3}", 1..40),
    ) {
        let docs = documents(&keys);
        let build = || {
            let col = Collection::new("c", CollectionConfig {
                extent_size: 256,
                shards: 4,
                routing: RoutingPolicy::HashKey { attr: "k".into() },
                ..Default::default()
            }).unwrap();
            let ids = col.insert_many(&docs).unwrap();
            (ids, fingerprint(&col))
        };
        let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(build);
        let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap().install(build);
        prop_assert_eq!(serial, wide, "routing must not depend on the pool width");
    }

    // Every extent-cache budget — disabled, one-extent-tight, unbounded —
    // scans byte-identically to the in-memory backend and to every other
    // budget, through tombstones and a flush + reopen. The budget is a
    // pure performance knob; it must never be visible in any byte of
    // output.
    #[test]
    fn cache_budget_never_changes_scan_bytes(
        keys in prop::collection::vec("[abc]{1,3}", 1..60),
        delete_every in 2usize..9,
    ) {
        let dir = tempdir("budgets");
        let docs = documents(&keys);
        let reference = {
            let mem = Collection::new("c", CollectionConfig {
                extent_size: 256,
                shards: 3,
                ..Default::default()
            }).unwrap();
            let ids = mem.insert_many(&docs).unwrap();
            for id in ids.iter().step_by(delete_every) {
                prop_assert!(mem.delete(*id).unwrap());
            }
            fingerprint(&mem)
        };
        // Some(256) ≈ one extent: constant eviction pressure.
        for (tag, budget) in [("zero", Some(0)), ("one", Some(256)), ("unbounded", None)] {
            let config = CollectionConfig {
                extent_size: 256,
                shards: 3,
                backend: BackendConfig::File { dir: dir.join(tag) },
                extent_cache_budget: budget,
                ..Default::default()
            };
            let before = {
                let col = Collection::new("c", config.clone()).unwrap();
                let ids = col.insert_many(&docs).unwrap();
                for id in ids.iter().step_by(delete_every) {
                    prop_assert!(col.delete(*id).unwrap());
                }
                // Scan twice so the second pass reads through whatever the
                // budget retained from the first.
                prop_assert_eq!(fingerprint(&col), reference.clone(),
                    "budget {:?}: first scan must match memory", budget);
                col.sync().unwrap();
                fingerprint(&col)
            };
            prop_assert_eq!(&before, &reference,
                "budget {:?}: warm scan must match memory", budget);
            let reopened = Collection::new("c", config).unwrap();
            prop_assert_eq!(fingerprint(&reopened), reference.clone(),
                "budget {:?}: reopened scan must match memory", budget);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Counter sanity at every budget: hits + misses = lookups, every miss
    // is one disk load, and evictions only fire when a bounded budget is
    // actually exceeded.
    #[test]
    fn cache_counters_stay_sane(
        keys in prop::collection::vec("[ab]{1,3}", 4..48),
        scans in 1usize..4,
    ) {
        let dir = tempdir("counters");
        for (tag, budget) in [("zero", Some(0)), ("tight", Some(512)), ("unbounded", None)] {
            let col = Collection::new("c", CollectionConfig {
                extent_size: 256,
                shards: 2,
                backend: BackendConfig::File { dir: dir.join(tag) },
                extent_cache_budget: budget,
                ..Default::default()
            }).unwrap();
            col.insert_many(&documents(&keys)).unwrap();
            col.sync().unwrap();
            for _ in 0..scans {
                col.parallel_scan(|_, d| d.get("i").cloned()).unwrap();
            }
            let report = col.storage_report();
            let cache = report.cache_totals().expect("file shards report a cache");
            prop_assert_eq!(cache.budget, budget);
            // Each scan plans exactly one lookup per flushed extent, and
            // after sync every extent is flushed — nothing else in this
            // sequence performs lookups, so the ledger must balance.
            let extents: usize = report.shards.iter().map(|s| s.extents).sum();
            prop_assert_eq!(cache.hits + cache.misses, (scans * extents) as u64,
                "hits + misses = lookups: {:?}", cache);
            prop_assert_eq!(cache.misses, cache.disk_loads,
                "every miss is exactly one extent file read: {:?}", cache);
            match budget {
                Some(0) => {
                    prop_assert_eq!(cache.hits, 0, "disabled cache never hits: {:?}", cache);
                    prop_assert_eq!(cache.evictions, 0, "never admitted, never evicted");
                    prop_assert_eq!(cache.occupancy_bytes, 0);
                }
                None => {
                    prop_assert_eq!(cache.evictions, 0, "unbounded cache never evicts: {:?}", cache);
                    if scans > 1 {
                        prop_assert!(cache.hits > 0, "warm scans must hit: {:?}", cache);
                    }
                }
                Some(b) => {
                    prop_assert!(cache.occupancy_bytes <= b * 2,
                        "per-shard budget bounds total occupancy over 2 shards: {:?}", cache);
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Extent-parallel scans are pool-width invariant in *both* the output
    // bytes and the cache counters: plan-time hit/miss resolution makes
    // the StorageReport deterministic, not just the data.
    #[test]
    fn parallel_scan_cache_counters_are_thread_count_invariant(
        keys in prop::collection::vec("[abc]{1,3}", 4..48),
    ) {
        let dir = tempdir("threads");
        let docs = documents(&keys);
        let run = |tag: &str| {
            let col = Collection::new("c", CollectionConfig {
                extent_size: 256,
                shards: 3,
                backend: BackendConfig::File { dir: dir.join(tag) },
                extent_cache_budget: Some(768),
                ..Default::default()
            }).unwrap();
            col.insert_many(&docs).unwrap();
            col.sync().unwrap();
            let mut prints = Vec::new();
            for _ in 0..3 {
                prints.push(fingerprint(&col));
            }
            let report = col.storage_report();
            let shard_counters: Vec<_> = report.shards.iter()
                .map(|s| (s.decode_errors, s.cache))
                .collect();
            (prints, shard_counters)
        };
        let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap()
            .install(|| run("serial"));
        let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap()
            .install(|| run("wide"));
        prop_assert_eq!(serial.0, wide.0, "scan bytes must not depend on pool width");
        prop_assert_eq!(serial.1, wide.1, "cache counters must not depend on pool width");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Non-proptest pin: co-location is real, not just deterministic — every
/// record sharing a key shares a shard, and the storage report shows it.
#[test]
fn hash_key_blocking_locality() {
    let docs: Vec<Document> = (0..64i64)
        .map(|i| doc! {"k" => format!("key{}", i % 3), "i" => i})
        .collect();
    let col = Collection::new(
        "c",
        CollectionConfig {
            extent_size: 1024,
            shards: 8,
            routing: RoutingPolicy::HashKey { attr: "k".into() },
            ..Default::default()
        },
    )
    .unwrap();
    let ids = col.insert_many(&docs).unwrap();
    for (i, a) in ids.iter().enumerate() {
        for (j, b) in ids.iter().enumerate() {
            if i % 3 == j % 3 {
                assert_eq!(a.shard(), b.shard(), "records {i},{j} share a key");
            }
        }
    }
    let report = col.storage_report();
    assert!(
        report.shards.iter().filter(|s| s.docs > 0).count() <= 3,
        "three distinct keys occupy at most three shards: {report:?}"
    );
}
