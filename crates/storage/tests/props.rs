//! Property tests for the storage engine: encode/decode roundtrips over
//! arbitrary documents, extent persistence, and index-vs-scan equivalence.

use proptest::prelude::*;

use datatamer_model::{Document, Value};
use datatamer_storage::encode::{decode_document, encode_document, encoded_len};
use datatamer_storage::{Collection, CollectionConfig, Filter, IndexSpec, Query};

/// Strategy for arbitrary scalar values.
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq-based roundtrip checks
        // (bitwise NaN roundtripping has its own unit test).
        prop::num::f64::NORMAL.prop_map(Value::Float),
        "[a-zA-Z0-9 €$%.,']{0,24}".prop_map(Value::Str),
    ]
}

/// Strategy for arbitrary values with bounded nesting.
fn value() -> impl Strategy<Value = Value> {
    scalar().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..4).prop_map(|pairs| {
                Value::Doc(Document::from_pairs(pairs))
            }),
        ]
    })
}

/// Strategy for arbitrary documents.
fn document() -> impl Strategy<Value = Document> {
    prop::collection::vec(("[a-z_]{1,10}", value()), 0..6)
        .prop_map(Document::from_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_roundtrips(doc in document()) {
        let bytes = encode_document(&doc);
        let decoded = decode_document(&bytes).expect("decode");
        prop_assert_eq!(&decoded, &doc);
        prop_assert_eq!(bytes.len(), encoded_len(&Value::Doc(doc)));
    }

    #[test]
    fn truncated_encodings_never_panic(doc in document(), cut in 0usize..64) {
        let bytes = encode_document(&doc);
        let cut = cut.min(bytes.len());
        // Any prefix must either fail cleanly or (cut == len) succeed.
        let result = decode_document(&bytes[..cut]);
        if cut == bytes.len() {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn insert_then_get_returns_same_document(docs in prop::collection::vec(document(), 1..20)) {
        let col = Collection::new(
            "p",
            CollectionConfig { extent_size: 512, shards: 3, ..Default::default() },
        ).unwrap();
        let ids: Vec<_> = docs.iter().map(|d| col.insert(d).unwrap()).collect();
        for (id, doc) in ids.iter().zip(&docs) {
            let fetched = col.get(*id);
            prop_assert_eq!(fetched.as_ref(), Some(doc));
        }
        prop_assert_eq!(col.len(), docs.len() as u64);
    }

    #[test]
    fn indexed_query_equals_scan(
        keys in prop::collection::vec(0i64..5, 1..40),
        probe in 0i64..5,
    ) {
        let plain = Collection::new("scan", CollectionConfig::default()).unwrap();
        let indexed = Collection::new("idx", CollectionConfig::default()).unwrap();
        indexed.create_index(IndexSpec::new("by_k", "k")).unwrap();
        for (i, k) in keys.iter().enumerate() {
            let mut d = Document::new();
            d.set("k", Value::Int(*k));
            d.set("i", Value::Int(i as i64));
            plain.insert(&d).unwrap();
            indexed.insert(&d).unwrap();
        }
        let q = Query::filtered(Filter::Eq("k".into(), Value::Int(probe)));
        let mut scan: Vec<i64> = q.execute(&plain).unwrap()
            .into_iter()
            .filter_map(|(_, d)| d.get("i").and_then(Value::as_int))
            .collect();
        let mut via_index: Vec<i64> = q.execute(&indexed).unwrap()
            .into_iter()
            .filter_map(|(_, d)| d.get("i").and_then(Value::as_int))
            .collect();
        scan.sort_unstable();
        via_index.sort_unstable();
        prop_assert_eq!(scan, via_index);
    }

    #[test]
    fn stats_count_tracks_inserts_and_deletes(
        docs in prop::collection::vec(document(), 1..15),
        delete_mask in prop::collection::vec(any::<bool>(), 15),
    ) {
        let col = Collection::new("s", CollectionConfig::default()).unwrap();
        let ids: Vec<_> = docs.iter().map(|d| col.insert(d).unwrap()).collect();
        let mut live = docs.len() as u64;
        for (id, del) in ids.iter().zip(&delete_mask) {
            if *del && col.delete(*id).unwrap() {
                live -= 1;
            }
        }
        let stats = col.stats("dt");
        prop_assert_eq!(stats.count, live);
        prop_assert_eq!(col.parallel_scan(|_, _| Some(())).unwrap().len() as u64, live);
    }

    #[test]
    fn count_by_sums_to_live_docs(keys in prop::collection::vec(0i64..6, 1..40)) {
        let col = Collection::new("c", CollectionConfig::default()).unwrap();
        for k in &keys {
            let mut d = Document::new();
            d.set("k", Value::Int(*k));
            col.insert(&d).unwrap();
        }
        let total: u64 = col.count_by("k").unwrap().into_iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, keys.len() as u64);
    }
}
