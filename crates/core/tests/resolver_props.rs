//! Property tests for the truth-discovery resolvers: resolution is
//! permutation-invariant in input order, majority winners carry maximal
//! support, multi-truth survivors are a subset of the inputs, and
//! latest-wins follows record-provenance order exactly.

use proptest::prelude::*;

use datatamer_core::fusion::{
    LatestWins, MajorityVote, MultiTruth, ProvenancedValue, Resolved, SourceReliability,
    ValueResolver,
};
use datatamer_model::{RecordId, SourceId, Value};

/// A conflict group: `(text, source, record)` triples. The tight alphabet
/// forces agreement clusters and ties; the tight id ranges force shared
/// and duplicated provenance.
fn conflict_group() -> impl Strategy<Value = Vec<(String, u32, u64)>> {
    prop::collection::vec(("[a-c]{1,2}", 0u32..4, 0u64..8), 1..12)
}

/// Materialise provenanced values over `values`, visiting `entries` in the
/// order given by `order`. Rank is the slice position, as in real groups.
fn provenanced<'a>(
    values: &'a [Value],
    entries: &[(String, u32, u64)],
    order: &[usize],
) -> Vec<ProvenancedValue<'a>> {
    order
        .iter()
        .enumerate()
        .map(|(rank, &i)| ProvenancedValue {
            value: &values[i],
            source: SourceId(entries[i].1),
            record: RecordId(entries[i].2),
            rank,
        })
        .collect()
}

/// The order-free built-in resolvers under test.
fn resolvers() -> Vec<(&'static str, Box<dyn ValueResolver>)> {
    vec![
        ("majority_vote", Box::new(MajorityVote)),
        ("source_reliability", Box::new(SourceReliability::default())),
        ("latest_wins", Box::new(LatestWins)),
        ("multi_truth_0.25", Box::new(MultiTruth { min_support: 0.25 })),
        ("multi_truth_0.6", Box::new(MultiTruth { min_support: 0.6 })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn resolution_is_permutation_invariant(
        entries in conflict_group(),
        rot in 0usize..16,
    ) {
        let values: Vec<Value> =
            entries.iter().map(|(t, _, _)| Value::from(t.as_str())).collect();
        let n = entries.len();
        let forward: Vec<usize> = (0..n).collect();
        let mut rotated = forward.clone();
        rotated.rotate_left(rot % n);
        let mut reversed = forward.clone();
        reversed.reverse();

        for (name, resolver) in resolvers() {
            let base = resolver.resolve("X", &provenanced(&values, &entries, &forward));
            for (label, order) in [("rotated", &rotated), ("reversed", &reversed)] {
                let permuted = resolver.resolve("X", &provenanced(&values, &entries, order));
                prop_assert_eq!(
                    &base, &permuted,
                    "{} must be {}-invariant", name, label
                );
            }
        }
    }

    #[test]
    fn majority_vote_winner_has_maximal_support(entries in conflict_group()) {
        let values: Vec<Value> =
            entries.iter().map(|(t, _, _)| Value::from(t.as_str())).collect();
        let order: Vec<usize> = (0..entries.len()).collect();
        let resolved = MajorityVote.resolve("X", &provenanced(&values, &entries, &order));
        let Resolved::Single(winner) = resolved else {
            return Err(TestCaseError::fail("majority vote resolves to a single value"));
        };
        let support = |text: &str| entries.iter().filter(|(t, _, _)| t == text).count();
        let winner_text = winner.to_text();
        let winner_support = support(&winner_text);
        prop_assert!(winner_support >= 1, "winner comes from the inputs");
        for (text, _, _) in &entries {
            prop_assert!(
                winner_support >= support(text),
                "winner '{}' ({}) must not be out-supported by '{}' ({})",
                winner_text, winner_support, text, support(text)
            );
        }
    }

    #[test]
    fn multi_truth_output_is_a_subset_of_inputs(
        entries in conflict_group(),
        support_pct in 5u32..95,
    ) {
        let values: Vec<Value> =
            entries.iter().map(|(t, _, _)| Value::from(t.as_str())).collect();
        let order: Vec<usize> = (0..entries.len()).collect();
        let resolver = MultiTruth { min_support: f64::from(support_pct) / 100.0 };
        let resolved = resolver.resolve("X", &provenanced(&values, &entries, &order));
        let survivors = resolved.values();
        prop_assert!(!survivors.is_empty(), "an attribute with values never empties");
        let mut seen: Vec<String> = Vec::new();
        for v in survivors {
            let text = v.to_text();
            prop_assert!(
                entries.iter().any(|(t, _, _)| *t == text),
                "survivor '{}' must be one of the inputs", text
            );
            prop_assert!(!seen.contains(&text), "survivors are distinct: '{}'", text);
            seen.push(text);
        }
    }

    #[test]
    fn latest_wins_follows_record_provenance_order(entries in conflict_group()) {
        let values: Vec<Value> =
            entries.iter().map(|(t, _, _)| Value::from(t.as_str())).collect();
        let order: Vec<usize> = (0..entries.len()).collect();
        let resolved = LatestWins.resolve("X", &provenanced(&values, &entries, &order));
        let expected = entries
            .iter()
            .map(|(t, s, r)| (*r, *s, t.clone()))
            .max()
            .expect("non-empty group")
            .2;
        prop_assert_eq!(resolved, Resolved::Single(Value::from(expected.as_str())));
    }

    #[test]
    fn source_reliability_unanimity_always_wins(
        text in "[a-z]{1,4}",
        n in 1usize..8,
    ) {
        let values: Vec<Value> = (0..n).map(|_| Value::from(text.as_str())).collect();
        let entries: Vec<(String, u32, u64)> =
            (0..n).map(|i| (text.clone(), i as u32, i as u64)).collect();
        let order: Vec<usize> = (0..n).collect();
        let resolved =
            SourceReliability::default().resolve("X", &provenanced(&values, &entries, &order));
        prop_assert_eq!(resolved, Resolved::Single(Value::from(text.as_str())));
    }
}
