//! Demo queries over the ingested and fused data.

use std::collections::HashMap;

use datatamer_model::{Result, Value};
use datatamer_storage::Collection;

/// Discussion statistics for one show derived from WEBINSTANCE.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscussedShow {
    /// Display title (most frequent surface form).
    pub title: String,
    /// Fragments mentioning the show.
    pub mentions: u64,
    /// Whether any fragment calls it award-winning.
    pub award_winning: bool,
}

/// Table IV's query: the top-`k` most discussed **award-winning**
/// movies/shows, mined purely from the text collection.
///
/// A show counts as award-winning when at least one fragment mentioning it
/// contains the phrase "award-winning" (the paper's own feed text carries
/// the phrase: "Matilda an award-winning import from London").
pub fn top_discussed_award_winning(
    instance: &Collection,
    k: usize,
) -> Result<Vec<DiscussedShow>> {
    let mut counts: HashMap<String, DiscussedShow> = HashMap::new();
    // Scan instances; each doc contributes one mention per distinct show.
    let rows: Vec<(Vec<(String, String)>, bool)> = instance.parallel_scan(|_, doc| {
        let fragment = doc.get("fragment").and_then(Value::as_str).unwrap_or("");
        let award = fragment.to_lowercase().contains("award-winning");
        let mut shows: Vec<(String, String)> = Vec::new();
        if let Some(Value::Array(entities)) = doc.get("entities") {
            for e in entities {
                let Some(ed) = e.as_doc() else { continue };
                if ed.get("type").and_then(Value::as_str) == Some("Movie") {
                    let canonical = ed
                        .get("canonical")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_owned();
                    let surface =
                        ed.get("name").and_then(Value::as_str).unwrap_or_default().to_owned();
                    if !canonical.is_empty() && !shows.iter().any(|(c, _)| *c == canonical) {
                        shows.push((canonical, surface));
                    }
                }
            }
        }
        (!shows.is_empty()).then_some((shows, award))
    })?;
    let mut surface_votes: HashMap<String, HashMap<String, u64>> = HashMap::new();
    for (shows, award) in rows {
        for (canonical, surface) in shows {
            let entry = counts.entry(canonical.clone()).or_insert_with(|| DiscussedShow {
                title: surface.clone(),
                mentions: 0,
                award_winning: false,
            });
            entry.mentions += 1;
            entry.award_winning |= award;
            *surface_votes
                .entry(canonical)
                .or_default()
                .entry(surface)
                .or_insert(0) += 1;
        }
    }
    // Display title = most frequent surface (ties to lexicographically first).
    // dtlint::allow(map-iter, reason = "per-entry title fixup; no cross-entry state depends on visit order")
    for (canonical, show) in counts.iter_mut() {
        if let Some(votes) = surface_votes.get(canonical) {
            let mut best: Vec<(&String, &u64)> = votes.iter().collect();
            best.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            if let Some((surface, _)) = best.first() {
                show.title = (*surface).clone();
            }
        }
    }
    let mut ranked: Vec<DiscussedShow> =
        // dtlint::allow(map-iter, reason = "ranking is fully ordered by the (mentions, title) sort below")
        counts.into_values().filter(|s| s.award_winning).collect();
    ranked.sort_by(|a, b| b.mentions.cmp(&a.mentions).then_with(|| a.title.cmp(&b.title)));
    ranked.truncate(k);
    Ok(ranked)
}

/// Count entity documents per type (Table III), descending.
pub fn entity_type_histogram(entity: &Collection) -> Result<Vec<(String, u64)>> {
    // Named `by_type`, not `counts`: dtlint's map-iter pass is file-scoped
    // and `counts` is a HashMap in `top_discussed_award_winning` above —
    // this one is the sorted Vec from `count_by`.
    let mut by_type = entity.count_by("type")?;
    by_type.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
    Ok(by_type
        .into_iter()
        .map(|(v, n)| (v.to_text(), n))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::doc;
    use datatamer_storage::CollectionConfig;

    fn instance_with(frags: &[(&str, &[&str])]) -> Collection {
        // (fragment text, movie names)
        let c = Collection::new("instance", CollectionConfig { extent_size: 8192, shards: 2, ..Default::default() })
            .unwrap();
        for (text, movies) in frags {
            let entities: Vec<Value> = movies
                .iter()
                .map(|m| {
                    Value::Doc(doc! {
                        "type" => "Movie",
                        "name" => *m,
                        "canonical" => m.to_lowercase()
                    })
                })
                .collect();
            c.insert(&doc! {
                "fragment" => *text,
                "entities" => Value::Array(entities)
            })
            .unwrap();
        }
        c
    }

    #[test]
    fn counts_and_award_filter() {
        let c = instance_with(&[
            ("the award-winning Matilda wowed", &["Matilda"]),
            ("Matilda again tonight", &["Matilda"]),
            ("Wicked sells out", &["Wicked"]),
            ("award-winning Goodfellas retrospective", &["Goodfellas"]),
        ]);
        let top = top_discussed_award_winning(&c, 10).unwrap();
        assert_eq!(top.len(), 2, "Wicked is never called award-winning: {top:?}");
        assert_eq!(top[0].title, "Matilda");
        assert_eq!(top[0].mentions, 2);
        assert!(top[0].award_winning);
        assert_eq!(top[1].title, "Goodfellas");
    }

    #[test]
    fn one_mention_per_fragment_per_show() {
        let c = instance_with(&[(
            "award-winning Matilda and Matilda again",
            &["Matilda", "Matilda"],
        )]);
        let top = top_discussed_award_winning(&c, 10).unwrap();
        assert_eq!(top[0].mentions, 1, "duplicate mentions in one fragment count once");
    }

    #[test]
    fn k_truncates() {
        let c = instance_with(&[
            ("award-winning A", &["A"]),
            ("award-winning B", &["B"]),
            ("award-winning C", &["C"]),
        ]);
        assert_eq!(top_discussed_award_winning(&c, 2).unwrap().len(), 2);
        assert!(top_discussed_award_winning(&c, 0).unwrap().is_empty());
    }

    #[test]
    fn histogram_orders_descending() {
        let c = Collection::new("entity", CollectionConfig::default()).unwrap();
        for ty in ["Person", "Person", "Person", "City", "Movie", "Movie"] {
            c.insert(&doc! {"type" => ty}).unwrap();
        }
        let h = entity_type_histogram(&c).unwrap();
        assert_eq!(
            h,
            vec![
                ("Person".to_owned(), 3),
                ("Movie".to_owned(), 2),
                ("City".to_owned(), 1)
            ]
        );
    }
}
