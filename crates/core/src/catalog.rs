//! Source registry.

use datatamer_model::SourceId;

/// The kind of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Rows-and-columns data (FTABLES-like).
    Structured,
    /// Web text processed by the domain parser.
    Text,
}

/// Metadata about a registered source.
#[derive(Debug, Clone)]
pub struct SourceInfo {
    /// The id assigned at registration.
    pub id: SourceId,
    /// Human-readable name.
    pub name: String,
    /// Kind.
    pub kind: SourceKind,
    /// Records (structured) or fragments (text) ingested from it.
    pub record_count: u64,
}

/// Assigns ids and remembers every source.
#[derive(Debug, Default)]
pub struct Catalog {
    sources: Vec<SourceInfo>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source, receiving its id.
    pub fn register(&mut self, name: impl Into<String>, kind: SourceKind) -> SourceId {
        let id = SourceId(self.sources.len() as u32);
        self.sources.push(SourceInfo { id, name: name.into(), kind, record_count: 0 });
        id
    }

    /// Record how many records a source contributed.
    pub fn set_record_count(&mut self, id: SourceId, count: u64) {
        if let Some(info) = self.sources.iter_mut().find(|s| s.id == id) {
            info.record_count = count;
        }
    }

    /// Look up a source.
    pub fn get(&self, id: SourceId) -> Option<&SourceInfo> {
        self.sources.iter().find(|s| s.id == id)
    }

    /// Look up by name.
    pub fn by_name(&self, name: &str) -> Option<&SourceInfo> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// All sources in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &SourceInfo> {
        self.sources.iter()
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when no source is registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_sequential_ids() {
        let mut c = Catalog::new();
        let a = c.register("ftable_00", SourceKind::Structured);
        let b = c.register("webtext", SourceKind::Text);
        assert_eq!(a, SourceId(0));
        assert_eq!(b, SourceId(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(a).unwrap().kind, SourceKind::Structured);
        assert_eq!(c.by_name("webtext").unwrap().id, b);
        assert!(c.by_name("nope").is_none());
    }

    #[test]
    fn record_counts_update() {
        let mut c = Catalog::new();
        let id = c.register("s", SourceKind::Structured);
        c.set_record_count(id, 42);
        assert_eq!(c.get(id).unwrap().record_count, 42);
        c.set_record_count(SourceId(99), 1); // unknown id is a no-op
        assert_eq!(c.iter().count(), 1);
    }
}
