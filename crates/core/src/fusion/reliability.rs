//! Source-reliability truth discovery (accu-style iterative weighting).
//!
//! Majority vote treats every source as equally trustworthy; the data-fusion
//! literature (Dong et al., "From Data Fusion to Knowledge Fusion") weights
//! sources by how often they agree with the emerging consensus and lets the
//! weights and the consensus reinforce each other. This module implements
//! the single-attribute core of that fixpoint: within one conflicting value
//! group, a source's vote counts for more when the values it supplies are
//! corroborated by other sources.
//!
//! The computation is deliberately order-free: candidates are processed in
//! sorted text order and votes in sorted provenance order, so the resolved
//! value is a pure function of the input multiset — permutation-invariant
//! and byte-deterministic at any thread count.

use std::collections::BTreeMap;

use datatamer_model::{RecordId, SourceId, Value};

use super::resolve::{ProvenancedValue, Resolved, ValueResolver};

/// Iterative source-reliability resolver.
///
/// Every *source* casts one claim per attribute (its internal majority, so
/// duplicate records within a source never corroborate themselves). Each
/// round recomputes candidate scores as the sum of their claiming sources'
/// weights, then reassigns every source the (normalised) score of the
/// candidate it claimed. A few rounds amplify agreeing sources and damp
/// lone dissenters; `smoothing` keeps every source's weight strictly
/// positive so a unanimous minority can still win an attribute where the
/// "majority" is split.
#[derive(Debug, Clone, Copy)]
pub struct SourceReliability {
    /// Fixpoint rounds (a handful suffices; scores stabilise geometrically).
    pub iterations: usize,
    /// Additive weight floor applied when reweighting sources. Clamped
    /// into `[0, 1)` at resolution time (NaN behaves as `0`): values at or
    /// above 1 would freeze or invert the reinforcement loop, so a
    /// misconfigured floor degrades to near-pure majority weighting
    /// instead of producing nonsense.
    pub smoothing: f64,
}

impl Default for SourceReliability {
    fn default() -> Self {
        SourceReliability { iterations: 5, smoothing: 0.1 }
    }
}

impl ValueResolver for SourceReliability {
    fn name(&self) -> &'static str {
        "source_reliability"
    }

    fn resolve(&self, attr: &str, values: &[ProvenancedValue<'_>]) -> Resolved {
        self.resolve_with_confidence(attr, values).0
    }

    /// Confidence is the winner's *weight share* at the fixpoint: the
    /// winning candidate's score over the sum of all candidate scores —
    /// 1.0 when every source claims the winner, shrinking as credible
    /// dissent survives the reinforcement rounds.
    fn resolve_with_confidence(
        &self,
        _attr: &str,
        values: &[ProvenancedValue<'_>],
    ) -> (Resolved, Option<f64>) {
        // One claim per SOURCE, not per record: a source contributing many
        // records must not corroborate itself, so each source's claim is
        // its internal majority (ties to the smaller text), represented by
        // the provenance-smallest value carrying that text. BTreeMaps keep
        // every iteration order (and therefore every float summation
        // order) input-order-free.
        let mut by_source: BTreeMap<SourceId, BTreeMap<String, (usize, RecordId, &Value)>> =
            BTreeMap::new();
        for pv in values {
            let tally = by_source.entry(pv.source).or_default();
            let e = tally.entry(pv.text()).or_insert((0, pv.record, pv.value));
            e.0 += 1;
            if pv.record < e.1 {
                e.1 = pv.record;
                e.2 = pv.value;
            }
        }
        let mut votes: BTreeMap<SourceId, (String, &Value)> = BTreeMap::new();
        for (source, tally) in &by_source {
            // Text-ascending iteration + strictly-greater keeps the
            // smallest text among count ties.
            let mut claim: Option<(&String, usize, &Value)> = None;
            for (text, (count, _, value)) in tally {
                match claim {
                    Some((_, best, _)) if *count <= best => {}
                    _ => claim = Some((text, *count, value)),
                }
            }
            let (text, _, value) = claim.expect("source has at least one value");
            votes.insert(*source, (text.clone(), value));
        }

        let smoothing = if self.smoothing.is_nan() {
            0.0
        } else {
            self.smoothing.clamp(0.0, 1.0 - f64::EPSILON)
        };
        let mut weights: BTreeMap<SourceId, f64> = votes.keys().map(|k| (*k, 1.0)).collect();
        let mut scores: BTreeMap<&str, f64> = BTreeMap::new();
        for _ in 0..self.iterations.max(1) {
            // Candidate score = sum of claiming sources' weights (sorted
            // orders).
            scores.clear();
            for (source, (text, _)) in &votes {
                *scores.entry(text.as_str()).or_insert(0.0) += weights[source];
            }
            let total: f64 = scores.values().sum();
            if total <= 0.0 {
                break;
            }
            // Source weight = normalised score of its claim, floored.
            for (source, (text, _)) in &votes {
                let w = weights.get_mut(source).expect("source registered");
                *w = smoothing + (1.0 - smoothing) * scores[text.as_str()] / total;
            }
        }

        // Winner: maximal score; ties break to the smaller text. Scores of
        // tied-support candidates are bit-identical (same sorted summation),
        // so strict comparison is safe.
        let mut best: Option<(&str, f64)> = None;
        for (text, score) in &scores {
            match best {
                Some((_, bs)) if *score <= bs => {}
                _ => best = Some((text, *score)),
            }
        }
        let (winner, winner_score) = best.expect("resolver input is never empty");
        let value = votes
            .values()
            .find(|(t, _)| t == winner)
            .expect("winner came from the vote table")
            .1;
        // Weight share of the winning claim. Tied-support scores are
        // bit-identical (same sorted summation), so the share is a pure
        // function of the input multiset like the winner itself.
        let total: f64 = scores.values().sum();
        let confidence = if total > 0.0 { Some(winner_score / total) } else { None };
        (Resolved::Single(value.clone()), confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(value: &Value, source: u32, record: u64, rank: usize) -> ProvenancedValue<'_> {
        ProvenancedValue {
            value,
            source: SourceId(source),
            record: RecordId(record),
            rank,
        }
    }

    #[test]
    fn agreement_beats_lone_dissent() {
        let vals: Vec<Value> = ["$27", "$27", "$99"].iter().map(|s| Value::from(*s)).collect();
        let provs: Vec<ProvenancedValue<'_>> =
            vals.iter().enumerate().map(|(i, v)| pv(v, i as u32, i as u64, i)).collect();
        let r = SourceReliability::default().resolve("price", &provs);
        assert_eq!(r, Resolved::Single(Value::from("$27")));
    }

    #[test]
    fn two_vs_one_split_amplifies_with_iterations() {
        let vals: Vec<Value> = ["a", "b", "b"].iter().map(|s| Value::from(*s)).collect();
        let provs: Vec<ProvenancedValue<'_>> =
            vals.iter().enumerate().map(|(i, v)| pv(v, i as u32, i as u64, i)).collect();
        for iters in [1, 3, 8] {
            let r = SourceReliability { iterations: iters, smoothing: 0.1 }
                .resolve("x", &provs);
            assert_eq!(r, Resolved::Single(Value::from("b")), "at {iters} iterations");
        }
    }

    #[test]
    fn confidence_is_winning_weight_share() {
        use super::super::resolve::Resolved;
        // Unanimity: the winner holds the entire weight mass.
        let vals: Vec<Value> = ["$27", "$27"].iter().map(|s| Value::from(*s)).collect();
        let provs: Vec<ProvenancedValue<'_>> =
            vals.iter().enumerate().map(|(i, v)| pv(v, i as u32, i as u64, i)).collect();
        let (r, c) = SourceReliability::default().resolve_with_confidence("price", &provs);
        assert_eq!(r, Resolved::Single(Value::from("$27")));
        assert!((c.unwrap() - 1.0).abs() < 1e-12, "unanimous share: {c:?}");

        // 2-vs-1: reinforcement amplifies the majority's share above its
        // raw 2/3 vote fraction, but dissent keeps it under 1.
        let vals: Vec<Value> = ["$27", "$27", "$99"].iter().map(|s| Value::from(*s)).collect();
        let provs: Vec<ProvenancedValue<'_>> =
            vals.iter().enumerate().map(|(i, v)| pv(v, i as u32, i as u64, i)).collect();
        let (_, c) = SourceReliability::default().resolve_with_confidence("price", &provs);
        let share = c.unwrap();
        assert!(share > 2.0 / 3.0 && share < 1.0, "amplified but not unanimous: {share}");

        // Confidence is permutation-invariant like the winner.
        let mut rev = provs.clone();
        rev.reverse();
        let (_, c_rev) = SourceReliability::default().resolve_with_confidence("price", &rev);
        assert_eq!(c, c_rev);
    }

    #[test]
    fn even_split_tie_breaks_to_smaller_text() {
        let vals: Vec<Value> = ["zeta", "alpha"].iter().map(|s| Value::from(*s)).collect();
        let provs: Vec<ProvenancedValue<'_>> =
            vals.iter().enumerate().map(|(i, v)| pv(v, i as u32, i as u64, i)).collect();
        let r = SourceReliability::default().resolve("x", &provs);
        assert_eq!(r, Resolved::Single(Value::from("alpha")));
    }

    #[test]
    fn permutation_of_inputs_is_irrelevant() {
        // Sources 0..3 each contribute two records; per-source internal
        // ties break to the smaller text, so the claims are x, y, y — the
        // cross-source majority is "y" however the slice is ordered.
        let vals: Vec<Value> =
            ["x", "y", "y", "z", "z", "z"].iter().map(|s| Value::from(*s)).collect();
        let provs: Vec<ProvenancedValue<'_>> =
            vals.iter().enumerate().map(|(i, v)| pv(v, (i % 3) as u32, i as u64, i)).collect();
        let forward = SourceReliability::default().resolve("x", &provs);
        let mut rev = provs.clone();
        rev.reverse();
        let backward = SourceReliability::default().resolve("x", &rev);
        assert_eq!(forward, backward);
        assert_eq!(forward, Resolved::Single(Value::from("y")));
    }

    #[test]
    fn spammy_source_cannot_corroborate_itself() {
        // One source repeats "$99" across three records; two independent
        // sources each say "$27". Per-source claims make it 2 sources vs
        // 1, so the independent agreement wins — record-level voting would
        // have let the spam win 3-vs-2.
        let vals: Vec<Value> =
            ["$99", "$99", "$99", "$27", "$27"].iter().map(|s| Value::from(*s)).collect();
        let provs = vec![
            pv(&vals[0], 0, 0, 0),
            pv(&vals[1], 0, 1, 1),
            pv(&vals[2], 0, 2, 2),
            pv(&vals[3], 1, 0, 3),
            pv(&vals[4], 2, 0, 4),
        ];
        let r = SourceReliability::default().resolve("price", &provs);
        assert_eq!(r, Resolved::Single(Value::from("$27")));
    }

    #[test]
    fn out_of_range_smoothing_is_clamped() {
        let vals: Vec<Value> = ["$27", "$27", "$99"].iter().map(|s| Value::from(*s)).collect();
        let provs: Vec<ProvenancedValue<'_>> =
            vals.iter().enumerate().map(|(i, v)| pv(v, i as u32, i as u64, i)).collect();
        for smoothing in [1.0, 5.0, -2.0, f64::NAN] {
            let r = SourceReliability { iterations: 5, smoothing }.resolve("x", &provs);
            assert_eq!(r, Resolved::Single(Value::from("$27")), "smoothing {smoothing}");
        }
    }

    #[test]
    fn duplicate_provenance_keeps_smaller_text_regardless_of_order() {
        let a = Value::from("a");
        let b = Value::from("b");
        let one = [pv(&a, 0, 0, 0), pv(&b, 0, 0, 1)];
        let two = [pv(&b, 0, 0, 0), pv(&a, 0, 0, 1)];
        let r1 = SourceReliability::default().resolve("x", &one);
        let r2 = SourceReliability::default().resolve("x", &two);
        assert_eq!(r1, r2);
        assert_eq!(r1, Resolved::Single(Value::from("a")));
    }
}
