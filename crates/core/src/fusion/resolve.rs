//! Per-attribute truth discovery: the [`ValueResolver`] trait and the
//! order-independent built-in resolvers.
//!
//! Fusion has two levels. [`crate::fusion::FusionPolicy`] decides *grouping*
//! — which records describe the same entity. A `ValueResolver` decides
//! *truth* — which of a group's conflicting values for one attribute
//! survive into the composite. Resolvers see full provenance
//! ([`ProvenancedValue`]: value + source id + record id + cluster rank), so
//! they can weight sources, prefer fresh records, or keep several values.
//!
//! Every built-in resolver is deterministic **and** permutation-invariant:
//! feeding the same multiset of provenanced values in any order yields the
//! same [`Resolved`]. Ties never break on input position — they break on
//! value text, then on provenance — so the fusion stage stays byte-identical
//! at any rayon thread count (and under any upstream reordering). The one
//! exception is [`PolicyResolver`], which deliberately preserves the classic
//! order-sensitive [`ConflictPolicy`] semantics (`First`, first-seen tie
//! breaks) for source-priority fusion.

use std::collections::HashMap;

use datatamer_entity::consolidate::ConflictPolicy;
use datatamer_model::{RecordId, SourceId, Value};

/// One attribute value with its provenance: where it came from and where it
/// sits in the cluster's source-priority order.
#[derive(Debug, Clone, Copy)]
pub struct ProvenancedValue<'a> {
    /// The (non-null) value itself.
    pub value: &'a Value,
    /// Source the contributing record was ingested from.
    pub source: SourceId,
    /// The contributing record's source-local id.
    pub record: RecordId,
    /// Position of the contributing record in cluster order (0 = the
    /// highest-priority source; callers list curated sources first).
    pub rank: usize,
}

impl<'a> ProvenancedValue<'a> {
    /// Text rendering of the value (the unit resolvers vote over).
    pub fn text(&self) -> String {
        self.value.to_text()
    }

    /// Provenance sort key: `(source, record)`.
    pub fn provenance(&self) -> (SourceId, RecordId) {
        (self.source, self.record)
    }
}

/// What a resolver decided for one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolved {
    /// Exactly one value survives (the single-truth case).
    Single(Value),
    /// Several values survive (genuine multi-truth attributes). The merge
    /// writes one value as a scalar and two or more as a [`Value::Array`].
    Multi(Vec<Value>),
    /// No value survives; the composite attribute stays null.
    None,
}

impl Resolved {
    /// All surviving values, in order.
    pub fn values(&self) -> &[Value] {
        match self {
            Resolved::Single(v) => std::slice::from_ref(v),
            Resolved::Multi(vs) => vs,
            Resolved::None => &[],
        }
    }
}

/// A truth-discovery policy for one attribute's conflicting values.
///
/// Implementations must be `Send + Sync`: the fusion stage resolves groups
/// across the rayon team with one shared registry.
pub trait ValueResolver: Send + Sync {
    /// Stable resolver name (reports, dispatch assertions, benches).
    fn name(&self) -> &'static str;

    /// Resolve one attribute's non-null values. `values` is never empty.
    fn resolve(&self, attr: &str, values: &[ProvenancedValue<'_>]) -> Resolved;

    /// [`ValueResolver::resolve`] plus a confidence in `[0, 1]` when the
    /// resolver can quantify how contested the decision was (e.g. the
    /// winner's support fraction). Resolvers with no meaningful notion of
    /// confidence — order-sensitive policies, freshness proxies — keep the
    /// default `None`, so downstream consumers can distinguish "fully
    /// contested" from "not measured". The confidence must be a pure
    /// function of the input multiset, like the resolution itself.
    fn resolve_with_confidence(
        &self,
        attr: &str,
        values: &[ProvenancedValue<'_>],
    ) -> (Resolved, Option<f64>) {
        (self.resolve(attr, values), None)
    }
}

/// Count support per distinct text rendering, returning
/// `(text, count, representative)` sorted by text. The representative is
/// the provenance-smallest value with that text, so the output is fully
/// determined by the input multiset.
pub(crate) fn support_by_text<'a>(
    values: &[ProvenancedValue<'a>],
) -> Vec<(String, usize, &'a Value)> {
    let mut by_text: HashMap<String, (usize, ProvenancedValue<'a>)> = HashMap::new();
    for pv in values {
        let e = by_text.entry(pv.text()).or_insert((0, *pv));
        e.0 += 1;
        if pv.provenance() < e.1.provenance() {
            e.1 = *pv;
        }
    }
    let mut out: Vec<(String, usize, &'a Value)> =
        // dtlint::allow(map-iter, reason = "output is sorted by its unique text key on the next line")
        by_text.into_iter().map(|(t, (c, pv))| (t, c, pv.value)).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Majority vote over text renderings. Ties break to the lexicographically
/// smallest text (not first-seen), keeping resolution permutation-invariant.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl ValueResolver for MajorityVote {
    fn name(&self) -> &'static str {
        "majority_vote"
    }

    fn resolve(&self, attr: &str, values: &[ProvenancedValue<'_>]) -> Resolved {
        self.resolve_with_confidence(attr, values).0
    }

    /// Confidence is the winner's support fraction: votes agreeing with
    /// the surviving value over all non-null votes (1.0 when unanimous,
    /// approaching `1/k` for a k-way split).
    fn resolve_with_confidence(
        &self,
        _attr: &str,
        values: &[ProvenancedValue<'_>],
    ) -> (Resolved, Option<f64>) {
        let tally = support_by_text(values);
        // Sorted by text, so max_by_key's "last max wins" would pick the
        // lexicographically largest among ties; scan keeps the smallest.
        let mut best = &tally[0];
        for cand in &tally[1..] {
            if cand.1 > best.1 {
                best = cand;
            }
        }
        let confidence = best.1 as f64 / values.len() as f64;
        (Resolved::Single(best.2.clone()), Some(confidence))
    }
}

/// Freshness-proxy resolver: the value from the record-provenance-greatest
/// record — the maximal `(record id, source id)` pair — wins.
///
/// Record ids are source-local and assigned in arrival order, so *within a
/// source* this resolves stale-vs-fresh conflicts to the most recently
/// ingested value. *Across sources* it is only a deterministic proxy: a
/// source with more records outranks a genuinely fresher source with
/// fewer. True cross-source freshness needs record timestamps (a ROADMAP
/// follow-up); until then route attributes here when one source owns their
/// updates or the record-id ordering is meaningful across the corpus.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatestWins;

impl ValueResolver for LatestWins {
    fn name(&self) -> &'static str {
        "latest_wins"
    }

    fn resolve(&self, _attr: &str, values: &[ProvenancedValue<'_>]) -> Resolved {
        // Pick by (record, source); compare texts (allocating) only on an
        // exact provenance tie, which real groups never produce — one
        // record contributes at most one value per attribute.
        let latest = values
            .iter()
            .max_by(|a, b| {
                (a.record, a.source)
                    .cmp(&(b.record, b.source))
                    .then_with(|| a.text().cmp(&b.text()))
            })
            .expect("resolver input is never empty");
        Resolved::Single(latest.value.clone())
    }
}

/// Multi-truth resolver: keeps every distinct value whose support (fraction
/// of the group's non-null values agreeing on it) reaches `min_support`.
///
/// Survivors are ordered by descending support, then text, so the composite
/// is deterministic. When nothing reaches the threshold the best-supported
/// value still survives (an attribute with values never resolves to null).
#[derive(Debug, Clone, Copy)]
pub struct MultiTruth {
    /// Minimum support fraction for a value to survive. Clamped into
    /// `(0, 1]` at resolution time: non-positive or NaN behaves as "any
    /// support" (every distinct value survives), above 1 as "unanimity
    /// only" — a misconfigured threshold degrades gracefully instead of
    /// producing nonsense.
    pub min_support: f64,
}

impl Default for MultiTruth {
    /// A quarter of the group must agree — permissive enough to keep
    /// genuine alternative truths, strict enough to drop lone outliers in
    /// large groups.
    fn default() -> Self {
        MultiTruth { min_support: 0.25 }
    }
}

impl ValueResolver for MultiTruth {
    fn name(&self) -> &'static str {
        "multi_truth"
    }

    fn resolve(&self, _attr: &str, values: &[ProvenancedValue<'_>]) -> Resolved {
        let min_support = if self.min_support.is_nan() {
            f64::MIN_POSITIVE
        } else {
            self.min_support.clamp(f64::MIN_POSITIVE, 1.0)
        };
        let total = values.len() as f64;
        let mut tally = support_by_text(values);
        // Descending support, then ascending text.
        tally.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let kept: Vec<Value> = tally
            .iter()
            .filter(|(_, count, _)| *count as f64 / total >= min_support)
            .map(|(_, _, v)| (*v).clone())
            .collect();
        match kept.len() {
            0 => Resolved::Single(tally[0].2.clone()),
            1 => Resolved::Single(kept.into_iter().next().expect("len checked")),
            _ => Resolved::Multi(kept),
        }
    }
}

/// Adapter giving the classic [`ConflictPolicy`] merge primitives (`First`,
/// `Longest`, `NumericMin`, …) a seat in the resolver registry.
///
/// Unlike the truth-discovery resolvers this preserves the policies'
/// order-sensitive semantics — `First` *means* cluster order, and majority
/// ties break first-seen — which is exactly what source-priority fusion
/// (curated sources listed first) relies on.
#[derive(Debug, Clone, Copy)]
pub struct PolicyResolver(pub ConflictPolicy);

impl ValueResolver for PolicyResolver {
    fn name(&self) -> &'static str {
        match self.0 {
            ConflictPolicy::MajorityVote => "policy:majority_vote",
            ConflictPolicy::Longest => "policy:longest",
            ConflictPolicy::First => "policy:first",
            ConflictPolicy::NumericMin => "policy:numeric_min",
            ConflictPolicy::NumericMax => "policy:numeric_max",
        }
    }

    fn resolve(&self, _attr: &str, values: &[ProvenancedValue<'_>]) -> Resolved {
        // ConflictPolicy semantics are defined over cluster order. The
        // merge path always supplies rank order already, so only a
        // hand-shuffled slice pays for the restoring sort.
        let plain: Vec<&Value> = if values.windows(2).all(|w| w[0].rank <= w[1].rank) {
            values.iter().map(|pv| pv.value).collect()
        } else {
            let mut ordered: Vec<&ProvenancedValue<'_>> = values.iter().collect();
            ordered.sort_by_key(|pv| pv.rank);
            ordered.iter().map(|pv| pv.value).collect()
        };
        Resolved::Single(self.0.resolve_values(&plain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(value: &Value, source: u32, record: u64, rank: usize) -> ProvenancedValue<'_> {
        ProvenancedValue {
            value,
            source: SourceId(source),
            record: RecordId(record),
            rank,
        }
    }

    fn texts(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|s| Value::from(*s)).collect()
    }

    fn pvs(vals: &[Value]) -> Vec<ProvenancedValue<'_>> {
        vals.iter()
            .enumerate()
            .map(|(i, v)| pv(v, i as u32, i as u64, i))
            .collect()
    }

    #[test]
    fn majority_vote_counts_support() {
        let vals = texts(&["a", "b", "b"]);
        let r = MajorityVote.resolve("x", &pvs(&vals));
        assert_eq!(r, Resolved::Single(Value::from("b")));
    }

    #[test]
    fn majority_vote_confidence_is_support_fraction() {
        let vals = texts(&["a", "b", "b", "b"]);
        let (r, c) = MajorityVote.resolve_with_confidence("x", &pvs(&vals));
        assert_eq!(r, Resolved::Single(Value::from("b")));
        assert_eq!(c, Some(0.75));
        let unanimous = texts(&["z", "z"]);
        let (_, c) = MajorityVote.resolve_with_confidence("x", &pvs(&unanimous));
        assert_eq!(c, Some(1.0));
        // A 3-way split still reports the (low) winning fraction.
        let split = texts(&["a", "b", "c"]);
        let (_, c) = MajorityVote.resolve_with_confidence("x", &pvs(&split));
        assert!((c.unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn resolvers_without_confidence_report_none() {
        let vals = texts(&["x", "y"]);
        let provs = pvs(&vals);
        assert_eq!(LatestWins.resolve_with_confidence("a", &provs).1, None);
        assert_eq!(
            PolicyResolver(ConflictPolicy::First).resolve_with_confidence("a", &provs).1,
            None
        );
        assert_eq!(MultiTruth::default().resolve_with_confidence("a", &provs).1, None);
        // The default method must agree with resolve().
        assert_eq!(
            LatestWins.resolve_with_confidence("a", &provs).0,
            LatestWins.resolve("a", &provs)
        );
    }

    #[test]
    fn majority_vote_tie_breaks_lexicographically() {
        let vals = texts(&["beta", "alpha"]);
        let r = MajorityVote.resolve("x", &pvs(&vals));
        assert_eq!(r, Resolved::Single(Value::from("alpha")), "not first-seen");
    }

    #[test]
    fn latest_wins_takes_max_record_provenance() {
        let vals = texts(&["stale", "fresh", "mid"]);
        let provs = vec![pv(&vals[0], 0, 3, 0), pv(&vals[1], 0, 9, 1), pv(&vals[2], 1, 5, 2)];
        assert_eq!(LatestWins.resolve("x", &provs), Resolved::Single(Value::from("fresh")));
    }

    #[test]
    fn multi_truth_keeps_supported_values() {
        let vals = texts(&["red", "red", "blue", "blue", "green"]);
        let r = MultiTruth { min_support: 0.4 }.resolve("x", &pvs(&vals));
        assert_eq!(r, Resolved::Multi(vec![Value::from("blue"), Value::from("red")]));
        // Everything qualifies at a tiny threshold; ordering is support-major.
        let all = MultiTruth { min_support: 0.1 }.resolve("x", &pvs(&vals));
        assert_eq!(all.values().len(), 3);
    }

    #[test]
    fn multi_truth_never_resolves_to_none() {
        let vals = texts(&["a", "b", "c"]);
        let r = MultiTruth { min_support: 0.9 }.resolve("x", &pvs(&vals));
        assert_eq!(r, Resolved::Single(Value::from("a")), "best-supported survives");
    }

    #[test]
    fn multi_truth_clamps_out_of_range_thresholds() {
        let vals = texts(&["a", "a", "b"]);
        // Non-positive / NaN = any support: both distinct values survive.
        for degenerate in [0.0, -3.0, f64::NAN] {
            let r = MultiTruth { min_support: degenerate }.resolve("x", &pvs(&vals));
            assert_eq!(
                r,
                Resolved::Multi(vec![Value::from("a"), Value::from("b")]),
                "min_support {degenerate}"
            );
        }
        // Above 1 = unanimity only: the split collapses to the best.
        let r = MultiTruth { min_support: 7.5 }.resolve("x", &pvs(&vals));
        assert_eq!(r, Resolved::Single(Value::from("a")));
        let unanimous = texts(&["z", "z"]);
        let r = MultiTruth { min_support: 7.5 }.resolve("x", &pvs(&unanimous));
        assert_eq!(r, Resolved::Single(Value::from("z")));
    }

    #[test]
    fn policy_resolver_respects_cluster_order_not_slice_order() {
        let vals = texts(&["second", "first"]);
        // Slice order disagrees with rank order; `First` must follow rank.
        let provs = vec![pv(&vals[0], 1, 1, 1), pv(&vals[1], 0, 0, 0)];
        let r = PolicyResolver(ConflictPolicy::First).resolve("x", &provs);
        assert_eq!(r, Resolved::Single(Value::from("first")));
    }

    #[test]
    fn resolved_values_views() {
        assert_eq!(Resolved::None.values().len(), 0);
        assert_eq!(Resolved::Single(Value::Int(1)).values(), &[Value::Int(1)]);
        assert_eq!(
            Resolved::Multi(vec![Value::Int(1), Value::Int(2)]).values().len(),
            2
        );
    }
}
