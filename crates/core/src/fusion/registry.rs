//! The resolver registry: per-attribute truth-discovery dispatch.
//!
//! A [`ResolverRegistry`] maps attribute names to boxed [`ValueResolver`]s
//! with a default fallback — the open counterpart of the closed
//! `MergePolicy` enum table. Registries are built either directly (boxing
//! resolvers) or from a [`RegistryConfig`], a clonable declarative spec
//! that can live in `DataTamerConfig` and travel on a `PipelinePlan`.

use datatamer_entity::consolidate::ConflictPolicy;

use super::resolve::{
    LatestWins, MajorityVote, MultiTruth, PolicyResolver, ProvenancedValue, Resolved,
    ValueResolver,
};
use super::reliability::SourceReliability;

/// Per-attribute resolver dispatch with a default fallback.
pub struct ResolverRegistry {
    per_attribute: Vec<(String, Box<dyn ValueResolver>)>,
    default: Box<dyn ValueResolver>,
}

impl ResolverRegistry {
    /// Registry resolving every attribute with `default`.
    pub fn new(default: Box<dyn ValueResolver>) -> Self {
        ResolverRegistry { per_attribute: Vec::new(), default }
    }

    /// Builder form of [`ResolverRegistry::register`].
    pub fn with(mut self, attr: impl Into<String>, resolver: Box<dyn ValueResolver>) -> Self {
        self.register(attr, resolver);
        self
    }

    /// Route `attr` to `resolver` (replacing an earlier registration).
    pub fn register(&mut self, attr: impl Into<String>, resolver: Box<dyn ValueResolver>) {
        let attr = attr.into();
        match self.per_attribute.iter_mut().find(|(a, _)| *a == attr) {
            Some((_, slot)) => *slot = resolver,
            None => self.per_attribute.push((attr, resolver)),
        }
    }

    /// The resolver dispatched for an attribute.
    pub fn resolver_of(&self, attr: &str) -> &dyn ValueResolver {
        self.per_attribute
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, r)| r.as_ref())
            .unwrap_or(self.default.as_ref())
    }

    /// Resolve one attribute's values through the dispatched resolver.
    pub fn resolve(&self, attr: &str, values: &[ProvenancedValue<'_>]) -> Resolved {
        self.resolver_of(attr).resolve(attr, values)
    }

    /// [`ResolverRegistry::resolve`] plus the dispatched resolver's
    /// confidence, when it reports one.
    pub fn resolve_with_confidence(
        &self,
        attr: &str,
        values: &[ProvenancedValue<'_>],
    ) -> (Resolved, Option<f64>) {
        self.resolver_of(attr).resolve_with_confidence(attr, values)
    }

    /// `(attribute, resolver name)` routing table plus the default's name —
    /// what tests assert dispatch against.
    pub fn dispatch_table(&self) -> (Vec<(&str, &'static str)>, &'static str) {
        let rows = self
            .per_attribute
            .iter()
            .map(|(a, r)| (a.as_str(), r.name()))
            .collect();
        (rows, self.default.name())
    }

    /// The classic Broadway-demo routing (see
    /// [`crate::fusion::fusion_merge_policy`]): cheapest price takes the
    /// numeric minimum, curated-first attributes take source priority, and
    /// everything else majority-votes with first-seen tie breaks.
    pub fn broadway() -> Self {
        RegistryConfig::broadway().build()
    }
}

impl Default for ResolverRegistry {
    fn default() -> Self {
        Self::broadway()
    }
}

impl std::fmt::Debug for ResolverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (rows, default) = self.dispatch_table();
        f.debug_struct("ResolverRegistry")
            .field("per_attribute", &rows)
            .field("default", &default)
            .finish()
    }
}

/// Declarative, clonable resolver choice — the configuration-level mirror
/// of the built-in [`ValueResolver`] implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolverSpec {
    /// Permutation-invariant majority vote ([`MajorityVote`]).
    MajorityVote,
    /// Iterative accu-style source weighting ([`SourceReliability`]).
    SourceReliability {
        /// Fixpoint rounds.
        iterations: usize,
    },
    /// Freshest record's value wins ([`LatestWins`]).
    LatestWins,
    /// Keep every value at or above a support fraction ([`MultiTruth`]).
    MultiTruth {
        /// Minimum support fraction in `(0, 1]`.
        min_support: f64,
    },
    /// A classic order-sensitive merge policy ([`PolicyResolver`]).
    Policy(ConflictPolicy),
}

impl ResolverSpec {
    /// Instantiate the resolver this spec describes.
    pub fn build(&self) -> Box<dyn ValueResolver> {
        match *self {
            ResolverSpec::MajorityVote => Box::new(MajorityVote),
            ResolverSpec::SourceReliability { iterations } => {
                Box::new(SourceReliability { iterations, ..Default::default() })
            }
            ResolverSpec::LatestWins => Box::new(LatestWins),
            ResolverSpec::MultiTruth { min_support } => Box::new(MultiTruth { min_support }),
            ResolverSpec::Policy(policy) => Box::new(PolicyResolver(policy)),
        }
    }
}

/// A whole registry as declarative config: `(attribute, spec)` overrides
/// plus a default spec. Lives in `DataTamerConfig` (system default) and
/// optionally on a `PipelinePlan` (per-run override).
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Per-attribute resolver overrides.
    pub per_attribute: Vec<(String, ResolverSpec)>,
    /// Resolver for attributes without an override.
    pub default: ResolverSpec,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self::broadway()
    }
}

impl RegistryConfig {
    /// Config with only a default resolver.
    pub fn uniform(default: ResolverSpec) -> Self {
        RegistryConfig { per_attribute: Vec::new(), default }
    }

    /// Builder: route `attr` to `spec` (replacing an earlier entry).
    pub fn with(mut self, attr: impl Into<String>, spec: ResolverSpec) -> Self {
        let attr = attr.into();
        match self.per_attribute.iter_mut().find(|(a, _)| *a == attr) {
            Some((_, slot)) => *slot = spec,
            None => self.per_attribute.push((attr, spec)),
        }
        self
    }

    /// The classic Broadway-demo routing, derived directly from the legacy
    /// [`crate::fusion::fusion_merge_policy`] table (one source of truth)
    /// and therefore byte-compatible with the pre-registry merge.
    pub fn broadway() -> Self {
        let legacy = super::fusion_merge_policy();
        RegistryConfig {
            per_attribute: legacy
                .per_attribute
                .into_iter()
                .map(|(attr, policy)| (attr, ResolverSpec::Policy(policy)))
                .collect(),
            default: ResolverSpec::Policy(legacy.default),
        }
    }

    /// Instantiate the registry this config describes.
    pub fn build(&self) -> ResolverRegistry {
        let mut registry = ResolverRegistry::new(self.default.build());
        for (attr, spec) in &self.per_attribute {
            registry.register(attr.clone(), spec.build());
        }
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{CHEAPEST_PRICE, FIRST, PERFORMANCE, SHOW_NAME, TEXT_FEED, THEATER};
    use datatamer_model::{RecordId, SourceId, Value};

    fn pv(value: &Value, i: usize) -> ProvenancedValue<'_> {
        ProvenancedValue {
            value,
            source: SourceId(i as u32),
            record: RecordId(i as u64),
            rank: i,
        }
    }

    #[test]
    fn dispatch_falls_back_to_default() {
        let registry = ResolverRegistry::new(Box::new(MajorityVote))
            .with("FRESH", Box::new(LatestWins));
        assert_eq!(registry.resolver_of("FRESH").name(), "latest_wins");
        assert_eq!(registry.resolver_of("ANYTHING").name(), "majority_vote");
        let (rows, default) = registry.dispatch_table();
        assert_eq!(rows, vec![("FRESH", "latest_wins")]);
        assert_eq!(default, "majority_vote");
    }

    #[test]
    fn register_replaces_existing_route() {
        let mut registry = ResolverRegistry::new(Box::new(MajorityVote));
        registry.register("A", Box::new(LatestWins));
        registry.register("A", Box::new(MultiTruth::default()));
        assert_eq!(registry.resolver_of("A").name(), "multi_truth");
        assert_eq!(registry.dispatch_table().0.len(), 1);
    }

    #[test]
    fn registry_resolve_routes_per_attribute() {
        let registry = ResolverRegistry::new(Box::new(MajorityVote))
            .with("FRESH", Box::new(LatestWins));
        let vals: Vec<Value> = ["old", "old", "new"].iter().map(|s| Value::from(*s)).collect();
        let provs: Vec<ProvenancedValue<'_>> =
            vals.iter().enumerate().map(|(i, v)| pv(v, i)).collect();
        assert_eq!(registry.resolve("FRESH", &provs), Resolved::Single(Value::from("new")));
        assert_eq!(registry.resolve("OTHER", &provs), Resolved::Single(Value::from("old")));
    }

    #[test]
    fn broadway_config_mirrors_legacy_policy_table() {
        let registry = RegistryConfig::broadway().build();
        assert_eq!(registry.resolver_of(CHEAPEST_PRICE).name(), "policy:numeric_min");
        for attr in [TEXT_FEED, THEATER, PERFORMANCE, FIRST] {
            assert_eq!(registry.resolver_of(attr).name(), "policy:first");
        }
        assert_eq!(registry.resolver_of(SHOW_NAME).name(), "policy:majority_vote");
        assert_eq!(registry.resolver_of("UNROUTED").name(), "policy:majority_vote");
    }

    #[test]
    fn spec_with_replaces_and_builds() {
        let config = RegistryConfig::uniform(ResolverSpec::MajorityVote)
            .with("A", ResolverSpec::LatestWins)
            .with("A", ResolverSpec::MultiTruth { min_support: 0.5 })
            .with("B", ResolverSpec::SourceReliability { iterations: 3 });
        assert_eq!(config.per_attribute.len(), 2);
        let registry = config.build();
        assert_eq!(registry.resolver_of("A").name(), "multi_truth");
        assert_eq!(registry.resolver_of("B").name(), "source_reliability");
    }
}
