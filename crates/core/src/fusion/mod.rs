//! Fusing text-derived and structured records over the global schema.
//!
//! The demo's payoff (Tables V → VI): a show looked up from web text alone
//! has only `SHOW_NAME` and `TEXT_FEED`; after fusing the FTABLES sources,
//! the same lookup also carries `THEATER`, `PERFORMANCE`, `CHEAPEST_PRICE`,
//! and `FIRST`.
//!
//! Fusion is a **two-level architecture**:
//!
//! * **Grouping** — a [`GroupingStrategy`] decides which records describe
//!   the same entity: either the classic canonical-name scan
//!   ([`FusionPolicy`] via [`group_records`]) or similarity-based blocked
//!   ER (blocking → pair scoring → union-find, wired in from
//!   `datatamer-entity` — see the [`grouping`] module).
//! * **Truth discovery** — a [`ResolverRegistry`] maps each attribute to a
//!   [`ValueResolver`] that picks the surviving value(s) from a group's
//!   conflicting, provenance-tagged candidates ([`merge_groups_with`]).
//!
//! Built-in resolvers: [`MajorityVote`], [`SourceReliability`] (iterative
//! accu-style source weighting), [`LatestWins`] (record-provenance
//! freshness), [`MultiTruth`] (keeps all values above a support threshold),
//! and [`PolicyResolver`] wrapping the classic order-sensitive
//! [`ConflictPolicy`] table. Registries are configured declaratively via
//! [`RegistryConfig`] on `DataTamerConfig` or per run on a `PipelinePlan`.
//! Group merging stays rayon-parallel and byte-deterministic at any thread
//! count.

pub mod grouping;
mod registry;
mod reliability;
mod resolve;

pub use grouping::{BlockedErConfig, GroupingReport, GroupingStrategy, ScorerSpec};
pub use registry::{RegistryConfig, ResolverRegistry, ResolverSpec};
pub use reliability::SourceReliability;
pub use resolve::{
    LatestWins, MajorityVote, MultiTruth, PolicyResolver, ProvenancedValue, Resolved,
    ValueResolver,
};

use std::collections::HashMap;

use datatamer_entity::consolidate::{ConflictPolicy, MergePolicy};
use datatamer_ml::DedupClassifier;
use datatamer_model::{Record, Value};
use datatamer_sim as sim;
use datatamer_text::normalize::canonical_name;
use rayon::prelude::*;

/// Canonical fused attribute names (Table VI spellings).
pub const SHOW_NAME: &str = "SHOW_NAME";
pub const THEATER: &str = "THEATER";
pub const PERFORMANCE: &str = "PERFORMANCE";
pub const TEXT_FEED: &str = "TEXT_FEED";
pub const CHEAPEST_PRICE: &str = "CHEAPEST_PRICE";
pub const FIRST: &str = "FIRST";

/// How fused attributes resolve conflicts across sources.
///
/// * `CHEAPEST_PRICE` is the *cheapest* price seen — `NumericMin`.
/// * `TEXT_FEED`, `THEATER`, `PERFORMANCE`, `FIRST` take the first source's
///   value (source-priority resolution: the seed source is the cleanest).
/// * Everything else majority-votes.
///
/// This is the legacy closed-table form of the routing; the open registry
/// equivalent is [`RegistryConfig::broadway`], which the pipeline now uses.
pub fn fusion_merge_policy() -> MergePolicy {
    MergePolicy {
        per_attribute: vec![
            (CHEAPEST_PRICE.to_owned(), ConflictPolicy::NumericMin),
            (TEXT_FEED.to_owned(), ConflictPolicy::First),
            (THEATER.to_owned(), ConflictPolicy::First),
            (PERFORMANCE.to_owned(), ConflictPolicy::First),
            (FIRST.to_owned(), ConflictPolicy::First),
            (SHOW_NAME.to_owned(), ConflictPolicy::MajorityVote),
        ],
        default: ConflictPolicy::MajorityVote,
    }
}

/// How candidate records are matched into the same fused entity.
pub enum FusionPolicy {
    /// Exact canonical-name grouping plus fuzzy attachment at a threshold.
    Fuzzy { threshold: f64 },
    /// ML dedup classifier on `SHOW_NAME` (probability ≥ 0.5 attaches).
    Classifier(DedupClassifier),
}

impl FusionPolicy {
    /// Both arguments are already canonicalised — the grouping scan
    /// canonicalises each name once, not once per existing group.
    fn matches(&self, canon_key: &str, canon_b: &str) -> bool {
        if canon_key == canon_b {
            return true;
        }
        match self {
            FusionPolicy::Fuzzy { threshold } => {
                sim::jaro_winkler(canon_key, canon_b) >= *threshold
            }
            FusionPolicy::Classifier(model) => model.is_duplicate(canon_key, canon_b),
        }
    }
}

/// One fused entity with provenance counts.
#[derive(Debug, Clone)]
pub struct FusedEntity {
    /// Canonical grouping key (lowercased, article-stripped show name).
    pub key: String,
    /// The composite record.
    pub record: Record,
    /// Input records merged into it.
    pub member_count: usize,
    /// Mean per-attribute resolution confidence, when any dispatched
    /// resolver reported one (e.g. [`MajorityVote`]'s support fraction,
    /// [`SourceReliability`]'s winning weight share). `None` when no
    /// resolver in the routing quantifies confidence — distinct from a
    /// measured low confidence.
    pub confidence: Option<f64>,
}

/// One fusion candidate group: the canonical key and member indexes into
/// the record slice, in first-seen order.
pub type FusionGroup = (String, Vec<usize>);

/// Entity-consolidation half of fusion: group record indexes by the
/// canonical form of `SHOW_NAME`, attaching near-miss names (typos, case
/// damage) to an existing group via `policy`.
///
/// The scan is inherently sequential (each record may attach to a group an
/// earlier record created), but it is cheap: the quadratic part — merging
/// — happens per group in [`merge_groups`].
pub fn group_records(records: &[Record], policy: &FusionPolicy) -> Vec<FusionGroup> {
    let mut groups: Vec<FusionGroup> = Vec::new();
    let mut by_key: HashMap<String, usize> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        let Some(name) = r.get_text(SHOW_NAME) else { continue };
        let canon = canonical_name(&name);
        if canon.is_empty() {
            continue;
        }
        let group_idx = match by_key.get(&canon) {
            Some(g) => *g,
            None => {
                // Fuzzy attachment against existing group keys.
                let attach = groups.iter().position(|(key, _)| policy.matches(key, &canon));
                match attach {
                    Some(g) => {
                        by_key.insert(canon.clone(), g);
                        g
                    }
                    None => {
                        groups.push((canon.clone(), Vec::new()));
                        by_key.insert(canon.clone(), groups.len() - 1);
                        groups.len() - 1
                    }
                }
            }
        };
        groups[group_idx].1.push(i);
    }
    groups
}

/// Resolve one candidate group into a composite record through a resolver
/// registry.
///
/// Shares the composite contract with the classic merge
/// ([`datatamer_entity::consolidate::merge_composite`]): identity from the
/// first member, first-seen attribute order, null values never reaching a
/// resolver, all-null attributes staying [`Value::Null`]. Each attribute's
/// non-null values are tagged with provenance (source id, record id,
/// cluster rank) and handed to the registry's dispatched resolver. A
/// [`Resolved::Multi`] survivor set lands as a [`Value::Array`] (a single
/// survivor as the scalar, an empty set as null, same as
/// [`Resolved::None`]).
pub fn resolve_group(members: &[&Record], registry: &ResolverRegistry) -> Record {
    resolve_group_with_confidence(members, registry).0
}

/// [`resolve_group`] plus the mean per-attribute confidence across the
/// attributes whose dispatched resolver reported one (`None` when no
/// resolver did). Attributes resolve in first-seen order sequentially, so
/// the mean is a deterministic float summation at any thread count.
pub fn resolve_group_with_confidence(
    members: &[&Record],
    registry: &ResolverRegistry,
) -> (Record, Option<f64>) {
    let mut confidence_sum = 0.0;
    let mut confidence_count = 0usize;
    let record = datatamer_entity::consolidate::merge_composite(members, |attr, values| {
        let provenanced: Vec<ProvenancedValue<'_>> = values
            .iter()
            .map(|&(rank, value)| ProvenancedValue {
                value,
                source: members[rank].source,
                record: members[rank].id,
                rank,
            })
            .collect();
        let (resolved, confidence) = registry.resolve_with_confidence(attr, &provenanced);
        if let Some(c) = confidence {
            confidence_sum += c;
            confidence_count += 1;
        }
        match resolved {
            Resolved::Single(v) => v,
            Resolved::Multi(mut vs) => match vs.len() {
                0 => Value::Null,
                1 => vs.remove(0),
                _ => Value::Array(vs),
            },
            Resolved::None => Value::Null,
        }
    });
    let confidence = (confidence_count > 0)
        .then(|| confidence_sum / confidence_count as f64);
    (record, confidence)
}

/// Merge half of fusion: collapse each candidate group into one composite
/// entity through a resolver registry. Groups merge independently, so this
/// fans out across the rayon team; output order is group order at any
/// thread count, and every built-in resolver is deterministic, so the
/// output is byte-identical at any pool width.
pub fn merge_groups_with(
    records: &[Record],
    groups: &[FusionGroup],
    registry: &ResolverRegistry,
) -> Vec<FusedEntity> {
    groups
        .par_iter()
        .map(|(key, members)| {
            let refs: Vec<&Record> = members.iter().map(|&i| &records[i]).collect();
            let (record, confidence) = resolve_group_with_confidence(&refs, registry);
            FusedEntity {
                key: key.clone(),
                record,
                member_count: members.len(),
                confidence,
            }
        })
        .collect()
}

/// [`merge_groups_with`] under the standard Broadway registry
/// ([`ResolverRegistry::broadway`]) — byte-compatible with the historic
/// `MergePolicy`-based merge.
pub fn merge_groups(records: &[Record], groups: &[FusionGroup]) -> Vec<FusedEntity> {
    merge_groups_with(records, groups, &ResolverRegistry::broadway())
}

/// Fuse records (text-derived + structured, already renamed to canonical
/// attribute spellings) into one composite per distinct show, resolving
/// conflicts through `registry`.
///
/// Record order matters twice: earlier records win order-sensitive
/// resolvers (e.g. `Policy(First)`), and grouping attaches fuzzily to the
/// earliest matching group — so callers pass the cleanest source first.
/// This is [`group_records`] followed by [`merge_groups_with`]; the staged
/// pipeline runs the halves as separate stages.
pub fn fuse_records_with(
    records: &[Record],
    policy: &FusionPolicy,
    registry: &ResolverRegistry,
) -> Vec<FusedEntity> {
    merge_groups_with(records, &group_records(records, policy), registry)
}

/// [`fuse_records_with`] under the standard Broadway registry.
pub fn fuse_records(records: &[Record], policy: &FusionPolicy) -> Vec<FusedEntity> {
    fuse_records_with(records, policy, &ResolverRegistry::broadway())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{RecordId, SourceId, Value};

    fn rec(src: u32, id: u64, fields: Vec<(&str, &str)>) -> Record {
        Record::from_pairs(
            SourceId(src),
            RecordId(id),
            fields.into_iter().map(|(k, v)| (k, Value::from(v))).collect(),
        )
    }

    fn fuzzy() -> FusionPolicy {
        FusionPolicy::Fuzzy { threshold: 0.88 }
    }

    #[test]
    fn table_v_to_vi_enrichment() {
        // Structured record (FTABLES, cleanest source — listed first).
        let structured = rec(
            0,
            0,
            vec![
                (SHOW_NAME, "Matilda"),
                (THEATER, "Shubert 225 W. 44th St between 7th and 8th"),
                (
                    PERFORMANCE,
                    "Tues at 7pm Wed at 8pm Thurs at 7pm Fri-Sat at 8pm Wed, Sat at 2pm Sun at 3pm",
                ),
                (CHEAPEST_PRICE, "$27"),
                (FIRST, "3/4/2013"),
            ],
        );
        // Text record.
        let text = rec(
            1,
            1,
            vec![
                (SHOW_NAME, "Matilda"),
                (TEXT_FEED, "..And Matilda an award-winning import from London, grossed 960,998.."),
            ],
        );
        let fused = fuse_records(&[structured, text], &fuzzy());
        assert_eq!(fused.len(), 1);
        let r = &fused[0].record;
        assert_eq!(fused[0].member_count, 2);
        assert_eq!(r.get_text(SHOW_NAME).as_deref(), Some("Matilda"));
        assert!(r.get_text(THEATER).unwrap().starts_with("Shubert"));
        assert!(r.get_text(TEXT_FEED).unwrap().contains("960,998"));
        assert_eq!(r.get_text(CHEAPEST_PRICE).as_deref(), Some("$27"));
        assert_eq!(r.get_text(FIRST).as_deref(), Some("3/4/2013"));
    }

    #[test]
    fn cheapest_price_takes_numeric_min_across_sources() {
        let a = rec(0, 0, vec![(SHOW_NAME, "Wicked"), (CHEAPEST_PRICE, "$99")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "wicked"), (CHEAPEST_PRICE, "$45")]);
        let fused = fuse_records(&[a, b], &fuzzy());
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].record.get_text(CHEAPEST_PRICE).as_deref(), Some("$45"));
    }

    #[test]
    fn typo_names_attach_fuzzily() {
        let a = rec(0, 0, vec![(SHOW_NAME, "Goodfellas"), (CHEAPEST_PRICE, "$30")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "Goodfelas"), (TEXT_FEED, "typo feed")]);
        let c = rec(2, 2, vec![(SHOW_NAME, "Annie"), (CHEAPEST_PRICE, "$50")]);
        let fused = fuse_records(&[a, b, c], &fuzzy());
        assert_eq!(fused.len(), 2, "{:?}", fused.iter().map(|f| &f.key).collect::<Vec<_>>());
        let good = fused.iter().find(|f| f.key == "goodfellas").unwrap();
        assert_eq!(good.member_count, 2);
        assert!(good.record.get_text(TEXT_FEED).is_some());
    }

    #[test]
    fn articles_and_case_unify() {
        let a = rec(0, 0, vec![(SHOW_NAME, "The Walking Dead")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "WALKING DEAD")]);
        let fused = fuse_records(&[a, b], &fuzzy());
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].key, "walking dead");
    }

    #[test]
    fn records_without_show_name_are_skipped() {
        let a = rec(0, 0, vec![("other", "x")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "Annie")]);
        let fused = fuse_records(&[a, b], &fuzzy());
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].key, "annie");
    }

    #[test]
    fn classifier_policy_attaches_duplicates() {
        let pairs = vec![
            ("matilda".to_owned(), "matilda!".to_owned(), true),
            ("goodfellas".to_owned(), "goodfelas".to_owned(), true),
            ("annie".to_owned(), "anni".to_owned(), true),
            ("matilda".to_owned(), "wicked".to_owned(), false),
            ("annie".to_owned(), "pippin".to_owned(), false),
            ("goodfellas".to_owned(), "written".to_owned(), false),
        ];
        let model = DedupClassifier::train(&pairs, &Default::default());
        let policy = FusionPolicy::Classifier(model);
        let a = rec(0, 0, vec![(SHOW_NAME, "Goodfellas")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "Goodfelas")]);
        let fused = fuse_records(&[a, b], &policy);
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn first_policy_prefers_earlier_records() {
        let a = rec(0, 0, vec![(SHOW_NAME, "Annie"), (THEATER, "Palace 1564 Broadway")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "Annie"), (THEATER, "Gershwin 222 W. 51st St much longer string")]);
        let fused = fuse_records(&[a, b], &fuzzy());
        assert!(fused[0].record.get_text(THEATER).unwrap().starts_with("Palace"));
    }

    #[test]
    fn empty_input() {
        assert!(fuse_records(&[], &fuzzy()).is_empty());
    }

    #[test]
    fn registry_merge_matches_legacy_policy_merge() {
        // The broadway registry must reproduce the MergePolicy-based merge
        // byte for byte, including null handling and attribute order.
        let records = vec![
            rec(0, 0, vec![(SHOW_NAME, "Annie"), (CHEAPEST_PRICE, "$45"), (THEATER, "Palace")]),
            rec(1, 1, vec![(SHOW_NAME, "annie"), (CHEAPEST_PRICE, "$39"), (TEXT_FEED, "feed")]),
            rec(2, 2, vec![(SHOW_NAME, "Annie"), (THEATER, "Gershwin")]),
        ];
        let groups = group_records(&records, &fuzzy());
        let legacy = fusion_merge_policy();
        for (key, members) in &groups {
            let refs: Vec<&Record> = members.iter().map(|&i| &records[i]).collect();
            let via_policy = datatamer_entity::consolidate::merge_cluster(&refs, &legacy);
            let via_registry = resolve_group(&refs, &ResolverRegistry::broadway());
            assert_eq!(via_policy, via_registry, "group {key}");
        }
    }

    #[test]
    fn fuse_records_with_routes_attributes_to_their_resolvers() {
        let registry = ResolverRegistry::new(Box::new(MajorityVote))
            .with("RATING", Box::new(MultiTruth { min_support: 0.3 }))
            .with("STATUS", Box::new(LatestWins));
        let records = vec![
            rec(0, 0, vec![(SHOW_NAME, "Pippin"), ("RATING", "PG"), ("STATUS", "previews")]),
            rec(1, 1, vec![(SHOW_NAME, "Pippin"), ("RATING", "PG-13"), ("STATUS", "open")]),
            rec(2, 2, vec![(SHOW_NAME, "Pippin"), ("RATING", "PG"), ("STATUS", "open")]),
        ];
        let fused = fuse_records_with(&records, &fuzzy(), &registry);
        assert_eq!(fused.len(), 1);
        let r = &fused[0].record;
        // MultiTruth keeps both ratings (support-major order) as an array.
        assert_eq!(
            r.get("RATING"),
            Some(&Value::Array(vec![Value::from("PG"), Value::from("PG-13")]))
        );
        // LatestWins takes the provenance-latest record's status.
        assert_eq!(r.get_text("STATUS").as_deref(), Some("open"));
        // Default majority vote handles the name.
        assert_eq!(r.get_text(SHOW_NAME).as_deref(), Some("Pippin"));
    }

    #[test]
    fn empty_multi_and_none_both_resolve_to_null() {
        // A custom resolver that filters every candidate out must behave
        // the same whether it reports Multi(vec![]) or None.
        struct DropAll(bool);
        impl ValueResolver for DropAll {
            fn name(&self) -> &'static str {
                "drop_all"
            }
            fn resolve(&self, _attr: &str, _values: &[ProvenancedValue<'_>]) -> Resolved {
                if self.0 {
                    Resolved::Multi(Vec::new())
                } else {
                    Resolved::None
                }
            }
        }
        for empty_multi in [true, false] {
            let registry = ResolverRegistry::new(Box::new(MajorityVote))
                .with("DOOMED", Box::new(DropAll(empty_multi)));
            let records = vec![
                rec(0, 0, vec![(SHOW_NAME, "Cats"), ("DOOMED", "x")]),
                rec(1, 1, vec![(SHOW_NAME, "Cats"), ("DOOMED", "y")]),
            ];
            let fused = fuse_records_with(&records, &fuzzy(), &registry);
            assert_eq!(
                fused[0].record.get("DOOMED"),
                Some(&Value::Null),
                "empty_multi={empty_multi}"
            );
        }
    }

    #[test]
    fn fused_confidence_averages_reporting_attributes() {
        // Two attributes under MajorityVote: SHOW_NAME unanimous (1.0),
        // STATUS split 2-vs-1 (2/3) — the entity confidence is their mean.
        let registry = ResolverRegistry::new(Box::new(MajorityVote));
        let records = vec![
            rec(0, 0, vec![(SHOW_NAME, "Annie"), ("STATUS", "open")]),
            rec(1, 1, vec![(SHOW_NAME, "Annie"), ("STATUS", "open")]),
            rec(2, 2, vec![(SHOW_NAME, "Annie"), ("STATUS", "closed")]),
        ];
        let fused = fuse_records_with(&records, &fuzzy(), &registry);
        assert_eq!(fused.len(), 1);
        let expected = (1.0 + 2.0 / 3.0) / 2.0;
        let got = fused[0].confidence.expect("majority vote reports confidence");
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn policy_only_routing_reports_no_confidence() {
        // The broadway registry is all order-sensitive PolicyResolvers,
        // which have no confidence notion — the channel stays None rather
        // than faking a number.
        let records = vec![
            rec(0, 0, vec![(SHOW_NAME, "Annie"), (CHEAPEST_PRICE, "$45")]),
            rec(1, 1, vec![(SHOW_NAME, "Annie"), (CHEAPEST_PRICE, "$39")]),
        ];
        let fused = fuse_records(&records, &fuzzy());
        assert_eq!(fused[0].confidence, None);

        // Mixed routing: only the majority-voted attribute contributes.
        let registry = ResolverRegistry::new(Box::new(PolicyResolver(
            datatamer_entity::consolidate::ConflictPolicy::First,
        )))
        .with(SHOW_NAME, Box::new(MajorityVote));
        let fused = fuse_records_with(&records, &fuzzy(), &registry);
        assert_eq!(fused[0].confidence, Some(1.0), "only SHOW_NAME reports, unanimously");
    }

    #[test]
    fn all_null_attribute_stays_null_through_registry() {
        let mut a = rec(0, 0, vec![(SHOW_NAME, "Cats")]);
        a.set("GONE", Value::Null);
        let b = rec(1, 1, vec![(SHOW_NAME, "Cats")]);
        let fused = fuse_records_with(
            &[a, b],
            &fuzzy(),
            &ResolverRegistry::new(Box::new(MajorityVote)),
        );
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].record.get("GONE"), Some(&Value::Null));
    }
}
