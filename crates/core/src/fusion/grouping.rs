//! Grouping strategies for the entity-consolidation stage.
//!
//! The consolidation half of fusion historically had exactly one shape:
//! canonical-name grouping with fuzzy attachment ([`super::group_records`]
//! under a [`FusionPolicy`]). That finds case damage and typos in the show
//! name but cannot consolidate duplicates whose names diverge further —
//! while the full ER machinery in `datatamer-entity` (blocking → pair
//! scoring → union-find clustering) sat outside the staged pipeline.
//!
//! [`GroupingStrategy`] is the seam that closes the gap: a declarative,
//! clonable choice between the two, living on
//! [`crate::config::DataTamerConfig::grouping`] (system default) with a
//! per-run override on `PipelinePlan::grouping` — the same
//! configuration-travel pattern as the fusion resolver registry. Both
//! strategies produce the same [`FusionGroup`] shape, so the merge half
//! (rayon-parallel, byte-deterministic) is untouched downstream.

use datatamer_entity::blocking::{Blocker, BlockingStrategy, OversizeFallback};
use datatamer_entity::cluster::cluster_pairs;
use datatamer_entity::incremental::IncrementalConsolidator;
use datatamer_entity::pairsim::{PairScorer, RecordSimilarity};
use datatamer_model::Record;
use datatamer_text::normalize::canonical_name;

use super::{group_records, FusionGroup, FusionPolicy, SHOW_NAME};

/// Declarative pair-scorer choice for blocked ER — the configuration-level
/// mirror of [`PairScorer`] (the trained-classifier variant is not
/// expressible as clonable config and stays on the imperative
/// `datatamer-entity` API).
#[derive(Debug, Clone, PartialEq)]
pub enum ScorerSpec {
    /// Weighted per-attribute rule similarity ([`RecordSimilarity`]).
    Rules {
        /// `(attribute, weight)` overrides.
        weights: Vec<(String, f64)>,
        /// Weight of attributes not explicitly listed.
        default_weight: f64,
    },
}

impl Default for ScorerSpec {
    fn default() -> Self {
        ScorerSpec::Rules { weights: Vec::new(), default_weight: 1.0 }
    }
}

impl ScorerSpec {
    /// Instantiate the scorer this spec describes.
    pub fn build(&self) -> PairScorer {
        match self {
            ScorerSpec::Rules { weights, default_weight } => PairScorer::Rules(
                RecordSimilarity::with_weights(weights.clone(), *default_weight),
            ),
        }
    }
}

/// Configuration of similarity-based blocked entity resolution: which
/// attribute blocks, how candidates are generated, how pairs are scored,
/// and the acceptance threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedErConfig {
    /// The attribute driving blocking (canonical spelling — records are
    /// already mapped onto the global schema when consolidation runs).
    pub key_attr: String,
    /// Candidate generation strategy.
    pub strategy: BlockingStrategy,
    /// Oversized-bucket handling (progressive by default — see
    /// [`OversizeFallback`]).
    pub fallback: OversizeFallback,
    /// Pair scoring.
    pub scorer: ScorerSpec,
    /// Pairs scoring at or above this are duplicates.
    pub accept_threshold: f64,
    /// Run consolidation through the resident-state
    /// [`IncrementalConsolidator`] instead of the batch path. Inside one
    /// staged run the two are byte-identical (the pin
    /// `tests/incremental_equivalence.rs` holds at any thread count); the
    /// difference is that [`crate::DataTamer::consolidate_delta`] can then
    /// keep feeding the same resident state O(delta) batches.
    pub incremental: bool,
    /// Cap on the resident score memo, in entries (`None` = unbounded).
    /// Any value — including 0 — preserves byte-identical clusters; an
    /// evicted score simply recomputes when next needed (see
    /// [`IncrementalConsolidator::with_memo_budget`]).
    pub memo_budget: Option<usize>,
    /// Cap on the resident accepted-window pairs across all slots
    /// (`None` = unbounded). Evicted slots regenerate wholesale on the
    /// next delta, so any value — including 0 — preserves byte-identical
    /// clusters (see [`IncrementalConsolidator::with_window_budget`]).
    pub window_budget: Option<usize>,
}

impl Default for BlockedErConfig {
    fn default() -> Self {
        BlockedErConfig {
            key_attr: SHOW_NAME.to_owned(),
            strategy: BlockingStrategy::Token,
            fallback: OversizeFallback::default(),
            scorer: ScorerSpec::default(),
            accept_threshold: 0.75,
            incremental: false,
            memo_budget: None,
            window_budget: None,
        }
    }
}

impl BlockedErConfig {
    /// The [`Blocker`] this configuration describes.
    pub fn build_blocker(&self) -> Blocker {
        Blocker::new(self.key_attr.clone(), self.strategy).with_fallback(self.fallback)
    }

    /// A fresh resident-state consolidator matching this configuration.
    pub fn build_incremental(&self) -> IncrementalConsolidator {
        IncrementalConsolidator::new(
            self.build_blocker(),
            self.scorer.build(),
            self.accept_threshold,
        )
        .with_memo_budget(self.memo_budget)
        .with_window_budget(self.window_budget)
    }
}

/// How the entity-consolidation stage forms candidate groups.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum GroupingStrategy {
    /// Exact canonical-name grouping with fuzzy attachment at the system's
    /// fusion threshold — the classic demo behaviour, cheap and sequential.
    #[default]
    CanonicalName,
    /// Similarity-based blocked ER: blocking → rayon-parallel pair scoring
    /// → union-find clustering. Consolidates fuzzy duplicates the
    /// name-key scan cannot reach, at bounded candidate volume.
    BlockedEr(BlockedErConfig),
}

/// Blocking-health numbers from one grouping run — zero across the board
/// for [`GroupingStrategy::CanonicalName`], which has no pairwise phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupingReport {
    /// Candidate pairs generated by blocking.
    pub candidate_pairs: usize,
    /// Pairs accepted as duplicates by the scorer.
    pub accepted_pairs: usize,
    /// Buckets the blocker degraded at the cap (windowed, not exhaustive,
    /// recall inside them — see
    /// [`datatamer_entity::blocking::BlockingOutcome::degraded_buckets`]).
    pub degraded_buckets: usize,
}

impl GroupingStrategy {
    /// Form candidate groups. `fuzzy_threshold` parameterises
    /// [`GroupingStrategy::CanonicalName`] (it is the system's
    /// `fusion_threshold`); blocked ER carries its own threshold.
    pub fn groups(&self, records: &[Record], fuzzy_threshold: f64) -> Vec<FusionGroup> {
        self.groups_with_report(records, fuzzy_threshold).0
    }

    /// [`GroupingStrategy::groups`] plus the blocking-health counters.
    pub fn groups_with_report(
        &self,
        records: &[Record],
        fuzzy_threshold: f64,
    ) -> (Vec<FusionGroup>, GroupingReport) {
        match self {
            GroupingStrategy::CanonicalName => {
                let policy = FusionPolicy::Fuzzy { threshold: fuzzy_threshold };
                (group_records(records, &policy), GroupingReport::default())
            }
            GroupingStrategy::BlockedEr(config) => blocked_groups(records, config),
        }
    }
}

/// The blocked-ER grouping path: every step is deterministic at any thread
/// count (blocking output is sorted/deduplicated, scoring preserves pair
/// order, union-find clusters are ordered by smallest member), so the
/// group list — and therefore the fused output — is byte-identical across
/// pool widths.
fn blocked_groups(
    records: &[Record],
    config: &BlockedErConfig,
) -> (Vec<FusionGroup>, GroupingReport) {
    if config.incremental {
        // One-shot incremental run: the whole corpus as a single delta
        // batch against fresh resident state. Same clusters, same counts
        // (everything is new, so the delta candidate set is the full one).
        let mut inc = config.build_incremental();
        let delta = inc.ingest(records);
        let groups = clusters_to_groups(records, inc.clusters().iter().cloned(), config);
        let report = GroupingReport {
            candidate_pairs: delta.candidate_pairs,
            accepted_pairs: delta.accepted_pairs,
            degraded_buckets: delta.degraded_buckets,
        };
        return (groups, report);
    }
    let blocker = config.build_blocker();
    let scorer = config.scorer.build();
    // Prepare the scoring context once — before the rayon fan-out — so
    // each record's features (interned attributes and tokens, parsed
    // numerics, lowercased text) are normalised exactly once no matter how
    // many candidate pairs blocking put it in; the parallel filter then
    // scores allocation-free against the shared context. The same context
    // hands blocking its full-key sort axis (progressive fallback and
    // sorted-neighborhood order), replacing what used to be a second
    // render + lowercase pass over the raw records.
    let prepared = scorer.prepare(records);
    let outcome = blocker.candidates_with_report_keyed(records, &|| {
        prepared
            .sort_keys(&config.key_attr)
            .expect("a rules scoring context serves any attribute's sort keys")
    });
    let accepted = prepared.accepted_pairs(&outcome.pairs, config.accept_threshold);
    let clusters = cluster_pairs(records.len(), &accepted);
    let groups = clusters_to_groups(records, clusters.into_iter(), config);
    let report = GroupingReport {
        candidate_pairs: outcome.pairs.len(),
        accepted_pairs: accepted.len(),
        degraded_buckets: outcome.degraded_buckets,
    };
    (groups, report)
}

/// Keep the FusionGroup contract of the canonical-name path: records
/// lacking the key attribute form no group (they never pair, so they can
/// only be singletons here), and each group's key is the canonical form of
/// its first member's key value.
pub(crate) fn clusters_to_groups(
    records: &[Record],
    clusters: impl Iterator<Item = Vec<usize>>,
    config: &BlockedErConfig,
) -> Vec<FusionGroup> {
    let mut groups: Vec<FusionGroup> = Vec::new();
    for cluster in clusters {
        let Some(name) = records[cluster[0]].get_text(&config.key_attr) else { continue };
        let key = canonical_name(&name);
        if key.is_empty() {
            continue;
        }
        groups.push((key, cluster));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{RecordId, SourceId, Value};

    fn rec(id: u64, name: &str, price: &str) -> Record {
        Record::from_pairs(
            SourceId(0),
            RecordId(id),
            vec![(SHOW_NAME, Value::from(name)), ("CHEAPEST_PRICE", Value::from(price))],
        )
    }

    #[test]
    fn canonical_name_matches_legacy_group_records() {
        let records = vec![
            rec(0, "Matilda", "$27"),
            rec(1, "matilda", "$27"),
            rec(2, "Wicked", "$99"),
        ];
        let (groups, report) = GroupingStrategy::CanonicalName.groups_with_report(&records, 0.88);
        let legacy = group_records(&records, &FusionPolicy::Fuzzy { threshold: 0.88 });
        assert_eq!(groups, legacy);
        assert_eq!(report, GroupingReport::default());
    }

    #[test]
    fn blocked_er_consolidates_word_order_duplicates() {
        // "Walking Dead" vs "Dead Walking": character-level Jaro-Winkler
        // on the canonical names is far below any sane fuzzy threshold, so
        // the canonical-name scan splits them — but they share every token
        // and their price agrees, so blocked ER's record similarity
        // (character + token blend over all shared attributes) unites them.
        let records = vec![
            rec(0, "Walking Dead", "$27"),
            rec(1, "Dead Walking", "$27"),
            rec(2, "Completely Unrelated", "$99"),
        ];
        let strategy = GroupingStrategy::BlockedEr(BlockedErConfig::default());
        let (groups, report) = strategy.groups_with_report(&records, 0.88);
        assert_eq!(groups.len(), 2, "{groups:?}");
        assert_eq!(groups[0].1, vec![0, 1]);
        assert_eq!(groups[0].0, "walking dead");
        assert!(report.candidate_pairs >= 1);
        assert_eq!(report.accepted_pairs, 1);
        assert_eq!(report.degraded_buckets, 0);

        let canonical = GroupingStrategy::CanonicalName.groups(&records, 0.88);
        assert_eq!(canonical.len(), 3, "the name scan alone splits the word-order pair");
    }

    #[test]
    fn blocked_er_skips_records_without_the_key_attribute() {
        let mut records = vec![rec(0, "Annie", "$45"), rec(1, "annie", "$45")];
        records.push(Record::from_pairs(
            SourceId(0),
            RecordId(2),
            vec![("OTHER", Value::from("x"))],
        ));
        let strategy = GroupingStrategy::BlockedEr(BlockedErConfig::default());
        let groups = strategy.groups(&records, 0.88);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], ("annie".to_owned(), vec![0, 1]));
    }

    #[test]
    fn blocked_er_reports_degraded_buckets() {
        let records: Vec<Record> = (0..300)
            .map(|i| rec(i, &format!("common unique{i}"), "$1"))
            .collect();
        let strategy = GroupingStrategy::BlockedEr(BlockedErConfig::default());
        let (_, report) = strategy.groups_with_report(&records, 0.88);
        assert_eq!(report.degraded_buckets, 1, "the 'common' bucket blew the cap");
    }

    #[test]
    fn incremental_flag_matches_the_batch_path() {
        // One staged run through the resident-state consolidator must
        // produce the same groups AND the same health counters as the
        // batch path — the two are different engines over the same math.
        let mut records = vec![
            rec(0, "Walking Dead", "$27"),
            rec(1, "Dead Walking", "$27"),
            rec(2, "Completely Unrelated", "$99"),
        ];
        // Enough shared-token records to blow the bucket cap and exercise
        // the degraded-window path on both sides.
        records.extend((3..300).map(|i| rec(i, &format!("common unique{i}"), "$1")));
        let batch = GroupingStrategy::BlockedEr(BlockedErConfig::default())
            .groups_with_report(&records, 0.88);
        let incremental = GroupingStrategy::BlockedEr(BlockedErConfig {
            incremental: true,
            ..Default::default()
        })
        .groups_with_report(&records, 0.88);
        assert_eq!(incremental, batch);
        assert!(batch.1.degraded_buckets >= 1, "the 'common' bucket must degrade");
    }

    #[test]
    fn scorer_spec_builds_weighted_rules() {
        let spec = ScorerSpec::Rules {
            weights: vec![(SHOW_NAME.to_owned(), 10.0)],
            default_weight: 0.5,
        };
        let scorer = spec.build();
        let a = rec(0, "Matilda", "$27");
        let b = rec(1, "Matilda", "$99");
        let uniform = ScorerSpec::default().build();
        assert!(
            scorer.score(&a, &b) > uniform.score(&a, &b),
            "name-heavy weighting must dominate the price mismatch"
        );
    }
}
