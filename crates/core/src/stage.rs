//! The staged pipeline: Figure 1 as an explicit stage list.
//!
//! Every phase of the system — ingest, schema integration, cleaning,
//! entity consolidation, fusion — is a [`PipelineStage`] driven over a
//! [`PipelineContext`] that owns the store, the catalog, the growing
//! global schema, and every stage's report. The facade
//! ([`crate::DataTamer`]) assembles stage lists and runs them through
//! [`run_stages`]; future scaling work (shard coordinators, async ingest,
//! persistence-backed stages) plugs in at these boundaries instead of
//! inside a monolith.
//!
//! ```text
//! ingest → schema integration → cleaning → entity consolidation → fusion
//!    │            │                 │               │                │
//!    └────────────┴────────┬────────┴───────────────┴────────────────┘
//!                          ▼
//!                  PipelineContext
//!         (Store · Catalog · SchemaIntegrator · stage reports)
//! ```

use datatamer_clean::{clean_sources_parallel, CleaningEngine, CleaningReport};
use datatamer_model::{Record, Result, SourceId, SourceSchema};
use datatamer_schema::integrate::{AcceptBest, EscalationResolver};
use datatamer_schema::{IntegrationReport, SchemaIntegrator};
use datatamer_storage::{StorageReport, Store};
use datatamer_text::DomainParser;
use rayon::prelude::*;

use crate::catalog::{Catalog, SourceKind};
use crate::config::DataTamerConfig;
use crate::fusion::{
    group_records, merge_groups_with, FusedEntity, FusionGroup, FusionPolicy, GroupingReport,
    GroupingStrategy, ResolverRegistry, CHEAPEST_PRICE, FIRST, PERFORMANCE, SHOW_NAME, THEATER,
};
use crate::ingest::{IngestStats, TextIngestor};
use crate::pipeline::{record_to_doc, GLOBAL_RECORDS_COLLECTION};

/// Canonical stage names, in canonical order.
pub mod stage_names {
    /// Structured + text ingest.
    pub const INGEST: &str = "ingest";
    /// Bottom-up schema integration and record mapping.
    pub const SCHEMA_INTEGRATION: &str = "schema_integration";
    /// Cleaning, transformation, and persistence of curated records.
    pub const CLEANING: &str = "cleaning";
    /// Entity consolidation: candidate grouping for fusion.
    pub const ENTITY_CONSOLIDATION: &str = "entity_consolidation";
    /// Composite-entity fusion.
    pub const FUSION: &str = "fusion";

    /// The canonical full-pipeline order.
    pub const CANONICAL_ORDER: [&str; 5] =
        [INGEST, SCHEMA_INTEGRATION, CLEANING, ENTITY_CONSOLIDATION, FUSION];
}

/// A structured source registered but not yet integrated.
#[derive(Debug)]
pub struct PendingSource {
    /// Catalog id assigned at ingest.
    pub id: SourceId,
    /// Source name.
    pub name: String,
    /// Raw records exactly as supplied.
    pub records: Vec<Record>,
}

/// What one stage reports back: enough to render progress tables and to
/// assert pipeline health in tests, without retaining per-record detail.
#[derive(Debug, Clone, PartialEq)]
pub enum StageReport {
    /// [`stage_names::INGEST`].
    Ingest {
        /// Structured sources registered this run.
        structured_sources: usize,
        /// Raw structured records taken in.
        structured_records: usize,
        /// Text ingestion outcome, when web text was ingested.
        text: Option<IngestStats>,
        /// Shard-distribution reports of the collections this stage wrote,
        /// in the fixed write order `instance` then `entity`: per-shard
        /// doc/extent counts, backend kind, routing, and flush traffic.
        storage: Vec<StorageReport>,
    },
    /// [`stage_names::SCHEMA_INTEGRATION`].
    SchemaIntegration {
        /// Sources integrated this run.
        sources: usize,
        /// Attribute mappings accepted without a human.
        auto_accepted: usize,
        /// Attribute mappings escalated to a resolver.
        human_interventions: usize,
        /// Attributes newly added to the global schema.
        new_attributes: usize,
        /// Source attributes whose upper-cased target spelling collided
        /// with another attribute of the same source ("price" vs "PRICE")
        /// — preserved under a deterministic `__N` suffix instead of
        /// silently overwriting, counted once per colliding attribute.
        case_collisions: usize,
    },
    /// [`stage_names::CLEANING`].
    Cleaning {
        /// Sources cleaned this run.
        sources: usize,
        /// Records visited.
        records: usize,
        /// Null spellings canonicalised.
        nulls_canonicalized: usize,
        /// Values rewritten by transform rules.
        values_transformed: usize,
        /// Shard-distribution report of the global-records collection this
        /// stage persisted into (`None` on text-only runs that created no
        /// collection).
        storage: Option<StorageReport>,
    },
    /// [`stage_names::ENTITY_CONSOLIDATION`].
    EntityConsolidation {
        /// Records considered.
        records: usize,
        /// Candidate entity groups formed.
        groups: usize,
        /// Groups with more than one member (cross-source entities).
        multi_member_groups: usize,
        /// Largest group size.
        largest_group: usize,
        /// Blocking health of the grouping run (all-zero under
        /// canonical-name grouping, which has no pairwise phase). A
        /// nonzero `degraded_buckets` means some buckets ran windowed
        /// progressive expansion instead of exhaustive comparison.
        blocking: GroupingReport,
        /// Delta-ingest accounting when this consolidation ran through the
        /// resident-state incremental path
        /// ([`crate::DataTamer::consolidate_delta`]); `None` for full
        /// batch runs.
        delta: Option<datatamer_entity::incremental::DeltaReport>,
    },
    /// [`stage_names::FUSION`].
    Fusion {
        /// Composite entities produced.
        entities: usize,
        /// Input records merged into them.
        members: usize,
    },
}

/// One recorded stage execution.
#[derive(Debug, Clone)]
pub struct StageRun {
    /// The stage's name.
    pub stage: &'static str,
    /// What it reported.
    pub report: StageReport,
}

/// Everything the stages share: storage, catalog, schema state, the record
/// sets flowing between stages, and the ordered log of stage runs.
pub struct PipelineContext {
    config: DataTamerConfig,
    /// The collection store (text collections + curated global records).
    pub store: Store,
    /// Source registry.
    pub catalog: Catalog,
    /// The growing global schema.
    pub integrator: SchemaIntegrator,
    /// Ingested structured sources awaiting schema integration.
    pub pending_sources: Vec<PendingSource>,
    /// Schema-mapped sources awaiting cleaning.
    pub mapped_sources: Vec<(String, Vec<Record>)>,
    /// Integrated + cleaned records (canonical attribute spellings).
    pub structured_records: Vec<Record>,
    /// Text-derived show records.
    pub text_show_records: Vec<Record>,
    /// Stats of the most recent text ingest.
    pub text_stats: IngestStats,
    /// Per-source cleaning reports, in cleaning order.
    pub cleaning_reports: Vec<(String, CleaningReport)>,
    /// Per-source integration reports, in integration order.
    pub integration_reports: Vec<(String, IntegrationReport)>,
    /// The combined record snapshot consolidation grouped (fusion input;
    /// drained by the fusion stage to keep the context lean).
    pub fusion_input: Vec<Record>,
    /// Candidate groups produced by entity consolidation.
    pub fusion_groups: Vec<FusionGroup>,
    /// Fused composites from the most recent fusion stage.
    pub fused: Vec<FusedEntity>,
    /// Bumped every time [`PipelineContext::fused`] is replaced (batch
    /// fusion or delta consolidation) — downstream views use it to detect
    /// staleness cheaply.
    pub fused_revision: u64,
    /// For the most recent `fused` installation: `Some(dirty)` with one
    /// flag per fusion group when the delta path re-resolved only part of
    /// the output (`dirty[i]` = group `i` changed since the previous
    /// revision); `None` after a batch run, meaning "assume everything
    /// changed". Index maintenance keys incremental syncs off this.
    pub fused_changed: Option<Vec<bool>>,
    /// The truth-discovery routing currently in effect: the system
    /// configuration's, until a run's `PipelinePlan` overrides it. Ad-hoc
    /// re-fusion (`DataTamer::fuse`) uses this, so it always agrees with
    /// the routing that produced [`PipelineContext::fused`].
    pub fusion_resolvers: crate::fusion::RegistryConfig,
    /// The grouping strategy currently in effect for entity consolidation
    /// — same override discipline as [`PipelineContext::fusion_resolvers`]:
    /// the system configuration's, until a successful run's `PipelinePlan`
    /// replaces it, so ad-hoc re-fusion groups the way the context's fused
    /// output was grouped.
    pub grouping: GroupingStrategy,
    runs: Vec<StageRun>,
}

impl PipelineContext {
    /// Fresh context for a configuration.
    pub fn new(config: DataTamerConfig) -> Self {
        let integrator = SchemaIntegrator::new(
            datatamer_schema::CompositeMatcher::broadway(),
            config.integration.clone(),
        );
        PipelineContext {
            store: Store::new(config.namespace.clone()),
            fusion_resolvers: config.fusion_resolvers.clone(),
            grouping: config.grouping.clone(),
            config,
            catalog: Catalog::new(),
            integrator,
            pending_sources: Vec::new(),
            mapped_sources: Vec::new(),
            structured_records: Vec::new(),
            text_show_records: Vec::new(),
            text_stats: IngestStats::default(),
            cleaning_reports: Vec::new(),
            integration_reports: Vec::new(),
            fusion_input: Vec::new(),
            fusion_groups: Vec::new(),
            fused: Vec::new(),
            fused_revision: 0,
            fused_changed: None,
            runs: Vec::new(),
        }
    }

    /// The configuration driving the pipeline.
    pub fn config(&self) -> &DataTamerConfig {
        &self.config
    }

    /// Every stage execution so far, in order.
    pub fn runs(&self) -> &[StageRun] {
        &self.runs
    }

    /// The most recent report of a stage, if it has run.
    pub fn report_of(&self, stage: &str) -> Option<&StageReport> {
        self.runs.iter().rev().find(|r| r.stage == stage).map(|r| &r.report)
    }

    /// How many times a stage has run.
    pub fn run_count(&self, stage: &str) -> usize {
        self.runs.iter().filter(|r| r.stage == stage).count()
    }

    /// Record a stage execution performed outside [`run_stages`] — the
    /// delta-ingest path runs consolidation + fusion against resident
    /// state but still logs them like any staged run.
    pub(crate) fn push_run(&mut self, stage: &'static str, report: StageReport) {
        self.runs.push(StageRun { stage, report });
    }
}

/// One phase of the pipeline, executed over the shared context.
pub trait PipelineStage {
    /// Stable stage name (one of [`stage_names`]).
    fn name(&self) -> &'static str;

    /// Execute against the context, returning the stage's report.
    fn run(&mut self, ctx: &mut PipelineContext) -> Result<StageReport>;
}

/// Drive stages in order, recording each report in the context. Stops at
/// the first failing stage (its report is not recorded).
pub fn run_stages(
    ctx: &mut PipelineContext,
    stages: &mut [Box<dyn PipelineStage + '_>],
) -> Result<()> {
    for stage in stages {
        let report = stage.run(ctx)?;
        ctx.runs.push(StageRun { stage: stage.name(), report });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------------------

/// A web-text ingest job: the domain parser plus `(fragment, label)` pairs.
pub struct TextIngestJob<'a> {
    /// The domain-specific parser (Figure 1's user-defined module).
    pub parser: DomainParser,
    /// Raw fragments with their source labels.
    pub fragments: Vec<(&'a str, &'a str)>,
}

/// Stage 1: take structured sources and/or web text into the system.
///
/// Structured records are registered in the catalog and parked for schema
/// integration; text fragments run clean → parse → store into the
/// `instance` / `entity` collections, yielding show records for fusion.
pub struct IngestStage<'a> {
    structured: Vec<(String, Vec<Record>)>,
    text: Option<TextIngestJob<'a>>,
}

impl<'a> IngestStage<'a> {
    /// Build from the inputs of one run.
    pub fn new(structured: Vec<(String, Vec<Record>)>, text: Option<TextIngestJob<'a>>) -> Self {
        IngestStage { structured, text }
    }
}

impl PipelineStage for IngestStage<'_> {
    fn name(&self) -> &'static str {
        stage_names::INGEST
    }

    fn run(&mut self, ctx: &mut PipelineContext) -> Result<StageReport> {
        let mut structured_records = 0;
        let structured_sources = self.structured.len();
        for (name, records) in self.structured.drain(..) {
            let id = ctx.catalog.register(&name, SourceKind::Structured);
            ctx.catalog.set_record_count(id, records.len() as u64);
            structured_records += records.len();
            ctx.pending_sources.push(PendingSource { id, name, records });
        }

        let mut text_stats = None;
        let mut storage = Vec::new();
        if let Some(job) = self.text.take() {
            let source_id = ctx.catalog.register("webtext", SourceKind::Text);
            let ingestor = if ctx.config.clean_text {
                TextIngestor::new(job.parser)
            } else {
                TextIngestor::without_cleaner(job.parser)
            };
            let (stats, shows) = ingestor.ingest(
                &ctx.store,
                ctx.config.collection_config(),
                source_id,
                job.fragments,
            )?;
            ctx.catalog.set_record_count(source_id, stats.instances);
            ctx.text_show_records.extend(shows);
            ctx.text_stats = stats.clone();
            text_stats = Some(stats);
            for name in [crate::ingest::INSTANCE_COLLECTION, crate::ingest::ENTITY_COLLECTION] {
                if let Some(col) = ctx.store.collection(name) {
                    storage.push(col.storage_report());
                }
            }
        }

        Ok(StageReport::Ingest {
            structured_sources,
            structured_records,
            text: text_stats,
            storage,
        })
    }
}

// ---------------------------------------------------------------------------
// Schema integration
// ---------------------------------------------------------------------------

/// Stage 2: integrate every pending source into the global schema and map
/// its records onto canonical attribute spellings.
///
/// Integration itself is sequential (the global schema grows source by
/// source — that ordering *is* the paper's bottom-up bootstrap); the
/// per-record rename mapping fans out across the rayon team.
pub struct SchemaIntegrationStage<'r> {
    resolver: Option<&'r mut dyn EscalationResolver>,
}

impl<'r> SchemaIntegrationStage<'r> {
    /// Escalations resolved by thresholds only ([`AcceptBest`]).
    pub fn auto() -> Self {
        SchemaIntegrationStage { resolver: None }
    }

    /// Escalations routed to `resolver` (e.g. an expert panel).
    pub fn with_resolver(resolver: &'r mut dyn EscalationResolver) -> Self {
        SchemaIntegrationStage { resolver: Some(resolver) }
    }
}

/// First free spelling for `target`: `target` itself when `occupied` says
/// it is free, else the first `target__N` (N ≥ 2) that is. The bool
/// reports whether a suffix was needed.
fn decollide(target: String, occupied: impl Fn(&str) -> bool) -> (String, bool) {
    if !occupied(&target) {
        return (target, false);
    }
    let mut n = 2;
    loop {
        let candidate = format!("{target}__{n}");
        if !occupied(&candidate) {
            return (candidate, true);
        }
        n += 1;
    }
}

/// Map one record onto the global schema given `(source_attr, target)`
/// decisions: renamed when mapped, dropped when ignored, upper-cased when
/// unknown. Returns the mapped record plus the number of case collisions.
///
/// Distinct source attributes can collide after upper-casing ("price" and
/// "PRICE" on one record). Overwriting would silently drop the earlier
/// value with no trace; instead the first occupant keeps the canonical
/// spelling and later arrivals land under a deterministic `__N` suffix.
/// On the staged-pipeline path the mapping is already de-collided once
/// per source (see [`SchemaIntegrationStage`]), which keeps each source
/// attribute's column identical across records; the in-record check here
/// is the defensive net for direct calls and for attributes missing from
/// the mapping entirely (counted per occurrence).
fn map_record(r: &Record, mapping: &[(String, Option<String>)]) -> (Record, usize) {
    let mut out = Record::new(r.source, r.id);
    let mut collisions = 0;
    for (attr, value) in r.iter() {
        let target = match mapping.iter().find(|(a, _)| a == attr) {
            Some((_, Some(target))) => target.clone(),
            Some((_, None)) => continue,
            None => attr.to_uppercase(),
        };
        // Each source attribute appears once per record, so an occupied
        // target means a *different* source attribute already landed there
        // — distinct data that an overwrite would silently discard.
        let (target, collided) = decollide(target, |c| out.get(c).is_some());
        collisions += usize::from(collided);
        out.set(target, value.clone());
    }
    (out, collisions)
}

impl PipelineStage for SchemaIntegrationStage<'_> {
    fn name(&self) -> &'static str {
        stage_names::SCHEMA_INTEGRATION
    }

    fn run(&mut self, ctx: &mut PipelineContext) -> Result<StageReport> {
        let mut fallback = AcceptBest;
        let (mut sources, mut auto_accepted, mut human, mut new_attrs) = (0, 0, 0, 0);
        let mut case_collisions = 0;
        for source in std::mem::take(&mut ctx.pending_sources) {
            // 1. Profile and integrate the schema.
            let schema =
                SourceSchema::profile_records(source.id, &source.name, &source.records);
            let resolver: &mut dyn EscalationResolver = match self.resolver.as_deref_mut() {
                Some(r) => r,
                None => &mut fallback,
            };
            let report = ctx.integrator.integrate_with(&schema, resolver);

            // 2. Build the source-attr → canonical-name mapping from the
            //    decisions.
            let mut mapping: Vec<(String, Option<String>)> = Vec::new();
            for s in &report.suggestions {
                let target = match s.decision.mapped_attr() {
                    Some(id) => ctx
                        .integrator
                        .global()
                        .get(id)
                        .map(|g| g.name.to_uppercase()),
                    None => match s.decision {
                        datatamer_schema::Decision::Ignore => None,
                        _ => Some(s.source_attr.to_uppercase()),
                    },
                };
                mapping.push((s.source_attr.clone(), target));
            }

            // De-collide targets once per *source*, not per record: every
            // record of the source must send a given source attribute to
            // the same global column, or downstream truth discovery would
            // vote over columns mixing two semantically different
            // attributes. First mapping entry keeps the canonical
            // spelling; later colliders get deterministic `__N` suffixes.
            let mut used: Vec<String> = Vec::new();
            for (_, target) in mapping.iter_mut() {
                let Some(t) = target.take() else { continue };
                let (t, collided) = decollide(t, |c| used.iter().any(|u| u == c));
                case_collisions += usize::from(collided);
                used.push(t.clone());
                *target = Some(t);
            }

            // 3. Map records onto the global schema, in parallel.
            let results: Vec<(Record, usize)> =
                source.records.par_iter().map(|r| map_record(r, &mapping)).collect();
            let mut mapped = Vec::with_capacity(results.len());
            for (record, collisions) in results {
                case_collisions += collisions;
                mapped.push(record);
            }

            sources += 1;
            auto_accepted += report.auto_accepted();
            human += report.human_interventions();
            new_attrs += report.new_attributes();
            ctx.integration_reports.push((source.name.clone(), report));
            ctx.mapped_sources.push((source.name, mapped));
        }
        Ok(StageReport::SchemaIntegration {
            sources,
            auto_accepted,
            human_interventions: human,
            new_attributes: new_attrs,
            case_collisions,
        })
    }
}

// ---------------------------------------------------------------------------
// Cleaning
// ---------------------------------------------------------------------------

/// Stage 3: clean and transform every mapped source (EUR→USD, date
/// normalisation, null canonicalisation), then persist the curated records
/// into the global-records collection.
///
/// Sources clean concurrently across the rayon team (per-source engines,
/// no shared mutable state) and each source's batch lands in storage
/// through the shard-batched `insert_many` path.
#[derive(Debug, Default)]
pub struct CleaningStage;

impl PipelineStage for CleaningStage {
    fn name(&self) -> &'static str {
        stage_names::CLEANING
    }

    fn run(&mut self, ctx: &mut PipelineContext) -> Result<StageReport> {
        let mut jobs = std::mem::take(&mut ctx.mapped_sources);
        let reports = clean_sources_parallel(&mut jobs, |_| {
            CleaningEngine::broadway(
                CHEAPEST_PRICE,
                FIRST,
                &[SHOW_NAME, THEATER, PERFORMANCE],
            )
        });

        let (mut records, mut nulls, mut transformed) = (0, 0, 0);
        for (_, r) in &reports {
            records += r.records;
            nulls += r.nulls_canonicalized;
            transformed += r.values_transformed;
        }
        let sources = reports.len();
        ctx.cleaning_reports.extend(reports);

        // Persist into the global-records collection, batched per source.
        // Text-only runs clean nothing — leave the collection uncreated so
        // store listings/stats only ever show collections with a reason to
        // exist (matching the pre-staged behavior).
        let mut storage = None;
        if !jobs.is_empty() {
            let col = ctx
                .store
                .collection_or_create(GLOBAL_RECORDS_COLLECTION, ctx.config.collection_config())?;
            for (_, cleaned) in jobs {
                let docs: Vec<datatamer_model::Document> =
                    cleaned.par_iter().map(record_to_doc).collect();
                col.insert_many(docs.iter())?;
                ctx.structured_records.extend(cleaned);
            }
            storage = Some(col.storage_report());
        }

        Ok(StageReport::Cleaning {
            sources,
            records,
            nulls_canonicalized: nulls,
            values_transformed: transformed,
            storage,
        })
    }
}

// ---------------------------------------------------------------------------
// Entity consolidation
// ---------------------------------------------------------------------------

/// Stage 4: group the curated structured records and the text-derived show
/// records into candidate entities (the consolidation half of fusion).
///
/// Structured records come first so source-priority conflict resolution
/// favours the curated sources downstream.
///
/// Grouping dispatches on a [`GroupingStrategy`]: the classic
/// canonical-name scan, or similarity-based blocked ER (blocking →
/// rayon-parallel pair scoring → union-find) for fuzzy duplicates the name
/// key cannot reach. Built with an explicit strategy or policy, or, by
/// default, reading the context's strategy-in-effect
/// ([`PipelineContext::grouping`]) at run time — mirroring
/// [`FusionStage`]'s relationship to the resolver routing.
#[derive(Default)]
pub struct EntityConsolidationStage {
    mode: Option<ConsolidationMode>,
}

enum ConsolidationMode {
    /// An explicit fusion policy (covers the non-declarative
    /// [`FusionPolicy::Classifier`] variant).
    Policy(FusionPolicy),
    /// An explicit declarative strategy.
    Strategy(GroupingStrategy),
}

impl EntityConsolidationStage {
    /// Group with the given fusion policy (canonical-name scan).
    pub fn new(policy: FusionPolicy) -> Self {
        EntityConsolidationStage { mode: Some(ConsolidationMode::Policy(policy)) }
    }

    /// Group with an explicit declarative strategy instead of the
    /// context's strategy-in-effect.
    pub fn with_strategy(strategy: GroupingStrategy) -> Self {
        EntityConsolidationStage { mode: Some(ConsolidationMode::Strategy(strategy)) }
    }
}

impl PipelineStage for EntityConsolidationStage {
    fn name(&self) -> &'static str {
        stage_names::ENTITY_CONSOLIDATION
    }

    fn run(&mut self, ctx: &mut PipelineContext) -> Result<StageReport> {
        let mut input = Vec::with_capacity(
            ctx.structured_records.len() + ctx.text_show_records.len(),
        );
        input.extend(ctx.structured_records.iter().cloned());
        input.extend(ctx.text_show_records.iter().cloned());

        let threshold = ctx.config().fusion_threshold;
        let (groups, blocking) = match &self.mode {
            Some(ConsolidationMode::Policy(policy)) => {
                (group_records(&input, policy), GroupingReport::default())
            }
            Some(ConsolidationMode::Strategy(strategy)) => {
                strategy.groups_with_report(&input, threshold)
            }
            None => ctx.grouping.groups_with_report(&input, threshold),
        };

        let multi = groups.iter().filter(|(_, m)| m.len() > 1).count();
        let largest = groups.iter().map(|(_, m)| m.len()).max().unwrap_or(0);
        let report = StageReport::EntityConsolidation {
            records: input.len(),
            groups: groups.len(),
            multi_member_groups: multi,
            largest_group: largest,
            blocking,
            delta: None,
        };
        ctx.fusion_input = input;
        ctx.fusion_groups = groups;
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// Fusion
// ---------------------------------------------------------------------------

/// Stage 5: merge each candidate group into one composite entity through a
/// resolver registry (groups merge in parallel; the registry's resolvers
/// are deterministic, so output is byte-identical at any thread count).
///
/// Built with an explicit registry ([`FusionStage::new`]) or, by default,
/// resolving through the context's routing-in-effect
/// ([`PipelineContext::fusion_resolvers`]) at run time — so a manually
/// assembled stage list keeps the context's fused output and routing in
/// agreement by construction.
#[derive(Debug, Default)]
pub struct FusionStage {
    registry: Option<ResolverRegistry>,
}

impl FusionStage {
    /// Resolve conflicts through `registry` instead of the context's
    /// routing.
    pub fn new(registry: ResolverRegistry) -> Self {
        FusionStage { registry: Some(registry) }
    }
}

impl PipelineStage for FusionStage {
    fn name(&self) -> &'static str {
        stage_names::FUSION
    }

    fn run(&mut self, ctx: &mut PipelineContext) -> Result<StageReport> {
        let from_ctx;
        let registry = match &self.registry {
            Some(registry) => registry,
            None => {
                from_ctx = ctx.fusion_resolvers.build();
                &from_ctx
            }
        };
        // Consume the consolidation snapshot: it exists only to hand the
        // grouped records from the previous stage to this one, and keeping
        // a full record clone alive in the context would double resident
        // memory at scale.
        let input = std::mem::take(&mut ctx.fusion_input);
        let fused = merge_groups_with(&input, &ctx.fusion_groups, registry);
        let members = fused.iter().map(|f| f.member_count).sum();
        let report = StageReport::Fusion { entities: fused.len(), members };
        ctx.fused = fused;
        ctx.fused_revision += 1;
        // Batch fusion rebuilds everything: no dirty set to offer.
        ctx.fused_changed = None;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{RecordId, SourceId, Value};

    #[test]
    fn map_record_preserves_case_colliding_unmapped_attributes() {
        // Three distinct source attributes collapsing to one upper-cased
        // spelling: first-wins keeps the canonical name, later arrivals
        // get deterministic suffixes, and every value survives.
        let r = Record::from_pairs(
            SourceId(0),
            RecordId(0),
            vec![
                ("price", Value::from("$27")),
                ("Price", Value::from("$30")),
                ("PRICE", Value::from("$45")),
            ],
        );
        let (mapped, collisions) = map_record(&r, &[]);
        assert_eq!(collisions, 2);
        assert_eq!(mapped.get_text("PRICE").as_deref(), Some("$27"));
        assert_eq!(mapped.get_text("PRICE__2").as_deref(), Some("$30"));
        assert_eq!(mapped.get_text("PRICE__3").as_deref(), Some("$45"));
        assert_eq!(mapped.len(), 3, "nothing silently dropped");
    }

    #[test]
    fn map_record_suffixes_mapped_target_collisions_and_drops_ignored() {
        // A mapped attribute and an unmapped case-variant landing on the
        // same canonical target must both survive, in record field order.
        let r = Record::from_pairs(
            SourceId(0),
            RecordId(0),
            vec![("cost", Value::from("$10")), ("PRICE", Value::from("$20"))],
        );
        let mapping = vec![("cost".to_owned(), Some("PRICE".to_owned()))];
        let (mapped, collisions) = map_record(&r, &mapping);
        assert_eq!(collisions, 1);
        assert_eq!(mapped.get_text("PRICE").as_deref(), Some("$10"));
        assert_eq!(mapped.get_text("PRICE__2").as_deref(), Some("$20"));

        let (dropped, collisions) = map_record(&r, &[("cost".to_owned(), None)]);
        assert_eq!(collisions, 0, "an ignored attribute vacates its target");
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped.get_text("PRICE").as_deref(), Some("$20"));
    }

    #[test]
    fn map_record_without_collisions_counts_zero() {
        let r = Record::from_pairs(
            SourceId(0),
            RecordId(0),
            vec![("show", Value::from("Matilda")), ("price", Value::from("$27"))],
        );
        let (mapped, collisions) = map_record(&r, &[]);
        assert_eq!(collisions, 0);
        assert_eq!(mapped.get_text("SHOW").as_deref(), Some("Matilda"));
        assert_eq!(mapped.get_text("PRICE").as_deref(), Some("$27"));
    }
}
