//! Bridging expert sourcing into schema integration.
//!
//! Escalated schema matches become [`datatamer_expert`] tasks; a panel of
//! simulated experts votes; the weighted majority decides the mapping. The
//! truth oracle is supplied by the caller (in experiments, the corpus
//! generator's ground truth).

use datatamer_expert::{resolve_votes, ExpertQueue, SimulatedExpert, TaskKind, Vote};
use datatamer_model::AttributeDef;
use datatamer_schema::integrate::EscalationResolver;
use datatamer_schema::{Decision, MatchCandidate};

/// Tells the panel what the *true* answer to a schema-match question is.
pub type TruthFn = Box<dyn Fn(&str, &str) -> bool>;

/// Statistics of panel activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PanelStats {
    /// Escalations handled.
    pub escalations: u64,
    /// Individual expert answers collected.
    pub answers: u64,
    /// Total expert cost incurred.
    pub cost: f64,
    /// Escalations where the panel accepted a candidate.
    pub accepted: u64,
}

/// An expert panel acting as the integration escalation resolver.
pub struct ExpertPanelResolver {
    experts: Vec<SimulatedExpert>,
    queue: ExpertQueue,
    truth: TruthFn,
    stats: PanelStats,
}

impl ExpertPanelResolver {
    /// Build a panel. `truth(source_attr, candidate_name)` must return
    /// whether the mapping is correct.
    pub fn new(experts: Vec<SimulatedExpert>, truth: TruthFn) -> Self {
        assert!(!experts.is_empty(), "panel needs at least one expert");
        ExpertPanelResolver { experts, queue: ExpertQueue::new(), truth, stats: PanelStats::default() }
    }

    /// A panel of `n` homogeneous experts.
    pub fn homogeneous(n: usize, accuracy: f64, cost: f64, seed: u64, truth: TruthFn) -> Self {
        let experts = (0..n)
            .map(|i| {
                SimulatedExpert::new(
                    format!("expert{i}"),
                    "schema",
                    accuracy,
                    cost,
                    seed.wrapping_add(i as u64),
                )
            })
            .collect();
        Self::new(experts, truth)
    }

    /// Activity statistics so far.
    pub fn stats(&self) -> PanelStats {
        self.stats
    }

    fn panel_answer(&mut self, source_attr: &str, candidate: &str, score: f64) -> bool {
        // Queue then immediately serve the task: the simulated experts are
        // always available. Priority: most ambiguous (closest to 0.5) first.
        let priority = (1000.0 * (1.0 - (score - 0.5).abs())) as u32;
        let id = self.queue.submit(
            TaskKind::SchemaMatch {
                source_attr: source_attr.to_owned(),
                candidate: candidate.to_owned(),
                score,
            },
            priority,
        );
        let _task = self.queue.pop().expect("just queued");
        let _ = id;
        let truth = (self.truth)(source_attr, candidate);
        let votes: Vec<Vote> = self
            .experts
            .iter_mut()
            .map(|e| {
                let answer = e.answer(truth);
                Vote { answer, weight: e.vote_weight() }
            })
            .collect();
        self.stats.answers += votes.len() as u64;
        self.stats.cost += self.experts.iter().map(|e| e.cost_per_task).sum::<f64>();
        let (decision, _confidence) = resolve_votes(&votes);
        decision
    }
}

impl EscalationResolver for ExpertPanelResolver {
    fn resolve(&mut self, source_attr: &AttributeDef, candidates: &[MatchCandidate]) -> Decision {
        self.stats.escalations += 1;
        for c in candidates {
            if self.panel_answer(&source_attr.name, &c.name, c.score) {
                self.stats.accepted += 1;
                return Decision::ExpertAccept { attr: c.attr, score: c.score };
            }
        }
        Decision::ExpertNewAttribute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{AttrId, AttributeProfile};

    fn attr(name: &str) -> AttributeDef {
        AttributeDef { name: name.into(), profile: AttributeProfile::default() }
    }

    fn candidates() -> Vec<MatchCandidate> {
        vec![
            MatchCandidate { attr: AttrId(0), name: "cheapest_price".into(), score: 0.6 },
            MatchCandidate { attr: AttrId(1), name: "theater".into(), score: 0.5 },
        ]
    }

    fn truth_price_only() -> TruthFn {
        Box::new(|source_attr, candidate| source_attr == "cost" && candidate == "cheapest_price")
    }

    #[test]
    fn perfect_panel_accepts_true_candidate() {
        let mut panel = ExpertPanelResolver::homogeneous(3, 1.0, 2.0, 1, truth_price_only());
        let d = panel.resolve(&attr("cost"), &candidates());
        assert_eq!(d, Decision::ExpertAccept { attr: AttrId(0), score: 0.6 });
        let stats = panel.stats();
        assert_eq!(stats.escalations, 1);
        assert_eq!(stats.answers, 3);
        assert_eq!(stats.cost, 6.0);
        assert_eq!(stats.accepted, 1);
    }

    #[test]
    fn perfect_panel_rejects_all_wrong_candidates() {
        let mut panel = ExpertPanelResolver::homogeneous(3, 1.0, 1.0, 2, truth_price_only());
        let d = panel.resolve(&attr("venue"), &candidates());
        assert_eq!(d, Decision::ExpertNewAttribute);
        // Both candidates were asked about.
        assert_eq!(panel.stats().answers, 6);
        assert_eq!(panel.stats().accepted, 0);
    }

    #[test]
    fn zero_accuracy_panel_carries_no_weight() {
        // An always-wrong expert gets vote weight 0 (log-odds clamp), so the
        // panel can never accept anything — curation refuses by default.
        let mut panel = ExpertPanelResolver::homogeneous(3, 0.0, 1.0, 3, truth_price_only());
        let d = panel.resolve(&attr("cost"), &candidates());
        assert_eq!(d, Decision::ExpertNewAttribute);
    }

    #[test]
    fn majority_overrides_minority_noise() {
        // 5 experts at 95%: wrong answers are outvoted almost surely.
        let mut panel = ExpertPanelResolver::homogeneous(5, 0.95, 1.0, 4, truth_price_only());
        let mut accepted = 0;
        for _ in 0..50 {
            if panel.resolve(&attr("cost"), &candidates())
                == (Decision::ExpertAccept { attr: AttrId(0), score: 0.6 })
            {
                accepted += 1;
            }
        }
        assert!(accepted >= 48, "panel accuracy too low: {accepted}/50");
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn empty_panel_panics() {
        ExpertPanelResolver::new(vec![], truth_price_only());
    }
}
