//! Fusing text-derived and structured records over the global schema.
//!
//! The demo's payoff (Tables V → VI): a show looked up from web text alone
//! has only `SHOW_NAME` and `TEXT_FEED`; after fusing the FTABLES sources,
//! the same lookup also carries `THEATER`, `PERFORMANCE`, `CHEAPEST_PRICE`,
//! and `FIRST`.

use std::collections::HashMap;

use datatamer_entity::consolidate::{merge_cluster, ConflictPolicy, MergePolicy};
use datatamer_ml::DedupClassifier;
use datatamer_model::Record;
use datatamer_sim as sim;
use datatamer_text::normalize::canonical_name;
use rayon::prelude::*;

/// Canonical fused attribute names (Table VI spellings).
pub const SHOW_NAME: &str = "SHOW_NAME";
pub const THEATER: &str = "THEATER";
pub const PERFORMANCE: &str = "PERFORMANCE";
pub const TEXT_FEED: &str = "TEXT_FEED";
pub const CHEAPEST_PRICE: &str = "CHEAPEST_PRICE";
pub const FIRST: &str = "FIRST";

/// How fused attributes resolve conflicts across sources.
///
/// * `CHEAPEST_PRICE` is the *cheapest* price seen — `NumericMin`.
/// * `TEXT_FEED`, `THEATER`, `PERFORMANCE`, `FIRST` take the first source's
///   value (source-priority resolution: the seed source is the cleanest).
/// * Everything else majority-votes.
pub fn fusion_merge_policy() -> MergePolicy {
    MergePolicy {
        per_attribute: vec![
            (CHEAPEST_PRICE.to_owned(), ConflictPolicy::NumericMin),
            (TEXT_FEED.to_owned(), ConflictPolicy::First),
            (THEATER.to_owned(), ConflictPolicy::First),
            (PERFORMANCE.to_owned(), ConflictPolicy::First),
            (FIRST.to_owned(), ConflictPolicy::First),
            (SHOW_NAME.to_owned(), ConflictPolicy::MajorityVote),
        ],
        default: ConflictPolicy::MajorityVote,
    }
}

/// How candidate records are matched into the same fused entity.
pub enum FusionPolicy {
    /// Exact canonical-name grouping plus fuzzy attachment at a threshold.
    Fuzzy { threshold: f64 },
    /// ML dedup classifier on `SHOW_NAME` (probability ≥ 0.5 attaches).
    Classifier(DedupClassifier),
}

impl FusionPolicy {
    fn matches(&self, canon_key: &str, name: &str) -> bool {
        let canon_b = canonical_name(name);
        if canon_key == canon_b {
            return true;
        }
        match self {
            FusionPolicy::Fuzzy { threshold } => {
                sim::jaro_winkler(canon_key, &canon_b) >= *threshold
            }
            FusionPolicy::Classifier(model) => model.is_duplicate(canon_key, &canon_b),
        }
    }
}

/// One fused entity with provenance counts.
#[derive(Debug)]
pub struct FusedEntity {
    /// Canonical grouping key (lowercased, article-stripped show name).
    pub key: String,
    /// The composite record.
    pub record: Record,
    /// Input records merged into it.
    pub member_count: usize,
}

/// One fusion candidate group: the canonical key and member indexes into
/// the record slice, in first-seen order.
pub type FusionGroup = (String, Vec<usize>);

/// Entity-consolidation half of fusion: group record indexes by the
/// canonical form of `SHOW_NAME`, attaching near-miss names (typos, case
/// damage) to an existing group via `policy`.
///
/// The scan is inherently sequential (each record may attach to a group an
/// earlier record created), but it is cheap: the quadratic part — merging
/// — happens per group in [`merge_groups`].
pub fn group_records(records: &[Record], policy: &FusionPolicy) -> Vec<FusionGroup> {
    let mut groups: Vec<FusionGroup> = Vec::new();
    let mut by_key: HashMap<String, usize> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        let Some(name) = r.get_text(SHOW_NAME) else { continue };
        let canon = canonical_name(&name);
        if canon.is_empty() {
            continue;
        }
        let group_idx = match by_key.get(&canon) {
            Some(g) => *g,
            None => {
                // Fuzzy attachment against existing group keys.
                let attach = groups.iter().position(|(key, _)| policy.matches(key, &name));
                match attach {
                    Some(g) => {
                        by_key.insert(canon.clone(), g);
                        g
                    }
                    None => {
                        groups.push((canon.clone(), Vec::new()));
                        by_key.insert(canon.clone(), groups.len() - 1);
                        groups.len() - 1
                    }
                }
            }
        };
        groups[group_idx].1.push(i);
    }
    groups
}

/// Merge half of fusion: collapse each candidate group into one composite
/// entity under the standard conflict policies. Groups merge independently,
/// so this fans out across the rayon team; output order is group order at
/// any thread count.
pub fn merge_groups(records: &[Record], groups: &[FusionGroup]) -> Vec<FusedEntity> {
    let merge_policy = fusion_merge_policy();
    groups
        .par_iter()
        .map(|(key, members)| {
            let refs: Vec<&Record> = members.iter().map(|&i| &records[i]).collect();
            let record = merge_cluster(&refs, &merge_policy);
            FusedEntity { key: key.clone(), record, member_count: members.len() }
        })
        .collect()
}

/// Fuse records (text-derived + structured, already renamed to canonical
/// attribute spellings) into one composite per distinct show.
///
/// Record order matters: earlier records win `First`-policy attributes, so
/// callers pass the cleanest source first. This is [`group_records`]
/// followed by [`merge_groups`]; the staged pipeline runs the halves as
/// separate stages.
pub fn fuse_records(records: &[Record], policy: &FusionPolicy) -> Vec<FusedEntity> {
    merge_groups(records, &group_records(records, policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{RecordId, SourceId, Value};

    fn rec(src: u32, id: u64, fields: Vec<(&str, &str)>) -> Record {
        Record::from_pairs(
            SourceId(src),
            RecordId(id),
            fields.into_iter().map(|(k, v)| (k, Value::from(v))).collect(),
        )
    }

    fn fuzzy() -> FusionPolicy {
        FusionPolicy::Fuzzy { threshold: 0.88 }
    }

    #[test]
    fn table_v_to_vi_enrichment() {
        // Structured record (FTABLES, cleanest source — listed first).
        let structured = rec(
            0,
            0,
            vec![
                (SHOW_NAME, "Matilda"),
                (THEATER, "Shubert 225 W. 44th St between 7th and 8th"),
                (
                    PERFORMANCE,
                    "Tues at 7pm Wed at 8pm Thurs at 7pm Fri-Sat at 8pm Wed, Sat at 2pm Sun at 3pm",
                ),
                (CHEAPEST_PRICE, "$27"),
                (FIRST, "3/4/2013"),
            ],
        );
        // Text record.
        let text = rec(
            1,
            1,
            vec![
                (SHOW_NAME, "Matilda"),
                (TEXT_FEED, "..And Matilda an award-winning import from London, grossed 960,998.."),
            ],
        );
        let fused = fuse_records(&[structured, text], &fuzzy());
        assert_eq!(fused.len(), 1);
        let r = &fused[0].record;
        assert_eq!(fused[0].member_count, 2);
        assert_eq!(r.get_text(SHOW_NAME).as_deref(), Some("Matilda"));
        assert!(r.get_text(THEATER).unwrap().starts_with("Shubert"));
        assert!(r.get_text(TEXT_FEED).unwrap().contains("960,998"));
        assert_eq!(r.get_text(CHEAPEST_PRICE).as_deref(), Some("$27"));
        assert_eq!(r.get_text(FIRST).as_deref(), Some("3/4/2013"));
    }

    #[test]
    fn cheapest_price_takes_numeric_min_across_sources() {
        let a = rec(0, 0, vec![(SHOW_NAME, "Wicked"), (CHEAPEST_PRICE, "$99")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "wicked"), (CHEAPEST_PRICE, "$45")]);
        let fused = fuse_records(&[a, b], &fuzzy());
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].record.get_text(CHEAPEST_PRICE).as_deref(), Some("$45"));
    }

    #[test]
    fn typo_names_attach_fuzzily() {
        let a = rec(0, 0, vec![(SHOW_NAME, "Goodfellas"), (CHEAPEST_PRICE, "$30")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "Goodfelas"), (TEXT_FEED, "typo feed")]);
        let c = rec(2, 2, vec![(SHOW_NAME, "Annie"), (CHEAPEST_PRICE, "$50")]);
        let fused = fuse_records(&[a, b, c], &fuzzy());
        assert_eq!(fused.len(), 2, "{:?}", fused.iter().map(|f| &f.key).collect::<Vec<_>>());
        let good = fused.iter().find(|f| f.key == "goodfellas").unwrap();
        assert_eq!(good.member_count, 2);
        assert!(good.record.get_text(TEXT_FEED).is_some());
    }

    #[test]
    fn articles_and_case_unify() {
        let a = rec(0, 0, vec![(SHOW_NAME, "The Walking Dead")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "WALKING DEAD")]);
        let fused = fuse_records(&[a, b], &fuzzy());
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].key, "walking dead");
    }

    #[test]
    fn records_without_show_name_are_skipped() {
        let a = rec(0, 0, vec![("other", "x")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "Annie")]);
        let fused = fuse_records(&[a, b], &fuzzy());
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].key, "annie");
    }

    #[test]
    fn classifier_policy_attaches_duplicates() {
        let pairs = vec![
            ("matilda".to_owned(), "matilda!".to_owned(), true),
            ("goodfellas".to_owned(), "goodfelas".to_owned(), true),
            ("annie".to_owned(), "anni".to_owned(), true),
            ("matilda".to_owned(), "wicked".to_owned(), false),
            ("annie".to_owned(), "pippin".to_owned(), false),
            ("goodfellas".to_owned(), "written".to_owned(), false),
        ];
        let model = DedupClassifier::train(&pairs, &Default::default());
        let policy = FusionPolicy::Classifier(model);
        let a = rec(0, 0, vec![(SHOW_NAME, "Goodfellas")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "Goodfelas")]);
        let fused = fuse_records(&[a, b], &policy);
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn first_policy_prefers_earlier_records() {
        let a = rec(0, 0, vec![(SHOW_NAME, "Annie"), (THEATER, "Palace 1564 Broadway")]);
        let b = rec(1, 1, vec![(SHOW_NAME, "Annie"), (THEATER, "Gershwin 222 W. 51st St much longer string")]);
        let fused = fuse_records(&[a, b], &fuzzy());
        assert!(fused[0].record.get_text(THEATER).unwrap().starts_with("Palace"));
    }

    #[test]
    fn empty_input() {
        assert!(fuse_records(&[], &fuzzy()).is_empty());
    }
}
