//! System configuration.

use std::path::PathBuf;

use datatamer_schema::IntegrationConfig;
use datatamer_storage::{
    BackendConfig, CollectionConfig, RoutingPolicy, DEFAULT_EXTENT_CACHE_BUDGET,
};

use crate::fusion::{GroupingStrategy, RegistryConfig};

/// Persistence of the resident consolidation session: every accepted delta
/// batch appends to a checksummed log
/// ([`datatamer_storage::DeltaLog`]), so a restarted
/// [`crate::DataTamer`] over the same path replays the batches instead of
/// losing them — fused output stays byte-identical across a kill/restart
/// at any batch boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaLogConfig {
    /// Log file path (created on first use).
    pub path: PathBuf,
    /// Compact the log to a single frame once it holds more than this
    /// many frames, bounding replay cost on restart. 0 compacts after
    /// every append.
    pub compact_after_frames: usize,
}

impl DeltaLogConfig {
    /// A log at `path` compacting once replay would cross 64 frames.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        DeltaLogConfig { path: path.into(), compact_after_frames: 64 }
    }
}

/// Where collections live and how documents route to shards — the
/// system-level face of the storage crate's shard coordinator. The default
/// (in-process memory, round robin) is byte-compatible with the
/// pre-coordinator engine; switching to [`BackendConfig::File`] makes every
/// collection out-of-core (tail extents resident, recently-read extents
/// held by a byte-budget cache), and a keyed [`RoutingPolicy`] co-locates
/// equal-keyed records per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageConfig {
    /// Shard substrate for every collection the pipeline creates.
    pub backend: BackendConfig,
    /// Shard-routing policy for every collection the pipeline creates.
    pub routing: RoutingPolicy,
    /// Per-shard extent-cache byte budget for file-backed collections:
    /// `None` = unbounded, `Some(0)` = disabled (every read loads from
    /// disk — byte-identical output, pre-cache performance), `Some(n)` =
    /// at most `n` bytes of decoded flushed extents resident per shard.
    /// Cache occupancy and hit/miss/eviction counters surface per shard in
    /// the [`datatamer_storage::StorageReport`]s carried on stage reports.
    pub extent_cache_budget: Option<usize>,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            backend: BackendConfig::default(),
            routing: RoutingPolicy::default(),
            extent_cache_budget: Some(DEFAULT_EXTENT_CACHE_BUDGET),
        }
    }
}

/// Configuration of a [`crate::DataTamer`] instance.
#[derive(Debug, Clone)]
pub struct DataTamerConfig {
    /// Storage namespace (the paper uses `dt`).
    pub namespace: String,
    /// Extent size in bytes for the sharded collections. The paper's extents
    /// are 2 GB; the default here is 2 MB = the paper at 1/1000 scale, which
    /// keeps `numExtents` in the ranges of Tables I–II.
    pub extent_size: usize,
    /// Shards per collection.
    pub shards: usize,
    /// Shard backend and routing for every collection (see
    /// [`StorageConfig`]).
    pub storage: StorageConfig,
    /// Schema-integration thresholds.
    pub integration: IntegrationConfig,
    /// Threshold for fusing two show records as the same entity.
    pub fusion_threshold: f64,
    /// How entity consolidation forms candidate groups: the classic
    /// canonical-name scan ([`GroupingStrategy::CanonicalName`], the
    /// default) or similarity-based blocked ER
    /// ([`GroupingStrategy::BlockedEr`]). Same override discipline as
    /// [`DataTamerConfig::fusion_resolvers`]: a successful run whose
    /// `PipelinePlan` carries an override replaces the strategy in effect
    /// from that run onward.
    pub grouping: GroupingStrategy,
    /// Per-attribute truth-discovery routing for the fusion stage. The
    /// default mirrors the paper demo ([`RegistryConfig::broadway`]). A
    /// successful run whose `PipelinePlan` carries an override *replaces*
    /// the routing in effect from that run onward, so ad-hoc fusion and
    /// later runs stay consistent with the fused output in the context.
    pub fusion_resolvers: RegistryConfig,
    /// Whether the ML text cleaner filters fragments before parsing.
    pub clean_text: bool,
    /// Cap on the resident fused-entity cache
    /// [`crate::DataTamer::consolidate_delta`] keeps between deltas, in
    /// entities (`None` = unbounded). Eviction is LRU; a missing entry
    /// re-resolves deterministically, so any budget — including 0 —
    /// preserves byte-identical fused output.
    pub fused_cache_budget: Option<usize>,
    /// Append accepted delta batches to a persistent log so a restarted
    /// system replays them (see [`DeltaLogConfig`]). `None` keeps the
    /// session memory-only.
    pub delta_log: Option<DeltaLogConfig>,
}

impl Default for DataTamerConfig {
    fn default() -> Self {
        DataTamerConfig {
            namespace: "dt".to_owned(),
            extent_size: 2 * 1024 * 1024,
            shards: 8,
            storage: StorageConfig::default(),
            integration: IntegrationConfig::default(),
            fusion_threshold: 0.82,
            grouping: GroupingStrategy::CanonicalName,
            fusion_resolvers: RegistryConfig::broadway(),
            clean_text: true,
            fused_cache_budget: None,
            delta_log: None,
        }
    }
}

impl DataTamerConfig {
    /// Collection config derived from this system config.
    pub fn collection_config(&self) -> CollectionConfig {
        CollectionConfig {
            extent_size: self.extent_size,
            shards: self.shards,
            backend: self.storage.backend.clone(),
            routing: self.storage.routing.clone(),
            extent_cache_budget: self.storage.extent_cache_budget,
        }
    }

    /// A configuration scaled relative to the paper's deployment: `scale`
    /// of 0.001 gives 2 MB extents (vs 2 GB). Counts scale in the callers;
    /// extent size scales here so extent *counts* stay comparable.
    pub fn at_scale(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let extent_size = ((2.0 * 1024.0 * 1024.0 * 1024.0) * scale).max(4096.0) as usize;
        DataTamerConfig { extent_size, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_at_milliscale() {
        let c = DataTamerConfig::default();
        assert_eq!(c.extent_size, 2 * 1024 * 1024);
        assert_eq!(c.namespace, "dt");
        assert_eq!(c.fusion_resolvers, RegistryConfig::broadway());
        assert_eq!(c.grouping, GroupingStrategy::CanonicalName);
        let cc = c.collection_config();
        assert_eq!(cc.extent_size, c.extent_size);
        assert_eq!(cc.shards, 8);
        assert_eq!(cc.backend, BackendConfig::Memory);
        assert_eq!(cc.routing, RoutingPolicy::RoundRobin);
    }

    #[test]
    fn storage_config_travels_into_collection_config() {
        let dir = std::env::temp_dir().join("dt_cfg_test");
        let c = DataTamerConfig {
            storage: StorageConfig {
                backend: BackendConfig::File { dir: dir.clone() },
                routing: RoutingPolicy::HashKey { attr: "SHOW_NAME".into() },
                ..Default::default()
            },
            ..Default::default()
        };
        let cc = c.collection_config();
        assert_eq!(cc.backend, BackendConfig::File { dir });
        assert_eq!(cc.routing, RoutingPolicy::HashKey { attr: "SHOW_NAME".into() });
    }

    #[test]
    fn at_scale_scales_extents() {
        // 2 GiB × scale, so 0.001 lands within 3% of 2 MiB.
        let milli = DataTamerConfig::at_scale(0.001);
        let two_mib = 2 * 1024 * 1024;
        assert!((milli.extent_size as i64 - two_mib as i64).unsigned_abs() < two_mib / 32);
        let centi = DataTamerConfig::at_scale(0.01);
        let ratio = centi.extent_size as f64 / milli.extent_size as f64;
        assert!((ratio - 10.0).abs() < 0.01, "extent size scales linearly: {ratio}");
        let tiny = DataTamerConfig::at_scale(1e-9);
        assert_eq!(tiny.extent_size, 4096, "floor keeps extents usable");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        DataTamerConfig::at_scale(0.0);
    }
}
