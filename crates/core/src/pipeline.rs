//! The DATA TAMER facade over the staged pipeline.
//!
//! ```text
//! structured sources ──┐
//!                      ├─ ingest → schema integration → cleaning ─┐
//! web text ─ parser ───┘                                          ├─ entity
//!            (instance/entity collections, show records) ─────────┤ consolidation
//!                                                                 ▼
//!                                                              fusion → queries
//! ```
//!
//! Every phase above is a [`crate::stage::PipelineStage`] executed over a
//! [`crate::stage::PipelineContext`] (which owns the `Store`, `Catalog`,
//! global schema, and per-stage reports). [`DataTamer`] assembles stage
//! lists: [`DataTamer::run`] executes the whole canonical sequence in one
//! call, while the incremental entry points ([`DataTamer::register_structured`],
//! [`DataTamer::ingest_webtext`]) run the prefix stages so sources can
//! arrive over time. Hot paths — record mapping, per-source cleaning,
//! batched shard inserts, group merging — are rayon-parallel with
//! deterministic output at any thread count.

use std::collections::HashMap;
use std::sync::Arc;

use datatamer_clean::CleaningReport;
use datatamer_entity::incremental::{DeltaReport, IncrementalConsolidator};
use datatamer_model::{doc, DtError, Record, Value};
use datatamer_schema::integrate::EscalationResolver;
use datatamer_schema::IntegrationReport;
use datatamer_storage::{Collection, CollectionStats, DeltaLog, Store};
use datatamer_text::normalize::canonical_name;
use datatamer_text::DomainParser;
use rayon::prelude::*;

use crate::catalog::Catalog;
use crate::config::DataTamerConfig;
use crate::fusion::{
    merge_groups_with, resolve_group_with_confidence, BlockedErConfig, FusedEntity, FusionGroup,
    GroupingReport, GroupingStrategy, RegistryConfig, ResolverRegistry,
};
use crate::ingest::IngestStats;
use crate::query::{entity_type_histogram, top_discussed_award_winning, DiscussedShow};
use crate::stage::{
    run_stages, stage_names, CleaningStage, EntityConsolidationStage, FusionStage, IngestStage,
    PipelineContext, PipelineStage, SchemaIntegrationStage, StageReport, TextIngestJob,
};

/// Name of the collection holding integrated (mapped + cleaned) records.
pub const GLOBAL_RECORDS_COLLECTION: &str = "global_records";

/// Inputs for one full pipeline run (see [`DataTamer::run`]).
#[derive(Default)]
pub struct PipelinePlan<'a> {
    /// Structured sources: `(name, records)`.
    pub structured: Vec<(String, Vec<Record>)>,
    /// Web text to ingest through the domain parser.
    pub text: Option<TextIngestJob<'a>>,
    /// Truth-discovery routing override. `None` keeps the routing in
    /// effect (initially [`DataTamerConfig::fusion_resolvers`]); `Some`
    /// replaces it for this run *and* for later ad-hoc fusion, so
    /// [`DataTamer::fuse`] never disagrees with the run that filled
    /// the context.
    pub resolvers: Option<RegistryConfig>,
    /// Entity-consolidation grouping override. Same discipline as
    /// [`PipelinePlan::resolvers`]: `None` keeps the strategy in effect
    /// (initially [`DataTamerConfig::grouping`]); `Some` replaces it for
    /// this run and for later ad-hoc fusion.
    pub grouping: Option<GroupingStrategy>,
}

impl<'a> PipelinePlan<'a> {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a structured source.
    pub fn structured(mut self, name: impl Into<String>, records: &[Record]) -> Self {
        self.structured.push((name.into(), records.to_vec()));
        self
    }

    /// Set the web-text job.
    pub fn webtext(mut self, parser: DomainParser, fragments: Vec<(&'a str, &'a str)>) -> Self {
        self.text = Some(TextIngestJob { parser, fragments });
        self
    }

    /// Override the fusion stage's resolver routing for this run.
    pub fn resolvers(mut self, config: RegistryConfig) -> Self {
        self.resolvers = Some(config);
        self
    }

    /// Override the entity-consolidation grouping strategy for this run.
    pub fn grouping(mut self, strategy: GroupingStrategy) -> Self {
        self.grouping = Some(strategy);
        self
    }
}

/// Resident entity-resolution state carried between
/// [`DataTamer::consolidate_delta`] calls: the incremental consolidator
/// (blocking indices, scoring context, score memo, persistent union-find)
/// plus a fused-entity cache keyed by stable cluster id (the cluster's
/// smallest member index), so only dirty clusters re-resolve.
struct ResidentEr {
    consolidator: IncrementalConsolidator,
    /// The blocked-ER configuration the consolidator was built from; a
    /// change in the grouping-in-effect invalidates the whole state.
    config: BlockedErConfig,
    /// The resolver routing the cache was resolved under; a routing change
    /// keeps the consolidator (clusters are routing-independent) but
    /// invalidates the fused-entity cache.
    resolvers: RegistryConfig,
    /// `cluster id (smallest member) → (fused entity, batch it was last
    /// re-resolved in)` from the previous delta, reused verbatim for
    /// clusters the ingest left untouched. Bounded by
    /// [`DataTamerConfig::fused_cache_budget`]: least-recently-refreshed
    /// entries evict first, and a miss only costs a deterministic
    /// re-resolution.
    cache: HashMap<usize, (FusedEntity, u64)>,
    /// Monotone delta-batch counter — the clock behind the cache's
    /// last-refreshed stamps.
    batch_seq: u64,
    /// Context record counts at seed time — if `register_structured` /
    /// `run` / `ingest_webtext` grew them since, the resident corpus is
    /// stale and the next delta reseeds (replaying the delta batches).
    seeded_structured: usize,
    seeded_text: usize,
    /// Accepted delta batches the persistent log does *not* hold: all of
    /// them when no log is configured, and every batch after the first
    /// failed append when one is ([`ResidentEr::log_failed`]). A reseed
    /// replays the log's batches first, then these, preserving arrival
    /// order. With a healthy log this stays empty — the log *is* the
    /// replay source, so the session no longer pins a second in-memory
    /// copy of every delta record.
    delta_records: Vec<Record>,
    /// The write-ahead delta log ([`crate::config::DeltaLogConfig`]):
    /// each accepted batch is appended *before* it is consolidated, so a
    /// restarted system replays exactly the accepted batches.
    log: Option<DeltaLog>,
    /// An append failed; the log is frozen (no further appends, but its
    /// existing frames still replay) and batches fall back to
    /// [`ResidentEr::delta_records`].
    log_failed: bool,
}

/// The Data Tamer system: a [`PipelineContext`] plus stage assembly.
pub struct DataTamer {
    ctx: PipelineContext,
    resident_er: Option<ResidentEr>,
}

impl DataTamer {
    /// Build a system from a configuration.
    pub fn new(config: DataTamerConfig) -> Self {
        DataTamer { ctx: PipelineContext::new(config), resident_er: None }
    }

    /// Default-configured system.
    pub fn with_defaults() -> Self {
        Self::new(DataTamerConfig::default())
    }

    /// The staged-pipeline context (stage reports, run log, record state).
    pub fn context(&self) -> &PipelineContext {
        &self.ctx
    }

    /// The underlying store (stats, ad-hoc queries).
    pub fn store(&self) -> &Store {
        &self.ctx.store
    }

    /// The source catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.ctx.catalog
    }

    /// The growing global schema.
    pub fn global_schema(&self) -> &datatamer_schema::GlobalSchema {
        self.ctx.integrator.global()
    }

    /// Cleaning reports per registered source.
    pub fn cleaning_reports(&self) -> &[(String, CleaningReport)] {
        &self.ctx.cleaning_reports
    }

    /// Text ingestion statistics.
    pub fn text_stats(&self) -> &IngestStats {
        &self.ctx.text_stats
    }

    /// Integrated structured records (canonical attribute spellings).
    pub fn structured_records(&self) -> &[Record] {
        &self.ctx.structured_records
    }

    /// Text-derived show records.
    pub fn text_show_records(&self) -> &[Record] {
        &self.ctx.text_show_records
    }

    /// The registry for the routing currently in effect (the system
    /// configuration's, or the most recent run's plan override).
    fn resolver_registry(&self) -> ResolverRegistry {
        self.ctx.fusion_resolvers.build()
    }

    /// Group records under the grouping strategy currently in effect.
    fn group_in_effect(&self, records: &[Record]) -> Vec<crate::fusion::FusionGroup> {
        self.ctx.grouping.groups(records, self.ctx.config().fusion_threshold)
    }

    /// Run the full canonical pipeline — ingest → schema integration →
    /// cleaning → entity consolidation → fusion — over a plan, returning
    /// the fused entities. Each stage's report lands in the context
    /// ([`PipelineContext::report_of`]).
    ///
    /// Incremental state is honoured: sources registered earlier stay in
    /// the global schema and participate in consolidation/fusion.
    pub fn run(&mut self, plan: PipelinePlan<'_>) -> datatamer_model::Result<&[FusedEntity]> {
        let override_config = plan.resolvers;
        let registry = match &override_config {
            Some(config) => config.build(),
            None => self.resolver_registry(),
        };
        let override_grouping = plan.grouping;
        // No grouping override → the default stage, which reads the
        // context's strategy-in-effect at run time (one source of truth).
        let consolidation: Box<dyn PipelineStage + '_> = match &override_grouping {
            Some(strategy) => {
                Box::new(EntityConsolidationStage::with_strategy(strategy.clone()))
            }
            None => Box::<EntityConsolidationStage>::default(),
        };
        let mut stages: Vec<Box<dyn PipelineStage + '_>> = vec![
            Box::new(IngestStage::new(plan.structured, plan.text)),
            Box::new(SchemaIntegrationStage::auto()),
            Box::new(CleaningStage),
            consolidation,
            Box::new(FusionStage::new(registry)),
        ];
        run_stages(&mut self.ctx, &mut stages)?;
        // Only a *successful* run installs its overrides as the routing /
        // grouping in effect: ctx.fused was produced under them, so later
        // ad-hoc fusion (`fuse`, `fuse_text_only`) agrees with the
        // context. A failed run leaves the fused output, the routing, and
        // the grouping untouched.
        if let Some(config) = override_config {
            self.ctx.fusion_resolvers = config;
        }
        if let Some(strategy) = override_grouping {
            self.ctx.grouping = strategy;
        }
        Ok(&self.ctx.fused)
    }

    /// Register and integrate a structured source; thresholds only.
    pub fn register_structured(
        &mut self,
        name: &str,
        records: &[Record],
    ) -> datatamer_model::Result<IntegrationReport> {
        let mut resolver = datatamer_schema::integrate::AcceptBest;
        self.register_structured_with(name, records, &mut resolver)
    }

    /// Register and integrate a structured source, routing escalations
    /// through `resolver` (e.g. an expert panel). Runs the ingest →
    /// schema integration → cleaning stage prefix for this source; a
    /// storage failure while persisting the curated records surfaces here
    /// instead of panicking.
    pub fn register_structured_with(
        &mut self,
        name: &str,
        records: &[Record],
        resolver: &mut dyn EscalationResolver,
    ) -> datatamer_model::Result<IntegrationReport> {
        let mut stages: Vec<Box<dyn PipelineStage + '_>> = vec![
            Box::new(IngestStage::new(vec![(name.to_owned(), records.to_vec())], None)),
            Box::new(SchemaIntegrationStage::with_resolver(resolver)),
            Box::new(CleaningStage),
        ];
        run_stages(&mut self.ctx, &mut stages)?;
        let (_, report) = self
            .ctx
            .integration_reports
            .last()
            .expect("schema integration stage records a report");
        Ok(report.clone())
    }

    /// Ingest web-text fragments through the domain parser into the
    /// `instance` / `entity` collections and collect fusion show records
    /// (the ingest stage alone). Storage failures while writing the
    /// collections surface here instead of panicking.
    pub fn ingest_webtext<'a, I>(
        &mut self,
        parser: DomainParser,
        fragments: I,
    ) -> datatamer_model::Result<IngestStats>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let job = TextIngestJob { parser, fragments: fragments.into_iter().collect() };
        let mut stages: Vec<Box<dyn PipelineStage + '_>> =
            vec![Box::new(IngestStage::new(Vec::new(), Some(job)))];
        run_stages(&mut self.ctx, &mut stages)?;
        Ok(self.ctx.text_stats.clone())
    }

    /// Fuse structured + text show records into composite entities through
    /// the grouping strategy and resolver registry currently in effect.
    /// Structured records come first so source-priority (order-sensitive)
    /// resolvers favour the curated sources.
    pub fn fuse(&self) -> Vec<FusedEntity> {
        let ctx = &self.ctx;
        let mut all: Vec<Record> =
            Vec::with_capacity(ctx.structured_records.len() + ctx.text_show_records.len());
        all.extend(ctx.structured_records.iter().cloned());
        all.extend(ctx.text_show_records.iter().cloned());
        let groups = self.group_in_effect(&all);
        merge_groups_with(&all, &groups, &self.resolver_registry())
    }

    /// Fuse only text-derived records (the Table V "before" state).
    pub fn fuse_text_only(&self) -> Vec<FusedEntity> {
        let records = &self.ctx.text_show_records;
        let groups = self.group_in_effect(records);
        merge_groups_with(records, &groups, &self.resolver_registry())
    }

    /// Consolidate a delta batch against resident ER state — work scales
    /// with the batch, not the corpus.
    ///
    /// Requires the grouping strategy in effect to be
    /// [`GroupingStrategy::BlockedEr`] (the canonical-name scan has no
    /// resident pairwise state to be incremental against); anything else is
    /// a [`DtError::Config`].
    ///
    /// The first call seeds the resident state by ingesting the current
    /// corpus (integrated structured records, then text show records); each
    /// call then ingests `batch` through the
    /// [`IncrementalConsolidator`]: the scoring context and blocking
    /// indices extend in place, only buckets the batch touched are probed
    /// (never old-vs-old), accepted pairs merge into the persistent
    /// union-find, and fused entities re-resolve **only for dirty
    /// clusters** — untouched clusters reuse the cached composite
    /// verbatim. The context's `fusion_groups` / `fused` are replaced with
    /// the updated view, and consolidation + fusion stage runs are logged
    /// with [`StageReport::EntityConsolidation::delta`] carrying the
    /// [`DeltaReport`].
    ///
    /// Correctness pin (held by `tests/incremental_equivalence.rs` at any
    /// thread count): after any sequence of delta batches, `ctx.fused` is
    /// byte-identical to a from-scratch full run over the concatenated
    /// corpus.
    ///
    /// Interleaving with the batch entry points stays consistent: if
    /// `register_structured` / `ingest_webtext` / `run` grew the base
    /// corpus since seeding, the next delta reseeds from the refreshed
    /// corpus and replays all prior delta batches (an O(corpus) catch-up,
    /// after which ingest is O(delta) again). A resolver-routing change
    /// invalidates only the fused-entity cache, not the consolidator.
    pub fn consolidate_delta(&mut self, batch: &[Record]) -> datatamer_model::Result<DeltaReport> {
        let config = match &self.ctx.grouping {
            GroupingStrategy::BlockedEr(config) => config.clone(),
            GroupingStrategy::CanonicalName => {
                return Err(DtError::Config(
                    "consolidate_delta requires GroupingStrategy::BlockedEr; the \
                     canonical-name scan has no resident ER state to be incremental against"
                        .to_owned(),
                ))
            }
        };

        // (Re)seed when there is no resident state, the blocked-ER config
        // changed, or the base corpus grew behind our back.
        let stale = match &self.resident_er {
            Some(r) => {
                r.config != config
                    || r.seeded_structured != self.ctx.structured_records.len()
                    || r.seeded_text != self.ctx.text_show_records.len()
            }
            None => true,
        };
        if stale {
            let (delta_records, mut log, log_failed) = match self.resident_er.take() {
                Some(r) => (r.delta_records, r.log, r.log_failed),
                None => (Vec::new(), None, false),
            };
            // First seed of this process: adopt the configured log. A log
            // left by an earlier process holds that session's accepted
            // batches — they replay below, on top of the rebuilt base
            // corpus, instead of being lost to the restart.
            if log.is_none() {
                if let Some(log_config) = &self.ctx.config().delta_log {
                    log = Some(DeltaLog::open(&log_config.path)?);
                }
            }
            let mut consolidator = config.build_incremental();
            let mut corpus = Vec::with_capacity(
                self.ctx.structured_records.len() + self.ctx.text_show_records.len(),
            );
            corpus.extend(self.ctx.structured_records.iter().cloned());
            corpus.extend(self.ctx.text_show_records.iter().cloned());
            if !corpus.is_empty() {
                consolidator.ingest(&corpus);
            }
            // Replay, in arrival order: the log's persisted batches, then
            // whatever never reached the log. Replay never re-appends.
            let mut replay: Vec<Record> = match &log {
                Some(log) => log.replay_records()?,
                None => Vec::new(),
            };
            replay.extend(delta_records.iter().cloned());
            if !replay.is_empty() {
                consolidator.ingest(&replay);
            }
            self.resident_er = Some(ResidentEr {
                consolidator,
                config: config.clone(),
                resolvers: self.ctx.fusion_resolvers.clone(),
                cache: HashMap::new(),
                batch_seq: 0,
                seeded_structured: self.ctx.structured_records.len(),
                seeded_text: self.ctx.text_show_records.len(),
                delta_records,
                log,
                log_failed,
            });
        }
        let registry = self.ctx.fusion_resolvers.build();
        let fused_cache_budget = self.ctx.config().fused_cache_budget;
        let compact_after = self.ctx.config().delta_log.as_ref().map(|c| c.compact_after_frames);
        let resident = self.resident_er.as_mut().expect("seeded above");
        if resident.resolvers != self.ctx.fusion_resolvers {
            // Clusters are routing-independent; only the composites are
            // stale under a new routing.
            resident.cache.clear();
            resident.resolvers = self.ctx.fusion_resolvers.clone();
        }

        // Write-ahead: persist the accepted batch before consolidating it,
        // so a crash between the two replays the batch instead of losing
        // it. An append failure freezes the log (its existing frames still
        // replay) and routes this and later batches to the in-memory
        // fallback; the session stays consistent and the error surfaces
        // after the batch is fully consolidated — do not re-submit it.
        let mut log_error: Option<DtError> = None;
        if !batch.is_empty() {
            if let Some(log) = resident.log.as_mut().filter(|_| !resident.log_failed) {
                match log.append(batch) {
                    Ok(()) => {
                        if log.frames() > compact_after.unwrap_or(usize::MAX) {
                            // Compaction failure leaves the multi-frame log
                            // valid on disk; report it, keep appending.
                            log_error = log.compact().err();
                        }
                    }
                    Err(e) => {
                        resident.log_failed = true;
                        log_error = Some(e);
                    }
                }
            }
        }

        let mut delta = resident.consolidator.ingest(batch);
        if resident.log.is_none() || resident.log_failed {
            resident.delta_records.extend(batch.iter().cloned());
        }

        // Rebuild the group list (same contract as the batch path: keyless
        // or canonically-empty clusters form no group) and fuse — clean
        // clusters reuse their cached composite, dirty ones re-resolve in
        // parallel.
        let records = resident.consolidator.records();
        let mut groups: Vec<FusionGroup> = Vec::new();
        let mut reusable: Vec<Option<FusedEntity>> = Vec::new();
        for (cluster, &dirty) in
            resident.consolidator.clusters().iter().zip(resident.consolidator.dirty())
        {
            let Some(name) = records[cluster[0]].get_text(&config.key_attr) else { continue };
            let key = canonical_name(&name);
            if key.is_empty() {
                continue;
            }
            let hit = if dirty {
                None
            } else {
                resident.cache.get(&cluster[0]).map(|(e, _)| e.clone())
            };
            reusable.push(hit);
            groups.push((key, cluster.clone()));
        }
        let fused: Vec<FusedEntity> = (0..groups.len())
            .into_par_iter()
            .map(|gi| {
                if let Some(entity) = &reusable[gi] {
                    return entity.clone();
                }
                let (key, members) = &groups[gi];
                let refs: Vec<&Record> = members.iter().map(|&i| &records[i]).collect();
                let (record, confidence) = resolve_group_with_confidence(&refs, &registry);
                FusedEntity { key: key.clone(), record, member_count: members.len(), confidence }
            })
            .collect();
        // Rebuild the cache with refresh stamps: a re-resolved cluster is
        // stamped with this batch, a reused one keeps the stamp of the
        // batch that last resolved it. Under a budget the stalest stamps
        // evict first (ties broken by cluster id, so eviction — like
        // everything else on this path — is thread-count deterministic);
        // an evicted clean cluster simply re-resolves on its next delta.
        resident.batch_seq += 1;
        let seq = resident.batch_seq;
        let mut cache: HashMap<usize, (FusedEntity, u64)> = groups
            .iter()
            .zip(fused.iter())
            .enumerate()
            .map(|(gi, ((_, members), entity))| {
                let stamp = match &reusable[gi] {
                    Some(_) => resident.cache.get(&members[0]).map(|(_, s)| *s).unwrap_or(seq),
                    None => seq,
                };
                (members[0], (entity.clone(), stamp))
            })
            .collect();
        let mut fused_cache_evicted = 0;
        if let Some(budget) = fused_cache_budget {
            if cache.len() > budget {
                let mut order: Vec<(u64, usize)> =
                    // dtlint::allow(map-iter, reason = "eviction order is decided by the sort_unstable below, not map order")
                    cache.iter().map(|(k, (_, s))| (*s, *k)).collect();
                order.sort_unstable();
                for &(_, k) in order.iter().take(cache.len() - budget) {
                    cache.remove(&k);
                    fused_cache_evicted += 1;
                }
            }
        }
        delta.fused_cache_entries = cache.len();
        delta.fused_cache_evicted = fused_cache_evicted;
        resident.cache = cache;

        // Log the delta as consolidation + fusion stage runs (delta-scope
        // pair counts, corpus-scope group counts) and install the updated
        // view, exactly as a staged run would.
        let multi = groups.iter().filter(|(_, m)| m.len() > 1).count();
        let largest = groups.iter().map(|(_, m)| m.len()).max().unwrap_or(0);
        self.ctx.push_run(
            stage_names::ENTITY_CONSOLIDATION,
            StageReport::EntityConsolidation {
                records: delta.total_records,
                groups: groups.len(),
                multi_member_groups: multi,
                largest_group: largest,
                blocking: GroupingReport {
                    candidate_pairs: delta.candidate_pairs,
                    accepted_pairs: delta.accepted_pairs,
                    degraded_buckets: delta.degraded_buckets,
                },
                delta: Some(delta),
            },
        );
        let members = fused.iter().map(|f| f.member_count).sum();
        self.ctx
            .push_run(stage_names::FUSION, StageReport::Fusion { entities: fused.len(), members });
        // Hand downstream views the exact dirty set: `reusable[gi]` is
        // `None` precisely when group `gi` was re-resolved this delta, so
        // index maintenance can reindex only those clusters.
        let dirty: Vec<bool> = reusable.iter().map(Option::is_none).collect();
        self.ctx.fusion_groups = groups;
        self.ctx.fused = fused;
        self.ctx.fused_revision += 1;
        self.ctx.fused_changed = Some(dirty);
        // The in-memory session is fully updated either way; a deferred
        // log error now tells the caller persistence degraded.
        match log_error {
            Some(e) => Err(e),
            None => Ok(delta),
        }
    }

    /// Look up one show in a fused entity set by (canonicalised) name.
    pub fn lookup<'a>(
        fused: &'a [FusedEntity],
        show: &str,
    ) -> Option<&'a FusedEntity> {
        let key = canonical_name(show);
        fused.iter().find(|f| f.key == key)
    }

    /// Table IV: top-k most discussed award-winning shows from web text.
    ///
    /// Bulk reads surface storage errors instead of panicking — an
    /// unreadable shard yields `Err`, never a partial answer.
    pub fn top_discussed(&self, k: usize) -> datatamer_model::Result<Vec<DiscussedShow>> {
        match self.ctx.store.collection(crate::ingest::INSTANCE_COLLECTION) {
            Some(c) => top_discussed_award_winning(&c, k),
            None => Ok(Vec::new()),
        }
    }

    /// Table III: entity counts by type.
    pub fn entity_histogram(&self) -> datatamer_model::Result<Vec<(String, u64)>> {
        match self.ctx.store.collection(crate::ingest::ENTITY_COLLECTION) {
            Some(c) => entity_type_histogram(&c),
            None => Ok(Vec::new()),
        }
    }

    /// Tables I/II: stats of a named collection.
    pub fn collection_stats(&self, name: &str) -> Option<CollectionStats> {
        self.ctx.store.stats(name)
    }

    /// Handle to a collection.
    pub fn collection(&self, name: &str) -> Option<Arc<Collection>> {
        self.ctx.store.collection(name)
    }
}

/// Convert a flat record to a storable document (field order preserved).
pub fn record_to_doc(r: &Record) -> datatamer_model::Document {
    let mut d = doc! {
        "_source" => Value::Int(i64::from(r.source.0)),
        "_id" => Value::Int(r.id.0 as i64)
    };
    for (k, v) in r.iter() {
        d.set(k, v.clone());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{CHEAPEST_PRICE, SHOW_NAME, TEXT_FEED};
    use crate::stage::{stage_names, StageReport};
    use datatamer_model::{RecordId, SourceId};
    use datatamer_text::{EntityType, Gazetteer};

    fn small_config() -> DataTamerConfig {
        DataTamerConfig {
            extent_size: 64 * 1024,
            shards: 2,
            ..Default::default()
        }
    }

    fn structured_rows(src: u32, show_attr: &str, price_attr: &str) -> Vec<Record> {
        let rows = [("Matilda", "$27"), ("Wicked", "€60"), ("Annie", "$45")];
        rows.iter()
            .enumerate()
            .map(|(i, (s, p))| {
                Record::from_pairs(
                    SourceId(src),
                    RecordId(i as u64),
                    vec![(show_attr, Value::from(*s)), (price_attr, Value::from(*p))],
                )
            })
            .collect()
    }

    fn parser() -> DomainParser {
        let mut g = Gazetteer::new();
        for s in ["Matilda", "Wicked", "Annie"] {
            g.add(s, EntityType::Movie, 0.95);
        }
        g.add("London", EntityType::City, 0.9);
        DomainParser::with_gazetteer(g)
    }

    #[test]
    fn register_structured_maps_cleans_and_stores() {
        let mut dt = DataTamer::new(small_config());
        let r1 = dt.register_structured("s1", &structured_rows(0, "show_name", "cheapest_price")).unwrap();
        assert_eq!(r1.new_attributes(), 2);
        let r2 = dt.register_structured("s2", &structured_rows(1, "title", "cost")).unwrap();
        assert_eq!(dt.global_schema().len(), 2, "{:?}", dt.global_schema().attribute_names());
        assert!(r2.auto_accepted() + r2.human_interventions() == 2);

        // Records are canonically renamed and cleaned (EUR→USD).
        let recs = dt.structured_records();
        assert_eq!(recs.len(), 6);
        assert!(recs.iter().all(|r| r.get(SHOW_NAME).is_some()));
        let wicked = recs.iter().find(|r| r.get_text(SHOW_NAME).as_deref() == Some("Wicked")).unwrap();
        assert_eq!(wicked.get_text(CHEAPEST_PRICE).as_deref(), Some("$78"), "€60 × 1.30");
        // Stored in the global-records collection.
        let col = dt.collection(GLOBAL_RECORDS_COLLECTION).unwrap();
        assert_eq!(col.len(), 6);
        assert_eq!(dt.cleaning_reports().len(), 2);
        assert_eq!(dt.catalog().len(), 2);
    }

    #[test]
    fn webtext_ingest_and_table_v_vi_flow() {
        let mut dt = DataTamer::new(small_config());
        dt.register_structured("ftable", &structured_rows(0, "show_name", "cheapest_price")).unwrap();
        let fragments = [
            (
                "And Matilda an award-winning import from London, grossed 960,998, or 93 percent of the maximum.",
                "news",
            ),
            ("Wicked still sells out nightly on Broadway", "blog"),
        ];
        let stats = dt.ingest_webtext(parser(), fragments).unwrap();
        assert_eq!(stats.instances, 2);
        assert_eq!(stats.show_records, 2);

        // Table V: text-only lookup has the feed but no price.
        let text_only = dt.fuse_text_only();
        let matilda = DataTamer::lookup(&text_only, "Matilda").unwrap();
        assert!(matilda.record.get_text(TEXT_FEED).unwrap().contains("960,998"));
        assert!(matilda.record.get(CHEAPEST_PRICE).is_none());

        // Table VI: fused lookup is enriched.
        let fused = dt.fuse();
        let matilda = DataTamer::lookup(&fused, "Matilda").unwrap();
        assert_eq!(matilda.record.get_text(CHEAPEST_PRICE).as_deref(), Some("$27"));
        assert!(matilda.record.get_text(TEXT_FEED).unwrap().contains("960,998"));
        assert_eq!(matilda.member_count, 2);
    }

    #[test]
    fn run_executes_the_canonical_stage_list_once_in_order() {
        let mut dt = DataTamer::new(small_config());
        let plan = PipelinePlan::new()
            .structured("s1", &structured_rows(0, "show_name", "cheapest_price"))
            .webtext(
                parser(),
                vec![("Matilda grossed 960,998 in London previews", "news")],
            );
        let fused_len = dt.run(plan).expect("pipeline runs").len();
        assert!(fused_len >= 3, "three shows plus text mentions: {fused_len}");

        let names: Vec<&str> = dt.context().runs().iter().map(|r| r.stage).collect();
        assert_eq!(names, stage_names::CANONICAL_ORDER.to_vec(), "order and multiplicity");
        for stage in stage_names::CANONICAL_ORDER {
            assert_eq!(dt.context().run_count(stage), 1, "{stage} must run exactly once");
            assert!(dt.context().report_of(stage).is_some(), "{stage} report queryable");
        }
    }

    #[test]
    fn run_reports_carry_stage_outcomes() {
        let mut dt = DataTamer::new(small_config());
        let plan = PipelinePlan::new()
            .structured("a", &structured_rows(0, "show_name", "cheapest_price"))
            .structured("b", &structured_rows(1, "title", "cost"))
            .webtext(parser(), vec![("Wicked sells out nightly", "blog")]);
        dt.run(plan).unwrap();
        let ctx = dt.context();

        match ctx.report_of(stage_names::INGEST).unwrap() {
            StageReport::Ingest { structured_sources, structured_records, text, storage } => {
                assert_eq!(*structured_sources, 2);
                assert_eq!(*structured_records, 6);
                assert_eq!(text.as_ref().unwrap().instances, 1);
                // Text ingest wrote the instance/entity collections, so the
                // stage surfaces their shard distribution.
                let names: Vec<&str> =
                    storage.iter().map(|s| s.collection.as_str()).collect();
                assert_eq!(names, vec!["instance", "entity"]);
                assert!(storage.iter().all(|s| s.routing == "round_robin"));
                assert_eq!(storage[0].docs(), 1);
            }
            other => panic!("wrong report variant: {other:?}"),
        }
        match ctx.report_of(stage_names::SCHEMA_INTEGRATION).unwrap() {
            StageReport::SchemaIntegration { sources, .. } => assert_eq!(*sources, 2),
            other => panic!("wrong report variant: {other:?}"),
        }
        match ctx.report_of(stage_names::CLEANING).unwrap() {
            StageReport::Cleaning { sources, records, values_transformed, storage, .. } => {
                assert_eq!(*sources, 2);
                assert_eq!(*records, 6);
                assert!(*values_transformed >= 2, "two EUR prices converted");
                let report = storage.as_ref().expect("global records persisted");
                assert_eq!(report.collection, GLOBAL_RECORDS_COLLECTION);
                assert_eq!(report.docs(), 6);
                assert_eq!(report.shards.len(), 2, "small_config uses 2 shards");
                assert_eq!(report.flushes, 0, "memory backend never flushes");
            }
            other => panic!("wrong report variant: {other:?}"),
        }
        match ctx.report_of(stage_names::ENTITY_CONSOLIDATION).unwrap() {
            StageReport::EntityConsolidation { records, groups, multi_member_groups, .. } => {
                assert_eq!(*records, 7, "6 structured + 1 text show record");
                assert!(*groups >= 3);
                assert!(*multi_member_groups >= 1, "Wicked spans sources");
            }
            other => panic!("wrong report variant: {other:?}"),
        }
        match ctx.report_of(stage_names::FUSION).unwrap() {
            StageReport::Fusion { entities, members } => {
                assert_eq!(*entities, ctx.fusion_groups.len());
                assert_eq!(*members, 7);
            }
            other => panic!("wrong report variant: {other:?}"),
        }
    }

    #[test]
    fn run_agrees_with_incremental_api() {
        let rows = structured_rows(0, "show_name", "cheapest_price");
        let fragments = vec![("Matilda grossed 960,998 in London", "news")];

        let mut staged = DataTamer::new(small_config());
        staged
            .run(PipelinePlan::new().structured("s1", &rows).webtext(parser(), fragments.clone()))
            .unwrap();
        let via_run: Vec<String> = staged
            .context()
            .fused
            .iter()
            .map(|f| format!("{}/{}/{:?}", f.key, f.member_count, f.record))
            .collect();

        let mut imperative = DataTamer::new(small_config());
        imperative.register_structured("s1", &rows).unwrap();
        imperative.ingest_webtext(parser(), fragments).unwrap();
        let via_fuse: Vec<String> = imperative
            .fuse()
            .iter()
            .map(|f| format!("{}/{}/{:?}", f.key, f.member_count, f.record))
            .collect();

        assert_eq!(via_run, via_fuse, "staged run and imperative flow fuse identically");
    }

    #[test]
    fn incremental_calls_append_stage_runs() {
        let mut dt = DataTamer::new(small_config());
        dt.register_structured("s1", &structured_rows(0, "show_name", "cheapest_price")).unwrap();
        dt.ingest_webtext(parser(), [("Annie tickets on sale", "news")]).unwrap();
        let ctx = dt.context();
        assert_eq!(ctx.run_count(stage_names::INGEST), 2, "one per entry point");
        assert_eq!(ctx.run_count(stage_names::SCHEMA_INTEGRATION), 1);
        assert_eq!(ctx.run_count(stage_names::CLEANING), 1);
        assert_eq!(ctx.run_count(stage_names::FUSION), 0, "no fusion requested yet");
    }

    #[test]
    fn plan_level_resolver_override_reaches_the_fusion_stage() {
        use crate::fusion::{RegistryConfig, ResolverSpec};
        // The provenance-later record (id 1) carries the HIGHER price, so
        // LatestWins and the broadway NumericMin must disagree.
        let rows = vec![
            Record::from_pairs(
                SourceId(0),
                RecordId(0),
                vec![("show_name", Value::from("Wicked")), ("cheapest_price", Value::from("$45"))],
            ),
            Record::from_pairs(
                SourceId(0),
                RecordId(1),
                vec![("show_name", Value::from("Wicked")), ("cheapest_price", Value::from("$99"))],
            ),
        ];

        // Config default (broadway): numeric minimum.
        let mut dt = DataTamer::new(small_config());
        dt.run(PipelinePlan::new().structured("s1", &rows)).unwrap();
        assert_eq!(
            dt.context().fused[0].record.get_text(CHEAPEST_PRICE).as_deref(),
            Some("$45")
        );

        // Plan override: the freshest record's price survives instead.
        let mut dt = DataTamer::new(small_config());
        let plan = PipelinePlan::new().structured("s1", &rows).resolvers(
            RegistryConfig::broadway().with(CHEAPEST_PRICE, ResolverSpec::LatestWins),
        );
        dt.run(plan).unwrap();
        assert_eq!(
            dt.context().fused[0].record.get_text(CHEAPEST_PRICE).as_deref(),
            Some("$99")
        );
        // Ad-hoc re-fusion uses the routing that produced ctx.fused, not
        // the stale system default.
        assert_eq!(dt.fuse()[0].record.get_text(CHEAPEST_PRICE).as_deref(), Some("$99"));
    }

    #[test]
    fn default_fusion_stage_reads_the_contexts_routing() {
        use crate::fusion::{group_records, FusionPolicy, RegistryConfig, ResolverSpec};
        use crate::stage::FusionStage;
        // A manually assembled stage list with FusionStage::default() must
        // fuse under the context's routing-in-effect, keeping ctx.fused and
        // ctx.fusion_resolvers in agreement by construction.
        let mut config = small_config();
        config.fusion_resolvers =
            RegistryConfig::broadway().with(CHEAPEST_PRICE, ResolverSpec::LatestWins);
        let mut ctx = crate::stage::PipelineContext::new(config);
        let records = vec![
            Record::from_pairs(
                SourceId(0),
                RecordId(0),
                vec![(SHOW_NAME, Value::from("Wicked")), (CHEAPEST_PRICE, Value::from("$45"))],
            ),
            Record::from_pairs(
                SourceId(0),
                RecordId(1),
                vec![(SHOW_NAME, Value::from("Wicked")), (CHEAPEST_PRICE, Value::from("$99"))],
            ),
        ];
        ctx.fusion_groups = group_records(&records, &FusionPolicy::Fuzzy { threshold: 0.88 });
        ctx.fusion_input = records;
        let mut stages: Vec<Box<dyn crate::stage::PipelineStage + '_>> =
            vec![Box::<FusionStage>::default()];
        crate::stage::run_stages(&mut ctx, &mut stages).unwrap();
        assert_eq!(
            ctx.fused[0].record.get_text(CHEAPEST_PRICE).as_deref(),
            Some("$99"),
            "context routing (LatestWins), not the broadway default"
        );
    }

    #[test]
    fn blocked_er_grouping_override_reaches_the_stage_and_sticks() {
        use crate::fusion::{BlockedErConfig, GroupingStrategy};
        // Word-order damaged duplicates: Jaro-Winkler on the canonical
        // names is far under the fusion threshold, so the canonical-name
        // scan splits them — blocked ER's token-aware record similarity
        // consolidates them.
        let rows = vec![
            Record::from_pairs(
                SourceId(0),
                RecordId(0),
                vec![
                    ("show_name", Value::from("Walking Dead")),
                    ("cheapest_price", Value::from("$45")),
                ],
            ),
            Record::from_pairs(
                SourceId(0),
                RecordId(1),
                vec![
                    ("show_name", Value::from("Dead Walking")),
                    ("cheapest_price", Value::from("$45")),
                ],
            ),
        ];

        // Default canonical grouping: the pair stays split.
        let mut dt = DataTamer::new(small_config());
        dt.run(PipelinePlan::new().structured("s1", &rows)).unwrap();
        assert_eq!(dt.context().fused.len(), 2);

        // Blocked-ER plan override: one consolidated entity, with the
        // blocking health surfaced in the stage report.
        let mut dt = DataTamer::new(small_config());
        let plan = PipelinePlan::new()
            .structured("s1", &rows)
            .grouping(GroupingStrategy::BlockedEr(BlockedErConfig::default()));
        dt.run(plan).unwrap();
        assert_eq!(dt.context().fused.len(), 1);
        assert_eq!(dt.context().fused[0].member_count, 2);
        match dt.context().report_of(stage_names::ENTITY_CONSOLIDATION).unwrap() {
            StageReport::EntityConsolidation { blocking, .. } => {
                assert!(blocking.candidate_pairs >= 1);
                assert_eq!(blocking.accepted_pairs, 1);
                assert_eq!(blocking.degraded_buckets, 0);
            }
            other => panic!("wrong report variant: {other:?}"),
        }
        // Ad-hoc re-fusion groups the way the run that filled the context
        // grouped — the override stuck.
        assert_eq!(dt.fuse().len(), 1);
    }

    #[test]
    fn default_consolidation_stage_reads_the_contexts_grouping() {
        use crate::fusion::{BlockedErConfig, GroupingStrategy};
        use crate::stage::EntityConsolidationStage;
        // A manually assembled stage list with the default stage must
        // group under the context's strategy-in-effect, keeping
        // ctx.fusion_groups and ctx.grouping in agreement by construction
        // (mirroring FusionStage's relationship to the resolver routing).
        let mut config = small_config();
        config.grouping = GroupingStrategy::BlockedEr(BlockedErConfig::default());
        let mut ctx = crate::stage::PipelineContext::new(config);
        ctx.structured_records = vec![
            Record::from_pairs(
                SourceId(0),
                RecordId(0),
                vec![
                    (SHOW_NAME, Value::from("Walking Dead")),
                    (CHEAPEST_PRICE, Value::from("$45")),
                ],
            ),
            Record::from_pairs(
                SourceId(0),
                RecordId(1),
                vec![
                    (SHOW_NAME, Value::from("Dead Walking")),
                    (CHEAPEST_PRICE, Value::from("$45")),
                ],
            ),
        ];
        let mut stages: Vec<Box<dyn crate::stage::PipelineStage + '_>> =
            vec![Box::<EntityConsolidationStage>::default()];
        crate::stage::run_stages(&mut ctx, &mut stages).unwrap();
        assert_eq!(
            ctx.fusion_groups.len(),
            1,
            "context grouping (BlockedEr), not the canonical-name default: {:?}",
            ctx.fusion_groups
        );
        assert_eq!(ctx.fusion_groups[0].1, vec![0, 1]);
    }

    #[test]
    fn consolidate_delta_requires_blocked_er_grouping() {
        let mut dt = DataTamer::new(small_config());
        let err = dt.consolidate_delta(&[]).unwrap_err();
        assert!(matches!(err, datatamer_model::DtError::Config(_)), "{err:?}");
    }

    /// A record already in canonical shape: schema mapping and cleaning are
    /// identities for it, so raw delta batches and staged registration
    /// produce byte-identical corpus records.
    fn show(id: u64, name: &str, price: &str) -> Record {
        Record::from_pairs(
            SourceId(0),
            RecordId(id),
            vec![(SHOW_NAME, Value::from(name)), (CHEAPEST_PRICE, Value::from(price))],
        )
    }

    fn fingerprints(fused: &[FusedEntity]) -> Vec<String> {
        fused
            .iter()
            .map(|f| format!("{}|{}|{:?}|{:?}", f.key, f.member_count, f.confidence, f.record))
            .collect()
    }

    #[test]
    fn consolidate_delta_matches_full_rebuild_and_reuses_clean_clusters() {
        let mut config = small_config();
        config.grouping = GroupingStrategy::BlockedEr(crate::fusion::BlockedErConfig::default());

        // Token-unique names: every record blocks alone, so the corpus
        // settles into one cluster per distinct name and a delta can only
        // dirty the cluster it duplicates.
        let prefix: Vec<Record> =
            (0..20).map(|i| show(i, &format!("Unique{i} Show{i}"), "$10")).collect();
        let batch1 = vec![show(100, "Unique3 Show3", "$10"), show(101, "Brand New", "$55")];
        let batch2 = vec![show(200, "Unique7 Show7", "$10")];

        let mut inc = DataTamer::new(config.clone());
        inc.run(PipelinePlan::new().structured("s1", &prefix)).unwrap();
        let runs_before = inc.context().runs().len();
        let d1 = inc.consolidate_delta(&batch1).unwrap();
        let d2 = inc.consolidate_delta(&batch2).unwrap();

        // Delta accounting: the second batch touched one bucket-cluster,
        // everything else carried over (clusters AND fused entities).
        assert_eq!(d1.batch_records, 2);
        assert_eq!(d2.total_records, 23);
        assert!(d2.dirty_clusters >= 1, "{d2:?}");
        assert!(d2.reused_clusters >= 19, "{d2:?}");
        assert!(d2.reused_context_fraction > 0.9, "{d2:?}");

        // Each delta logs consolidation + fusion runs, with the report.
        assert_eq!(inc.context().runs().len(), runs_before + 4);
        match inc.context().report_of(stage_names::ENTITY_CONSOLIDATION).unwrap() {
            StageReport::EntityConsolidation { delta, records, .. } => {
                assert_eq!(*delta, Some(d2));
                assert_eq!(*records, 23);
            }
            other => panic!("wrong report variant: {other:?}"),
        }

        // The pin: identical fused output to a from-scratch run over the
        // concatenated corpus.
        let mut all = prefix.clone();
        all.extend(batch1);
        all.extend(batch2);
        let mut full = DataTamer::new(config);
        full.run(PipelinePlan::new().structured("s1", &all)).unwrap();
        assert_eq!(fingerprints(&inc.context().fused), fingerprints(&full.context().fused));
        assert_eq!(inc.context().fusion_groups, full.context().fusion_groups);
    }

    #[test]
    fn consolidate_delta_reseeds_after_the_base_corpus_grows() {
        let mut config = small_config();
        config.grouping = GroupingStrategy::BlockedEr(crate::fusion::BlockedErConfig::default());

        let s1: Vec<Record> =
            (0..6).map(|i| show(i, &format!("Alphashow{i} One{i}"), "$10")).collect();
        let s2: Vec<Record> =
            (0..4).map(|i| show(50 + i, &format!("Betashow{i} Two{i}"), "$20")).collect();
        let batch = vec![show(100, "Alphashow2 One2", "$10")];

        let mut inc = DataTamer::new(config.clone());
        inc.run(PipelinePlan::new().structured("s1", &s1)).unwrap();
        inc.consolidate_delta(&batch).unwrap();
        // A new structured source arrives mid-stream: the resident corpus
        // is stale, so the next delta reseeds and replays the prior batch.
        inc.register_structured("s2", &s2).unwrap();
        let batch2 = vec![show(101, "Betashow1 Two1", "$20")];
        let d = inc.consolidate_delta(&batch2).unwrap();
        assert_eq!(d.total_records, 12, "s1 + s2 + both deltas");

        let mut all = s1.clone();
        all.extend(s2);
        all.extend(batch);
        all.extend(batch2);
        let mut full = DataTamer::new(config);
        full.run(PipelinePlan::new().structured("s1", &all)).unwrap();
        assert_eq!(fingerprints(&inc.context().fused), fingerprints(&full.context().fused));
    }

    #[test]
    fn case_variant_attributes_survive_schema_integration() {
        // "price" and "PRICE" are distinct source attributes that collapse
        // to one spelling after upper-casing; both values must survive and
        // the collision must be counted, not swallowed.
        let rows: Vec<Record> = (0..3u64)
            .map(|i| {
                Record::from_pairs(
                    SourceId(0),
                    RecordId(i),
                    vec![
                        ("show_name", Value::from(format!("Show Number{i}"))),
                        ("price", Value::from("$10")),
                        ("PRICE", Value::from("$99")),
                    ],
                )
            })
            .collect();
        let mut dt = DataTamer::new(small_config());
        dt.run(PipelinePlan::new().structured("s1", &rows)).unwrap();
        match dt.context().report_of(stage_names::SCHEMA_INTEGRATION).unwrap() {
            StageReport::SchemaIntegration { case_collisions, .. } => {
                assert_eq!(*case_collisions, 1, "one colliding attribute in the source")
            }
            other => panic!("wrong report variant: {other:?}"),
        }
        let recs = dt.structured_records();
        assert_eq!(recs.len(), 3);
        for r in recs {
            let spellings: Vec<&str> = r.field_names().collect();
            assert!(
                r.get("PRICE").is_some() && r.get("PRICE__2").is_some(),
                "both case variants must survive mapping: {spellings:?}"
            );
        }
    }

    #[test]
    fn text_only_run_creates_no_global_records_collection() {
        let mut dt = DataTamer::new(small_config());
        dt.run(PipelinePlan::new().webtext(parser(), vec![("Matilda tonight", "news")]))
            .unwrap();
        assert!(
            dt.collection(GLOBAL_RECORDS_COLLECTION).is_none(),
            "no structured sources cleaned, so the collection must not exist"
        );
        assert!(dt.collection_stats(GLOBAL_RECORDS_COLLECTION).is_none());
    }

    #[test]
    fn top_discussed_and_histogram_need_text() {
        let dt = DataTamer::new(small_config());
        assert!(dt.top_discussed(5).unwrap().is_empty());
        assert!(dt.entity_histogram().unwrap().is_empty());
        assert!(dt.collection_stats("instance").is_none());
    }

    #[test]
    fn collection_stats_shape() {
        let mut dt = DataTamer::new(small_config());
        dt.ingest_webtext(parser(), [("Matilda at the theatre tonight", "news")]).unwrap();
        let stats = dt.collection_stats("instance").unwrap();
        assert_eq!(stats.ns, "dt.instance");
        assert_eq!(stats.count, 1);
        assert_eq!(stats.nindexes, 1);
        let estats = dt.collection_stats("entity").unwrap();
        assert_eq!(estats.nindexes, 8);
        assert_eq!(dt.text_stats().instances, 1);
    }

    #[test]
    fn record_to_doc_preserves_fields() {
        let r = Record::from_pairs(
            SourceId(3),
            RecordId(9),
            vec![("A", Value::from("x")), ("B", Value::Int(2))],
        );
        let d = record_to_doc(&r);
        assert_eq!(d.get("_source"), Some(&Value::Int(3)));
        assert_eq!(d.get("_id"), Some(&Value::Int(9)));
        assert_eq!(d.get("A"), Some(&Value::from("x")));
        assert_eq!(d.get("B"), Some(&Value::Int(2)));
    }
}
