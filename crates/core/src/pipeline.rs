//! The DATA TAMER facade: Figure 1 as an API.
//!
//! ```text
//! structured sources ──┐
//!                      ├─ ingest → schema integration → cleaning ─┐
//! web text ─ parser ───┘                                          ├─ fusion → queries
//!            (instance/entity collections, show records) ─────────┘
//! ```

use std::sync::Arc;

use datatamer_clean::{CleaningEngine, CleaningReport};
use datatamer_model::{doc, Record, SourceSchema, Value};
use datatamer_schema::integrate::EscalationResolver;
use datatamer_schema::{IntegrationReport, SchemaIntegrator};
use datatamer_storage::{Collection, CollectionStats, Store};
use datatamer_text::normalize::canonical_name;
use datatamer_text::DomainParser;

use crate::catalog::{Catalog, SourceKind};
use crate::config::DataTamerConfig;
use crate::fusion::{
    fuse_records, FusedEntity, FusionPolicy, CHEAPEST_PRICE, FIRST, PERFORMANCE, SHOW_NAME,
    THEATER,
};
use crate::ingest::{IngestStats, TextIngestor};
use crate::query::{entity_type_histogram, top_discussed_award_winning, DiscussedShow};

/// Name of the collection holding integrated (mapped + cleaned) records.
pub const GLOBAL_RECORDS_COLLECTION: &str = "global_records";

/// The Data Tamer system.
pub struct DataTamer {
    config: DataTamerConfig,
    store: Store,
    catalog: Catalog,
    integrator: SchemaIntegrator,
    structured_records: Vec<Record>,
    text_show_records: Vec<Record>,
    cleaning_reports: Vec<(String, CleaningReport)>,
    text_stats: IngestStats,
}

impl DataTamer {
    /// Build a system from a configuration.
    pub fn new(config: DataTamerConfig) -> Self {
        let integrator = SchemaIntegrator::new(
            datatamer_schema::CompositeMatcher::broadway(),
            config.integration.clone(),
        );
        DataTamer {
            store: Store::new(config.namespace.clone()),
            catalog: Catalog::new(),
            integrator,
            structured_records: Vec::new(),
            text_show_records: Vec::new(),
            cleaning_reports: Vec::new(),
            text_stats: IngestStats::default(),
            config,
        }
    }

    /// Default-configured system.
    pub fn with_defaults() -> Self {
        Self::new(DataTamerConfig::default())
    }

    /// The underlying store (stats, ad-hoc queries).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The source catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The growing global schema.
    pub fn global_schema(&self) -> &datatamer_schema::GlobalSchema {
        self.integrator.global()
    }

    /// Cleaning reports per registered source.
    pub fn cleaning_reports(&self) -> &[(String, CleaningReport)] {
        &self.cleaning_reports
    }

    /// Text ingestion statistics.
    pub fn text_stats(&self) -> &IngestStats {
        &self.text_stats
    }

    /// Integrated structured records (canonical attribute spellings).
    pub fn structured_records(&self) -> &[Record] {
        &self.structured_records
    }

    /// Text-derived show records.
    pub fn text_show_records(&self) -> &[Record] {
        &self.text_show_records
    }

    /// Register and integrate a structured source; thresholds only.
    pub fn register_structured(
        &mut self,
        name: &str,
        records: &[Record],
    ) -> IntegrationReport {
        let mut resolver = datatamer_schema::integrate::AcceptBest;
        self.register_structured_with(name, records, &mut resolver)
    }

    /// Register and integrate a structured source, routing escalations
    /// through `resolver` (e.g. an expert panel).
    pub fn register_structured_with(
        &mut self,
        name: &str,
        records: &[Record],
        resolver: &mut dyn EscalationResolver,
    ) -> IntegrationReport {
        let source_id = self.catalog.register(name, SourceKind::Structured);
        self.catalog.set_record_count(source_id, records.len() as u64);

        // 1. Profile and integrate the schema.
        let schema = SourceSchema::profile_records(source_id, name, records);
        let report = self.integrator.integrate_with(&schema, resolver);

        // 2. Build the source-attr → canonical-name mapping from decisions.
        let mut mapping: Vec<(String, Option<String>)> = Vec::new();
        for s in &report.suggestions {
            let target = match s.decision.mapped_attr() {
                Some(id) => self
                    .integrator
                    .global()
                    .get(id)
                    .map(|g| g.name.to_uppercase()),
                None => match s.decision {
                    datatamer_schema::Decision::Ignore => None,
                    _ => Some(s.source_attr.to_uppercase()),
                },
            };
            mapping.push((s.source_attr.clone(), target));
        }

        // 3. Map records onto the global schema (rename/drop attributes).
        let mut mapped: Vec<Record> = records
            .iter()
            .map(|r| {
                let mut out = Record::new(r.source, r.id);
                for (attr, value) in r.iter() {
                    match mapping.iter().find(|(a, _)| a == attr) {
                        Some((_, Some(target))) => out.set(target.clone(), value.clone()),
                        Some((_, None)) => {}
                        None => out.set(attr.to_uppercase(), value.clone()),
                    }
                }
                out
            })
            .collect();

        // 4. Clean and transform (EUR→USD on prices, date normalisation...).
        let engine = CleaningEngine::broadway(
            CHEAPEST_PRICE,
            FIRST,
            &[SHOW_NAME, THEATER, PERFORMANCE],
        );
        let clean_report = engine.clean_all(&mut mapped);
        self.cleaning_reports.push((name.to_owned(), clean_report));

        // 5. Persist into the global-records collection.
        let col = self
            .store
            .collection_or_create(GLOBAL_RECORDS_COLLECTION, self.config.collection_config());
        for r in &mapped {
            col.insert(&record_to_doc(r));
        }
        self.structured_records.extend(mapped);
        report
    }

    /// Ingest web-text fragments through the domain parser into the
    /// `instance` / `entity` collections and collect fusion show records.
    pub fn ingest_webtext<'a, I>(&mut self, parser: DomainParser, fragments: I) -> IngestStats
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let source_id = self.catalog.register("webtext", SourceKind::Text);
        let ingestor = if self.config.clean_text {
            TextIngestor::new(parser)
        } else {
            TextIngestor::without_cleaner(parser)
        };
        let (stats, shows) = ingestor.ingest(
            &self.store,
            self.config.collection_config(),
            source_id,
            fragments,
        );
        self.catalog.set_record_count(source_id, stats.instances);
        self.text_show_records.extend(shows);
        self.text_stats = stats.clone();
        stats
    }

    /// Fuse structured + text show records into composite entities.
    /// Structured records come first so source-priority conflict resolution
    /// favours the curated sources.
    pub fn fuse(&self) -> Vec<FusedEntity> {
        let mut all: Vec<Record> =
            Vec::with_capacity(self.structured_records.len() + self.text_show_records.len());
        all.extend(self.structured_records.iter().cloned());
        all.extend(self.text_show_records.iter().cloned());
        fuse_records(&all, &FusionPolicy::Fuzzy { threshold: self.config.fusion_threshold })
    }

    /// Fuse only text-derived records (the Table V "before" state).
    pub fn fuse_text_only(&self) -> Vec<FusedEntity> {
        fuse_records(
            &self.text_show_records,
            &FusionPolicy::Fuzzy { threshold: self.config.fusion_threshold },
        )
    }

    /// Look up one show in a fused entity set by (canonicalised) name.
    pub fn lookup<'a>(
        fused: &'a [FusedEntity],
        show: &str,
    ) -> Option<&'a FusedEntity> {
        let key = canonical_name(show);
        fused.iter().find(|f| f.key == key)
    }

    /// Table IV: top-k most discussed award-winning shows from web text.
    pub fn top_discussed(&self, k: usize) -> Vec<DiscussedShow> {
        match self.store.collection(crate::ingest::INSTANCE_COLLECTION) {
            Some(c) => top_discussed_award_winning(&c, k),
            None => Vec::new(),
        }
    }

    /// Table III: entity counts by type.
    pub fn entity_histogram(&self) -> Vec<(String, u64)> {
        match self.store.collection(crate::ingest::ENTITY_COLLECTION) {
            Some(c) => entity_type_histogram(&c),
            None => Vec::new(),
        }
    }

    /// Tables I/II: stats of a named collection.
    pub fn collection_stats(&self, name: &str) -> Option<CollectionStats> {
        self.store.stats(name)
    }

    /// Handle to a collection.
    pub fn collection(&self, name: &str) -> Option<Arc<Collection>> {
        self.store.collection(name)
    }
}

/// Convert a flat record to a storable document (field order preserved).
pub fn record_to_doc(r: &Record) -> datatamer_model::Document {
    let mut d = doc! {
        "_source" => Value::Int(i64::from(r.source.0)),
        "_id" => Value::Int(r.id.0 as i64)
    };
    for (k, v) in r.iter() {
        d.set(k, v.clone());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::TEXT_FEED;
    use datatamer_model::{RecordId, SourceId};
    use datatamer_text::{EntityType, Gazetteer};

    fn small_config() -> DataTamerConfig {
        DataTamerConfig {
            extent_size: 64 * 1024,
            shards: 2,
            ..Default::default()
        }
    }

    fn structured_rows(src: u32, show_attr: &str, price_attr: &str) -> Vec<Record> {
        let rows = [("Matilda", "$27"), ("Wicked", "€60"), ("Annie", "$45")];
        rows.iter()
            .enumerate()
            .map(|(i, (s, p))| {
                Record::from_pairs(
                    SourceId(src),
                    RecordId(i as u64),
                    vec![(show_attr, Value::from(*s)), (price_attr, Value::from(*p))],
                )
            })
            .collect()
    }

    fn parser() -> DomainParser {
        let mut g = Gazetteer::new();
        for s in ["Matilda", "Wicked", "Annie"] {
            g.add(s, EntityType::Movie, 0.95);
        }
        g.add("London", EntityType::City, 0.9);
        DomainParser::with_gazetteer(g)
    }

    #[test]
    fn register_structured_maps_cleans_and_stores() {
        let mut dt = DataTamer::new(small_config());
        let r1 = dt.register_structured("s1", &structured_rows(0, "show_name", "cheapest_price"));
        assert_eq!(r1.new_attributes(), 2);
        let r2 = dt.register_structured("s2", &structured_rows(1, "title", "cost"));
        assert_eq!(dt.global_schema().len(), 2, "{:?}", dt.global_schema().attribute_names());
        assert!(r2.auto_accepted() + r2.human_interventions() == 2);

        // Records are canonically renamed and cleaned (EUR→USD).
        let recs = dt.structured_records();
        assert_eq!(recs.len(), 6);
        assert!(recs.iter().all(|r| r.get(SHOW_NAME).is_some()));
        let wicked = recs.iter().find(|r| r.get_text(SHOW_NAME).as_deref() == Some("Wicked")).unwrap();
        assert_eq!(wicked.get_text(CHEAPEST_PRICE).as_deref(), Some("$78"), "€60 × 1.30");
        // Stored in the global-records collection.
        let col = dt.collection(GLOBAL_RECORDS_COLLECTION).unwrap();
        assert_eq!(col.len(), 6);
        assert_eq!(dt.cleaning_reports().len(), 2);
        assert_eq!(dt.catalog().len(), 2);
    }

    #[test]
    fn webtext_ingest_and_table_v_vi_flow() {
        let mut dt = DataTamer::new(small_config());
        dt.register_structured("ftable", &structured_rows(0, "show_name", "cheapest_price"));
        let fragments = [
            (
                "And Matilda an award-winning import from London, grossed 960,998, or 93 percent of the maximum.",
                "news",
            ),
            ("Wicked still sells out nightly on Broadway", "blog"),
        ];
        let stats = dt.ingest_webtext(parser(), fragments);
        assert_eq!(stats.instances, 2);
        assert_eq!(stats.show_records, 2);

        // Table V: text-only lookup has the feed but no price.
        let text_only = dt.fuse_text_only();
        let matilda = DataTamer::lookup(&text_only, "Matilda").unwrap();
        assert!(matilda.record.get_text(TEXT_FEED).unwrap().contains("960,998"));
        assert!(matilda.record.get(CHEAPEST_PRICE).is_none());

        // Table VI: fused lookup is enriched.
        let fused = dt.fuse();
        let matilda = DataTamer::lookup(&fused, "Matilda").unwrap();
        assert_eq!(matilda.record.get_text(CHEAPEST_PRICE).as_deref(), Some("$27"));
        assert!(matilda.record.get_text(TEXT_FEED).unwrap().contains("960,998"));
        assert_eq!(matilda.member_count, 2);
    }

    #[test]
    fn top_discussed_and_histogram_need_text() {
        let dt = DataTamer::new(small_config());
        assert!(dt.top_discussed(5).is_empty());
        assert!(dt.entity_histogram().is_empty());
        assert!(dt.collection_stats("instance").is_none());
    }

    #[test]
    fn collection_stats_shape() {
        let mut dt = DataTamer::new(small_config());
        dt.ingest_webtext(parser(), [("Matilda at the theatre tonight", "news")]);
        let stats = dt.collection_stats("instance").unwrap();
        assert_eq!(stats.ns, "dt.instance");
        assert_eq!(stats.count, 1);
        assert_eq!(stats.nindexes, 1);
        let estats = dt.collection_stats("entity").unwrap();
        assert_eq!(estats.nindexes, 8);
        assert_eq!(dt.text_stats().instances, 1);
    }

    #[test]
    fn record_to_doc_preserves_fields() {
        let r = Record::from_pairs(
            SourceId(3),
            RecordId(9),
            vec![("A", Value::from("x")), ("B", Value::Int(2))],
        );
        let d = record_to_doc(&r);
        assert_eq!(d.get("_source"), Some(&Value::Int(3)));
        assert_eq!(d.get("_id"), Some(&Value::Int(9)));
        assert_eq!(d.get("A"), Some(&Value::from("x")));
        assert_eq!(d.get("B"), Some(&Value::Int(2)));
    }
}
