//! DATA TAMER — the end-to-end curation and fusion system.
//!
//! This crate wires every substrate together into the architecture of the
//! paper's Figure 1: data ingest (structured and parsed text), schema
//! integration, data cleaning/transformation, entity consolidation,
//! expert sourcing, and text/structured **fusion** with a query interface
//! over the integrated global schema.
//!
//! * [`config`] — system configuration (extent sizing, thresholds, scale).
//! * [`catalog`] — source registry assigning [`datatamer_model::SourceId`]s.
//! * [`ingest`] — text ingestion: clean → parse → store WEBINSTANCE /
//!   WEBENTITIES collections (with the paper's index layout) and extract
//!   show records for fusion.
//! * [`expert_bridge`] — expert panels answering escalated schema matches.
//! * [`fusion`] — fusing text-derived and structured records over the
//!   global schema (the Matilda enrichment of Tables V–VI). Two levels:
//!   [`fusion::FusionPolicy`] groups records into entities, and a
//!   [`fusion::ResolverRegistry`] dispatches each attribute's conflicting
//!   values to a [`fusion::ValueResolver`] (majority vote, source
//!   reliability, latest-wins, multi-truth, or classic merge policies).
//! * [`query`] — demo queries: show lookup and top-k most-discussed
//!   award-winning titles (Table IV).
//! * [`stage`] — the staged pipeline: [`stage::PipelineStage`] (ingest →
//!   schema integration → cleaning → entity consolidation → fusion) over a
//!   [`stage::PipelineContext`] owning store, catalog, and stage reports.
//! * [`pipeline`] — [`pipeline::DataTamer`], the public facade assembling
//!   and running stage lists.

pub mod catalog;
pub mod config;
pub mod expert_bridge;
pub mod fusion;
pub mod ingest;
pub mod pipeline;
pub mod query;
pub mod stage;

pub use catalog::{Catalog, SourceInfo, SourceKind};
pub use config::{DataTamerConfig, DeltaLogConfig, StorageConfig};
pub use expert_bridge::ExpertPanelResolver;
pub use fusion::{
    fuse_records, fuse_records_with, FusionPolicy, LatestWins, MajorityVote, MultiTruth,
    PolicyResolver, ProvenancedValue, RegistryConfig, Resolved, ResolverRegistry, ResolverSpec,
    SourceReliability, ValueResolver,
};
pub use datatamer_entity::incremental::{DeltaReport, IncrementalConsolidator};
pub use ingest::{IngestStats, TextIngestor};
pub use pipeline::{DataTamer, PipelinePlan};
pub use stage::{PipelineContext, PipelineStage, StageReport};
