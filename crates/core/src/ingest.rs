//! Text ingestion: clean → parse → store → extract fusion records.
//!
//! Produces the paper's two text-side collections:
//!
//! * `instance` (WEBINSTANCE): one hierarchical document per kept fragment,
//!   with **1 index** — exactly Table I's `nindexes: 1`.
//! * `entity` (WEBENTITIES): one flat document per extracted mention, with
//!   **8 indexes** — exactly Table II's `nindexes: 8`.

use std::sync::Arc;

use datatamer_clean::TextCleaner;
use datatamer_model::{doc, Document, Record, RecordId, Result, SourceId, Value};
use datatamer_storage::{Collection, IndexSpec, Store};
use datatamer_text::{DomainParser, EntityType};

use crate::fusion::{SHOW_NAME, TEXT_FEED};

/// Collection names used by the text side.
pub const INSTANCE_COLLECTION: &str = "instance";
pub const ENTITY_COLLECTION: &str = "entity";

/// Outcome counts of a text ingestion run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Fragments offered.
    pub fragments_seen: usize,
    /// Fragments dropped by the ML cleaner.
    pub fragments_dropped: usize,
    /// Instance documents stored.
    pub instances: u64,
    /// Entity documents stored.
    pub entities: u64,
    /// Show records extracted for fusion.
    pub show_records: usize,
}

/// Ingests raw fragments through the cleaner and parser into a store.
pub struct TextIngestor {
    parser: DomainParser,
    cleaner: Option<TextCleaner>,
}

impl TextIngestor {
    /// With a parser and the built-in ML cleaner.
    pub fn new(parser: DomainParser) -> Self {
        TextIngestor { parser, cleaner: Some(TextCleaner::with_builtin_seeds()) }
    }

    /// With a parser and no cleaning (ablation mode).
    pub fn without_cleaner(parser: DomainParser) -> Self {
        TextIngestor { parser, cleaner: None }
    }

    /// Ensure the `instance` and `entity` collections exist with the
    /// paper's index layout (1 and 8 indexes respectively).
    pub fn ensure_collections(
        &self,
        store: &Store,
        config: datatamer_storage::CollectionConfig,
    ) -> Result<(Arc<Collection>, Arc<Collection>)> {
        let instance = store.collection_or_create(INSTANCE_COLLECTION, config.clone())?;
        if instance.index_count() == 0 {
            instance
                .create_index(IndexSpec::new("by_entity_canonical", "entities.canonical"))?;
        }
        let entity = store.collection_or_create(ENTITY_COLLECTION, config)?;
        if entity.index_count() == 0 {
            for (name, path) in [
                ("by_type", "type"),
                ("by_name", "name"),
                ("by_canonical", "canonical"),
                ("by_confidence", "confidence"),
                ("by_fragment", "fragment_ref"),
                ("by_source", "source"),
                ("by_chars", "chars"),
                ("by_context", "context"),
            ] {
                entity.create_index(IndexSpec::new(name, path))?;
            }
        }
        Ok((instance, entity))
    }

    /// Ingest fragments (with per-fragment source labels) into `store`,
    /// extracting `(stats, show_records)` where show records carry
    /// `SHOW_NAME` / `TEXT_FEED` for fusion. `text_source` tags the records.
    pub fn ingest<'a, I>(
        &self,
        store: &Store,
        config: datatamer_storage::CollectionConfig,
        text_source: SourceId,
        fragments: I,
    ) -> Result<(IngestStats, Vec<Record>)>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>, // (fragment, source label)
    {
        let (instance_col, entity_col) = self.ensure_collections(store, config)?;
        let mut stats = IngestStats::default();
        let mut show_records = Vec::new();
        let mut next_record = 0u64;
        for (fragment, label) in fragments {
            stats.fragments_seen += 1;
            if let Some(cleaner) = &self.cleaner {
                if cleaner.is_junk(fragment) {
                    stats.fragments_dropped += 1;
                    continue;
                }
            }
            let parsed = self.parser.parse(fragment);
            let mut instance_doc = parsed.to_instance_doc();
            instance_doc.set("source", Value::from(label));
            let instance_id = instance_col.insert(&instance_doc)?;
            stats.instances += 1;

            for (mention, mut entity_doc) in
                parsed.mentions.iter().zip(parsed.entity_docs())
            {
                entity_doc.set("fragment_ref", Value::Int(instance_id.0 as i64));
                entity_doc.set("source", Value::from(label));
                entity_doc.set("chars", Value::from(mention.text.len()));
                entity_col.insert(&entity_doc)?;
                stats.entities += 1;

                // Movie mentions become fusion-ready show records.
                if mention.entity_type == EntityType::Movie {
                    let mut r = Record::new(text_source, RecordId(next_record));
                    next_record += 1;
                    r.set(SHOW_NAME, Value::from(mention.text.as_str()));
                    r.set(TEXT_FEED, Value::from(fragment));
                    show_records.push(r);
                }
            }
        }
        stats.show_records = show_records.len();
        Ok((stats, show_records))
    }
}

/// Flatten one stored instance document into curation records (exposed for
/// pipelines that run Data Tamer stages over text-derived data directly).
pub fn flatten_instance(docd: &Document, source: SourceId, base: RecordId) -> Vec<Record> {
    datatamer_model::flatten(docd, source, base, &datatamer_model::FlattenOptions::default())
}

/// Build a tiny instance document (used in tests and docs).
pub fn example_instance() -> Document {
    doc! {
        "fragment" => "Matilda grossed 960,998",
        "chars" => 23i64,
        "entities" => Value::Array(vec![Value::Doc(doc! {
            "type" => "Movie", "name" => "Matilda", "canonical" => "matilda"
        })])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_storage::CollectionConfig;
    use datatamer_text::Gazetteer;

    fn ingestor() -> TextIngestor {
        let mut g = Gazetteer::new();
        g.add("Matilda", EntityType::Movie, 0.95);
        g.add("London", EntityType::City, 0.9);
        g.add("Wicked", EntityType::Movie, 0.95);
        TextIngestor::new(DomainParser::with_gazetteer(g))
    }

    fn cfg() -> CollectionConfig {
        CollectionConfig { extent_size: 64 * 1024, shards: 2, ..Default::default() }
    }

    #[test]
    fn collections_get_paper_index_counts() {
        let store = Store::new("dt");
        let ing = ingestor();
        let (instance, entity) = ing.ensure_collections(&store, cfg()).unwrap();
        assert_eq!(instance.index_count(), 1, "Table I: nindexes=1");
        assert_eq!(entity.index_count(), 8, "Table II: nindexes=8");
        // Idempotent.
        let (i2, e2) = ing.ensure_collections(&store, cfg()).unwrap();
        assert_eq!(i2.index_count(), 1);
        assert_eq!(e2.index_count(), 8);
    }

    #[test]
    fn ingest_stores_instances_and_entities() {
        let store = Store::new("dt");
        let ing = ingestor();
        let fragments = [
            ("Matilda an import from London grossed 960,998", "news"),
            ("Wicked still sells out nightly", "blog"),
        ];
        let (stats, shows) = ing.ingest(&store, cfg(), SourceId(7), fragments).unwrap();
        assert_eq!(stats.fragments_seen, 2);
        assert_eq!(stats.fragments_dropped, 0);
        assert_eq!(stats.instances, 2);
        assert!(stats.entities >= 3, "{stats:?}");
        assert_eq!(stats.show_records, 2);
        assert_eq!(shows.len(), 2);
        assert_eq!(shows[0].get_text(SHOW_NAME).as_deref(), Some("Matilda"));
        assert!(shows[0].get_text(TEXT_FEED).unwrap().contains("grossed"));
        assert_eq!(shows[0].source, SourceId(7));

        let instance = store.collection(INSTANCE_COLLECTION).unwrap();
        assert_eq!(instance.len(), 2);
        let entity = store.collection(ENTITY_COLLECTION).unwrap();
        assert_eq!(entity.len(), stats.entities);
        // Entity docs are queryable by type via the index.
        let movies = entity
            .with_index("by_type", |i| i.lookup(&Value::from("Movie")))
            .unwrap();
        assert_eq!(movies.len(), 2);
    }

    #[test]
    fn cleaner_drops_junk() {
        let store = Store::new("dt");
        let ing = ingestor();
        let fragments = [
            ("Matilda grossed well at the theatre during previews", "news"),
            ("click here to subscribe accept cookies buy now free shipping", "spam"),
        ];
        let (stats, _) = ing.ingest(&store, cfg(), SourceId(0), fragments).unwrap();
        assert_eq!(stats.fragments_dropped, 1);
        assert_eq!(stats.instances, 1);
    }

    #[test]
    fn without_cleaner_keeps_everything() {
        let store = Store::new("dt");
        let mut g = Gazetteer::new();
        g.add("Matilda", EntityType::Movie, 0.9);
        let ing = TextIngestor::without_cleaner(DomainParser::with_gazetteer(g));
        let fragments =
            [("click here to subscribe accept cookies buy now free shipping", "spam")];
        let (stats, _) = ing.ingest(&store, cfg(), SourceId(0), fragments).unwrap();
        assert_eq!(stats.fragments_dropped, 0);
        assert_eq!(stats.instances, 1);
    }

    #[test]
    fn flatten_instance_explodes_entities() {
        let d = example_instance();
        let recs = flatten_instance(&d, SourceId(1), RecordId(0));
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get_text("entities.name").as_deref(), Some("Matilda"));
        assert_eq!(recs[0].get_text("entities.type").as_deref(), Some("Movie"));
    }
}
