//! Typed value transformations.

use datatamer_model::infer::{parse_date, parse_decimal, parse_money};
use datatamer_model::Value;

/// Exchange rates into USD (major units per 1 unit of the key currency).
/// Fixed table — the paper's transformation example is a static EUR→USD
/// translation, not a live feed.
pub const USD_RATES: &[(&str, f64)] = &[
    ("USD", 1.0),
    ("EUR", 1.30),
    ("GBP", 1.55),
    ("JPY", 0.010),
];

/// A value transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Convert any recognised currency amount to US dollars (`€30` → `$39`).
    CurrencyToUsd,
    /// Normalise any recognised date to the paper's `M/D/YYYY` form.
    DateToUs,
    /// Normalise any recognised date to ISO `YYYY-MM-DD`.
    DateToIso,
    /// Strip a unit suffix and keep the number (`160 min` → `160`).
    StripUnit(String),
    /// Collapse whitespace runs and trim.
    TidyWhitespace,
    /// Uppercase the value (display canonicalisation).
    Uppercase,
    /// Scale a numeric value by a constant factor.
    ScaleNumeric(f64),
}

impl Transform {
    /// Apply to a value. Returns `None` when the transform does not apply
    /// (callers keep the original value — cleaning must never destroy data
    /// it does not understand).
    pub fn apply(&self, v: &Value) -> Option<Value> {
        match self {
            Transform::CurrencyToUsd => {
                let text = v.as_str()?;
                let money = parse_money(text)?;
                let rate = USD_RATES
                    .iter()
                    .find(|(c, _)| *c == money.currency)
                    .map(|(_, r)| *r)?;
                let usd = money.amount * rate;
                // Keep integer rendering when exact, cents otherwise.
                let rendered = if (usd - usd.round()).abs() < 1e-9 {
                    format!("${:.0}", usd.round())
                } else {
                    format!("${usd:.2}")
                };
                Some(Value::Str(rendered))
            }
            Transform::DateToUs => {
                let d = parse_date(v.as_str()?)?;
                Some(Value::Str(d.to_us_string()))
            }
            Transform::DateToIso => {
                let d = parse_date(v.as_str()?)?;
                Some(Value::Str(d.to_iso_string()))
            }
            Transform::StripUnit(unit) => {
                let text = v.as_str()?.trim();
                let stripped = text
                    .strip_suffix(unit.as_str())
                    .map(str::trim_end)?;
                let num = parse_decimal(stripped)?;
                Some(if num.fract() == 0.0 {
                    Value::Int(num as i64)
                } else {
                    Value::Float(num)
                })
            }
            Transform::TidyWhitespace => {
                let text = v.as_str()?;
                let mut out = String::with_capacity(text.len());
                let mut last_space = true;
                for c in text.chars() {
                    if c.is_whitespace() {
                        if !last_space {
                            out.push(' ');
                            last_space = true;
                        }
                    } else {
                        out.push(c);
                        last_space = false;
                    }
                }
                let trimmed = out.trim_end().to_owned();
                (trimmed != *text).then_some(Value::Str(trimmed))
            }
            Transform::Uppercase => {
                let text = v.as_str()?;
                let upper = text.to_uppercase();
                (upper != *text).then_some(Value::Str(upper))
            }
            Transform::ScaleNumeric(k) => {
                let x = v.as_float()?;
                Some(Value::Float(x * k))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euros_become_dollars() {
        // The paper's canonical example: translate euros into dollars.
        let t = Transform::CurrencyToUsd;
        assert_eq!(t.apply(&Value::from("€30")), Some(Value::from("$39")));
        assert_eq!(t.apply(&Value::from("30 EUR")), Some(Value::from("$39")));
        assert_eq!(t.apply(&Value::from("30 euros")), Some(Value::from("$39")));
        assert_eq!(t.apply(&Value::from("$27")), Some(Value::from("$27")), "USD is identity");
        assert_eq!(t.apply(&Value::from("£10")), Some(Value::from("$15.50")));
        assert_eq!(t.apply(&Value::from("thirty")), None, "unparseable keeps original");
        assert_eq!(t.apply(&Value::Int(30)), None, "non-strings pass through");
    }

    #[test]
    fn dates_normalise_both_ways() {
        let us = Transform::DateToUs;
        let iso = Transform::DateToIso;
        for spelling in ["3/4/2013", "2013-03-04", "March 4, 2013"] {
            assert_eq!(us.apply(&Value::from(spelling)), Some(Value::from("3/4/2013")));
            assert_eq!(iso.apply(&Value::from(spelling)), Some(Value::from("2013-03-04")));
        }
        assert_eq!(us.apply(&Value::from("not a date")), None);
    }

    #[test]
    fn strip_unit() {
        let t = Transform::StripUnit("min".into());
        assert_eq!(t.apply(&Value::from("160 min")), Some(Value::Int(160)));
        assert_eq!(t.apply(&Value::from("90.5 min")), Some(Value::Float(90.5)));
        assert_eq!(t.apply(&Value::from("160")), None, "no unit, no transform");
        assert_eq!(t.apply(&Value::from("min")), None);
    }

    #[test]
    fn tidy_whitespace_only_reports_changes() {
        let t = Transform::TidyWhitespace;
        assert_eq!(t.apply(&Value::from("  Matilda   show ")), Some(Value::from("Matilda show")));
        assert_eq!(t.apply(&Value::from("clean")), None, "already clean → no change");
    }

    #[test]
    fn uppercase_and_scale() {
        assert_eq!(
            Transform::Uppercase.apply(&Value::from("show_name")),
            Some(Value::from("SHOW_NAME"))
        );
        assert_eq!(Transform::Uppercase.apply(&Value::from("X")), None);
        assert_eq!(
            Transform::ScaleNumeric(2.0).apply(&Value::Int(21)),
            Some(Value::Float(42.0))
        );
        assert_eq!(Transform::ScaleNumeric(2.0).apply(&Value::from("x")), None);
    }

    #[test]
    fn rates_table_has_usd_identity() {
        let usd = USD_RATES.iter().find(|(c, _)| *c == "USD").unwrap();
        assert_eq!(usd.1, 1.0);
        assert!(USD_RATES.iter().any(|(c, _)| *c == "EUR"));
    }
}
