//! Canonicalising missing-value spellings.

use datatamer_model::Value;

/// Spellings treated as missing (compared case-insensitively, trimmed).
pub const NULL_SPELLINGS: &[&str] = &["", "-", "--", "n/a", "na", "null", "none", "unknown", "?"];

/// True when a string denotes a missing value.
pub fn is_nullish(s: &str) -> bool {
    let t = s.trim().to_lowercase();
    NULL_SPELLINGS.contains(&t.as_str())
}

/// Replace null-ish strings with `Value::Null`. Returns `None` when the
/// value is already canonical.
pub fn canonicalize(v: &Value) -> Option<Value> {
    match v {
        Value::Str(s) if is_nullish(s) => Some(Value::Null),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognised_spellings() {
        for s in ["", " ", "N/A", "n/a", "-", "NULL", "None", "unknown", "?"] {
            assert!(is_nullish(s), "{s:?}");
        }
        for s in ["0", "no", "Matilda", "$27"] {
            assert!(!is_nullish(s), "{s:?}");
        }
    }

    #[test]
    fn canonicalize_only_changes_nullish_strings() {
        assert_eq!(canonicalize(&Value::from("N/A")), Some(Value::Null));
        assert_eq!(canonicalize(&Value::from("Matilda")), None);
        assert_eq!(canonicalize(&Value::Null), None);
        assert_eq!(canonicalize(&Value::Int(0)), None);
    }
}
